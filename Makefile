# Convenience entry points.  All targets run against the in-tree sources.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

# Persistent-cache database directory for `make fsck` (override: make fsck DB=...)
DB ?= /tmp/pcc-db

.PHONY: test faultinject benchmarks fsck

test:
	$(PYTHON) -m pytest -x -q

# The crash-consistency / fault-injection suite alone.
faultinject:
	$(PYTHON) -m pytest -q -m faultinject tests

benchmarks:
	$(PYTHON) -m pytest -q benchmarks

# Check a persistent-cache database's integrity section by section.
fsck:
	$(PYTHON) -m repro.cli cache fsck $(DB)
