# Convenience entry points.  All targets run against the in-tree sources.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

# Persistent-cache database directory for `make fsck` (override: make fsck DB=...)
DB ?= /tmp/pcc-db

.PHONY: test faultinject benchmarks bench-wallclock fsck stress gc replay-smoke prewarm-smoke daemon-smoke transparency-smoke

test:
	$(PYTHON) -m pytest -x -q

# The crash-consistency / fault-injection suite alone.
faultinject:
	$(PYTHON) -m pytest -q -m faultinject tests

benchmarks:
	$(PYTHON) -m pytest -q benchmarks

# Wall-clock dispatch-tier suite (docs/performance.md).  Writes
# BENCH_wallclock.json at the repo root; fails if compiled dispatch is
# slower than interpreted on the fig5a GUI workload, or if the
# trace_linking family's linked tier diverges from the interpreted
# oracle or bounces through the dispatcher on a stable chain.
bench-wallclock:
	$(PYTHON) -m repro.cli bench --check --check-threshold 1.0

# Check a persistent-cache database's integrity section by section.
fsck:
	$(PYTHON) -m repro.cli cache fsck $(DB)

# Multi-process stress for the shared per-host body store and the
# cache-server daemon transport on top of it.
stress:
	$(PYTHON) -m pytest -q tests/test_sharedstore_concurrency.py \
		tests/test_cacheserver_concurrency.py

# Replay-log database for `make replay-smoke` (override: make replay-smoke RDB=...)
RDB ?= /tmp/pcc-replay-db

# Record/replay smoke (docs/record-replay.md): record one session per
# nondeterminism-sensitive workload, then differentially replay the
# whole database under both dispatch tiers.  Any structural divergence
# or result drift fails the target.
replay-smoke:
	rm -rf $(RDB)
	$(PYTHON) -m repro.cli run nondet dice short --record --pcache $(RDB)
	$(PYTHON) -m repro.cli run nondet clockwork short --record --pcache $(RDB)
	$(PYTHON) -m repro.cli run nondet relay long --record --pcache $(RDB) --layout-seed 7
	$(PYTHON) -m repro.cli replay $(RDB) --diff

# Prewarm database/store directories (override: make prewarm-smoke PWDB=... PWSTORE=...)
PWDB ?= /tmp/pcc-prewarm-db
PWSTORE ?= /tmp/pcc-prewarm-store

# Parallel-prewarm smoke (docs/performance.md): mass-compile the tiny
# startup corpus across two worker processes into a fresh database +
# shared store, then re-prewarm with --verify — the second pass must
# perform zero host compiles or the target fails.
prewarm-smoke:
	rm -rf $(PWDB) $(PWSTORE)
	$(PYTHON) -m repro.cli prewarm --pcache $(PWDB) --jobs 2 \
		--corpus tiny --shared-store $(PWSTORE)
	$(PYTHON) -m repro.cli prewarm --pcache $(PWDB) --jobs 2 \
		--corpus tiny --shared-store $(PWSTORE) --verify

# Daemon-smoke directories (override: make daemon-smoke DSDB=... DSSTORE=...)
DSDB ?= /tmp/pcc-daemon-db
DSSTORE ?= /tmp/pcc-daemon-store

# Cache-server daemon smoke (docs/cache-format.md): start a detached
# daemon on a fresh store, prewarm the tiny corpus through the socket
# (daemon:// transport), re-prewarm with --verify (zero host compiles
# or the CLI fails), then stop the daemon and fsck the store — the
# daemon's write-backs must leave the shard files fully sound.
daemon-smoke:
	rm -rf $(DSDB) $(DSSTORE)
	$(PYTHON) -m repro.cli cache serve $(DSSTORE) --detach
	$(PYTHON) -m repro.cli prewarm --pcache $(DSDB) --jobs 2 \
		--corpus tiny --shared-store daemon://$(DSSTORE)
	$(PYTHON) -m repro.cli prewarm --pcache $(DSDB) --jobs 2 \
		--corpus tiny --shared-store daemon://$(DSSTORE) --verify
	$(PYTHON) -m repro.cli cache serve $(DSSTORE) --status
	$(PYTHON) -m repro.cli cache serve $(DSSTORE) --stop
	$(PYTHON) -m repro.cli cache fsck $(DSSTORE)

# Transparency smoke (docs/architecture.md "Transparency guarantees"):
# the anti-instrumentation differential suite plus the transparency
# bench family's --check gate — every dispatch tier bit-identical to
# the interpreted oracle on the adversarial corpus, zero stale
# code-byte reads cold and warm (sidecar/shared store/daemon), and the
# SMC detector engaged on every churner.
transparency-smoke:
	$(PYTHON) -m pytest -q tests/test_adversarial.py tests/test_smc.py
	$(PYTHON) -m repro.cli bench --family transparency --check \
		--warmup 1 --reps 2 --out /tmp/pcc-bench-transparency.json

# Shared per-host body store directory for `make gc` (override: make gc STORE=...)
STORE ?= /tmp/pcc-shared-store

# Mark-and-sweep the shared store (docs/cache-format.md).
gc:
	$(PYTHON) -m repro.cli cache gc $(STORE)
