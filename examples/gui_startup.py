#!/usr/bin/env python
"""GUI startup under persistent code caching (paper §4.2 / §4.5).

The paper's motivating scenario: desktop GUI programs are 20-100x slower
to start under a DBI engine because startup is almost entirely cold code
— most of it in shared toolkit libraries.  This example:

1. measures the cold-startup slowdown of all five GUI application analogs,
2. shows same-input persistence recovering ~90% of startup time,
3. shows one application's persistent cache accelerating *another*
   application (inter-application persistence via shared libraries).

Run with:  python examples/gui_startup.py
"""

import shutil
import tempfile

from repro.analysis.overhead import improvement_percent
from repro.persist import CacheDatabase, PersistenceConfig
from repro.workloads import build_gui_suite, run_native, run_vm


def main():
    apps, _store = build_gui_suite()
    cache_dir = tempfile.mkdtemp(prefix="pcc-gui-")
    try:
        db = CacheDatabase(cache_dir)

        print("=== cold startup under the VM ===")
        baselines = {}
        for name, app in sorted(apps.items()):
            native = run_native(app, "startup")
            cold = run_vm(app, "startup")
            baselines[name] = cold
            print("%-12s native=%8.0f  vm=%10.0f  (%.0fx slower)"
                  % (name, native.cycles, cold.stats.total_cycles,
                     cold.stats.total_cycles / native.cycles))

        print("\n=== same-input (inter-execution) persistence ===")
        for name, app in sorted(apps.items()):
            run_vm(app, "startup", persistence=PersistenceConfig(database=db))
            warm = run_vm(app, "startup",
                          persistence=PersistenceConfig(database=db))
            gain = improvement_percent(
                baselines[name].stats.total_cycles, warm.stats.total_cycles
            )
            print("%-12s warm=%9.0f  improvement=%.0f%%  (0 retranslations: %s)"
                  % (name, warm.stats.total_cycles, gain,
                     warm.stats.traces_translated == 0))

        print("\n=== inter-application persistence ===")
        print("(gqview primed with gftp's cache: shared toolkit libraries "
              "are reused,\n gqview-specific code is retranslated)")
        donor_db = CacheDatabase(tempfile.mkdtemp(prefix="pcc-donor-"))
        run_vm(apps["gftp"], "startup",
               persistence=PersistenceConfig(database=donor_db))
        crossed = run_vm(
            apps["gqview"], "startup",
            persistence=PersistenceConfig(
                database=donor_db, inter_application=True, readonly=True
            ),
        )
        gain = improvement_percent(
            baselines["gqview"].stats.total_cycles, crossed.stats.total_cycles
        )
        print("gqview via gftp's cache: %.0f%% improvement "
              "(%d traces reused, %d retranslated)"
              % (gain, crossed.stats.traces_from_persistent,
                 crossed.stats.traces_translated))
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)


if __name__ == "__main__":
    main()
