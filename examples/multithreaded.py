#!/usr/bin/env python
"""Multi-threaded execution under the VM and the persistent cache.

The paper's system "supports inter-execution, as well as inter-application
persistence of single-threaded, multi-threaded, and multi-process
applications" (§3.2), with the cache written "when the last thread of
execution performs the exit system call" (§3.2.2).

This example builds a program whose main thread spawns worker threads
that cooperate through shared memory and yield-based scheduling, runs it
natively and under the VM (bit-identical results), and shows the
persistent cache written at last-thread exit accelerating the next run.

Run with:  python examples/multithreaded.py
"""

import shutil
import tempfile

from repro.binfmt import ImageBuilder
from repro.isa import assemble
from repro.loader import load_process
from repro.machine import Machine, run_native
from repro.persist import CacheDatabase, PersistenceConfig, PersistentCacheSession
from repro.vm import Engine

PROGRAM = """
main:
    movi s0, 0            ; workers spawned
spawn:
    movi a0, worker
    or   a1, s0, zero     ; worker index as argument
    movi rv, 9            ; SYS_THREAD_CREATE
    syscall
    addi s0, s0, 1
    movi t0, 4
    blt  s0, t0, spawn
    ; let the workers run to completion
    movi s1, 0
drain:
    movi rv, 10           ; SYS_YIELD
    syscall
    addi s1, s1, 1
    movi t0, 8
    blt  s1, t0, drain
    movi t0, total
    ld   a0, 0(t0)
    movi rv, 1            ; exit(total) -- the LAST thread to exit
    syscall

worker:
    ; contribute (index+1)*10 into the shared total.  The yield comes
    ; BEFORE the read-modify-write so updates never interleave — with
    ; cooperative scheduling this is a correct (and deterministic) lock.
    addi t1, a0, 1
    movi t2, 10
    mul  t1, t1, t2
    movi rv, 10           ; yield, then update atomically-by-construction
    syscall
    movi t3, total
    ld   t4, 0(t3)
    add  t4, t4, t1
    st   t4, 0(t3)
    movi rv, 1            ; thread exit
    movi a0, 0
    syscall
"""


def build_image():
    builder = ImageBuilder("mt-example")
    builder.add_unit(assemble(PROGRAM), exports=["main"])
    builder.add_data("total", b"\x00" * 8)
    builder.set_entry("main")
    return builder.build()


def main():
    image = build_image()

    native = run_native(Machine(load_process(image)))
    print("native: exit=%d (sum of worker contributions), %d instructions"
          % (native.exit_status, native.instructions))

    machine = Machine(load_process(image))
    vm = Engine().run(load_process(image), machine=machine)
    print("VM:     exit=%d, %d instructions (identical interleaving)"
          % (vm.exit_status, vm.instructions))
    assert (vm.exit_status, vm.instructions) == (
        native.exit_status, native.instructions
    )

    cache_dir = tempfile.mkdtemp(prefix="pcc-mt-")
    try:
        db = CacheDatabase(cache_dir)

        def persistent_run():
            session = PersistentCacheSession(PersistenceConfig(database=db))
            return Engine(persistence=session).run(load_process(image))

        first = persistent_run()
        second = persistent_run()
        print("persistence: run1 wrote %d traces at last-thread exit; "
              "run2 translated %d (reused %d)"
              % (first.persistence_report["total_traces_after_write"],
                 second.stats.traces_translated,
                 second.stats.traces_from_persistent))
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)


if __name__ == "__main__":
    main()
