#!/usr/bin/env python
"""Dynamic modules: dlopen/dlclose, retention, and persistence.

Builds a plugin-host application that repeatedly loads, calls and unloads
a plugin module, and compares three systems (the §5 landscape):

1. a plain VM that discards an unloaded module's translations,
2. module-aware retention (Li et al.'s IA32EL mechanism): reloads reuse
   the stashed translations within one run,
3. retention + persistent caching (this paper): even the first load of a
   later run reuses translations, including those of modules that were
   unloaded when the earlier run exited.

Run with:  python examples/plugin_host.py
"""

import shutil
import tempfile

from repro.binfmt import ImageBuilder, ImageKind
from repro.isa import instructions as ins
from repro.isa import registers as regs
from repro.loader import load_process
from repro.machine import SYS_DLCLOSE, SYS_DLOPEN, SYS_EXIT
from repro.persist import CacheDatabase, PersistenceConfig, PersistentCacheSession
from repro.vm import Engine, VMConfig

RELOADS = 5


def build_plugin():
    builder = ImageBuilder("plugin.so", ImageKind.SHARED_LIBRARY, mtime=1)
    builder.add_function(
        "plugin_entry",
        [ins.addi(16, 16, 1),  # t6 += 1 per call
         ins.xor(17, 16, 16),
         ins.addi(17, 17, 3),
         ins.ret()],
    )
    return builder.build()


def build_host():
    code = [ins.movi(regs.S0, 0)]
    loop_head = len(code)
    code += [
        ins.movi(regs.A0, 0),
        ins.movi(regs.RV, SYS_DLOPEN),
        ins.syscall(),
        ins.or_(regs.T0, regs.RV, regs.ZERO),
        ins.callr(regs.T0),
        ins.movi(regs.A0, 0),
        ins.movi(regs.RV, SYS_DLCLOSE),
        ins.syscall(),
        ins.addi(regs.S0, regs.S0, 1),
        ins.movi(regs.T0 + 1, RELOADS),
    ]
    here = len(code)
    code.append(ins.blt(regs.S0, regs.T0 + 1, (loop_head - (here + 1)) * 8))
    code += [
        ins.movi(regs.RV, SYS_EXIT),
        ins.or_(regs.A0, 16, regs.ZERO),
        ins.syscall(),
    ]
    builder = ImageBuilder("plugin-host")
    builder.add_function("main", code)
    builder.set_entry("main")
    return builder.build()


def main():
    host, plugin = build_host(), build_plugin()

    def fresh_process():
        return load_process(host, optional_modules=[plugin])

    no_retention = Engine(config=VMConfig(module_retention=False)).run(
        fresh_process()
    )
    print("no retention:          %7.0f cycles, %2d translations"
          % (no_retention.stats.total_cycles,
             no_retention.stats.traces_translated))

    retained = Engine().run(fresh_process())
    print("intra-run retention:   %7.0f cycles, %2d translations, "
          "%d reload re-registrations"
          % (retained.stats.total_cycles, retained.stats.traces_translated,
             retained.stats.module_traces_retained))

    cache_dir = tempfile.mkdtemp(prefix="pcc-plugin-")
    try:
        db = CacheDatabase(cache_dir)

        def persistent_run():
            session = PersistentCacheSession(PersistenceConfig(database=db))
            return Engine(persistence=session).run(fresh_process())

        persistent_run()  # creating run
        warm = persistent_run()
        print("retention+persistence: %7.0f cycles, %2d translations "
              "(plugin revived at dlopen, despite being unloaded at the "
              "previous exit)"
              % (warm.stats.total_cycles, warm.stats.traces_translated))
        assert warm.stats.traces_translated == 0
        assert (no_retention.exit_status == retained.exit_status
                == warm.exit_status == RELOADS)
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)


if __name__ == "__main__":
    main()
