#!/usr/bin/env python
"""Quickstart: run a program under the DBI engine, then persist its cache.

Builds a small program for the synthetic machine, runs it three ways —
natively, under the VM with an empty code cache, and under the VM reusing
a persistent code cache — and prints the time (simulated cycles) each run
took, plus where it went.

Run with:  python examples/quickstart.py
"""

import shutil
import tempfile

from repro.binfmt import ImageBuilder, ImageKind
from repro.isa import assemble
from repro.loader import load_process
from repro.machine import Machine, run_native
from repro.persist import CacheDatabase, PersistenceConfig, PersistentCacheSession
from repro.vm import Engine

#: Cold startup functions: each runs once, like real program
#: initialization — the code whose translation cost persistence recoups.
COLD_FUNCTIONS = 40

MAIN_TEMPLATE = """
main:
%(init_calls)s
    movi t0, 400           ; steady-state loop trip count
loop:
    st   t0, 0(sp)         ; a little memory traffic
    ld   t1, 0(sp)
    addi t0, t0, -1
    call work
    bne  t0, zero, loop
    movi rv, 1             ; SYS_EXIT
    movi a0, 0
    syscall
work:
    addi t2, t2, 3
    xor  t3, t2, t1
    ret
"""

COLD_TEMPLATE = """
init_%(index)d:
    movi t4, %(index)d
    addi t5, t4, 17
    xor  t6, t5, t4
    shli t7, t6, 2
    st   t7, -8(sp)
    ld   t4, -8(sp)
    sub  t5, t4, t6
    slt  t6, t5, t7
    ret
"""


def build_image():
    init_calls = "\n".join(
        "    call init_%d" % index for index in range(COLD_FUNCTIONS)
    )
    source = MAIN_TEMPLATE % {"init_calls": init_calls}
    source += "".join(
        COLD_TEMPLATE % {"index": index} for index in range(COLD_FUNCTIONS)
    )
    builder = ImageBuilder("quickstart-app", ImageKind.EXECUTABLE)
    builder.add_unit(assemble(source), exports=["main"])
    builder.set_entry("main")
    return builder.build()


def main():
    image = build_image()

    # 1. Native execution: the baseline hardware run.
    native = run_native(Machine(load_process(image)))
    print("native:        %10.0f cycles  (%d instructions, exit=%d)"
          % (native.cycles, native.instructions, native.exit_status))

    # 2. Under the VM, empty code cache: every trace must be translated.
    cold = Engine().run(load_process(image))
    print("VM (cold):     %10.0f cycles  (%.1fx slower; %d traces translated)"
          % (cold.stats.total_cycles,
             cold.stats.total_cycles / native.cycles,
             cold.stats.traces_translated))

    # 3. With persistence: the first run writes a cache, the second
    # reuses it and translates nothing.
    cache_dir = tempfile.mkdtemp(prefix="pcc-quickstart-")
    try:
        db = CacheDatabase(cache_dir)

        def persistent_run():
            session = PersistentCacheSession(PersistenceConfig(database=db))
            return Engine(persistence=session).run(load_process(image))

        first = persistent_run()
        second = persistent_run()
        print("VM (persist1): %10.0f cycles  (cache written: %d traces)"
              % (first.stats.total_cycles,
                 first.persistence_report["total_traces_after_write"]))
        print("VM (persist2): %10.0f cycles  (%d translated, %d from cache)"
              % (second.stats.total_cycles,
                 second.stats.traces_translated,
                 second.stats.traces_from_persistent))
        saved = 1 - second.stats.total_cycles / cold.stats.total_cycles
        print("persistence eliminated %.0f%% of the VM run time" % (100 * saved))

        assert second.stats.traces_translated == 0
        assert second.exit_status == native.exit_status
        assert second.instructions == native.instructions
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)


if __name__ == "__main__":
    main()
