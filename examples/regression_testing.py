#!/usr/bin/env python
"""Instrumented regression testing with persistent caches (paper §4.2).

The Oracle scenario: a regression test is five short-lived processes
(Start, Mount, Open, Work, Close), each exercising specialized code, run
under memory-reference instrumentation for validation.  Translation costs
cannot amortize within one short test — but they amortize *across* tests
through the persistent cache, which also accumulates each phase's code.

This example runs the unit test twice and reports the speedup the second
(fully cached) test enjoys, mirroring the paper's ~4x headline.

Run with:  python examples/regression_testing.py
"""

import shutil
import tempfile

from repro.persist import CacheDatabase, PersistenceConfig
from repro.tools import MemTraceTool
from repro.workloads import build_oracle, run_vm, unit_test_sequence


def run_unit_test(workload, db, label):
    """One full regression test: each phase is a separate process."""
    total = 0.0
    print("--- %s ---" % label)
    for phase in unit_test_sequence():
        tool = MemTraceTool()
        result = run_vm(
            workload, phase, tool=tool,
            persistence=PersistenceConfig(database=db),
        )
        total += result.stats.total_cycles
        print(
            "%-6s %9.0f cycles  translated=%3d reused=%3d  "
            "mem accesses traced=%d"
            % (
                phase,
                result.stats.total_cycles,
                result.stats.traces_translated,
                result.stats.traces_from_persistent,
                tool.total_accesses,
            )
        )
    print("total: %.0f cycles\n" % total)
    return total


def main():
    workload = build_oracle()
    cache_dir = tempfile.mkdtemp(prefix="pcc-regression-")
    try:
        db = CacheDatabase(cache_dir)
        first = run_unit_test(workload, db, "test run 1 (cold caches)")
        second = run_unit_test(workload, db, "test run 2 (persistent caches)")
        print("regression-test speedup from persistence: %.2fx" % (first / second))
        print("(the caches in %s now hold every phase's instrumented "
              "translations;\n every further test run starts warm)" % cache_dir)
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)


if __name__ == "__main__":
    main()
