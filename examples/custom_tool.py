#!/usr/bin/env python
"""Writing a custom instrumentation tool (the PinTool analog).

Demonstrates the Client API: a tool that builds a dynamic call-graph
profile by instrumenting every ``call`` instruction, run over a SPEC2K
analog.  Also shows why the tool's identity participates in persistent
cache keys: translations instrumented by one tool version are never
reused by another.

Run with:  python examples/custom_tool.py
"""

import shutil
import tempfile
from collections import Counter

from repro.persist import CacheDatabase, PersistenceConfig
from repro.vm import InstrumentationPoint, PointKind, Tool
from repro.workloads import build_suite, run_vm


class CallGraphTool(Tool):
    """Counts dynamic executions of every call site."""

    name = "callgraph"
    version = "1.0"

    def __init__(self):
        self.call_sites = Counter()
        self._symbolizer = None

    def on_start(self, machine):
        self._symbolizer = machine.process.symbolize

    def instrument_trace(self, trace):
        points = []
        for index, inst in enumerate(trace.instructions):
            if not inst.is_call:
                continue

            def count(context):
                self.call_sites[context.address] += 1

            points.append(
                InstrumentationPoint(
                    kind=PointKind.BEFORE_INST,
                    index=index,
                    callback=count,
                    work_cycles=1.0,
                    label="call-site",
                )
            )
        return points

    def report(self, top=8):
        print("hottest call sites:")
        for address, count in self.call_sites.most_common(top):
            where = self._symbolizer(address) if self._symbolizer else hex(address)
            print("  %-40s %6d calls" % (where, count))


def main():
    workload = build_suite(("186.crafty",))["186.crafty"]
    cache_dir = tempfile.mkdtemp(prefix="pcc-tool-")
    try:
        db = CacheDatabase(cache_dir)

        tool = CallGraphTool()
        result = run_vm(workload, "ref-1", tool=tool,
                        persistence=PersistenceConfig(database=db))
        print("run 1: %d instructions, %d analysis calls, "
              "%d traces translated"
              % (result.instructions, result.stats.analysis_calls,
                 result.stats.traces_translated))
        tool.report()

        # Second run: the instrumented translations come from the cache;
        # the callbacks are re-bound to the fresh tool instance.
        tool2 = CallGraphTool()
        warm = run_vm(workload, "ref-1", tool=tool2,
                      persistence=PersistenceConfig(database=db))
        print("\nrun 2: %d traces translated (all from persistent cache), "
              "analysis still ran %d times"
              % (warm.stats.traces_translated, warm.stats.analysis_calls))
        assert warm.stats.traces_translated == 0
        assert tool2.call_sites == tool.call_sites

        # A different tool version must NOT reuse those translations.
        class CallGraphV2(CallGraphTool):
            version = "2.0"

        v2 = run_vm(workload, "ref-1", tool=CallGraphV2(),
                    persistence=PersistenceConfig(database=db))
        print("\nrun with tool v2.0: %d traces translated "
              "(different tool key -> no unsafe reuse)"
              % v2.stats.traces_translated)
        assert v2.stats.traces_translated > 0
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)


if __name__ == "__main__":
    main()
