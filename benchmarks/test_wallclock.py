"""Wall-clock dispatch-tier benchmark (host seconds, not cycles).

Unlike the figure regenerators, this suite measures the *simulator
itself*: how fast each dispatch tier (interpreted vs. trace-compiled,
see docs/performance.md) gets through the paper's workload families in
real time.  It drives :mod:`repro.bench` — the same harness behind
``python -m repro.cli bench`` — and writes ``BENCH_wallclock.json`` at
the repository root.

The headline acceptance gate lives on the fig5a GUI family: compiled
dispatch must be at least 1.5x faster than interpreted dispatch on warm
persistent-cache startup, with bit-identical results.
"""

from __future__ import annotations

import json
import os

from conftest import RESULTS_DIR

from repro.bench import (
    GATE_THRESHOLD_X,
    GATE_WORKLOAD,
    default_output_path,
    run_wallclock,
)


def test_wallclock_dispatch_tiers(record, tmp_path_factory):
    scratch = str(tmp_path_factory.mktemp("bench-wallclock"))
    out_path = default_output_path()
    # More reps than the CLI default: the fig5a gate margin is real but
    # thin, and min-of-5 is much less noise-sensitive than min-of-3.
    results = run_wallclock(
        scratch_dir=scratch, warmup=2, reps=5, out_path=out_path
    )

    rows = []
    for name, family in sorted(results["workloads"].items()):
        if "isolated_s" in family:
            rows.append(
                "%-18s isolated %.3fs  shared %.3fs  speedup %.2fx  "
                "host compiles %d/%d  identical=%s"
                % (name, family["isolated_s"], family["shared_s"],
                   family["speedup_x"], family["host_compiles_isolated"],
                   family["host_compiles_shared"],
                   family["identical_results"])
            )
        elif "nolink_s" in family:
            rows.append(
                "%-18s nolink %.3fs  linked %.3fs  speedup %.2fx "
                "(trimmed)  bounces %d  regions %d  identical=%s"
                % (name, family["nolink_s"], family["linked_s"],
                   family["speedup_trimmed_x"], family["link_bounces"],
                   family["regions_fused"], family["identical_results"])
            )
        elif "sync_s" in family:
            rows.append(
                "%-18s sync %.3fs  background %.3fs  ttfo %.3f/%.3fs "
                "(%.2fx)  warm compiles %d  identical=%s"
                % (name, family["sync_s"], family["background_s"],
                   family["sync_ttfo_s"], family["background_ttfo_s"],
                   family["ttfo_ratio_x"],
                   family["prewarm_warm_host_compiles"],
                   family["identical_results"])
            )
        elif "flock_s" in family:
            rows.append(
                "%-18s flock %.3fs  daemon %.3fs  %d procs  "
                "host compiles %d/%d  lookup p50 %.1f/%.1fus  "
                "fallback=%s  identical=%s"
                % (name, family["flock_s"], family["daemon_s"],
                   family["fleet_processes"],
                   family["fleet_host_compiles_flock"],
                   family["fleet_host_compiles_daemon"],
                   family["flock_lookup_p50_us"],
                   family["daemon_lookup_p50_us"],
                   family["fallback_ok"], family["identical_results"])
            )
        elif "plain_s" in family:
            rows.append(
                "%-18s plain %.3fs  record %.3fs  overhead %.1f%%  "
                "identical=%s"
                % (name, family["plain_s"], family["record_s"],
                   100.0 * (family["record_s"] / family["plain_s"] - 1.0),
                   family["identical_results"])
            )
        elif "interpreted_s" in family:
            rows.append(
                "%-18s interpreted %.3fs  compiled %.3fs  speedup %.2fx  "
                "spread %.0f%%/%.0f%%  identical=%s"
                % (name, family["interpreted_s"], family["compiled_s"],
                   family["speedup_x"], family["interpreted_spread_pct"],
                   family["compiled_spread_pct"],
                   family["identical_results"])
            )
        else:
            rows.append(
                "%-18s cold %.3fs  warm %.3fs  speedup %.2fx  "
                "host compiles %d/%d  identical=%s"
                % (name, family["cold_s"], family["warm_s"],
                   family["speedup_x"], family["host_compiles_cold"],
                   family["host_compiles_warm"],
                   family["identical_results"])
            )
    record("wallclock_dispatch", "\n".join(rows))

    # Both modes must agree bit-for-bit on every family before any
    # speedup is meaningful.
    for name, family in results["workloads"].items():
        assert family["identical_results"], name

    # The sidecar's contract: a warm process revives every compiled
    # body from disk and performs zero host compile() calls, while the
    # cold sweep (sidecar disabled, factory memo cleared) pays them all.
    sidecar = results["workloads"]["sidecar_cold_warm"]
    assert sidecar["host_compiles_warm"] == 0, sidecar
    assert sidecar["host_compiles_cold"] > 0, sidecar

    # The polymorphic IC chains must engage on the corpora built to fit
    # them (megamorphic overflows the chain by design and is excluded).
    indirect = results["workloads"]["indirect_heavy"]["ic_per_corpus"]
    assert indirect["alternating_pair"]["hit_rate"] > 0.8, indirect
    assert indirect["rotating_3"]["hit_rate"] > 0.8, indirect

    # Trace linking + superblock fusion: the linked compiled tier must
    # beat the unlinked one by 1.3x trimmed mean while staying
    # bit-identical to both the unlinked tier and the interpreted
    # oracle, with every stable-chain exit resolved in cache.
    linking = results["workloads"]["trace_linking"]
    assert linking["oracle_identical"], linking
    assert linking["link_bounces"] == 0, linking
    assert linking["regions_fused"] > 0, linking
    assert linking["speedup_trimmed_x"] >= 1.3, (
        "linked compiled tier %.2fx < 1.3x over nolink"
        % linking["speedup_trimmed_x"]
    )

    # Tiered warm-up: background compilation must agree bit-for-bit
    # with the interpreted oracle, cut time-to-first-output to at most
    # 0.6x of synchronous compilation, and leave a prewarmed corpus
    # with nothing to compile.  The prewarm --jobs monotonicity check
    # is core-aware (see docs/performance.md), so it holds on 1-core
    # runners too.
    warmup = results["workloads"]["tiered_warmup"]
    assert warmup["oracle_identical"], warmup
    assert warmup["ttfo_ratio_x"] <= 0.6, (
        "background TTFO %.2fx of sync exceeds the 0.6x cap"
        % warmup["ttfo_ratio_x"]
    )
    assert warmup["prewarm_warm_host_compiles"] == 0, warmup
    assert warmup["jobs_monotonic_ok"], warmup["prewarm_jobs_sweep"]

    # Fleet warm-up: an 8-process warm fleet over the cache-server
    # daemon compiles nothing, warm daemon lookups beat the flock
    # store's stat-revalidated path, sessions against the stopped
    # daemon silently fall back, and the store is fsck-clean after the
    # daemon's write-backs.
    fleet = results["workloads"]["fleet_warmup"]
    assert fleet["daemon_alive"], fleet
    assert fleet["fleet_host_compiles_daemon"] == 0, fleet
    assert fleet["daemon_lookup_p50_us"] < fleet["flock_lookup_p50_us"], (
        "daemon lookup p50 %.1fus not under flock %.1fus"
        % (fleet["daemon_lookup_p50_us"], fleet["flock_lookup_p50_us"])
    )
    assert fleet["fallback_ok"], fleet
    assert fleet["fsck_clean"], fleet

    # The acceptance gate: compiled >= 1.5x on fig5a warm-persistent GUI
    # startup (the configuration Figure 5(a) celebrates).
    gate = results["gate"]
    assert gate["workload"] == GATE_WORKLOAD
    assert gate["pass"], (
        "compiled dispatch %.2fx < %.1fx gate on %s"
        % (gate["speedup_x"], GATE_THRESHOLD_X, GATE_WORKLOAD)
    )

    # The artifact landed at the repo root and round-trips as JSON.
    assert os.path.exists(out_path)
    with open(out_path) as handle:
        on_disk = json.load(handle)
    assert on_disk["gate"]["workload"] == GATE_WORKLOAD
    assert RESULTS_DIR  # conftest import is intentional (results dir)
