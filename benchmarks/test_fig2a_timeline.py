"""Figure 2(a): SPEC2K behaviour under the VM (translation timelines).

Regenerates the translation-request timeline for every SPEC2K INT analog
on its first Reference input: dense vertical lines at startup, quiet
steady state — except 176.gcc, which keeps translating throughout and
spends most of its time generating code.
"""

from repro.analysis.timeline import (
    render_timeline,
    startup_dominated,
    summarize_timeline,
)
from repro.workloads.harness import run_vm


def _sweep(spec_suite):
    rows = {}
    for name, workload in sorted(spec_suite.items()):
        result = run_vm(workload, "ref-1")
        rows[name] = result
    return rows


def test_fig2a_translation_timelines(benchmark, spec_suite, record):
    rows = benchmark.pedantic(_sweep, args=(spec_suite,), rounds=1, iterations=1)

    lines = ["Figure 2(a): translation-request timeline (| = VM translation)"]
    for name, result in rows.items():
        summary = summarize_timeline(result.stats)
        lines.append(
            "%-12s [%s] events=%4d late=%4.0f%% vm_overhead=%4.0f%%"
            % (
                name,
                render_timeline(result.stats, width=64),
                summary.total_events,
                100 * summary.late_fraction,
                100 * result.stats.overhead_fraction(),
            )
        )
    record("fig2a_timeline", "\n".join(lines))

    # Shape assertions: every benchmark except gcc front-loads its
    # translations; gcc keeps discovering code all run long.
    for name, result in rows.items():
        summary = summarize_timeline(result.stats)
        if name == "176.gcc":
            assert summary.late_fraction > 0.25, summary
            assert not startup_dominated(result.stats)
            assert result.stats.overhead_fraction() > 0.25
        else:
            assert summary.early_fraction > 0.5, (name, summary)

    benchmark.extra_info["gcc_overhead_fraction"] = rows[
        "176.gcc"
    ].stats.overhead_fraction()
