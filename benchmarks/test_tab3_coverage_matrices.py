"""Tables 3(a) and 3(b): cross-input code-coverage matrices.

Regenerates the pairwise coverage matrix for 176.gcc's five Reference
inputs (paper band: 84-98%) and for Oracle's five phases (18-91%, with
Start isolated and Open dominant).
"""

from repro.analysis.coverage import coverage_matrix
from repro.analysis.report import format_matrix
from repro.workloads.harness import run_vm
from repro.workloads.oracle import PHASES


def _footprints(workload, input_names):
    return {
        name: run_vm(workload, name).stats.trace_identities
        for name in input_names
    }


def _sweep(spec_suite, oracle_workload):
    gcc = spec_suite["176.gcc"]
    gcc_inputs = ["ref-%d" % i for i in range(1, 6)]
    gcc_matrix = coverage_matrix(_footprints(gcc, gcc_inputs), order=gcc_inputs)
    oracle_matrix = coverage_matrix(
        _footprints(oracle_workload, PHASES), order=PHASES
    )
    return gcc_matrix, oracle_matrix


def test_tab3_coverage_matrices(benchmark, spec_suite, oracle_workload, record):
    gcc_matrix, oracle_matrix = benchmark.pedantic(
        _sweep, args=(spec_suite, oracle_workload), rounds=1, iterations=1
    )

    gcc_inputs = ["ref-%d" % i for i in range(1, 6)]
    record(
        "tab3_coverage_matrices",
        format_matrix(gcc_matrix, order=gcc_inputs,
                      title="Table 3(a): 176.gcc cross-input coverage")
        + "\n\n"
        + format_matrix(oracle_matrix, order=PHASES,
                        title="Table 3(b): Oracle cross-phase coverage"),
    )

    # Table 3(a): high but sub-100% coverage between distinct inputs.
    for a in gcc_inputs:
        for b in gcc_inputs:
            value = gcc_matrix[a][b]
            if a == b:
                assert value == 1.0
            else:
                assert 0.75 <= value < 1.0, (a, b, value)

    # Table 3(b) structure:
    for a in PHASES:
        assert oracle_matrix[a][a] == 1.0
    # Start's code is covered worst by the other phases' columns.
    for other in ("Mount", "Open", "Work", "Close"):
        assert oracle_matrix[other]["Start"] < 0.5
    # Open's column covers every phase best (or tied).
    for a in ("Mount", "Work", "Close"):
        best = max(
            oracle_matrix[a][b] for b in PHASES if b != a
        )
        assert oracle_matrix[a]["Open"] == best, a
    # Close is largely covered by Open (paper: 91%).
    assert oracle_matrix["Close"]["Open"] > 0.75
    # The matrix spans a wide range, like the paper's 18%..91%.
    off_diagonal = [
        oracle_matrix[a][b] for a in PHASES for b in PHASES if a != b
    ]
    assert min(off_diagonal) < 0.30
    assert max(off_diagonal) > 0.75
