"""The paper's abstract/conclusion headline numbers.

* "the SPEC2K INT benchmark suite experiences a 26% improvement under
  dynamic binary instrumentation" — same-input persistence with a
  basic-block-profiling tool, averaged over the suite's Train and
  Reference inputs (Figure 5(a) evaluates both input classes);
* "a 400% speedup is achieved in translating the Oracle database in a
  regression testing environment" — the five-phase unit test under
  memory-reference instrumentation, cold versus persistent.
"""

from conftest import baseline_vm, cold_and_warm, fresh_db

from repro.analysis.overhead import improvement_percent, speedup
from repro.analysis.report import format_table
from repro.tools import BBCountTool, MemTraceTool
from repro.persist.manager import PersistenceConfig
from repro.workloads.harness import run_vm
from repro.workloads.oracle import PHASES


def _spec_instrumented_gains(spec_suite, tmp_path_factory):
    gains = {}
    for name, workload in sorted(spec_suite.items()):
        for input_name in ("ref-1", "train"):
            db = fresh_db(
                tmp_path_factory, "headline-%s-%s" % (name, input_name)
            )
            base = baseline_vm(workload, input_name, tool_factory=BBCountTool)
            _cold, warm = cold_and_warm(
                workload, input_name, db, tool_factory=BBCountTool
            )
            assert warm.stats.traces_translated == 0, name
            gains["%s/%s" % (name, input_name)] = improvement_percent(
                base.stats.total_cycles, warm.stats.total_cycles
            )
    return gains


def _oracle_regression_speedup(oracle_workload, tmp_path_factory):
    db = fresh_db(tmp_path_factory, "headline-oracle")
    cold_total = 0.0
    for phase in PHASES:
        cold_total += run_vm(
            oracle_workload, phase, tool=MemTraceTool(),
            persistence=PersistenceConfig(database=db),
        ).stats.total_cycles
    warm_total = 0.0
    for phase in PHASES:
        result = run_vm(
            oracle_workload, phase, tool=MemTraceTool(),
            persistence=PersistenceConfig(database=db),
        )
        assert result.stats.traces_translated == 0, phase
        warm_total += result.stats.total_cycles
    return cold_total, warm_total


def _sweep(spec_suite, oracle_workload, tmp_path_factory):
    gains = _spec_instrumented_gains(spec_suite, tmp_path_factory)
    cold, warm = _oracle_regression_speedup(oracle_workload, tmp_path_factory)
    return gains, cold, warm


def test_headline_claims(
    benchmark, spec_suite, oracle_workload, record, tmp_path_factory
):
    gains, oracle_cold, oracle_warm = benchmark.pedantic(
        _sweep,
        args=(spec_suite, oracle_workload, tmp_path_factory),
        rounds=1,
        iterations=1,
    )

    average = sum(gains.values()) / len(gains)
    oracle_speedup = speedup(oracle_cold, oracle_warm)

    rows = [
        {"benchmark": name, "improvement_pct": value}
        for name, value in gains.items()
    ]
    rows.append({"benchmark": "SPEC2K INT average", "improvement_pct": average})
    record(
        "headline_claims",
        format_table(
            rows,
            columns=["benchmark", "improvement_pct"],
            title="Headline: SPEC2K INT same-input persistence under "
                  "instrumentation (paper: 26% average)",
        )
        + "\nHeadline: Oracle regression test with memory instrumentation: "
        + "%.2fx speedup (paper: ~4x)" % oracle_speedup,
    )

    # The paper's 26% average: accept a generous band around it.
    assert 18 < average < 40, average
    # gcc leads the Reference inputs.
    ref_gains = {k: v for k, v in gains.items() if k.endswith("/ref-1")}
    assert max(ref_gains, key=ref_gains.get) == "176.gcc/ref-1"
    # Oracle regression testing: a multiple, not a percentage (paper: ~4x).
    assert oracle_speedup > 2.0, oracle_speedup

    benchmark.extra_info["spec_avg_instrumented_improvement"] = average
    benchmark.extra_info["oracle_regression_speedup"] = oracle_speedup
