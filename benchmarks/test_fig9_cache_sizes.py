"""Figure 9: persistent code cache sizes.

Regenerates the stacked-bar data: for every workload's persistent cache,
the bytes consumed by persisted traces (code pool) and by their data
structures (data pool).  The paper's observations: most SPEC caches are
small, gcc's is the largest SPEC cache, GUI/Oracle caches are larger
still, and — "interestingly" — the data structures consume more memory
than the traces themselves.
"""

import os

from conftest import fresh_db

from repro.analysis.report import format_table
from repro.persist.cachefile import PersistentCache
from repro.persist.manager import PersistenceConfig
from repro.workloads.harness import run_vm
from repro.workloads.oracle import PHASES


def _cache_after(workload, input_names, tmp_path_factory):
    db = fresh_db(tmp_path_factory, "fig9-" + workload.name)
    for input_name in input_names:
        run_vm(workload, input_name, persistence=PersistenceConfig(database=db))
    entry = db.entries()[0]
    return PersistentCache.load(os.path.join(db.directory, entry.filename))


def _sweep(spec_suite, gui_suite, oracle_workload, tmp_path_factory):
    sizes = {}
    for name, workload in sorted(spec_suite.items()):
        cache = _cache_after(workload, ["ref-1"], tmp_path_factory)
        sizes[name] = (cache.total_code_bytes, cache.total_data_bytes,
                       cache.file_size)
    for name, app in sorted(gui_suite.items()):
        cache = _cache_after(app, ["startup"], tmp_path_factory)
        sizes[name] = (cache.total_code_bytes, cache.total_data_bytes,
                       cache.file_size)
    # Oracle: the accumulated all-phase cache (the 256MB of paper §5).
    cache = _cache_after(oracle_workload, list(PHASES), tmp_path_factory)
    sizes["oracle"] = (cache.total_code_bytes, cache.total_data_bytes,
                       cache.file_size)
    return sizes


def test_fig9_persistent_cache_sizes(
    benchmark, spec_suite, gui_suite, oracle_workload, record, tmp_path_factory
):
    sizes = benchmark.pedantic(
        _sweep,
        args=(spec_suite, gui_suite, oracle_workload, tmp_path_factory),
        rounds=1,
        iterations=1,
    )

    table = [
        {
            "workload": name,
            "code_bytes": code,
            "data_bytes": data,
            "file_bytes": file_size,
            "data/code": data / code,
        }
        for name, (code, data, file_size) in sizes.items()
    ]
    record(
        "fig9_cache_sizes",
        format_table(
            table,
            columns=["workload", "code_bytes", "data_bytes", "file_bytes",
                     "data/code"],
            title="Figure 9: persistent cache sizes",
        ),
    )

    # Data structures consume more than the traces, for every workload.
    for name, (code, data, _file_size) in sizes.items():
        assert data > code, (name, code, data)

    # gcc has the largest cache among SPEC benchmarks.
    spec_names = [name for name in sizes if name.startswith(("1", "2", "3"))]
    totals = {name: sizes[name][0] + sizes[name][1] for name in sizes}
    assert max(spec_names, key=totals.get) == "176.gcc"

    # GUI and Oracle caches are larger than every non-gcc SPEC cache.
    non_gcc_spec_max = max(
        totals[name] for name in spec_names if name != "176.gcc"
    )
    for name in ("gftp", "gvim", "dia", "file-roller", "gqview", "oracle"):
        assert totals[name] > non_gcc_spec_max, name

    # The file on disk holds both pools plus the directory.
    for name, (code, data, file_size) in sizes.items():
        assert file_size > code + data
