"""Table 2: number of common libraries between GUI applications.

"On average, at least a third of all libraries used by a GUI application
are also used by other GUI applications."
"""

from repro.analysis.report import format_table
from repro.workloads.gui import COMMON_PREFIX, common_library_matrix


def test_tab2_common_library_matrix(benchmark, gui_suite, record):
    matrix = benchmark.pedantic(
        common_library_matrix, args=(gui_suite,), rounds=1, iterations=1
    )

    names = sorted(matrix)
    rows = []
    for name_a in names:
        row = {"app": name_a}
        row.update({name_b: matrix[name_a][name_b] for name_b in names})
        rows.append(row)
    record(
        "tab2_common_libs",
        format_table(
            rows,
            columns=["app"] + names,
            title="Table 2: common libraries between GUI applications",
        ),
    )

    for name_a in names:
        total = matrix[name_a][name_a]
        for name_b in names:
            if name_a == name_b:
                continue
            shared = matrix[name_a][name_b]
            # Symmetric, bounded, and at least the toolkit prefix.
            assert shared == matrix[name_b][name_a]
            assert len(COMMON_PREFIX) <= shared <= total
            # Paper: at least a third of every app's libraries are shared.
            assert shared / total >= 1 / 3
