"""Table 1: % library code executed at GUI startup.

"GUI applications execute up to 97% of their startup and initialization
code from shared libraries"; Gvim is the low end at 80%.
"""

from repro.analysis.coverage import library_fraction
from repro.analysis.report import format_table
from repro.workloads.harness import run_vm


def _sweep(gui_suite):
    rows = {}
    for name, app in sorted(gui_suite.items()):
        identities = run_vm(app, "startup").stats.trace_identities
        rows[name] = library_fraction(identities)
    return rows


def test_tab1_library_code_fraction(benchmark, gui_suite, record):
    fractions = benchmark.pedantic(
        _sweep, args=(gui_suite,), rounds=1, iterations=1
    )

    table = [
        {"app": name, "lib_code_pct": 100 * fraction}
        for name, fraction in fractions.items()
    ]
    record(
        "tab1_gui_libcode",
        format_table(
            table,
            columns=["app", "lib_code_pct"],
            title="Table 1: %% of startup code executed from shared libraries",
        ),
    )

    # Paper band: 80-97%; scaled band 72-97% with Gvim lowest.
    for name, fraction in fractions.items():
        assert 0.70 <= fraction <= 0.97, (name, fraction)
    assert min(fractions, key=fractions.get) == "gvim"
    others = [f for name, f in fractions.items() if name != "gvim"]
    assert min(others) > 0.80
