"""Ablation (paper §5): static pre-translation vs. persistent caching.

Static pre-translators store a translation of *every* instruction in the
binary and its libraries; a persistent code cache stores only executed
code.  Regenerates the paper's size argument: pre-translation's footprint
dwarfs the persistent cache, especially for workloads (like the Oracle
phases or GUI apps) that execute a fraction of their mapped code —
"these applications require the use of a dynamic system that persistently
caches only executed code".
"""

import os

from conftest import fresh_db

from repro.analysis.report import format_table
from repro.persist.cachefile import PersistentCache
from repro.persist.manager import PersistenceConfig
from repro.persist.pretranslate import pretranslate_process
from repro.tools import BBCountTool
from repro.workloads.harness import run_vm
from repro.workloads.oracle import PHASES


def _persistent_size(workload, input_names, tmp_path_factory, label):
    db = fresh_db(tmp_path_factory, "pretrans-" + label)
    for input_name in input_names:
        run_vm(workload, input_name, persistence=PersistenceConfig(database=db))
    entry = db.entries()[0]
    cache = PersistentCache.load(os.path.join(db.directory, entry.filename))
    return cache.total_code_bytes + cache.total_data_bytes


def _sweep(spec_suite, gui_suite, oracle_workload, tmp_path_factory):
    rows = []
    cases = [
        ("176.gcc", spec_suite["176.gcc"], ["ref-1"]),
        ("gftp", gui_suite["gftp"], ["startup"]),
        ("oracle(Start)", oracle_workload, ["Start"]),
        ("oracle(all)", oracle_workload, list(PHASES)),
    ]
    for label, workload, inputs in cases:
        static = pretranslate_process(workload.load())
        persistent = _persistent_size(workload, inputs, tmp_path_factory, label)
        rows.append(
            {
                "workload": label,
                "original_code": static.original_code_bytes,
                "pretranslated": static.total_bytes,
                "expansion_x": static.expansion_factor,
                "persistent_cache": persistent,
                "static/persistent": static.total_bytes / persistent,
            }
        )
    return rows


def test_ablation_static_pretranslation(
    benchmark, spec_suite, gui_suite, oracle_workload, record, tmp_path_factory
):
    rows = benchmark.pedantic(
        _sweep,
        args=(spec_suite, gui_suite, oracle_workload, tmp_path_factory),
        rounds=1,
        iterations=1,
    )

    record(
        "ablation_pretranslation",
        format_table(
            rows,
            columns=["workload", "original_code", "pretranslated",
                     "expansion_x", "persistent_cache", "static/persistent"],
            title="Ablation: static pre-translation vs persistent cache (bytes)",
        ),
    )

    by_name = {row["workload"]: row for row in rows}

    # Translation expands code substantially (stubs + data structures).
    for row in rows:
        assert row["expansion_x"] > 3.0, row

    # The single-phase Oracle cache is far smaller than pre-translating
    # the whole binary (it executes ~30% of the blocks).
    assert by_name["oracle(Start)"]["static/persistent"] > 2.0

    # The accumulated all-phase cache converges toward (but not beyond)
    # the static size as coverage approaches 100% — the synthetic binary
    # is fully covered by the phase union, unlike real 100MB binaries.
    assert 0.9 < by_name["oracle(all)"]["static/persistent"] < 1.2

    # Instrumentation makes pre-translation strictly bigger.
    instrumented = pretranslate_process(
        spec_suite["176.gcc"].load(), tool=BBCountTool()
    )
    assert instrumented.total_bytes > by_name["176.gcc"]["pretranslated"]
