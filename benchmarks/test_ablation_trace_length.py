"""Ablation: maximum trace length.

Pin-style traces end at an unconditional transfer *or* a fixed
instruction-count limit.  The limit trades translation-unit granularity
against code duplication: shorter traces mean more trace objects, more
exits/links and more per-trace fixed compile cost; longer traces amortize
the fixed cost but past the point where unconditional transfers dominate
trace endings, raising the limit changes nothing.
"""

from repro.analysis.report import format_table
from repro.vm.engine import VMConfig
from repro.workloads.harness import run_vm

LIMITS = (4, 8, 16, 24, 48)


def _sweep(spec_suite):
    workload = spec_suite["176.gcc"]
    rows = []
    for limit in LIMITS:
        result = run_vm(
            workload, "ref-1", vm_config=VMConfig(max_trace_insts=limit)
        )
        rows.append(
            {
                "max_trace_insts": limit,
                "traces": result.stats.traces_translated,
                "translation_cycles": result.stats.translation_cycles,
                "dispatch_cycles": result.stats.dispatch_cycles,
                "total_cycles": result.stats.total_cycles,
                "code_bytes": result.cache_code_bytes,
                "data_bytes": result.cache_data_bytes,
            }
        )
    return rows


def test_ablation_trace_length(benchmark, spec_suite, record):
    rows = benchmark.pedantic(_sweep, args=(spec_suite,), rounds=1, iterations=1)

    record(
        "ablation_trace_length",
        format_table(
            rows,
            columns=["max_trace_insts", "traces", "translation_cycles",
                     "dispatch_cycles", "total_cycles", "code_bytes",
                     "data_bytes"],
            title="Ablation: max trace length sweep (176.gcc, ref-1)",
        ),
    )

    by_limit = {row["max_trace_insts"]: row for row in rows}

    # Shorter traces -> strictly more trace objects.
    trace_counts = [row["traces"] for row in rows]
    assert trace_counts == sorted(trace_counts, reverse=True)

    # Tiny traces pay heavily in per-trace fixed cost and dispatch.
    assert by_limit[4]["total_cycles"] > 1.15 * by_limit[24]["total_cycles"]

    # Past the terminator-dominated regime the limit stops mattering:
    # generated functions rarely run 24+ instructions without a transfer.
    delta = abs(
        by_limit[48]["total_cycles"] - by_limit[24]["total_cycles"]
    ) / by_limit[24]["total_cycles"]
    assert delta < 0.05

    # The data pool dominates at every granularity (Figure 9 holds).
    for row in rows:
        assert row["data_bytes"] > row["code_bytes"]
