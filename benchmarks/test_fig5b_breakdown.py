"""Figure 5(b): SPEC2K Reference overheads with and without instrumentation.

Three bars per benchmark: original (native) execution, native-to-native
translation under the VM (split into translated-code time and VM
overhead), and the same with basic-block-profiling instrumentation added.
Instrumentation increases VM overhead (more code to generate) and
translated-code time (analysis routines).
"""

from conftest import baseline_vm, native_run

from repro.analysis.report import format_table
from repro.tools import BBCountTool


def _sweep(spec_suite):
    rows = []
    for name, workload in sorted(spec_suite.items()):
        native = native_run(workload, "ref-1")
        plain = baseline_vm(workload, "ref-1")
        instrumented = baseline_vm(
            workload, "ref-1", tool_factory=lambda: BBCountTool()
        )
        rows.append((name, native, plain, instrumented))
    return rows


def test_fig5b_overhead_breakdown(benchmark, spec_suite, record):
    rows = benchmark.pedantic(_sweep, args=(spec_suite,), rounds=1, iterations=1)

    table = []
    for name, native, plain, instrumented in rows:
        table.append(
            {
                "benchmark": name,
                "native": native.cycles,
                "vm_translated": plain.stats.translated_code_cycles,
                "vm_overhead": plain.stats.vm_overhead_cycles,
                "instr_translated": instrumented.stats.translated_code_cycles,
                "instr_overhead": instrumented.stats.vm_overhead_cycles,
            }
        )
    record(
        "fig5b_breakdown",
        format_table(
            table,
            columns=[
                "benchmark", "native", "vm_translated", "vm_overhead",
                "instr_translated", "instr_overhead",
            ],
            title=(
                "Figure 5(b): SPEC2K Reference overheads, native vs VM vs "
                "VM+bbcount (cycles)"
            ),
        ),
    )

    for name, native, plain, instrumented in rows:
        # The VM is always slower than native; instrumentation is always
        # slower still, on both components.
        assert plain.stats.total_cycles > native.cycles
        assert (
            instrumented.stats.vm_overhead_cycles
            > plain.stats.vm_overhead_cycles
        ), name
        assert (
            instrumented.stats.translated_code_cycles
            > plain.stats.translated_code_cycles
        ), name
        # Architectural behaviour is identical in all three configurations.
        assert plain.instructions == native.instructions == instrumented.instructions

    # Paper: instrumentation raises VM overhead by up to ~25%.
    bumps = [
        instrumented.stats.vm_overhead_cycles / plain.stats.vm_overhead_cycles
        for _name, _native, plain, instrumented in rows
    ]
    assert max(bumps) < 1.6
    assert min(bumps) > 1.0
