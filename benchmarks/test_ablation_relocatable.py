"""Ablation: position-independent translations (paper §3.2.3 extension).

The paper's implementation "cannot use the persisted translations if
library locations vary across executions ... however, the run-time
compiler can be adapted to generate position independent translations".
This ablation measures exactly that adaptation, in both scenarios that
lose performance without it:

* **cross-run relocation** — the same application under a perturbed
  library layout (the PaX/ASLR case);
* **inter-application reuse with conflicting bases** — File-Roller loads
  libcairo at a different address than the other GUI apps, so its cairo
  traces conflict when donated.
"""

from conftest import baseline_vm, fresh_db

from repro.analysis.report import format_table
from repro.loader.layout import FixedLayout, PerturbedLayout
from repro.persist.manager import PersistenceConfig
from repro.workloads.harness import run_vm


def _relocation_case(gui_suite, tmp_path_factory, relocatable):
    """Same app, library layout perturbed between runs."""
    app = gui_suite["gftp"]
    db = fresh_db(tmp_path_factory, "reloc-%s" % relocatable)
    run_vm(app, "startup",
           persistence=PersistenceConfig(database=db, relocatable=relocatable),
           layout=FixedLayout())
    moved = run_vm(
        app, "startup",
        persistence=PersistenceConfig(database=db, relocatable=relocatable,
                                      readonly=True),
        layout=PerturbedLayout(11),
    )
    base = baseline_vm(app, "startup", layout=PerturbedLayout(11))
    return base, moved


def _interapp_case(gui_suite, tmp_path_factory, relocatable):
    """Donate dia's cache (cairo at the common base) to file-roller
    (cairo at a conflicting base)."""
    db = fresh_db(tmp_path_factory, "xapp-%s" % relocatable)
    run_vm(gui_suite["dia"], "startup",
           persistence=PersistenceConfig(database=db, relocatable=relocatable))
    base = baseline_vm(gui_suite["file-roller"], "startup")
    crossed = run_vm(
        gui_suite["file-roller"], "startup",
        persistence=PersistenceConfig(
            database=db, relocatable=relocatable,
            inter_application=True, readonly=True,
        ),
    )
    return base, crossed


def _sweep(gui_suite, tmp_path_factory):
    rows = []
    for label, case in (("cross-run-relocation", _relocation_case),
                        ("inter-app-conflict", _interapp_case)):
        for relocatable in (False, True):
            base, primed = case(gui_suite, tmp_path_factory, relocatable)
            rows.append(
                {
                    "scenario": label,
                    "pic": relocatable,
                    "baseline": base.stats.total_cycles,
                    "primed": primed.stats.total_cycles,
                    "improvement_pct": 100 * (
                        1 - primed.stats.total_cycles / base.stats.total_cycles
                    ),
                    "reused": primed.stats.traces_from_persistent,
                    "invalidated": primed.persistence_report["invalidated"],
                    "rebased": primed.persistence_report["rebased"],
                    "retranslated": primed.stats.traces_translated,
                }
            )
    return rows


def test_ablation_position_independent_translations(
    benchmark, gui_suite, record, tmp_path_factory
):
    rows = benchmark.pedantic(
        _sweep, args=(gui_suite, tmp_path_factory), rounds=1, iterations=1
    )

    record(
        "ablation_relocatable",
        format_table(
            rows,
            columns=["scenario", "pic", "baseline", "primed",
                     "improvement_pct", "reused", "invalidated", "rebased",
                     "retranslated"],
            title="Ablation: position-independent translations",
        ),
    )

    by_key = {(row["scenario"], row["pic"]): row for row in rows}

    for scenario in ("cross-run-relocation", "inter-app-conflict"):
        plain = by_key[(scenario, False)]
        pic = by_key[(scenario, True)]
        # Without PIC, relocation invalidates translations and forces
        # retranslation; with PIC they are rebased and reused.
        assert plain["invalidated"] > 0, scenario
        assert pic["rebased"] > 0, scenario
        assert pic["retranslated"] < plain["retranslated"], scenario
        assert pic["reused"] > plain["reused"], scenario
        # PIC recovers performance.
        assert pic["improvement_pct"] > plain["improvement_pct"], scenario

    # Fully-relocatable same-app reuse retranslates nothing at all.
    assert by_key[("cross-run-relocation", True)]["retranslated"] == 0
