"""Shared fixtures for the experiment regenerators.

Every benchmark regenerates one of the paper's tables or figures: it runs
the relevant workloads through the VM (with and without persistence),
prints the regenerated rows/series, asserts the paper's qualitative shape,
and archives the text under ``benchmarks/results/`` for EXPERIMENTS.md.

Workload builds and expensive sweeps are session-scoped so the whole
suite shares them.  All simulations are deterministic: pytest-benchmark
timings measure the *simulator*, while the regenerated numbers are
simulated cycles.
"""

from __future__ import annotations

import os

import pytest

from repro.persist.database import CacheDatabase
from repro.persist.manager import PersistenceConfig
from repro.workloads.gui import build_gui_suite
from repro.workloads.harness import run_native, run_vm
from repro.workloads.oracle import build_oracle
from repro.workloads.spec2k import build_suite

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture(scope="session")
def spec_suite():
    return build_suite()


@pytest.fixture(scope="session")
def gui_suite():
    apps, store = build_gui_suite()
    return apps


@pytest.fixture(scope="session")
def oracle_workload():
    return build_oracle()


@pytest.fixture(scope="session")
def results_dir():
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def record(results_dir, request):
    """Persist a regenerated table/figure and echo it to stdout."""

    def _record(name: str, text: str) -> None:
        path = os.path.join(results_dir, name + ".txt")
        with open(path, "w") as handle:
            handle.write(text + "\n")
        print("\n" + text)

    return _record


def fresh_db(tmp_path_factory, label: str) -> CacheDatabase:
    return CacheDatabase(str(tmp_path_factory.mktemp("pccdb-" + label)))


def assert_healthy_persistence(result, context=""):
    """A measurement run must never have taken the degradation path.

    The storage layer downgrades to JIT-only on any fault rather than
    crashing (docs/cache-format.md), which would silently corrupt a
    regenerated figure: the run completes with plausible-looking but
    cache-less cycle counts.  Every persisted measurement asserts the
    fault path stayed cold.
    """
    report = result.persistence_report
    assert report["fallback_jit_only"] is False, (
        context, report["degraded_reason"]
    )
    assert report["cache_quarantined"] == 0, context
    assert report["storage_errors"] == 0, context


def cold_and_warm(workload, input_name, db, tool_factory=None, layout=None):
    """Run twice with persistence: (cold run, fully warm run)."""
    cold = run_vm(
        workload, input_name,
        tool=tool_factory() if tool_factory else None,
        persistence=PersistenceConfig(database=db),
        layout=layout,
    )
    warm = run_vm(
        workload, input_name,
        tool=tool_factory() if tool_factory else None,
        persistence=PersistenceConfig(database=db),
        layout=layout,
    )
    return cold, warm


def baseline_vm(workload, input_name, tool_factory=None, layout=None):
    return run_vm(
        workload, input_name,
        tool=tool_factory() if tool_factory else None,
        layout=layout,
    )


def native_run(workload, input_name, layout=None):
    return run_native(workload, input_name, layout=layout)
