"""Ablation: code-cache pool size and the flush policy.

The paper reserves 512MB, split evenly between code and data pools, and
flushes everything when a pool fills ("none of the benchmarks triggered a
code cache flush" at that size).  This ablation sweeps the pool size on
the largest-footprint benchmark to show the regime change: ample pools
never flush; undersized pools flush repeatedly, discarding and
re-translating code, and VM overhead climbs.
"""

from repro.analysis.report import format_table
from repro.vm.engine import VMConfig
from repro.workloads.harness import run_vm

#: Pool-size fractions of the default, swept from ample to starved.
SWEEP = (1.0, 0.25, 0.05, 0.02, 0.01)

_DEFAULT_CODE = 64 * 1024
_DEFAULT_DATA = 256 * 1024


def _sweep(spec_suite):
    workload = spec_suite["176.gcc"]
    rows = []
    for fraction in SWEEP:
        config = VMConfig(
            code_pool_bytes=max(1024, int(_DEFAULT_CODE * fraction)),
            data_pool_bytes=max(4096, int(_DEFAULT_DATA * fraction)),
        )
        result = run_vm(workload, "ref-1", vm_config=config)
        rows.append(
            {
                "pool_fraction": fraction,
                "code_pool": config.code_pool_bytes,
                "data_pool": config.data_pool_bytes,
                "flushes": result.stats.cache_flushes,
                "translations": result.stats.traces_translated,
                "total_cycles": result.stats.total_cycles,
                "vm_overhead_pct": 100 * result.stats.overhead_fraction(),
            }
        )
    return rows


def test_ablation_cache_pool_size(benchmark, spec_suite, record):
    rows = benchmark.pedantic(_sweep, args=(spec_suite,), rounds=1, iterations=1)

    record(
        "ablation_cache_size",
        format_table(
            rows,
            columns=["pool_fraction", "code_pool", "data_pool", "flushes",
                     "translations", "total_cycles", "vm_overhead_pct"],
            title="Ablation: code-cache pool size sweep (176.gcc, ref-1)",
        ),
    )

    ample, *rest = rows
    starved = rows[-1]

    # Ample pools: footprint fits, no flush (the paper's configuration).
    assert ample["flushes"] == 0

    # Starved pools: repeated flushes and re-translation.
    assert starved["flushes"] > 0
    assert starved["translations"] > ample["translations"]
    assert starved["total_cycles"] > ample["total_cycles"]

    # Shrinking pools never reduces translation work below the flush-free
    # configuration (exact counts depend on flush timing, so compare to
    # the ample row rather than pairwise).
    for row in rest:
        assert row["translations"] >= ample["translations"]
        assert row["total_cycles"] >= ample["total_cycles"]
