"""Figure 5(a): performance improvement from same-input persistence.

For every workload: run once to create the persistent cache, run again
reusing it, and report the improvement over base (no-persistence) VM
execution.  Regenerates all three clusters: SPEC2K INT (Train and
Reference inputs), GUI startup, and the Oracle phases.
"""

from conftest import (
    assert_healthy_persistence,
    baseline_vm,
    cold_and_warm,
    fresh_db,
)

from repro.analysis.overhead import improvement_percent
from repro.analysis.report import format_table
from repro.workloads.oracle import PHASES


def _same_input_gain(workload, input_name, db):
    base = baseline_vm(workload, input_name)
    cold, warm = cold_and_warm(workload, input_name, db)
    assert warm.stats.traces_translated == 0, (workload.name, input_name)
    assert_healthy_persistence(cold, (workload.name, input_name, "cold"))
    assert_healthy_persistence(warm, (workload.name, input_name, "warm"))
    return improvement_percent(base.stats.total_cycles, warm.stats.total_cycles)


def _sweep(spec_suite, gui_suite, oracle_workload, tmp_path_factory):
    gains = {}
    for name, workload in sorted(spec_suite.items()):
        for input_name in ("train", "ref-1"):
            db = fresh_db(tmp_path_factory, "%s-%s" % (name, input_name))
            gains[(name, input_name)] = _same_input_gain(
                workload, input_name, db
            )
    for name, app in sorted(gui_suite.items()):
        db = fresh_db(tmp_path_factory, "gui-" + name)
        gains[(name, "startup")] = _same_input_gain(app, "startup", db)
    for phase in PHASES:
        db = fresh_db(tmp_path_factory, "oracle-" + phase)
        gains[("oracle", phase)] = _same_input_gain(oracle_workload, phase, db)
    return gains


def test_fig5a_same_input_persistence(
    benchmark, spec_suite, gui_suite, oracle_workload, record, tmp_path_factory
):
    gains = benchmark.pedantic(
        _sweep,
        args=(spec_suite, gui_suite, oracle_workload, tmp_path_factory),
        rounds=1,
        iterations=1,
    )

    rows = [
        {"workload": name, "input": input_name, "improvement_pct": value}
        for (name, input_name), value in gains.items()
    ]
    record(
        "fig5a_same_input",
        format_table(
            rows,
            columns=["workload", "input", "improvement_pct"],
            title="Figure 5(a): same-input persistence improvement over base VM",
        ),
    )

    spec_names = sorted(spec_suite)
    # Train inputs benefit more than Reference inputs, for every benchmark.
    for name in spec_names:
        assert gains[(name, "train")] > gains[(name, "ref-1")], name

    # Reference: gcc stands out (paper: >30%); most others are modest.
    assert gains[("176.gcc", "ref-1")] > 25
    small = [
        gains[(name, "ref-1")]
        for name in spec_names
        if name in ("164.gzip", "256.bzip2", "181.mcf")
    ]
    assert all(value < 15 for value in small), small

    # Train: large savings (paper: parser and gap ~50%).
    assert gains[("197.parser", "train")] > 30
    assert gains[("254.gap", "train")] > 30

    # GUI startup improves ~90% on average.
    gui_gains = [gains[(name, "startup")] for name in sorted(gui_suite)]
    average_gui = sum(gui_gains) / len(gui_gains)
    assert 80 < average_gui < 98, average_gui

    # Oracle phases all benefit substantially (paper: 63% on the test).
    oracle_gains = [gains[("oracle", phase)] for phase in PHASES]
    assert all(value > 35 for value in oracle_gains), oracle_gains

    benchmark.extra_info["avg_gui_improvement"] = average_gui
    benchmark.extra_info["gcc_ref_improvement"] = gains[("176.gcc", "ref-1")]
