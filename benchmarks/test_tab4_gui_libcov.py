"""Table 4: library code coverage between GUI applications.

The refinement of Table 2: for each application pair (A, B), the fraction
of A's *executed library code* that also appears in B's persistent cache
footprint.  The paper's matrix averages ~70%.
"""

from repro.analysis.coverage import library_coverage_fraction
from repro.analysis.report import format_matrix
from repro.workloads.harness import run_vm


def _sweep(gui_suite):
    footprints = {
        name: run_vm(app, "startup").stats.trace_identities
        for name, app in gui_suite.items()
    }
    names = sorted(footprints)
    matrix = {
        a: {
            b: library_coverage_fraction(footprints[a], footprints[b])
            for b in names
        }
        for a in names
    }
    return matrix


def test_tab4_gui_library_coverage(benchmark, gui_suite, record):
    matrix = benchmark.pedantic(_sweep, args=(gui_suite,), rounds=1, iterations=1)
    names = sorted(matrix)

    record(
        "tab4_gui_libcov",
        format_matrix(
            matrix, order=names,
            title="Table 4: library code coverage between GUI applications",
        ),
    )

    values = []
    for a in names:
        assert matrix[a][a] == 1.0
        for b in names:
            if a == b:
                continue
            value = matrix[a][b]
            values.append(value)
            # Paper band: 55-84% for off-diagonal cells.
            assert 0.40 <= value <= 0.95, (a, b, value)
    average = sum(values) / len(values)
    assert 0.55 <= average <= 0.90, average
