"""Ablation: module-aware translation retention (after Li et al. [19]).

The paper's §5 discusses IA32EL's module-aware translation — not
discarding translations of unloaded modules so reloads skip
retranslation — and positions persistence as the cross-run generalization
of that idea.  This ablation builds a plugin-host application that cycles
dlopen/call/dlclose over several plugins and measures three systems:

* no retention (every reload retranslates),
* intra-run retention (Li et al.: reloads reuse stashed translations),
* retention + persistent caching (this paper: reuse across *runs* too).
"""

import random

from conftest import fresh_db

from repro.analysis.report import format_table
from repro.binfmt.image import ImageBuilder, ImageKind
from repro.isa import instructions as ins
from repro.isa import registers as regs
from repro.machine.syscalls import SYS_DLCLOSE, SYS_DLOPEN, SYS_EXIT
from repro.persist.manager import PersistenceConfig
from repro.vm.engine import VMConfig
from repro.workloads.builder import InputSpec, leaf_function, nonleaf_function
from repro.workloads.harness import Workload, run_vm

N_PLUGINS = 3
RELOAD_ROUNDS = 4


def _build_plugin(index: int):
    """A plugin with a multi-function footprint; entry at offset 0."""
    rng = random.Random(900 + index)
    builder = ImageBuilder("plugin%d.so" % index, ImageKind.SHARED_LIBRARY,
                           mtime=index + 1)
    helpers = []
    # Entry must be the first function; build its callees afterwards and
    # reference them by name.
    helper_names = ["plugin%d_helper%d" % (index, h) for h in range(4)]
    entry = nonleaf_function(rng, 40, helper_names)
    builder.add_function("plugin%d_entry" % index, entry.code,
                         symbol_refs=entry.symbol_refs)
    for name in helper_names:
        fn = leaf_function(rng, 20)
        builder.add_function(name, fn.code)
    return builder.build()


def _build_host():
    """Cycle: for round in rounds: for plugin: dlopen, call, dlclose."""
    code = [ins.movi(regs.S0, 0)]  # round counter
    round_head = len(code)
    for plugin_index in range(N_PLUGINS):
        code += [
            ins.movi(regs.A0, plugin_index),
            ins.movi(regs.RV, SYS_DLOPEN),
            ins.syscall(),
            ins.or_(regs.T0, regs.RV, regs.ZERO),
            ins.callr(regs.T0),
            ins.movi(regs.A0, plugin_index),
            ins.movi(regs.RV, SYS_DLCLOSE),
            ins.syscall(),
        ]
    code += [
        ins.addi(regs.S0, regs.S0, 1),
        ins.movi(regs.T0 + 1, RELOAD_ROUNDS),
    ]
    here = len(code)
    code.append(ins.blt(regs.S0, regs.T0 + 1, (round_head - (here + 1)) * 8))
    code += [
        ins.movi(regs.RV, SYS_EXIT),
        ins.movi(regs.A0, 0),
        ins.syscall(),
    ]
    builder = ImageBuilder("plugin-host")
    builder.add_function("main", code)
    builder.set_entry("main")
    return builder.build()


def _workload():
    return Workload(
        name="plugin-host",
        image=_build_host(),
        inputs={"go": InputSpec("go", hot_iterations=0)},
        modules=[_build_plugin(i) for i in range(N_PLUGINS)],
    )


def _sweep(tmp_path_factory):
    workload = _workload()
    rows = []

    no_retention = run_vm(
        workload, "go", vm_config=VMConfig(module_retention=False)
    )
    rows.append(("no-retention", no_retention, None))

    retention = run_vm(workload, "go")
    rows.append(("intra-run-retention", retention, None))

    db = fresh_db(tmp_path_factory, "module-retention")
    run_vm(workload, "go", persistence=PersistenceConfig(database=db))
    persisted = run_vm(
        workload, "go", persistence=PersistenceConfig(database=db)
    )
    rows.append(("retention+persistence", persisted, db))
    return rows


def test_ablation_module_retention(benchmark, record, tmp_path_factory):
    rows = benchmark.pedantic(
        _sweep, args=(tmp_path_factory,), rounds=1, iterations=1
    )

    table = [
        {
            "system": label,
            "total_cycles": result.stats.total_cycles,
            "translations": result.stats.traces_translated,
            "retained": result.stats.module_traces_retained,
            "from_pcache": result.stats.traces_from_persistent,
        }
        for label, result, _db in rows
    ]
    record(
        "ablation_module_retention",
        format_table(
            table,
            columns=["system", "total_cycles", "translations", "retained",
                     "from_pcache"],
            title="Ablation: module-aware retention vs persistence "
                  "(plugin host, %d plugins x %d reload rounds)"
                  % (N_PLUGINS, RELOAD_ROUNDS),
        ),
    )

    by_label = {row["system"]: row for row in table}
    no_ret = by_label["no-retention"]
    intra = by_label["intra-run-retention"]
    persisted = by_label["retention+persistence"]

    # Li et al.: retention collapses reload retranslation.
    assert intra["translations"] < no_ret["translations"] / 2
    assert intra["total_cycles"] < no_ret["total_cycles"]
    assert intra["retained"] > 0

    # This paper: persistence removes even the first-load translations.
    assert persisted["translations"] == 0
    assert persisted["total_cycles"] < intra["total_cycles"]
    assert persisted["from_pcache"] > 0

    # All three executed identically.
    results = [result for _label, result, _db in rows]
    assert len({r.instructions for r in results}) == 1
    assert all(r.exit_status == 0 for r in results)
