"""Extension experiment: shell utilities — the paper's smallest programs.

The introduction motivates persistent caching with "everyday computing
environments ranging from shell programs to GUI and enterprise-scale
applications" but evaluates only the latter two.  This extension fills in
the first: six coreutils-style tools over a shared libc, measuring

* the cold-run slowdown band (worse than GUI startup — runs are shorter),
* same-tool persistence,
* inter-application persistence between the tools (one tool's first run
  warms the whole toolbox), and
* the converged state after a shared database has seen every tool.
"""

from conftest import fresh_db

from repro.analysis.report import format_table
from repro.persist.manager import PersistenceConfig
from repro.workloads.harness import run_native, run_vm
from repro.workloads.shell import build_shell_suite


def _sweep(tmp_path_factory):
    tools, _store = build_shell_suite()
    names = sorted(tools)
    rows = []

    # Donor: `ls` runs once into the shared database.
    db = fresh_db(tmp_path_factory, "shell")
    run_vm(tools["ls"], "run", persistence=PersistenceConfig(database=db))

    # Converged database: every tool has run once.
    converged = fresh_db(tmp_path_factory, "shell-converged")
    for name in names:
        run_vm(tools[name], "run",
               persistence=PersistenceConfig(database=converged))

    for name in names:
        native = run_native(tools[name], "run")
        cold = run_vm(tools[name], "run")
        same_db = fresh_db(tmp_path_factory, "shell-" + name)
        run_vm(tools[name], "run",
               persistence=PersistenceConfig(database=same_db))
        warm = run_vm(tools[name], "run",
                      persistence=PersistenceConfig(database=same_db))
        crossed = run_vm(
            tools[name], "run",
            persistence=PersistenceConfig(
                database=db, inter_application=True, readonly=True
            ),
        )
        settled = run_vm(tools[name], "run",
                         persistence=PersistenceConfig(database=converged))
        rows.append(
            {
                "tool": name,
                "native": native.cycles,
                "cold_vm": cold.stats.total_cycles,
                "slowdown_x": cold.stats.total_cycles / native.cycles,
                "same_tool_pct": 100 * (
                    1 - warm.stats.total_cycles / cold.stats.total_cycles
                ),
                "via_ls_pct": 100 * (
                    1 - crossed.stats.total_cycles / cold.stats.total_cycles
                ),
                "converged_pct": 100 * (
                    1 - settled.stats.total_cycles / cold.stats.total_cycles
                ),
            }
        )
    return rows


def test_extension_shell_tools(benchmark, record, tmp_path_factory):
    rows = benchmark.pedantic(
        _sweep, args=(tmp_path_factory,), rounds=1, iterations=1
    )

    record(
        "extension_shell_tools",
        format_table(
            rows,
            columns=["tool", "native", "cold_vm", "slowdown_x",
                     "same_tool_pct", "via_ls_pct", "converged_pct"],
            title="Extension: shell utilities under persistent caching",
        ),
    )

    for row in rows:
        # Shell tools are the worst slowdown class in the repo: shorter
        # runs than GUI startup with a comparable cold footprint.
        assert row["slowdown_x"] > 40, row
        assert row["same_tool_pct"] > 75, row
        assert row["converged_pct"] > 75, row
        if row["tool"] != "ls":
            # One `ls` run warms every other tool substantially.
            assert row["via_ls_pct"] > 25, row
        # Ordering: converged >= via-ls (more code available).
        assert row["converged_pct"] >= row["via_ls_pct"] - 1, row
