"""Figure 8: time savings under inter-application persistence.

Per application: startup time without persistence, with same-input
persistence, with a *library-only* cache of itself (isolating the maximum
achievable from library code alone), and primed with every other
application's persistent cache (the inter-application mode, readonly).

The paper reports ~59% average inter-application improvement — large, but
below same-input persistence, partly because identical libraries loaded
at different addresses cannot be reused without position-independent
translations (see the relocatable ablation benchmark).
"""

import os

from conftest import baseline_vm, fresh_db

from repro.analysis.overhead import improvement_percent
from repro.analysis.report import format_table
from repro.persist.cachefile import PersistentCache
from repro.persist.manager import PersistenceConfig
from repro.workloads.harness import run_vm


def _library_only(cache: PersistentCache) -> PersistentCache:
    """A copy of ``cache`` holding only shared-library traces."""
    clone = PersistentCache.from_bytes(cache.to_bytes())
    app_identities = {
        trace.identity
        for trace in clone.traces
        if not trace.image_path.startswith("lib")
    }
    clone.drop_traces(app_identities)
    return clone


def _load_cache(db) -> PersistentCache:
    entry = db.entries()[0]
    return PersistentCache.load(os.path.join(db.directory, entry.filename))


def _sweep(gui_suite, tmp_path_factory):
    names = sorted(gui_suite)
    caches = {}
    for name in names:
        db = fresh_db(tmp_path_factory, "fig8-" + name)
        run_vm(gui_suite[name], "startup",
               persistence=PersistenceConfig(database=db))
        caches[name] = _load_cache(db)

    cells = {}
    for target in names:
        app = gui_suite[target]
        base = baseline_vm(app, "startup")
        cells[(target, "no-cache")] = base.stats.total_cycles
        same = run_vm(
            app, "startup",
            persistence=PersistenceConfig(prime_with=caches[target],
                                          readonly=True),
        )
        cells[(target, "same-input")] = same.stats.total_cycles
        lib_only = run_vm(
            app, "startup",
            persistence=PersistenceConfig(
                prime_with=_library_only(caches[target]), readonly=True
            ),
        )
        cells[(target, "lib-cache-self")] = lib_only.stats.total_cycles
        for donor in names:
            if donor == target:
                continue
            crossed = run_vm(
                app, "startup",
                persistence=PersistenceConfig(
                    prime_with=caches[donor],
                    inter_application=True,
                    readonly=True,
                ),
            )
            cells[(target, "cache:" + donor)] = crossed.stats.total_cycles
    return names, cells


def test_fig8_inter_application(benchmark, gui_suite, record, tmp_path_factory):
    names, cells = benchmark.pedantic(
        _sweep, args=(gui_suite, tmp_path_factory), rounds=1, iterations=1
    )

    columns = ["app", "no-cache", "same-input", "lib-cache-self"] + [
        "cache:" + donor for donor in names
    ]
    table = []
    for target in names:
        row = {"app": target}
        for column in columns[1:]:
            row[column] = cells.get((target, column))
        table.append(row)
    record(
        "fig8_inter_application",
        format_table(table, columns=columns,
                     title="Figure 8: inter-application persistence (cycles)"),
    )

    gains = []
    for target in names:
        base = cells[(target, "no-cache")]
        same = cells[(target, "same-input")]
        lib_self = cells[(target, "lib-cache-self")]
        # Library code alone captures most of the same-input benefit
        # (paper: "within a second or two of same-input persistence").
        assert same < lib_self < base
        assert (lib_self - same) / (base - same) < 0.40, target
        for donor in names:
            if donor == target:
                continue
            crossed = cells[(target, "cache:" + donor)]
            # Inter-application reuse always helps, never exceeds the
            # library-only ceiling of the target's own cache.
            assert crossed < base, (target, donor)
            assert crossed >= same, (target, donor)
            gains.append(improvement_percent(base, crossed))

    average_gain = sum(gains) / len(gains)
    # Paper: ~59% average; the scaled reproduction bands at 35-70%.
    assert 35 < average_gain < 70, average_gain

    benchmark.extra_info["avg_inter_app_improvement"] = average_gain
