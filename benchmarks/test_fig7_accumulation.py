"""Figures 7(a) and 7(b): time savings under persistent cache accumulation.

For each evaluated input, persistent caches of the *other* inputs are
accumulated one at a time (Set 1 ⊂ Set 2 ⊂ ...), and the input runs
primed with each accumulated set.  Accumulation closes the gap to
same-input persistence: quickly for gcc (high cross-input coverage),
progressively for Oracle (low coverage, so each phase contributes
meaningful new code).
"""

from conftest import assert_healthy_persistence, baseline_vm, fresh_db

from repro.analysis.report import format_table
from repro.persist.manager import PersistenceConfig
from repro.workloads.harness import run_vm
from repro.workloads.oracle import PHASES


def _accumulation_row(workload, target, donors, tmp_path_factory):
    """Baseline, Set1..SetN times, and same-input time for one target."""
    times = {"no-cache": baseline_vm(workload, target).stats.total_cycles}
    db = fresh_db(tmp_path_factory, "%s-%s-acc" % (workload.name, target))
    for set_index, donor in enumerate(donors, start=1):
        # Accumulate the donor's translations into the shared cache.
        run_vm(workload, donor, persistence=PersistenceConfig(database=db))
        measured = run_vm(
            workload, target,
            persistence=PersistenceConfig(database=db, readonly=True),
        )
        assert_healthy_persistence(measured, (workload.name, target, donor))
        times["set-%d" % set_index] = measured.stats.total_cycles
    same_db = fresh_db(tmp_path_factory, "%s-%s-same" % (workload.name, target))
    run_vm(workload, target, persistence=PersistenceConfig(database=same_db))
    same = run_vm(
        workload, target,
        persistence=PersistenceConfig(database=same_db, readonly=True),
    )
    assert_healthy_persistence(same, (workload.name, target, "same-input"))
    times["same-input"] = same.stats.total_cycles
    return times


def _sweep(workload, input_names, tmp_path_factory):
    rows = {}
    for target in input_names:
        donors = [name for name in input_names if name != target]
        rows[target] = _accumulation_row(
            workload, target, donors, tmp_path_factory
        )
    return rows


def _run(spec_suite, oracle_workload, tmp_path_factory):
    gcc_inputs = ["ref-%d" % i for i in range(1, 6)]
    gcc = _sweep(spec_suite["176.gcc"], gcc_inputs, tmp_path_factory)
    oracle = _sweep(oracle_workload, list(PHASES), tmp_path_factory)
    return gcc, oracle


def _format(rows, title):
    columns = ["input"] + list(next(iter(rows.values())).keys())
    table = [dict({"input": target}, **times) for target, times in rows.items()]
    return format_table(table, columns=columns, title=title)


def _check(rows, set_count):
    for target, times in rows.items():
        base = times["no-cache"]
        same = times["same-input"]
        sets = [times["set-%d" % k] for k in range(1, set_count + 1)]
        # Every accumulated cache beats running without persistence.
        assert all(value < base for value in sets), target
        # Accumulation never makes things worse (small tolerance for the
        # demand-load costs of extra resident traces).
        for earlier, later in zip(sets, sets[1:]):
            assert later <= earlier * 1.03, (target, sets)
        # The final set approaches same-input persistence (loosest for
        # poorly covered inputs like Oracle's Start phase, which the paper
        # also reports as the least-benefiting input).
        assert sets[-1] <= same * 2.0, (target, sets[-1], same)


def test_fig7_persistent_cache_accumulation(
    benchmark, spec_suite, oracle_workload, record, tmp_path_factory
):
    gcc_rows, oracle_rows = benchmark.pedantic(
        _run,
        args=(spec_suite, oracle_workload, tmp_path_factory),
        rounds=1,
        iterations=1,
    )

    record(
        "fig7_accumulation",
        _format(gcc_rows, "Figure 7(a): 176.gcc accumulation (cycles)")
        + "\n\n"
        + _format(oracle_rows, "Figure 7(b): Oracle accumulation (cycles)"),
    )

    _check(gcc_rows, set_count=4)
    _check(oracle_rows, set_count=4)

    # gcc: high coverage means Set 1 is already close to same-input
    # (paper: "benefits from accumulating more than two caches are not
    # substantial").
    for target, times in gcc_rows.items():
        assert times["set-1"] <= times["same-input"] * 1.25, target

    # Oracle: accumulation meaningfully improves over Set 1 for the
    # phases whose code arrives late (paper: Set 3's Open contribution).
    improvements = [
        times["set-4"] / times["set-1"] for times in oracle_rows.values()
    ]
    assert min(improvements) < 0.85

    # Paper: aggregation narrows well-covered phases to within ~25% of
    # same-input persistence (the paper reports 22% on average).
    for phase in ("Mount", "Close"):
        times = oracle_rows[phase]
        assert times["set-4"] <= times["same-input"] * 1.25, phase
