"""Figure 2(b): GUI startup overhead breakdown under the VM.

Regenerates the startup-time comparison: native vs. VM, with the VM bar
split into translated-code time and VM (code generation) overhead.
Startup is 20-100x slower under the VM; File-Roller is the outlier whose
*translated-code* time is inflated by signal emulation.
"""

from repro.analysis.overhead import breakdown
from repro.analysis.report import format_table
from repro.workloads.harness import run_native, run_vm


def _sweep(gui_suite):
    rows = []
    for name, app in sorted(gui_suite.items()):
        native = run_native(app, "startup")
        vm = run_vm(app, "startup")
        rows.append((name, native, vm, breakdown(name, native, vm)))
    return rows


def test_fig2b_gui_startup_breakdown(benchmark, gui_suite, record):
    rows = benchmark.pedantic(_sweep, args=(gui_suite,), rounds=1, iterations=1)

    table = []
    for name, native, vm, decomposition in rows:
        table.append(
            {
                "app": name,
                "native": native.cycles,
                "translated_code": decomposition.translated_code_cycles,
                "vm_overhead": decomposition.vm_overhead_cycles,
                "slowdown_x": vm.stats.total_cycles / native.cycles,
                "emulation": vm.stats.emulation_cycles,
            }
        )
    record(
        "fig2b_gui_overhead",
        format_table(
            table,
            columns=["app", "native", "translated_code", "vm_overhead",
                     "slowdown_x", "emulation"],
            title="Figure 2(b): GUI startup overhead breakdown (cycles)",
        ),
    )

    by_name = {row["app"]: row for row in table}

    # Paper: startup 20-100x slower under the VM (band widened slightly
    # for the scaled workloads).
    for name, row in by_name.items():
        assert 10 < row["slowdown_x"] < 120, (name, row["slowdown_x"])

    # VM overhead dwarfs translated-code time for every app except
    # File-Roller, whose signal emulation bloats translated-code time.
    for name, row in by_name.items():
        ratio = row["vm_overhead"] / row["translated_code"]
        if name == "file-roller":
            continue
        assert ratio > 3, (name, ratio)

    # File-Roller has the worst translated-code performance of the suite
    # relative to native (signal emulation).
    translated_ratio = {
        name: row["translated_code"] / row["native"] for name, row in by_name.items()
    }
    assert max(translated_ratio, key=translated_ratio.get) == "file-roller"
