"""Simulator micro-benchmarks (wall-clock, not simulated cycles).

Unlike the experiment regenerators, these measure the *reproduction
itself*: interpreter and dispatcher throughput, translation rate, and
cache-file (de)serialization — the numbers that determine how large a
workload the simulator can carry.  pytest-benchmark runs these with its
normal multi-round statistics.
"""

import pytest

from repro.binfmt.image import ImageBuilder
from repro.isa.assembler import assemble
from repro.loader.linker import load_process
from repro.machine.costs import DEFAULT_COST_MODEL
from repro.machine.cpu import Machine, run_native
from repro.persist.cachefile import PersistentCache
from repro.vm.engine import Engine
from repro.vm.trace import TraceSelector
from repro.vm.translator import Translator

HOT_LOOP = """
main:
    movi t0, 20000
loop:
    addi t1, t1, 3
    xor  t2, t1, t0
    st   t2, -8(sp)
    ld   t3, -8(sp)
    addi t0, t0, -1
    bne  t0, zero, loop
    movi rv, 1
    movi a0, 0
    syscall
"""


def _image():
    builder = ImageBuilder("perf")
    builder.add_unit(assemble(HOT_LOOP), exports=["main"])
    builder.set_entry("main")
    return builder.build()


@pytest.fixture(scope="module")
def image():
    return _image()


def test_perf_native_interpreter(benchmark, image):
    def run():
        return run_native(Machine(load_process(image)))

    result = benchmark(run)
    assert result.exit_status == 0
    benchmark.extra_info["instructions"] = result.instructions


def test_perf_vm_dispatcher(benchmark, image):
    def run():
        return Engine().run(load_process(image))

    result = benchmark(run)
    assert result.exit_status == 0
    benchmark.extra_info["instructions"] = result.instructions


def test_perf_translation(benchmark, image):
    """Trace selection + translation rate over the image's code."""
    process = load_process(image)
    machine = Machine(process)
    selector = TraceSelector(machine.fetch)
    translator = Translator(DEFAULT_COST_MODEL)
    entry = process.entry_address
    text_end = entry + image.section(".text").size

    def translate_all():
        count = 0
        pc = entry
        while pc < text_end:
            trace = selector.select(pc, image_path="perf", image_base=entry)
            translator.translate(trace)
            pc += trace.size
            count += 1
        return count

    traces = benchmark(translate_all)
    assert traces >= 1


def test_perf_cachefile_roundtrip(benchmark, image, tmp_path):
    """Serialize + parse a populated cache file."""
    from repro.persist.database import CacheDatabase
    from repro.persist.manager import PersistenceConfig, PersistentCacheSession

    db = CacheDatabase(str(tmp_path / "db"))
    session = PersistentCacheSession(PersistenceConfig(database=db))
    Engine(persistence=session).run(load_process(image))
    entry = db.entries()[0]
    import os

    blob = open(os.path.join(db.directory, entry.filename), "rb").read()

    def roundtrip():
        cache = PersistentCache.from_bytes(blob)
        return len(cache.to_bytes())

    size = benchmark(roundtrip)
    assert size == len(blob)
