"""Figure 4: code coverage (invariance) between executions.

Regenerates the scale of average inter-execution code coverage: gzip and
bzip2 cluster near 100% (all inputs exercise identical code); gcc,
perlbmk and vpr sit lower; Oracle's phases are lowest at ~55%.
"""

from repro.analysis.coverage import average_cross_coverage
from repro.analysis.report import format_bar_chart
from repro.workloads.harness import run_vm
from repro.workloads.oracle import PHASES
from repro.workloads.spec2k import MULTI_INPUT_BENCHMARKS


def _footprints(workload, input_names):
    return {
        name: run_vm(workload, name).stats.trace_identities
        for name in input_names
    }


def _sweep(spec_suite, oracle_workload):
    averages = {}
    for name in MULTI_INPUT_BENCHMARKS:
        workload = spec_suite[name]
        input_names = [n for n in workload.inputs if n.startswith("ref-")]
        averages[name] = average_cross_coverage(
            _footprints(workload, input_names)
        )
    averages["Oracle"] = average_cross_coverage(
        _footprints(oracle_workload, PHASES)
    )
    return averages


def test_fig4_code_invariance_scale(
    benchmark, spec_suite, oracle_workload, record
):
    averages = benchmark.pedantic(
        _sweep, args=(spec_suite, oracle_workload), rounds=1, iterations=1
    )

    ordered = dict(sorted(averages.items(), key=lambda kv: -kv[1]))
    record(
        "fig4_code_invariance",
        format_bar_chart(
            {k: 100 * v for k, v in ordered.items()},
            title="Figure 4: average inter-execution code coverage (%)",
            unit="%",
        ),
    )

    # Paper's ordering: gzip/bzip2 ~100% > gcc > {perlbmk, vpr} > Oracle.
    assert averages["164.gzip"] > 0.97
    assert averages["256.bzip2"] > 0.97
    assert averages["176.gcc"] < averages["164.gzip"]
    assert averages["253.perlbmk"] < averages["176.gcc"]
    assert averages["175.vpr"] < 0.95
    assert averages["Oracle"] == min(averages.values())
    assert 0.35 < averages["Oracle"] < 0.70
