"""Extension experiment: performance over a regression-test sequence.

The paper's deployment argument (§2.2, §6): in environments like Gcc's
several-hundred-file test suite or Oracle's 100,000 tests, per-test
translation cost never amortizes inside a test, but the persistent cache
accumulates across tests so "performance improves over time".  This
extension quantifies the cost curve over a mixed sequence of gcc-analog
compilations (rotating inputs) and full Oracle unit tests, with and
without persistence.
"""

from conftest import fresh_db

from repro.analysis.report import format_table
from repro.workloads.oracle import PHASES
from repro.workloads.regression import RegressionDriver, round_robin_cases


def _gcc_case_list(spec_suite, rounds):
    gcc = spec_suite["176.gcc"]
    inputs = ["ref-%d" % i for i in range(1, 6)]
    return round_robin_cases(gcc, inputs, rounds)


def _sweep(spec_suite, oracle_workload, tmp_path_factory):
    results = {}
    for label, cases in (
        ("gcc-testsuite", _gcc_case_list(spec_suite, rounds=3)),
        ("oracle-unit-tests",
         round_robin_cases(oracle_workload, list(PHASES), rounds=3)),
    ):
        persistent = RegressionDriver(
            fresh_db(tmp_path_factory, label + "-p")
        ).run_sequence(cases)
        baseline = RegressionDriver(
            fresh_db(tmp_path_factory, label + "-b"), persistence_enabled=False
        ).run_sequence(cases)
        results[label] = (persistent, baseline)
    return results


def test_extension_regression_farm(
    benchmark, spec_suite, oracle_workload, record, tmp_path_factory
):
    results = benchmark.pedantic(
        _sweep,
        args=(spec_suite, oracle_workload, tmp_path_factory),
        rounds=1,
        iterations=1,
    )

    rows = []
    for label, (persistent, baseline) in results.items():
        per_round = len(persistent.outcomes) // 3
        rounds_p = [
            sum(persistent.cycles_by_test()[i * per_round:(i + 1) * per_round])
            for i in range(3)
        ]
        rounds_b = [
            sum(baseline.cycles_by_test()[i * per_round:(i + 1) * per_round])
            for i in range(3)
        ]
        rows.append(
            {
                "sequence": label,
                "round1_persist": rounds_p[0],
                "round2_persist": rounds_p[1],
                "round3_persist": rounds_p[2],
                "round_baseline": rounds_b[0],
                "steady_speedup_x": rounds_b[2] / rounds_p[2],
                "translations_persist": persistent.total_translations,
                "translations_baseline": baseline.total_translations,
            }
        )
    record(
        "extension_regression_farm",
        format_table(
            rows,
            columns=["sequence", "round1_persist", "round2_persist",
                     "round3_persist", "round_baseline", "steady_speedup_x",
                     "translations_persist", "translations_baseline"],
            title="Extension: regression-farm cost curve (cycles per round)",
        ),
    )

    for label, (persistent, baseline) in results.items():
        # Without persistence every round costs the same; with it, costs
        # drop after round 1 and stay down ("improves over time").
        warm = persistent.warmup_point()
        assert warm is not None and warm <= len(persistent.outcomes) // 3, label
        per_round = len(persistent.outcomes) // 3
        round1 = sum(persistent.cycles_by_test()[:per_round])
        round3 = sum(persistent.cycles_by_test()[2 * per_round:])
        assert round3 < 0.92 * round1, label
        # Steady state translates nothing.
        assert all(
            outcome.traces_translated == 0
            for outcome in persistent.outcomes[2 * per_round:]
        ), label
        # Baseline shows no learning.
        base_rounds = baseline.cycles_by_test()
        assert sum(base_rounds[:per_round]) == sum(base_rounds[2 * per_round:])
        # Total translation work collapses with persistence.
        assert persistent.total_translations < 0.5 * baseline.total_translations
