"""Multi-process stress tests for the shared compiled-body store.

The shared store's whole reason to exist is concurrent use by unrelated
processes, so these tests exercise the real protocol with real
processes: N writers publishing overlapping digest sets, M readers
polling lookups, and a concurrent gc loop — all against one store
directory.  The invariants checked are exactly the ones the locking
design promises:

* **no torn reads** — a reader sees either the exact published bytes
  for a digest or a clean miss, never garbage (content addressing makes
  "exact bytes" checkable: the blob is a pure function of the digest);
* **no lost publishes** — after every writer joins, every digest any
  writer published is present (per-shard lock → re-read → merge means
  concurrent writers cannot overwrite each other's entries);
* **gc is safe under load** — a sweeper running concurrently with
  writers and readers never corrupts a shard and never evicts a
  referenced body;
* **end-to-end equivalence** — concurrent sessions sharing one store
  produce bit-identical ``VMRunResult`` observables to the
  single-process private-sidecar path.

Process counts default to the acceptance floor (>=4 concurrent
processes) and can be reduced for constrained CI via
``REPRO_STRESS_WRITERS`` / ``REPRO_STRESS_READERS`` /
``REPRO_STRESS_ROUNDS``.
"""

import multiprocessing
import os
import pickle

import pytest

from repro.persist.database import CacheDatabase
from repro.persist.manager import PersistenceConfig
from repro.persist.sharedstore import SharedBodyStore
from repro.vm.compile import clear_code_object_cache
from repro.vm.engine import VM_VERSION, VMConfig
from repro.workloads.harness import run_vm

from tests.test_persist_manager import mini_workload
from tests.test_sharedstore import write_reference_index


WRITERS = int(os.environ.get("REPRO_STRESS_WRITERS", "4"))
READERS = int(os.environ.get("REPRO_STRESS_READERS", "3"))
ROUNDS = int(os.environ.get("REPRO_STRESS_ROUNDS", "6"))
DIGEST_SPACE = 48


def stress_digest(i: int) -> str:
    """Deterministic digests spread over several shard prefixes."""
    return "%02x%062x" % (i % 8, i)


def stress_blob(digest: str) -> bytes:
    """The unique bytes content-addressed by ``digest``."""
    return (b"body:" + digest.encode()) * 3


def mp_context():
    # fork keeps sys.path (and therefore the src/ layout) without any
    # re-exec bootstrapping; every worker below is module-level so the
    # suite also survives spawn-only platforms.
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-fork platform
        return multiprocessing.get_context()


def writer_worker(store_dir: str, seed: int, rounds: int) -> None:
    """Publish an overlapping, seed-rotated slice of the digest space."""
    store = SharedBodyStore(store_dir, vm_version=VM_VERSION)
    for round_no in range(rounds):
        start = (seed * 7 + round_no * 11) % DIGEST_SPACE
        batch = {
            stress_digest((start + k) % DIGEST_SPACE): stress_blob(
                stress_digest((start + k) % DIGEST_SPACE)
            )
            for k in range(DIGEST_SPACE // 2)
        }
        store.publish(batch)


def reader_worker(store_dir: str, rounds: int) -> None:
    """Poll every digest; each hit must be the exact expected bytes."""
    store = SharedBodyStore(store_dir, vm_version=VM_VERSION)
    for _ in range(rounds * 4):
        for i in range(DIGEST_SPACE):
            digest = stress_digest(i)
            blob = store.lookup(digest)
            if blob is not None and blob != stress_blob(digest):
                raise AssertionError("torn read for %s" % digest)


def gc_worker(store_dir: str, rounds: int) -> None:
    """Sweep repeatedly while writers and readers are live."""
    store = SharedBodyStore(store_dir, vm_version=VM_VERSION)
    for _ in range(rounds):
        store.gc()


def run_workers(targets) -> None:
    ctx = mp_context()
    procs = [ctx.Process(target=fn, args=args) for fn, args in targets]
    for proc in procs:
        proc.start()
    for proc in procs:
        proc.join(timeout=120)
    try:
        for proc in procs:
            assert proc.exitcode == 0, (
                "worker %s exited %s" % (proc.name, proc.exitcode)
            )
    finally:
        for proc in procs:
            if proc.is_alive():  # pragma: no cover - hung worker
                proc.terminate()


def test_overlapping_writers_lose_nothing(tmp_path):
    store_dir = str(tmp_path / "store")
    SharedBodyStore(store_dir, vm_version=VM_VERSION)
    run_workers(
        [(writer_worker, (store_dir, seed, ROUNDS)) for seed in range(WRITERS)]
    )
    store = SharedBodyStore(store_dir, vm_version=VM_VERSION)
    # Every writer covers half the space each round with rotating
    # starts; across WRITERS * ROUNDS batches the union is the full
    # space.  Every single digest must have survived the merges.
    for i in range(DIGEST_SPACE):
        digest = stress_digest(i)
        assert store.lookup(digest) == stress_blob(digest), digest
    assert store.fsck().clean


def test_readers_never_see_torn_bytes_under_write_load(tmp_path):
    store_dir = str(tmp_path / "store")
    SharedBodyStore(store_dir, vm_version=VM_VERSION)
    writers = max(2, WRITERS - READERS // 2)
    run_workers(
        [(writer_worker, (store_dir, seed, ROUNDS)) for seed in range(writers)]
        + [(reader_worker, (store_dir, ROUNDS)) for _ in range(READERS)]
    )
    assert SharedBodyStore(store_dir, vm_version=VM_VERSION).fsck().clean


def test_concurrent_gc_never_evicts_referenced(tmp_path):
    store_dir = str(tmp_path / "store")
    store = SharedBodyStore(store_dir, vm_version=VM_VERSION)
    # Reference the whole digest space from a registered database so
    # the concurrent sweeps may not legally remove anything.
    db_dir = str(tmp_path / "db")
    write_reference_index(
        db_dir, [stress_digest(i) for i in range(DIGEST_SPACE)]
    )
    # write_reference_index stores placeholder bytes; the stress blobs
    # are what the writers publish, so reference the digests but expect
    # stress blobs in the pool (content addressing keys on digest).
    store.register_database(db_dir)
    run_workers(
        [(writer_worker, (store_dir, seed, ROUNDS)) for seed in range(WRITERS)]
        + [(gc_worker, (store_dir, ROUNDS * 2))]
        + [(reader_worker, (store_dir, ROUNDS)) for _ in range(max(1, READERS - 1))]
    )
    final = SharedBodyStore(store_dir, vm_version=VM_VERSION)
    for i in range(DIGEST_SPACE):
        digest = stress_digest(i)
        assert final.lookup(digest) == stress_blob(digest), digest
    assert final.fsck().clean


def test_unreferenced_pool_survives_concurrent_gc_without_corruption(tmp_path):
    """With no registered databases gc may sweep anything — but every
    lookup must still be exact-bytes-or-miss and the store must end
    structurally clean."""
    store_dir = str(tmp_path / "store")
    SharedBodyStore(store_dir, vm_version=VM_VERSION)
    run_workers(
        [(writer_worker, (store_dir, seed, ROUNDS)) for seed in range(max(2, WRITERS - 1))]
        + [(gc_worker, (store_dir, ROUNDS * 2))]
        + [(reader_worker, (store_dir, ROUNDS))]
    )
    final = SharedBodyStore(store_dir, vm_version=VM_VERSION)
    for i in range(DIGEST_SPACE):
        digest = stress_digest(i)
        blob = final.lookup(digest)
        assert blob is None or blob == stress_blob(digest), digest
    assert final.fsck().clean


def session_worker(store_dir: str, db_dir: str, out_path: str) -> None:
    """One concurrent consumer session: fresh DB, shared store, compiled
    dispatch.  Pickles the run observables for the parent to compare."""
    workload = mini_workload()
    store = SharedBodyStore(store_dir, vm_version=VM_VERSION)
    db = CacheDatabase(db_dir, shared_store=store)
    clear_code_object_cache()
    result = run_vm(
        workload,
        "a",
        persistence=PersistenceConfig(database=db),
        vm_config=VMConfig(dispatch_mode="compiled"),
    )
    payload = {
        "observable": (
            result.output,
            result.exit_status,
            result.instructions,
            vars(result.stats),
        ),
        "host_compiles": result.persistence_report["sidecar_host_compiles"],
        "shared_hits": result.persistence_report["shared_hits"],
    }
    with open(out_path, "wb") as fh:
        fh.write(pickle.dumps(payload))


def test_concurrent_sessions_match_private_sidecar_path(tmp_path):
    """N processes race full compiled sessions against one store; each
    result must be bit-identical to the plain private-sidecar run."""
    workload = mini_workload()
    reference_db = CacheDatabase(str(tmp_path / "reference-db"))
    clear_code_object_cache()
    reference = run_vm(
        workload,
        "a",
        persistence=PersistenceConfig(database=reference_db),
        vm_config=VMConfig(dispatch_mode="compiled"),
    )
    expected = (
        reference.output,
        reference.exit_status,
        reference.instructions,
        vars(reference.stats),
    )

    store_dir = str(tmp_path / "store")
    SharedBodyStore(store_dir, vm_version=VM_VERSION)
    sessions = max(4, WRITERS)
    outs = [str(tmp_path / ("out-%d.pkl" % i)) for i in range(sessions)]
    run_workers(
        [
            (session_worker, (store_dir, str(tmp_path / ("db-%d" % i)), outs[i]))
            for i in range(sessions)
        ]
    )
    payloads = []
    for path in outs:
        with open(path, "rb") as fh:
            payloads.append(pickle.loads(fh.read()))
    for payload in payloads:
        assert payload["observable"] == expected
    # Whether the racers overlapped enough to revive each other's
    # publishes is timing-dependent (publish happens at session end, so
    # simultaneous cold starts may all compile) — the deterministic
    # guarantee is that a follow-up session finds the pool fully warmed
    # and does zero host compiles.
    follow_up = str(tmp_path / "out-followup.pkl")
    run_workers(
        [(session_worker, (store_dir, str(tmp_path / "db-followup"), follow_up))]
    )
    with open(follow_up, "rb") as fh:
        final = pickle.loads(fh.read())
    assert final["observable"] == expected
    assert final["host_compiles"] == 0
    assert final["shared_hits"] > 0


def test_acceptance_floor_is_at_least_four_processes():
    """The ISSUE acceptance criterion: the stress runs with >=4
    concurrent processes unless CI explicitly dials it down."""
    if "REPRO_STRESS_WRITERS" not in os.environ:
        assert WRITERS >= 4
