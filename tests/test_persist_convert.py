"""Tests for persist/revive conversion, including position independence."""

import pytest

from repro.binfmt.image import ImageKind
from repro.loader.layout import FixedLayout, PerturbedLayout
from repro.loader.linker import ImageStore, load_process
from repro.machine.costs import DEFAULT_COST_MODEL
from repro.machine.cpu import Machine
from repro.persist.convert import persist_trace, revive_trace
from repro.tools import BBCountTool
from repro.vm.trace import ExitKind, TraceSelector
from repro.vm.translator import Translator

from tests.conftest import image_from_asm

CALLER_LIB = """
libm_fn:
    addi t1, t1, 1
    ret
"""

MAIN = """
main:
    call libm_fn
    movi rv, 1
    movi a0, 0
    syscall
"""


def build_process(layout=None):
    lib = image_from_asm(CALLER_LIB, path="libm.so", kind=ImageKind.SHARED_LIBRARY)
    main = image_from_asm(MAIN, needed=["libm.so"])
    store = ImageStore({lib.path: lib})
    return load_process(main, store, layout=layout)


def select_and_translate(process, address, tool=None):
    machine = Machine(process)
    selector = TraceSelector(machine.fetch)
    mapping = process.image_at(address)
    trace = selector.select(
        address, image_path=mapping.image.path, image_base=mapping.base
    )
    return Translator(DEFAULT_COST_MODEL, tool).translate(trace).translated


class TestPersist:
    def test_records_image_identity(self):
        process = build_process()
        translated = select_and_translate(process, process.entry_address)
        record = persist_trace(translated, process)
        assert record.image_path == "app"
        assert record.image_offset == process.entry_address - process.mappings[0].base
        assert record.n_insts == 1  # call terminates the trace
        assert record.code == translated.code_bytes

    def test_records_cross_image_call_reloc(self):
        process = build_process()
        translated = select_and_translate(process, process.entry_address)
        record = persist_trace(translated, process)
        assert len(record.relocs) == 1
        reloc = record.relocs[0]
        assert reloc.target_path == "libm.so"
        assert reloc.target_offset == 0

    def test_exit_targets_located(self):
        process = build_process()
        translated = select_and_translate(process, process.entry_address)
        record = persist_trace(translated, process)
        direct = record.exits[-1]
        assert direct.kind == int(ExitKind.DIRECT)
        assert direct.target_path == "libm.so"

    def test_unbacked_trace_not_persisted(self):
        process = build_process()
        translated = select_and_translate(process, process.entry_address)
        translated.trace.image_path = ""  # simulate dynamically generated code
        assert persist_trace(translated, process) is None


class TestRevive:
    def _roundtrip(self, rebase, layout_out=None, layout_in=None):
        process_out = build_process(layout_out)
        translated = select_and_translate(process_out, process_out.entry_address)
        record = persist_trace(translated, process_out)
        process_in = build_process(layout_in)

        def base_of(path):
            mapping = process_in.space.mapping_for_image(path)
            return mapping.base if mapping else None

        return record, revive_trace(record, None, base_of, rebase=rebase), process_in

    def test_verbatim_same_layout(self):
        record, revived, _process = self._roundtrip(rebase=False)
        assert revived is not None
        assert revived.from_persistent
        assert revived.entry == record.entry
        assert revived.code_bytes == record.code

    def test_verbatim_rejects_moved_base(self):
        _record, revived, _process = self._roundtrip(
            rebase=False, layout_in=PerturbedLayout(3)
        )
        # The app image itself stays put; pick a library trace instead.
        process_out = build_process()
        lib_entry = process_out.resolve_symbol("libm_fn")
        translated = select_and_translate(process_out, lib_entry)
        record = persist_trace(translated, process_out)
        process_in = build_process(PerturbedLayout(3))

        def base_of(path):
            mapping = process_in.space.mapping_for_image(path)
            return mapping.base if mapping else None

        moved = process_in.space.mapping_for_image("libm.so").base
        original = process_out.space.mapping_for_image("libm.so").base
        assert moved != original  # the perturbation actually moved it
        assert revive_trace(record, None, base_of, rebase=False) is None

    def test_rebase_follows_relocation(self):
        process_out = build_process()
        translated = select_and_translate(process_out, process_out.entry_address)
        record = persist_trace(translated, process_out)
        process_in = build_process(PerturbedLayout(3))

        def base_of(path):
            mapping = process_in.space.mapping_for_image(path)
            return mapping.base if mapping else None

        revived = revive_trace(record, None, base_of, rebase=True)
        assert revived is not None
        # The call immediate must now point at the *new* libm_fn address.
        new_target = process_in.resolve_symbol("libm_fn")
        call_inst = revived.trace.instructions[0]
        assert call_inst.imm == new_target
        assert revived.final_slot.exit.target == new_target

    def test_revive_missing_image(self):
        record, _revived, _process = self._roundtrip(rebase=False)
        assert revive_trace(record, None, lambda path: None) is None

    def test_rebase_missing_target_image(self):
        process_out = build_process()
        translated = select_and_translate(process_out, process_out.entry_address)
        record = persist_trace(translated, process_out)

        def base_of(path):
            return 0x40_0000 if path == "app" else None  # libm.so unloaded

        assert revive_trace(record, None, base_of, rebase=True) is None

    def test_tool_points_rebound(self):
        process_out = build_process()
        tool = BBCountTool()
        translated = select_and_translate(
            process_out, process_out.entry_address, tool
        )
        record = persist_trace(translated, process_out)

        def base_of(path):
            mapping = process_out.space.mapping_for_image(path)
            return mapping.base if mapping else None

        fresh_tool = BBCountTool()
        revived = revive_trace(record, fresh_tool, base_of)
        assert len(revived.points) == len(translated.points)
        assert revived.points_by_index.keys() == translated.points_by_index.keys()

    def test_liveness_preserved(self):
        record, revived, _process = self._roundtrip(rebase=False)
        assert revived.liveness == record.liveness
