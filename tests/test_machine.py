"""Tests for the simulated CPU, syscalls and cost model."""

import pytest

from repro.isa import instructions as ins
from repro.isa import registers as regs
from repro.loader.linker import load_process
from repro.machine.costs import CostModel, DEFAULT_COST_MODEL
from repro.machine.cpu import (
    ExecutionContext,
    HEAP_BASE,
    Interpreter,
    Machine,
    MachineFault,
    run_native,
)
from repro.machine.syscalls import (
    OSState,
    SYS_BRK,
    SYS_CLOCK,
    SYS_EXIT,
    SYS_GETPID,
    SYS_KILL,
    SYS_RAND,
    SYS_SIGACTION,
    SYS_WRITE,
    SyscallError,
    dispatch_syscall,
)

from tests.conftest import image_from_asm, make_machine


def _step_program(machine, *insts):
    """Single-step instructions through an ExecutionContext."""
    context = ExecutionContext(machine)
    pc = 0x100
    results = []
    for inst in insts:
        pc, event = context.step(inst, pc)
        results.append((pc, event))
    return machine, results


class TestAluSemantics:
    @pytest.fixture
    def machine(self, tiny_machine):
        return tiny_machine

    def _run_one(self, machine, inst, setup=()):
        for reg, value in setup:
            machine.registers[reg] = value
        context = ExecutionContext(machine)
        next_pc, _event = context.step(inst, 0x100)
        return next_pc

    @pytest.mark.parametrize(
        "inst,setup,reg,expected",
        [
            (ins.add(3, 1, 2), [(1, 5), (2, 7)], 3, 12),
            (ins.sub(3, 1, 2), [(1, 5), (2, 7)], 3, -2),
            (ins.mul(3, 1, 2), [(1, -4), (2, 3)], 3, -12),
            (ins.div(3, 1, 2), [(1, 7), (2, 2)], 3, 3),
            (ins.div(3, 1, 2), [(1, -7), (2, 2)], 3, -3),  # trunc toward 0
            (ins.and_(3, 1, 2), [(1, 0b1100), (2, 0b1010)], 3, 0b1000),
            (ins.or_(3, 1, 2), [(1, 0b1100), (2, 0b1010)], 3, 0b1110),
            (ins.xor(3, 1, 2), [(1, 0b1100), (2, 0b1010)], 3, 0b0110),
            (ins.shl(3, 1, 2), [(1, 1), (2, 4)], 3, 16),
            (ins.shr(3, 1, 2), [(1, 16), (2, 4)], 3, 1),
            (ins.slt(3, 1, 2), [(1, -1), (2, 0)], 3, 1),
            (ins.slt(3, 1, 2), [(1, 1), (2, 0)], 3, 0),
            (ins.addi(3, 1, -5), [(1, 10)], 3, 5),
            (ins.andi(3, 1, 0xF), [(1, 0x1234)], 3, 4),
            (ins.ori(3, 1, 0xF0), [(1, 1)], 3, 0xF1),
            (ins.xori(3, 1, 0xFF), [(1, 0x0F)], 3, 0xF0),
            (ins.shli(3, 1, 3), [(1, 2)], 3, 16),
            (ins.shri(3, 1, 3), [(1, 16)], 3, 2),
            (ins.lui(3, 2), [], 3, 1 << 17),
            (ins.movi(3, -99), [], 3, -99),
        ],
    )
    def test_alu(self, machine, inst, setup, reg, expected):
        self._run_one(machine, inst, setup)
        assert machine.registers[reg] == expected

    def test_overflow_wraps_to_64_bits(self, machine):
        machine.registers[1] = (1 << 62)
        machine.registers[2] = (1 << 62)
        ExecutionContext(machine).step(ins.mul(3, 1, 2), 0)
        value = machine.registers[3]
        assert -(1 << 63) <= value < (1 << 63)

    def test_zero_register_never_written(self, machine):
        machine.registers[1] = 5
        ExecutionContext(machine).step(ins.add(regs.ZERO, 1, 1), 0)
        assert machine.registers[regs.ZERO] == 0

    def test_shr_is_logical_on_unsigned_view(self, machine):
        machine.registers[1] = -1
        ExecutionContext(machine).step(ins.shri(3, 1, 1), 0)
        assert machine.registers[3] == (1 << 63) - 1

    def test_division_by_zero_faults(self, machine):
        machine.registers[2] = 0
        with pytest.raises(MachineFault):
            ExecutionContext(machine).step(ins.div(3, 1, 2), 0x40)


class TestControlFlow:
    def test_taken_and_not_taken(self, tiny_machine):
        context = ExecutionContext(tiny_machine)
        tiny_machine.registers[1] = 1
        tiny_machine.registers[2] = 1
        pc, _ = context.step(ins.beq(1, 2, 0x20), 0x100)
        assert pc == 0x128
        pc, _ = context.step(ins.bne(1, 2, 0x20), 0x100)
        assert pc == 0x108

    def test_call_sets_lr(self, tiny_machine):
        context = ExecutionContext(tiny_machine)
        pc, _ = context.step(ins.call(0x4000), 0x100)
        assert pc == 0x4000
        assert tiny_machine.registers[regs.LR] == 0x108

    def test_callr_reads_target_before_clobbering_lr(self, tiny_machine):
        # callr lr: the target must be the OLD lr value.
        tiny_machine.registers[regs.LR] = 0x7777
        context = ExecutionContext(tiny_machine)
        pc, _ = context.step(ins.callr(regs.LR), 0x100)
        assert pc == 0x7777
        assert tiny_machine.registers[regs.LR] == 0x108

    def test_ret_and_jr(self, tiny_machine):
        context = ExecutionContext(tiny_machine)
        tiny_machine.registers[regs.LR] = 0x9000
        assert context.step(ins.ret(), 0)[0] == 0x9000
        tiny_machine.registers[5] = 0x8000
        assert context.step(ins.jr(5), 0)[0] == 0x8000


class TestMemory:
    def test_load_store_roundtrip(self, tiny_machine):
        context = ExecutionContext(tiny_machine)
        sp = tiny_machine.registers[regs.SP]
        tiny_machine.registers[2] = -1234
        context.step(ins.st(regs.SP, 2, 0), 0)
        context.step(ins.ld(3, regs.SP, 0), 0)
        assert tiny_machine.registers[3] == -1234

    def test_unmapped_faults(self, tiny_machine):
        context = ExecutionContext(tiny_machine)
        tiny_machine.registers[1] = 0x12
        with pytest.raises(MachineFault):
            context.step(ins.ld(3, 1, 0), 0x40)
        with pytest.raises(MachineFault):
            context.step(ins.st(1, 3, 0), 0x40)


class TestSyscallDispatch:
    def _os(self):
        return OSState()

    def test_exit(self):
        result = dispatch_syscall(self._os(), SYS_EXIT, [3, 0, 0, 0], lambda a, n: b"")
        assert result.exited and result.exit_status == 3

    def test_write_appends_output(self):
        os_state = self._os()
        memory = {0x100: b"hi"}
        result = dispatch_syscall(
            os_state, SYS_WRITE, [2, 0x100, 0, 0],
            lambda addr, length: memory[addr][:length],
        )
        assert result.value == 2
        assert bytes(os_state.output) == b"hi"

    def test_write_negative_length(self):
        with pytest.raises(SyscallError):
            dispatch_syscall(self._os(), SYS_WRITE, [-1, 0, 0, 0], lambda a, n: b"")

    def test_getpid(self):
        os_state = self._os()
        os_state.pid = 4242
        assert dispatch_syscall(os_state, SYS_GETPID, [0] * 4, None).value == 4242

    def test_clock_uses_callback(self):
        os_state = self._os()
        os_state.clock = lambda: 123.9
        assert dispatch_syscall(os_state, SYS_CLOCK, [0] * 4, None).value == 123

    def test_brk_grows(self):
        os_state = self._os()
        os_state.heap_break = 0x1000
        os_state.heap_limit = 0x2000
        first = dispatch_syscall(os_state, SYS_BRK, [0x100, 0, 0, 0], None)
        assert first.value == 0x1000
        assert os_state.heap_break == 0x1100

    def test_brk_exhaustion(self):
        os_state = self._os()
        os_state.heap_break = 0x1000
        os_state.heap_limit = 0x1010
        with pytest.raises(SyscallError):
            dispatch_syscall(os_state, SYS_BRK, [0x100, 0, 0, 0], None)

    def test_rand_deterministic(self):
        a, b = self._os(), self._os()
        seq_a = [dispatch_syscall(a, SYS_RAND, [0] * 4, None).value for _ in range(5)]
        seq_b = [dispatch_syscall(b, SYS_RAND, [0] * 4, None).value for _ in range(5)]
        assert seq_a == seq_b
        assert len(set(seq_a)) > 1

    def test_sigaction_and_kill(self):
        os_state = self._os()
        dispatch_syscall(os_state, SYS_SIGACTION, [15, 0x5000, 0, 0], None)
        result = dispatch_syscall(os_state, SYS_KILL, [15, 0, 0, 0], None)
        assert result.signal_handler == 0x5000

    def test_kill_without_handler(self):
        result = dispatch_syscall(self._os(), SYS_KILL, [15, 0, 0, 0], None)
        assert result.signal_handler is None

    def test_unknown_number(self):
        with pytest.raises(SyscallError):
            dispatch_syscall(self._os(), 999, [0] * 4, None)

    def test_counts_tracked(self):
        os_state = self._os()
        dispatch_syscall(os_state, SYS_RAND, [0] * 4, None)
        dispatch_syscall(os_state, SYS_RAND, [0] * 4, None)
        assert os_state.syscall_counts["rand"] == 2

    def test_failed_syscall_is_not_counted(self):
        """Counts record *completed* syscalls: a raising call must not
        bump them (it used to, counting before validation)."""
        os_state = self._os()
        with pytest.raises(SyscallError):
            dispatch_syscall(os_state, SYS_WRITE, [-1, 0, 0, 0], None)
        assert "write" not in os_state.syscall_counts
        os_state.heap_break = 0x1000
        os_state.heap_limit = 0x1010
        with pytest.raises(SyscallError):
            dispatch_syscall(os_state, SYS_BRK, [0x100, 0, 0, 0], None)
        assert "brk" not in os_state.syscall_counts
        with pytest.raises(SyscallError):
            dispatch_syscall(os_state, 999, [0] * 4, None)
        assert os_state.syscall_counts == {}

    def test_completed_syscall_is_counted(self):
        os_state = self._os()
        os_state.heap_break = 0x1000
        os_state.heap_limit = 0x2000
        dispatch_syscall(os_state, SYS_BRK, [0x10, 0, 0, 0], None)
        assert os_state.syscall_counts == {"brk": 1}

    def test_unwired_clock_raises(self):
        """The default clock must fail loudly, not return a fake 0."""
        from repro.machine.syscalls import UnwiredClockError

        with pytest.raises(UnwiredClockError):
            dispatch_syscall(self._os(), SYS_CLOCK, [0] * 4, None)
        # The failed dispatch is uncounted (completed-only counting).
        assert "clock" not in self._os().syscall_counts

    def test_wired_clock_still_works(self):
        os_state = self._os()
        os_state.clock = lambda: 77
        assert dispatch_syscall(os_state, SYS_CLOCK, [0] * 4, None).value == 77

    def test_interpreter_wires_clock(self):
        """Both execution engines install a real clock before the first
        instruction, so SYS_CLOCK works end to end."""
        machine = make_machine(
            """
            main:
                movi rv, 4           ; SYS_CLOCK
                syscall
                or   a0, rv, zero
                movi rv, 1
                syscall
            """
        )
        # Would raise UnwiredClockError if the interpreter forgot to
        # wire the clock; the status is the (possibly 0) cycle reading.
        result = run_native(machine)
        assert result.exit_status >= 0


class TestInterpreter:
    def test_tiny_program(self, tiny_image):
        result = run_native(Machine(load_process(tiny_image)))
        assert result.exit_status == 7
        assert result.instructions == 27
        assert result.cycles == pytest.approx(
            27 * DEFAULT_COST_MODEL.native_inst
            + 1 * DEFAULT_COST_MODEL.native_syscall
        )

    def test_write_output(self):
        machine = make_machine(
            """
            main:
                movi a0, 72          ; 'H'
                st   a0, 0(sp)
                movi rv, 2           ; SYS_WRITE
                movi a0, 1
                or   a1, sp, zero
                syscall
                movi rv, 1
                movi a0, 0
                syscall
            """
        )
        result = run_native(machine)
        assert result.output == b"H"

    def test_budget_exhaustion(self):
        machine = make_machine("main:\nspin:\n    jmp spin\n")
        with pytest.raises(MachineFault):
            Interpreter(machine, max_instructions=100).run()

    def test_signal_delivery_runs_handler(self):
        """SYS_KILL with an installed handler calls it like a function."""
        from repro.binfmt.image import ImageBuilder
        from repro.isa import instructions as I
        from repro.machine.syscalls import SYS_EXIT as EXITNO

        builder = ImageBuilder("sig")
        # handler: t5 = 77; ret
        handler_vaddr = builder.add_function(
            "handler", [I.movi(15, 77), I.ret()]
        )
        main_code = [
            I.movi(regs.A0, 9),
            I.movi(regs.A1, 0),          # relocated to &handler below
            I.movi(regs.RV, SYS_SIGACTION),
            I.syscall(),
            I.movi(regs.A0, 9),
            I.movi(regs.RV, SYS_KILL),
            I.syscall(),                 # delivers the signal
            I.movi(regs.RV, EXITNO),
            I.or_(regs.A0, 15, regs.ZERO),
            I.syscall(),
        ]
        builder.add_function("main", main_code, symbol_refs=[(1, "handler")])
        builder.set_entry("main")
        machine = Machine(load_process(builder.build()))
        result = run_native(machine)
        assert result.exit_status == 77  # handler ran before exit

    def test_machine_stack_initialized(self, tiny_machine):
        sp = tiny_machine.registers[regs.SP]
        assert sp > HEAP_BASE
        tiny_machine.process.space.find_mapping(sp)

    def test_set_args(self, tiny_machine):
        tiny_machine.set_args(5, 6, 7)
        assert tiny_machine.registers[regs.A0] == 5
        assert tiny_machine.registers[regs.A1] == 6
        assert tiny_machine.registers[regs.A2] == 7


class TestCostModel:
    def test_defaults_sane(self):
        cost = DEFAULT_COST_MODEL
        assert cost.trace_compile_per_inst > cost.translated_inst * 50
        assert cost.pcache_trace_load < cost.trace_compile_fixed
        assert cost.translated_inst > cost.native_inst

    def test_with_overrides(self):
        tweaked = DEFAULT_COST_MODEL.with_overrides(native_inst=2.0)
        assert tweaked.native_inst == 2.0
        assert tweaked.translated_inst == DEFAULT_COST_MODEL.translated_inst
        assert DEFAULT_COST_MODEL.native_inst == 1.0  # original untouched

    def test_frozen(self):
        with pytest.raises(Exception):
            DEFAULT_COST_MODEL.native_inst = 3.0


class TestHalt:
    def test_halt_stops_with_status_zero(self):
        machine = make_machine("main:\n    movi t0, 1\n    halt\n")
        result = run_native(machine)
        assert result.exit_status == 0
        assert result.instructions == 2
