"""Property-based interleaving tests for the shared body store.

The invariant under test, quoted from the store's design contract:
*every digest referenced by a registered database's index is revivable
(exact bytes) or cleanly absent — never corrupt* — and it must hold
after **any** interleaving of publishes, touches, gcs, revives
(lookups), cap enforcement, and on-disk corruption.  Hypothesis drives
random operation sequences against a model: a digest's bytes are a pure
function of the digest (content addressing), so "revivable" is checked
exactly, and ``lookup`` may never raise or return foreign bytes no
matter what the sequence did to the files.
"""

import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.persist.sharedstore import SharedBodyStore, shard_prefix
from repro.testing.faultfs import flip_byte, truncate_file
from repro.vm.engine import VM_VERSION

from tests.test_sharedstore import write_reference_index

pytestmark = pytest.mark.faultinject

#: A small digest universe spanning a handful of shards keeps the
#: interleavings dense: operations actually collide on shard files.
DIGESTS = tuple("%02x%062x" % (i % 4, i) for i in range(12))


def body_of(digest: str) -> bytes:
    return (b"canonical:" + digest.encode()) * 2


# Operations a sequence can take, as (opcode, payload) tuples.  Payload
# indexes pick digests; corrupt ops pick a victim shard and an offset.
OPS = st.one_of(
    st.tuples(st.just("publish"), st.lists(
        st.integers(0, len(DIGESTS) - 1), min_size=1, max_size=6)),
    st.tuples(st.just("touch"), st.lists(
        st.integers(0, len(DIGESTS) - 1), min_size=1, max_size=4)),
    st.tuples(st.just("revive"), st.integers(0, len(DIGESTS) - 1)),
    st.tuples(st.just("gc"), st.just(None)),
    st.tuples(st.just("gc-capped"), st.integers(0, 2000)),
    st.tuples(st.just("flip"), st.tuples(
        st.integers(0, len(DIGESTS) - 1), st.integers(0, 2**16))),
    st.tuples(st.just("truncate"), st.tuples(
        st.integers(0, len(DIGESTS) - 1), st.integers(0, 2**16))),
)


@settings(max_examples=40, deadline=None)
@given(
    ops=st.lists(OPS, min_size=1, max_size=24),
    referenced_idx=st.lists(
        st.integers(0, len(DIGESTS) - 1), min_size=0, max_size=8
    ),
)
def test_any_interleaving_keeps_referenced_digests_sound(
    tmp_path_factory, ops, referenced_idx
):
    tmp = tmp_path_factory.mktemp("interleave")
    store = SharedBodyStore(str(tmp / "store"), vm_version=VM_VERSION)
    store.clock = iter(range(1, 10_000)).__next__  # deterministic stamps
    referenced = sorted({DIGESTS[i] for i in referenced_idx})
    db_dir = str(tmp / "db")
    write_reference_index(db_dir, referenced)
    store.register_database(db_dir)

    for opcode, payload in ops:
        if opcode == "publish":
            store.publish({DIGESTS[i]: body_of(DIGESTS[i]) for i in payload})
        elif opcode == "touch":
            store.publish({}, touch=[DIGESTS[i] for i in payload])
        elif opcode == "revive":
            digest = DIGESTS[payload]
            blob = store.lookup(digest)  # must not raise
            assert blob is None or blob == body_of(digest), digest
        elif opcode == "gc":
            store.gc()
        elif opcode == "gc-capped":
            store.gc(max_bytes=payload)
        elif opcode in ("flip", "truncate"):
            index, offset = payload
            path = store.shard_path(shard_prefix(DIGESTS[index]))
            if os.path.exists(path) and os.path.getsize(path) > 0:
                if opcode == "flip":
                    flip_byte(path, offset % os.path.getsize(path))
                else:
                    truncate_file(path, offset % os.path.getsize(path))

    # The invariant, checked from a *fresh* store instance (no warm
    # shard cache hiding on-disk state):
    final = SharedBodyStore(str(tmp / "store"), vm_version=VM_VERSION)
    for digest in DIGESTS:
        blob = final.lookup(digest)  # never raises
        assert blob is None or blob == body_of(digest), digest
    # Structural soundness: every surviving file parses clean; damage
    # at most sits quarantined off to the side.
    assert final.fsck().clean
    # And an uncapped gc after the dust settles keeps every referenced,
    # still-present digest revivable (sweep may never remove them).
    survivors = {d for d in referenced if final.lookup(d) is not None}
    final.gc()
    for digest in survivors:
        assert final.lookup(digest) == body_of(digest), digest


@settings(max_examples=25, deadline=None)
@given(
    publishes=st.lists(
        st.lists(st.integers(0, len(DIGESTS) - 1), min_size=1, max_size=6),
        min_size=1,
        max_size=8,
    ),
    cap=st.integers(0, 4000),
)
def test_cap_enforcement_is_exact_bytes_or_absent(
    tmp_path_factory, publishes, cap
):
    """LRU eviction under any publish order: the cap is honored and the
    survivors are bit-exact."""
    tmp = tmp_path_factory.mktemp("cap")
    store = SharedBodyStore(
        str(tmp / "store"), vm_version=VM_VERSION, max_bytes=cap
    )
    store.clock = iter(range(1, 10_000)).__next__
    for batch in publishes:
        store.publish({DIGESTS[i]: body_of(DIGESTS[i]) for i in batch})
        assert store.total_bytes() <= cap
    for digest in DIGESTS:
        blob = store.lookup(digest)
        assert blob is None or blob == body_of(digest), digest
