"""Unit tests for instruction construction and classification."""

import pytest

from repro.isa import instructions as ins
from repro.isa import registers as regs
from repro.isa.instructions import IMM_MAX, IMM_MIN, INSTRUCTION_SIZE, Instruction
from repro.isa.opcodes import Opcode


class TestConstruction:
    def test_defaults(self):
        inst = Instruction(Opcode.NOP)
        assert (inst.rd, inst.rs1, inst.rs2, inst.imm) == (0, 0, 0, 0)

    def test_register_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.ADD, rd=32)
        with pytest.raises(ValueError):
            Instruction(Opcode.ADD, rs1=-1)

    def test_immediate_bounds(self):
        Instruction(Opcode.MOVI, rd=1, imm=IMM_MAX)
        Instruction(Opcode.MOVI, rd=1, imm=IMM_MIN)
        with pytest.raises(ValueError):
            Instruction(Opcode.MOVI, rd=1, imm=IMM_MAX + 1)
        with pytest.raises(ValueError):
            Instruction(Opcode.MOVI, rd=1, imm=IMM_MIN - 1)

    def test_frozen(self):
        inst = ins.nop()
        with pytest.raises(Exception):
            inst.imm = 5

    def test_as_tuple(self):
        inst = ins.addi(3, 4, -7)
        assert inst.as_tuple() == (int(Opcode.ADDI), 3, 4, 0, -7)


class TestClassification:
    @pytest.mark.parametrize(
        "inst", [ins.beq(1, 2, 8), ins.bne(1, 2, 8), ins.blt(1, 2, 8), ins.bge(1, 2, 8)]
    )
    def test_conditional_branches(self, inst):
        assert inst.is_conditional_branch
        assert inst.is_control_flow
        assert not inst.is_unconditional

    @pytest.mark.parametrize(
        "inst",
        [ins.jmp(0x100), ins.call(0x100), ins.jr(5), ins.callr(5), ins.ret(),
         ins.syscall(), ins.halt()],
    )
    def test_unconditional(self, inst):
        assert inst.is_unconditional
        assert inst.is_control_flow

    def test_indirect(self):
        assert ins.jr(5).is_indirect
        assert ins.callr(5).is_indirect
        assert ins.ret().is_indirect
        assert not ins.jmp(0).is_indirect

    def test_calls(self):
        assert ins.call(0).is_call
        assert ins.callr(5).is_call
        assert not ins.jmp(0).is_call

    def test_memory(self):
        assert ins.ld(1, 2, 0).is_memory
        assert ins.st(1, 2, 0).is_memory
        assert not ins.add(1, 2, 3).is_memory

    @pytest.mark.parametrize(
        "inst", [ins.add(1, 2, 3), ins.movi(1, 5), ins.ld(1, 2, 0), ins.nop()]
    )
    def test_straightline(self, inst):
        assert not inst.is_control_flow


class TestBranchTarget:
    def test_conditional_is_pc_relative(self):
        inst = ins.bne(1, 2, 16)
        assert inst.branch_target(0x100) == 0x100 + INSTRUCTION_SIZE + 16

    def test_backward_branch(self):
        inst = ins.bne(1, 2, -24)
        assert inst.branch_target(0x100) == 0x100 + 8 - 24

    def test_direct_is_absolute(self):
        assert ins.jmp(0x4000).branch_target(0x100) == 0x4000
        assert ins.call(0x4000).branch_target(0x999) == 0x4000

    @pytest.mark.parametrize("inst", [ins.jr(5), ins.ret(), ins.add(1, 2, 3)])
    def test_no_static_target(self, inst):
        with pytest.raises(ValueError):
            inst.branch_target(0)


class TestRegisterSets:
    def test_alu_reads_and_writes(self):
        inst = ins.add(3, 4, 5)
        assert inst.registers_read() == frozenset({4, 5})
        assert inst.registers_written() == frozenset({3})

    def test_zero_register_excluded(self):
        inst = ins.add(regs.ZERO, regs.ZERO, 5)
        assert inst.registers_written() == frozenset()
        assert inst.registers_read() == frozenset({5})

    def test_store_reads_both(self):
        inst = ins.st(2, 3, 8)
        assert inst.registers_read() == frozenset({2, 3})
        assert inst.registers_written() == frozenset()

    def test_load(self):
        inst = ins.ld(7, 2, 8)
        assert inst.registers_read() == frozenset({2})
        assert inst.registers_written() == frozenset({7})

    def test_call_writes_lr(self):
        assert regs.LR in ins.call(0).registers_written()
        assert regs.LR in ins.callr(5).registers_written()

    def test_ret_reads_lr(self):
        assert regs.LR in ins.ret().registers_read()

    def test_syscall_reads_args_writes_rv(self):
        sc = ins.syscall()
        assert regs.RV in sc.registers_read()
        assert regs.A0 in sc.registers_read()
        assert sc.registers_written() == frozenset({regs.RV})

    def test_branch_reads_operands(self):
        inst = ins.blt(6, 7, 8)
        assert inst.registers_read() == frozenset({6, 7})
        assert inst.registers_written() == frozenset()
