"""Tests for the per-host shared compiled-body store.

Covers the satellite checklist for the shared store
(:mod:`repro.persist.sharedstore`): store/retrieve round-trips, the
fallback-order semantics of the chained store (shared → private → host
compile), the digest-prefix sharding layout, wholesale VM-version /
host-tag invalidation, and gc mark-and-sweep correctness (a referenced
body is never swept; the LRU cap is honored) — plus the end-to-end
cross-database reuse the store exists for: DB-A warms DB-B.
"""

import json
import marshal
import os

import pytest

from repro.persist.database import CacheDatabase
from repro.persist.manager import PersistenceConfig
from repro.persist.sidecar import (
    ChainedBodyStore,
    CompiledBodyStore,
    SIDECAR_NAME,
    host_code_tag,
)
from repro.persist.sharedstore import (
    BODIES_DIR,
    QUARANTINE_DIR,
    SHARD_PREFIX_LEN,
    SHARD_SUFFIX,
    SharedBodyStore,
    SharedStoreError,
    is_shared_store,
    pack_shard,
    parse_shard,
    shard_prefix,
    store_keytag,
    verify_shard,
)
from repro.vm.compile import clear_code_object_cache
from repro.vm.engine import VM_VERSION, VMConfig
from repro.workloads.harness import run_vm

from tests.test_persist_manager import mini_workload


def blob_for(tag: str) -> bytes:
    """A distinguishable, genuinely unmarshalable-as-code payload? No —
    a real marshaled code object, so chained revives can exec it."""
    return marshal.dumps(compile("_make = lambda *a: %r" % tag, "<t>", "exec"))


def digest_for(i: int) -> str:
    """Deterministic digests spanning several shard prefixes."""
    return "%02x%062x" % (i % 256, i)


@pytest.fixture
def store(tmp_path):
    return SharedBodyStore(str(tmp_path / "store"), vm_version=VM_VERSION)


def compiled_run(workload, input_name, db, **kwargs):
    return run_vm(
        workload,
        input_name,
        persistence=PersistenceConfig(database=db, **kwargs),
        vm_config=VMConfig(dispatch_mode="compiled"),
    )


def observable(result):
    return (
        result.output,
        result.exit_status,
        result.instructions,
        vars(result.stats),
    )


class TestShardFormat:
    def test_roundtrip(self):
        # Two-tuple values (the pre-cost call shape) pack with cost 0;
        # the parser always hands back (blob, stamp, cost_us) triples.
        entries = {
            digest_for(i): (blob_for("b%d" % i), 100 + i) for i in range(5)
        }
        blob = pack_shard(VM_VERSION, host_code_tag(), entries)
        vm, host, revived = parse_shard(blob)
        assert vm == VM_VERSION and host == host_code_tag()
        assert revived == {
            digest: (body, stamp, 0)
            for digest, (body, stamp) in entries.items()
        }

    def test_roundtrip_preserves_compile_cost(self):
        entries = {
            digest_for(i): (blob_for("b%d" % i), 100 + i, 1000 * i)
            for i in range(5)
        }
        blob = pack_shard(VM_VERSION, host_code_tag(), entries)
        assert parse_shard(blob)[2] == entries

    def test_empty_roundtrip(self):
        blob = pack_shard(VM_VERSION, host_code_tag(), {})
        assert parse_shard(blob)[2] == {}

    def test_every_single_byte_flip_is_detected(self):
        entries = {digest_for(i): (b"body-%d" % i, i) for i in range(3)}
        blob = pack_shard(VM_VERSION, host_code_tag(), entries)
        for offset in range(len(blob)):
            corrupt = bytearray(blob)
            corrupt[offset] ^= 0xFF
            with pytest.raises(SharedStoreError) as excinfo:
                parse_shard(bytes(corrupt))
            assert excinfo.value.section in (
                "preamble", "header", "directory", "body_pool", "trailer",
            ), offset

    def test_truncation_at_every_length_is_detected(self):
        blob = pack_shard(
            VM_VERSION, host_code_tag(), {digest_for(1): (b"x" * 40, 7)}
        )
        for length in range(len(blob)):
            with pytest.raises(SharedStoreError):
                parse_shard(blob[:length])

    def test_verify_shard_maps_damage(self):
        blob = pack_shard(VM_VERSION, host_code_tag(), {digest_for(2): (b"y", 1)})
        assert verify_shard(blob) == {}
        assert verify_shard(blob[:10])


class TestLayout:
    def test_publish_lands_in_prefix_shards(self, store):
        digests = [digest_for(i) for i in (0, 1, 256)]  # 00, 01, 00 again
        store.publish({d: b"blob-" + d.encode() for d in digests})
        pool = os.path.join(
            store.directory, BODIES_DIR, store_keytag(VM_VERSION)
        )
        shards = sorted(
            name for name in os.listdir(pool) if name.endswith(SHARD_SUFFIX)
        )
        assert shards == ["00.pcs", "01.pcs"]
        # The 00 shard holds both digests with prefix 00.
        _vm, _host, entries = parse_shard(
            store.storage.read_bytes(os.path.join(pool, "00.pcs"))
        )
        assert set(entries) == {digest_for(0), digest_for(256)}

    def test_shard_prefix_is_digest_prefix(self):
        assert shard_prefix("abcdef") == "abcdef"[:SHARD_PREFIX_LEN]

    def test_is_shared_store_discriminates(self, store, tmp_path):
        assert is_shared_store(store.directory)
        db = CacheDatabase(str(tmp_path / "db"))
        assert not is_shared_store(db.directory)


class TestLookupPublish:
    def test_store_retrieve_roundtrip(self, store):
        blobs = {digest_for(i): b"body-%d" % i for i in range(20)}
        result = store.publish(blobs)
        assert result.published == 20
        assert result.evicted == 0
        for digest, blob in blobs.items():
            assert store.lookup(digest) == blob
        assert store.lookup(digest_for(999)) is None

    def test_republish_refreshes_not_duplicates(self, store):
        clock = iter([100, 200]).__next__
        store.clock = clock
        store.publish({digest_for(1): b"one"})
        result = store.publish({digest_for(1): b"ignored"})
        assert result.published == 0
        assert result.refreshed == 1
        # Content addressing: the original bytes win.
        assert store.lookup(digest_for(1)) == b"one"

    def test_touch_refreshes_stamp(self, store):
        store.clock = iter([100, 200]).__next__
        store.publish({digest_for(1): b"one"})
        store.publish({}, touch=[digest_for(1)])
        _vm, _host, entries = parse_shard(
            store.storage.read_bytes(store.shard_path(shard_prefix(digest_for(1))))
        )
        assert entries[digest_for(1)][1] == 200

    def test_touch_of_absent_digest_is_noop(self, store):
        result = store.publish({}, touch=[digest_for(5)])
        assert result.published == result.refreshed == 0
        assert store.lookup(digest_for(5)) is None

    def test_cross_instance_visibility(self, store, tmp_path):
        """A second process (instance) sees the first's publishes."""
        store.publish({digest_for(3): b"three"})
        other = SharedBodyStore(store.directory, vm_version=VM_VERSION)
        assert other.lookup(digest_for(3)) == b"three"
        # ... and revalidates its cache when the pool changes.
        assert other.lookup(digest_for(4)) is None
        store.publish({digest_for(4): b"four"})
        assert other.lookup(digest_for(4)) == b"four"


class TestCostAwareAdmission:
    """The publish-time storage-cost floor (``publish_min_cost_us``).

    The shared pool is a capped communal resource: admitting a body
    whose host ``compile()`` took less than the floor spends pool bytes
    (and future GC pressure) to save less time than a cache probe
    costs.  The floor defaults to 0 — admit everything, the historical
    behavior — and is tunable per store or via the
    ``REPRO_PUBLISH_MIN_COST_US`` environment variable.
    """

    def test_default_floor_admits_everything(self, store):
        assert store.publish_min_cost_us == 0
        result = store.publish(
            {digest_for(1): b"one", digest_for(2): b"two"},
            costs={digest_for(1): 1},
        )
        assert result.published == 2
        assert result.admission_skipped == 0

    def test_floor_skips_cheap_bodies(self, tmp_path):
        store = SharedBodyStore(
            str(tmp_path / "floored"), vm_version=VM_VERSION,
            publish_min_cost_us=100,
        )
        result = store.publish(
            {digest_for(1): b"cheap", digest_for(2): b"costly"},
            costs={digest_for(1): 99, digest_for(2): 100},
        )
        assert result.published == 1
        assert result.admission_skipped == 1
        assert store.lookup(digest_for(1)) is None
        assert store.lookup(digest_for(2)) == b"costly"

    def test_floor_skips_unmeasured_bodies(self, tmp_path):
        """No recorded cost counts as cost 0: a non-zero floor skips
        bodies that arrived without a measurement (sidecar revives,
        pool healing) rather than guessing."""
        store = SharedBodyStore(
            str(tmp_path / "floored"), vm_version=VM_VERSION,
            publish_min_cost_us=1,
        )
        result = store.publish({digest_for(1): b"unmeasured"})
        assert result.published == 0
        assert result.admission_skipped == 1

    def test_floor_from_environment(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_PUBLISH_MIN_COST_US", "250")
        store = SharedBodyStore(
            str(tmp_path / "env-floored"), vm_version=VM_VERSION
        )
        assert store.publish_min_cost_us == 250
        monkeypatch.setenv("REPRO_PUBLISH_MIN_COST_US", "junk")
        fallback = SharedBodyStore(
            str(tmp_path / "env-junk"), vm_version=VM_VERSION
        )
        assert fallback.publish_min_cost_us == 0

    def test_refresh_preserves_recorded_cost(self, store):
        """Republishing an already-admitted body refreshes its stamp
        but keeps the originally measured cost."""
        digest = digest_for(1)
        store.publish({digest: b"one"}, costs={digest: 500})
        store.publish({digest: b"one"}, costs={digest: 0})
        prefix = shard_prefix(digest)
        record = store._load_shard(prefix)[digest]
        assert record[2] == 500

    def test_session_reports_admission_skips(self, tmp_path, monkeypatch):
        """End to end: a floored pool skips every body of a real run
        and the session report says so; the run itself is unaffected."""
        monkeypatch.setenv("REPRO_PUBLISH_MIN_COST_US", "60000000")
        workload = mini_workload()
        store = SharedBodyStore(
            str(tmp_path / "store"), vm_version=VM_VERSION
        )
        db = CacheDatabase(str(tmp_path / "db"), shared_store=store)
        clear_code_object_cache()
        result = compiled_run(workload, "a", db)
        report = result.persistence_report
        assert report["shared_admission_skipped"] > 0
        assert report["shared_publishes"] == 0
        assert result.exit_status == 0


class TestWholesaleInvalidation:
    def test_other_vm_version_addresses_a_different_pool(self, store):
        store.publish({digest_for(1): b"one"})
        upgraded = SharedBodyStore(
            store.directory, vm_version=VM_VERSION + "-next"
        )
        assert upgraded.lookup(digest_for(1)) is None
        assert store_keytag(VM_VERSION) != store_keytag(VM_VERSION + "-next")

    def test_gc_removes_stale_pools(self, store):
        store.publish({digest_for(1): b"one"})
        upgraded = SharedBodyStore(
            store.directory, vm_version=VM_VERSION + "-next"
        )
        report = upgraded.gc()
        assert report.stale_pools_removed == [store_keytag(VM_VERSION)]
        assert not os.path.isdir(
            os.path.join(store.directory, BODIES_DIR, store_keytag(VM_VERSION))
        )

    def test_foreign_stamps_in_pool_are_quarantined(self, store):
        """A shard hand-moved into the wrong keytag dir is contained."""
        path = store.shard_path("ab")
        store.storage.write_atomic(
            path, pack_shard("other-vm", host_code_tag(), {"ab" + "0" * 62: (b"x", 1)})
        )
        assert store.lookup("ab" + "0" * 62) is None
        assert store.quarantined_count == 1
        assert not os.path.exists(path)


class TestRegistry:
    def test_register_is_idempotent(self, store, tmp_path):
        db_dir = str(tmp_path / "db")
        store.register_database(db_dir)
        store.register_database(db_dir)
        assert store.registered_databases() == [os.path.abspath(db_dir)]

    def test_database_attach_registers(self, store, tmp_path):
        db = CacheDatabase(str(tmp_path / "db"), shared_store=store)
        assert os.path.abspath(db.directory) in store.registered_databases()

    def test_corrupt_registry_quarantined_and_empty(self, store, tmp_path):
        store.register_database(str(tmp_path / "db"))
        with open(os.path.join(store.directory, "registry.json"), "wb") as fh:
            fh.write(b"{not json")
        assert store.registered_databases() == []
        assert store.quarantined_count == 1
        # Re-registration heals it.
        store.register_database(str(tmp_path / "db"))
        assert store.registered_databases() == [
            os.path.abspath(str(tmp_path / "db"))
        ]


def write_reference_index(db_dir, digests, vm_version=VM_VERSION):
    """Give a database directory a private sidecar referencing digests."""
    os.makedirs(db_dir, exist_ok=True)
    sidecar = CompiledBodyStore(vm_version=vm_version)
    for digest in digests:
        sidecar.record_bytes(digest, b"referenced-" + digest.encode())
    with open(os.path.join(db_dir, SIDECAR_NAME), "wb") as fh:
        fh.write(sidecar.to_bytes())


class TestGC:
    def test_mark_and_sweep_never_evicts_referenced(self, store, tmp_path):
        referenced = [digest_for(i) for i in range(10)]
        garbage = [digest_for(i) for i in range(100, 110)]
        store.publish({d: b"R" + d.encode() for d in referenced})
        store.publish({d: b"G" + d.encode() for d in garbage})
        db_dir = str(tmp_path / "db")
        write_reference_index(db_dir, referenced)
        store.register_database(db_dir)
        report = store.gc()
        assert report.referenced == 10
        assert report.swept_entries == 10
        assert report.remaining_entries == 10
        for digest in referenced:
            assert store.lookup(digest) == b"R" + digest.encode()
        for digest in garbage:
            assert store.lookup(digest) is None

    def test_unregistered_database_protects_nothing(self, store, tmp_path):
        store.publish({digest_for(1): b"one"})
        write_reference_index(str(tmp_path / "db"), [digest_for(1)])
        # db never registered: its references are invisible to the mark.
        report = store.gc()
        assert report.swept_entries == 1
        assert store.lookup(digest_for(1)) is None

    def test_stale_reference_index_references_nothing(self, store, tmp_path):
        store.publish({digest_for(1): b"one"})
        db_dir = str(tmp_path / "db")
        write_reference_index(db_dir, [digest_for(1)], vm_version="old-vm")
        store.register_database(db_dir)
        report = store.gc()
        assert report.referenced == 0
        assert report.swept_entries == 1

    def test_unreadable_index_is_reported_not_fatal(self, store, tmp_path):
        store.publish({digest_for(1): b"one"})
        db_dir = str(tmp_path / "db")
        os.makedirs(db_dir)
        with open(os.path.join(db_dir, SIDECAR_NAME), "wb") as fh:
            fh.write(b"garbage")
        store.register_database(db_dir)
        report = store.gc()
        assert report.unreadable_indexes == [os.path.abspath(db_dir)]

    def test_lru_cap_evicts_oldest_first(self, store, tmp_path):
        stamps = iter([10, 20, 30, 1000]).__next__
        store.clock = stamps
        for i, size in ((1, 100), (2, 100), (3, 100)):
            store.publish({digest_for(i): bytes(size)})
        db_dir = str(tmp_path / "db")
        write_reference_index(db_dir, [digest_for(i) for i in (1, 2, 3)])
        store.register_database(db_dir)
        report = store.gc(max_bytes=200)
        # Oldest stamp (digest 1, published at t=10) goes first.
        assert report.lru_evicted_entries == 1
        assert report.lru_evicted_bytes == 100
        assert store.lookup(digest_for(1)) is None
        assert store.lookup(digest_for(2)) is not None
        assert store.lookup(digest_for(3)) is not None
        assert report.remaining_bytes <= 200

    def test_touch_protects_from_lru(self, store, tmp_path):
        store.clock = iter([10, 20, 500, 1000]).__next__
        store.publish({digest_for(1): bytes(100)})     # t=10
        store.publish({digest_for(2): bytes(100)})     # t=20
        store.publish({}, touch=[digest_for(1)])       # t=500: 1 is now newer
        db_dir = str(tmp_path / "db")
        write_reference_index(db_dir, [digest_for(1), digest_for(2)])
        store.register_database(db_dir)
        store.gc(max_bytes=100)
        assert store.lookup(digest_for(1)) is not None
        assert store.lookup(digest_for(2)) is None

    def test_publish_enforces_configured_cap(self, tmp_path):
        store = SharedBodyStore(
            str(tmp_path / "capped"), vm_version=VM_VERSION, max_bytes=250
        )
        store.clock = iter(range(100, 200)).__next__
        result = store.publish({digest_for(i): bytes(100) for i in range(3)})
        assert result.evicted == 1
        assert store.total_bytes() <= 250

    def test_gc_report_is_machine_readable(self, store):
        report = store.gc()
        payload = json.loads(json.dumps(report.to_dict()))
        for key in (
            "referenced", "scanned_entries", "swept_entries",
            "lru_evicted_entries", "remaining_bytes", "stale_pools_removed",
            "registered_databases", "unreadable_indexes",
        ):
            assert key in payload


class TestChainedFallbackOrder:
    def make_private(self, digests):
        private = CompiledBodyStore(vm_version=VM_VERSION)
        for digest in digests:
            private.record_bytes(digest, blob_for("private-" + digest))
        private.dirty = False
        private.new_entries = 0
        return private

    def test_shared_serves_before_private(self, store):
        digest = digest_for(1)
        store.publish({digest: blob_for("shared")})
        private = self.make_private([digest])
        chained = ChainedBodyStore(shared=store, private=private)
        code = chained.lookup_code(digest)
        namespace = {}
        exec(code, namespace)
        assert namespace["_make"]() == "shared"
        assert chained.shared_hits == 1
        assert chained.shared_misses == 0

    def test_private_answers_a_shared_miss_and_heals_the_pool(self, store):
        digest = digest_for(2)
        private = self.make_private([digest])
        chained = ChainedBodyStore(shared=store, private=private)
        code = chained.lookup_code(digest)
        assert code is not None
        assert chained.shared_hits == 0
        assert chained.shared_misses == 1
        # The private hit is scheduled for publication.
        assert digest in chained.pending_publish()
        store.publish(chained.pending_publish())
        assert store.lookup(digest) == private.entries[digest]

    def test_chained_miss_returns_none(self, store):
        chained = ChainedBodyStore(shared=store, private=self.make_private([]))
        assert chained.lookup_code(digest_for(3)) is None
        assert chained.shared_misses == 1

    def test_shared_hit_feeds_the_private_reference_index(self, store):
        digest = digest_for(4)
        store.publish({digest: blob_for("pool")})
        private = self.make_private([])
        chained = ChainedBodyStore(shared=store, private=private)
        assert chained.lookup_code(digest) is not None
        # The database's own sidecar learned the body: it is now both a
        # local fallback and a gc mark root for this digest.
        assert digest in private.entries
        assert digest in chained.touched()

    def test_record_bytes_feeds_both_layers(self, store):
        private = self.make_private([])
        chained = ChainedBodyStore(shared=store, private=private)
        chained.record_bytes(digest_for(5), b"fresh")
        assert digest_for(5) in private.entries
        assert chained.pending_publish() == {digest_for(5): b"fresh"}
        assert chained.dirty

    def test_works_without_private_layer(self, store):
        digest = digest_for(6)
        store.publish({digest: blob_for("only-shared")})
        chained = ChainedBodyStore(shared=store, private=None)
        assert chained.lookup_code(digest) is not None
        assert chained.lookup_code(digest_for(7)) is None

    def test_unmarshalable_pool_blob_falls_through(self, store):
        digest = digest_for(8)
        store.publish({digest: b"\x00not marshal\xff"})
        private = self.make_private([digest])
        chained = ChainedBodyStore(shared=store, private=private)
        assert chained.lookup_code(digest) is not None  # private answered
        assert chained.shared_hits == 0


class TestEndToEnd:
    def test_db_a_warms_db_b(self, tmp_path):
        """The acceptance scenario: a database that never ran a workload
        performs zero host compile()s because another database on the
        host already published the bodies."""
        workload = mini_workload()
        store = SharedBodyStore(str(tmp_path / "store"), vm_version=VM_VERSION)
        db_a = CacheDatabase(str(tmp_path / "db-a"), shared_store=store)
        clear_code_object_cache()
        cold = compiled_run(workload, "a", db_a)
        assert cold.persistence_report["shared_store_state"] == "attached"
        assert cold.persistence_report["shared_publishes"] > 0
        assert cold.persistence_report["sidecar_host_compiles"] > 0

        db_b = CacheDatabase(str(tmp_path / "db-b"), shared_store=store)
        clear_code_object_cache()
        warm = compiled_run(workload, "a", db_b)
        assert warm.persistence_report["shared_hits"] > 0
        assert warm.persistence_report["sidecar_host_compiles"] == 0
        # DB-B never saw the workload: it still translates (cold trace
        # cache) but revives every compiled body from the pool.
        assert warm.stats.traces_translated > 0
        assert (warm.output, warm.exit_status) == (cold.output, cold.exit_status)

    def test_shared_store_is_observably_inert(self, tmp_path):
        """Attaching the store must not move anything the simulation
        observes — it is host-side memoization, like the sidecar."""
        workload = mini_workload()
        signatures = {}
        for flag in (True, False):
            store = (
                SharedBodyStore(
                    str(tmp_path / ("s%s" % flag)), vm_version=VM_VERSION
                )
                if flag else None
            )
            db = CacheDatabase(
                str(tmp_path / ("db-%s" % flag)), shared_store=store
            )
            clear_code_object_cache()
            signatures[flag] = [
                observable(compiled_run(workload, "a", db)) for _ in range(2)
            ]
        assert signatures[True] == signatures[False]

    def test_gc_then_revive_recovers_via_private_sidecar(self, tmp_path):
        """A pool swept out from under a database degrades to the
        private sidecar — still zero host compiles."""
        workload = mini_workload()
        store = SharedBodyStore(str(tmp_path / "store"), vm_version=VM_VERSION)
        db = CacheDatabase(str(tmp_path / "db"), shared_store=store)
        clear_code_object_cache()
        compiled_run(workload, "a", db)
        # Unregister-by-wipe: nuke the pool entirely.
        import shutil

        shutil.rmtree(os.path.join(store.directory, BODIES_DIR))
        clear_code_object_cache()
        warm = compiled_run(workload, "a", db)
        assert warm.persistence_report["shared_hits"] == 0
        assert warm.persistence_report["sidecar_hits"] > 0
        assert warm.persistence_report["sidecar_host_compiles"] == 0
        # ... and the private hits healed the pool for the next database.
        assert warm.persistence_report["shared_publishes"] > 0

    def test_stale_store_object_is_not_attached(self, tmp_path):
        workload = mini_workload()
        store = SharedBodyStore(
            str(tmp_path / "store"), vm_version="repro-dbi-99.0.0"
        )
        db = CacheDatabase(str(tmp_path / "db"), shared_store=store)
        clear_code_object_cache()
        result = compiled_run(workload, "a", db)
        assert result.persistence_report["shared_store_state"] == "stale-vm"
        assert result.persistence_report["shared_publishes"] == 0

    def test_session_config_overrides_database_store(self, tmp_path):
        workload = mini_workload()
        db_store = SharedBodyStore(str(tmp_path / "dbstore"), vm_version=VM_VERSION)
        session_store = SharedBodyStore(
            str(tmp_path / "sessionstore"), vm_version=VM_VERSION
        )
        db = CacheDatabase(str(tmp_path / "db"), shared_store=db_store)
        clear_code_object_cache()
        run_vm(
            workload, "a",
            persistence=PersistenceConfig(
                database=db, shared_store=session_store
            ),
            vm_config=VMConfig(dispatch_mode="compiled"),
        )
        assert session_store.total_entries() > 0
        assert db_store.total_entries() == 0


def shard_snapshot(store):
    """Every digest in the pool -> (blob bytes, LRU stamp)."""
    out = {}
    for prefix in store._shard_prefixes():
        for digest, record in store._load_shard(prefix).items():
            out[digest] = (len(record[0]), record[1])
    return out


class TestReadOnlyLruProtection:
    def test_readonly_consumer_touch_protects_working_set(self, tmp_path):
        """A read-only consumer's hot bodies must not starve under the
        LRU cap.

        Read-only write-back used to return before any publish, so a
        consumer's shared hits never refreshed their LRU stamps: its
        working set kept the stamps of whoever published it and was
        evicted *first* by ``gc --max-bytes``, precisely backwards.
        Now the read-only path publishes touch-only stamp refreshes (no
        bodies, no sidecar write), so recently *used* beats recently
        *published*.
        """
        workload = mini_workload()
        store = SharedBodyStore(str(tmp_path / "store"), vm_version=VM_VERSION)
        current = [1000]
        store.clock = lambda: current[0]

        # Donor X publishes working set A (input "a") at t=1000.
        db_x = CacheDatabase(str(tmp_path / "db-x"), shared_store=store)
        clear_code_object_cache()
        compiled_run(workload, "a", db_x)
        set_a = set(shard_snapshot(store))

        # Donor Y publishes working set B (input "b") at t=2000.
        current[0] = 2000
        db_y = CacheDatabase(str(tmp_path / "db-y"), shared_store=store)
        clear_code_object_cache()
        compiled_run(workload, "b", db_y)
        set_b_only = set(shard_snapshot(store)) - set_a
        assert set_b_only  # the two working sets genuinely differ

        # Read-only consumer re-runs input "a" at t=3000: every body it
        # revives gets a touch-only stamp refresh, nothing else.
        current[0] = 3000
        consumer_dir = str(tmp_path / "db-c")
        db_c = CacheDatabase(consumer_dir)
        clear_code_object_cache()
        warm = compiled_run(
            workload, "a", db_c, readonly=True, shared_store=store
        )
        report = warm.persistence_report
        assert report["shared_hits"] > 0
        assert report["sidecar_host_compiles"] == 0
        assert report["shared_touch_refreshes"] > 0
        # Read-only means read-only: the consumer database wrote no
        # sidecar (its revives must not turn into local state).
        assert not os.path.exists(os.path.join(consumer_dir, SIDECAR_NAME))

        stamps = shard_snapshot(store)
        assert all(stamps[d][1] == 3000 for d in set_a)

        # Cap the pool at exactly the consumer's working set: the LRU
        # must shed donor Y's unused bodies (t=2000), not set A.
        bytes_a = sum(stamps[d][0] for d in set_a)
        gc_report = store.gc(max_bytes=bytes_a)
        assert gc_report.lru_evicted_entries > 0
        remaining = set(shard_snapshot(store))
        assert set_a <= remaining
        assert not (set_b_only & remaining)


class TestCli:
    def test_cache_gc_json_roundtrip(self, tmp_path, capsys):
        from repro.cli import main

        store = SharedBodyStore(str(tmp_path / "store"), vm_version=VM_VERSION)
        store.publish({digest_for(1): b"one"})
        exit_code = main(["cache", "gc", store.directory, "--json"])
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["swept_entries"] == 1  # nothing registered

    def test_cache_gc_registers_extra_databases(self, tmp_path, capsys):
        from repro.cli import main

        store = SharedBodyStore(str(tmp_path / "store"), vm_version=VM_VERSION)
        store.publish({digest_for(1): b"referenced-" + digest_for(1).encode()})
        db_dir = str(tmp_path / "db")
        write_reference_index(db_dir, [digest_for(1)])
        exit_code = main(
            ["cache", "gc", store.directory, "--db", db_dir, "--json"]
        )
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["referenced"] == 1
        assert payload["swept_entries"] == 0

    def test_cache_fsck_on_store_clean_and_damaged(self, tmp_path, capsys):
        from repro.cli import main

        store = SharedBodyStore(str(tmp_path / "store"), vm_version=VM_VERSION)
        store.publish({digest_for(1): b"one"})
        assert main(["cache", "fsck", store.directory]) == 0
        out = capsys.readouterr().out
        assert "ok" in out and "clean" in out
        # Flip a byte in the shard: fsck must report damage and exit 1.
        path = store.shard_path(shard_prefix(digest_for(1)))
        blob = bytearray(open(path, "rb").read())
        blob[-2] ^= 0xFF
        with open(path, "wb") as fh:
            fh.write(bytes(blob))
        assert main(["cache", "fsck", store.directory]) == 1
        assert "corrupt" in capsys.readouterr().out

    def test_cache_fsck_quarantines_damaged_shard(self, tmp_path, capsys):
        from repro.cli import main

        store = SharedBodyStore(str(tmp_path / "store"), vm_version=VM_VERSION)
        store.publish({digest_for(1): b"one"})
        path = store.shard_path(shard_prefix(digest_for(1)))
        blob = bytearray(open(path, "rb").read())
        blob[5] ^= 0xFF
        with open(path, "wb") as fh:
            fh.write(bytes(blob))
        assert main(["cache", "fsck", store.directory, "--quarantine"]) == 1
        assert "quarantined:" in capsys.readouterr().out
        assert not os.path.exists(path)
        assert os.listdir(os.path.join(store.directory, QUARANTINE_DIR))

    def test_fsck_notes_stale_pool(self, tmp_path, capsys):
        from repro.cli import main

        old = SharedBodyStore(str(tmp_path / "store"), vm_version="old-vm")
        old.publish({digest_for(1): b"one"})
        assert main(["cache", "fsck", str(tmp_path / "store")]) == 0
        out = capsys.readouterr().out
        assert "note:" in out and "stale-keytag" in out
