"""Tests for the static pre-translation utility (paper §5 comparison)."""

import pytest

from repro.binfmt.image import ImageKind
from repro.loader.linker import ImageStore, load_process
from repro.persist.pretranslate import (
    pretranslate_image,
    pretranslate_process,
)
from repro.tools import MemTraceTool

from tests.conftest import TINY_PROGRAM, image_from_asm


@pytest.fixture
def tiny():
    return image_from_asm(TINY_PROGRAM)


class TestPretranslateImage:
    def test_covers_whole_text(self, tiny):
        result = pretranslate_image(tiny)
        assert result.original_code_bytes == tiny.section(".text").size
        assert result.traces >= 1
        assert result.compile_cycles > 0

    def test_expansion(self, tiny):
        result = pretranslate_image(tiny)
        # Translated code alone exceeds the original (exit stubs).
        assert result.translated_code_bytes > result.original_code_bytes
        # Data structures push total expansion well past 2x.
        assert result.expansion_factor > 2.0

    def test_instrumentation_grows_output(self, tiny):
        from repro.tools import BBCountTool

        plain = pretranslate_image(tiny)
        instrumented = pretranslate_image(tiny, tool=BBCountTool())
        assert instrumented.total_bytes > plain.total_bytes
        assert instrumented.compile_cycles > plain.compile_cycles

    def test_memtrace_grows_memory_heavy_code(self):
        image = image_from_asm(
            """
            main:
                st  t1, 0(sp)
                ld  t2, 0(sp)
                st  t2, 8(sp)
                halt
            """
        )
        plain = pretranslate_image(image)
        instrumented = pretranslate_image(image, tool=MemTraceTool())
        assert instrumented.total_bytes > plain.total_bytes

    def test_trace_limit_respected(self, tiny):
        fine = pretranslate_image(tiny, max_trace_insts=2)
        coarse = pretranslate_image(tiny, max_trace_insts=24)
        assert fine.traces >= coarse.traces
        assert fine.original_code_bytes == coarse.original_code_bytes


class TestPretranslateProcess:
    def test_includes_libraries(self):
        lib = image_from_asm(
            "libp_fn:\n    addi t1, t1, 1\n    ret\n",
            path="libp.so",
            kind=ImageKind.SHARED_LIBRARY,
        )
        main = image_from_asm(
            "main:\n    call libp_fn\n    halt\n", needed=["libp.so"]
        )
        process = load_process(main, ImageStore({lib.path: lib}))
        total = pretranslate_process(process)
        app_only = pretranslate_image(main)
        assert total.original_code_bytes > app_only.original_code_bytes
        assert total.traces > app_only.traces

    def test_merge_accumulates(self, tiny):
        a = pretranslate_image(tiny)
        b = pretranslate_image(tiny)
        total_traces = a.traces + b.traces
        a.merge(b)
        assert a.traces == total_traces

    def test_zero_code(self):
        from repro.persist.pretranslate import PretranslationResult

        assert PretranslationResult().expansion_factor == 0.0
