"""Multi-process tests for ``repro prewarm`` (:mod:`repro.persist.prewarm`).

Prewarming is the one workflow whose *normal* mode is several real
processes hammering one database directory and one shared store at
once, so the tests here run the real pool (fork context, module-level
workers) rather than mocking it:

* **completeness** — after a parallel prewarm, a warm re-run of the
  whole corpus performs zero host ``compile()`` calls (the invariant
  ``repro prewarm --verify`` gates);
* **job accounting** — every app lands in exactly one job slice and the
  per-job reports cover the corpus;
* **interrupt hygiene** — a KeyboardInterrupt mid-pool terminates and
  joins the workers before propagating (no orphaned processes), checked
  against a stub pool so the test is deterministic.

Job counts default to 2 and can be raised for stress runs via
``REPRO_STRESS_PREWARM_JOBS``.
"""

import os

import pytest

from repro.persist.prewarm import (
    PrewarmError,
    _run_jobs,
    corpus_app_names,
    run_prewarm,
    verify_warm,
)
from repro.workloads.warmup import TINY_APPS

JOBS = int(os.environ.get("REPRO_STRESS_PREWARM_JOBS", "2"))


def test_parallel_prewarm_leaves_nothing_to_compile(tmp_path):
    """The acceptance invariant: prewarm with real worker processes,
    then a warm in-process re-run compiles nothing."""
    db_dir = str(tmp_path / "db")
    store_dir = str(tmp_path / "store")
    report = run_prewarm(
        db_dir, jobs=JOBS, corpus="tiny",
        shared_store_dir=store_dir, verify=True,
    )
    assert report.jobs == JOBS
    assert report.apps == len(TINY_APPS)
    assert report.compiled > 0
    assert report.admitted > 0
    assert report.verify_host_compiles == 0
    # Every app ran in exactly one job slice.
    assigned = [app for job in report.job_reports for app in job.apps]
    assert sorted(assigned) == sorted(TINY_APPS)
    # An explicit second verify pass agrees (fresh in-process memo).
    assert verify_warm(db_dir, "tiny", store_dir) == 0


def test_second_prewarm_is_all_hits(tmp_path):
    """Re-prewarming a warm database compiles nothing and publishes
    nothing new — the idempotence a cron-driven prewarm relies on."""
    db_dir = str(tmp_path / "db")
    store_dir = str(tmp_path / "store")
    run_prewarm(db_dir, jobs=JOBS, corpus="tiny",
                shared_store_dir=store_dir)
    again = run_prewarm(db_dir, jobs=JOBS, corpus="tiny",
                        shared_store_dir=store_dir)
    assert again.compiled == 0
    assert again.skipped > 0
    assert again.admitted == 0


def test_jobs_above_corpus_size_degrade_gracefully(tmp_path):
    """More jobs than apps: the pool shrinks to the work available."""
    report = run_prewarm(
        str(tmp_path / "db"), jobs=len(TINY_APPS) + 3, corpus="tiny",
    )
    assert report.compiled > 0
    assert len(report.job_reports) == len(TINY_APPS)
    assert verify_warm(str(tmp_path / "db"), "tiny") == 0


def test_invalid_inputs_rejected(tmp_path):
    with pytest.raises(PrewarmError):
        run_prewarm(str(tmp_path / "db"), jobs=0, corpus="tiny")
    with pytest.raises(PrewarmError):
        corpus_app_names("nonexistent")


def test_cli_json_report_round_trips(tmp_path, capsys):
    """``repro prewarm --json`` emits the machine-readable report."""
    import json

    from repro.cli import main

    assert main(["prewarm", "--pcache", str(tmp_path / "db"),
                 "--corpus", "tiny", "--json"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["corpus"] == "tiny"
    assert report["compiled"] > 0
    assigned = [app for job in report["job_reports"] for app in job["apps"]]
    assert sorted(assigned) == sorted(TINY_APPS)


class StubPool:
    """Records the shutdown protocol ``_run_jobs`` drives."""

    def __init__(self, error=None):
        self.error = error
        self.calls = []

    def map(self, fn, work):
        self.calls.append("map")
        if self.error is not None:
            raise self.error
        return [fn(item) for item in work]

    def close(self):
        self.calls.append("close")

    def terminate(self):
        self.calls.append("terminate")

    def join(self):
        self.calls.append("join")


def test_keyboard_interrupt_terminates_pool():
    """^C mid-prewarm must terminate (not drain) and join the pool
    before the interrupt propagates to the caller."""
    pool = StubPool(error=KeyboardInterrupt())
    with pytest.raises(KeyboardInterrupt):
        _run_jobs([("task",)], jobs=2, pool_factory=lambda n: pool)
    assert pool.calls == ["map", "terminate", "join"]


def test_clean_run_closes_pool():
    pool = StubPool()
    sentinel = []

    def fake_worker(task):
        sentinel.append(task)
        return {"job": 0, "apps": [], "traces_persisted": 0,
                "host_compiles": 0, "sidecar_hits": 0, "shared_hits": 0,
                "shared_publishes": 0, "admission_skipped": 0,
                "wall_s": 0.0}

    import repro.persist.prewarm as prewarm_module
    original = prewarm_module._prewarm_worker
    prewarm_module._prewarm_worker = fake_worker
    try:
        results = _run_jobs([("a",), ("b",)], jobs=2,
                            pool_factory=lambda n: pool)
    finally:
        prewarm_module._prewarm_worker = original
    assert len(results) == 2
    assert pool.calls == ["map", "close", "join"]
    assert sentinel == [("a",), ("b",)]
