"""Differential suite for the per-host cache-server daemon.

The daemon must be a *drop-in* for the flock-backed shared store: a
session cannot tell which transport served it — not in its observable
run (output, exit status, ``VMStats``), not in its persistence report
(minus the transport counters themselves).  And the PR 4 acceptance
invariant — a never-warmed database attached to a warm pool does zero
host compiles — must now hold over the socket.
"""

from __future__ import annotations

import os

import pytest

from repro.persist.cacheserver import (
    CacheServer,
    default_socket_path,
    pack_frame,
    parse_frame,
)
from repro.persist.daemon import (
    DaemonBackedStore,
    DaemonClient,
    DaemonError,
    resolve_shared_store,
)
from repro.persist.database import CacheDatabase
from repro.persist.manager import PersistenceConfig
from repro.persist.sharedstore import SharedBodyStore
from repro.vm.compile import clear_code_object_cache
from repro.vm.engine import VM_VERSION, VMConfig
from repro.workloads.harness import run_vm

from tests.test_persist_manager import mini_workload

#: Report keys that name the transport itself; everything else must be
#: equal between a daemon-backed and a file-backed session.
TRANSPORT_KEYS = {"shared_transport", "daemon_rpcs", "daemon_fallbacks"}


def digest_for(i: int) -> str:
    return "%02x%062x" % (i % 8, i)


def blob_for(i: int) -> bytes:
    return b"body-%d" % i


class FakeClock:
    def __init__(self, now: int = 1_000):
        self.now = now

    def __call__(self) -> float:
        return float(self.now)


def run_session(workload, input_name, db_dir, shared=None, readonly=False):
    """One compiled-tier session with a cleared in-process memo, so
    every revive must come from a store (or be recompiled)."""
    clear_code_object_cache()
    return run_vm(
        workload,
        input_name,
        persistence=PersistenceConfig(
            database=CacheDatabase(db_dir),
            readonly=readonly,
            shared_store=shared,
        ),
        vm_config=VMConfig(dispatch_mode="compiled"),
    )


def observable(result) -> tuple:
    return (
        result.output,
        result.exit_status,
        result.instructions,
        vars(result.stats),
    )


def warm_store(store_dir: str, tmp_path, tag: str) -> None:
    """Donor run: publish every compiled body of the corpus to
    ``store_dir`` through the flock path (the source of truth)."""
    workload = mini_workload()
    shared = SharedBodyStore(store_dir, vm_version=VM_VERSION)
    donor_db = str(tmp_path / ("donor-" + tag))
    for input_name in sorted(workload.inputs):
        run_session(workload, input_name, donor_db, shared=shared)


@pytest.fixture
def warm_server(tmp_path):
    store_dir = str(tmp_path / "store")
    warm_store(store_dir, tmp_path, "srv")
    server = CacheServer(store_dir, vm_version=VM_VERSION)
    server.start()
    yield server, store_dir
    server.stop()


class TestDifferential:
    def test_daemon_file_and_nostore_sessions_identical(
        self, warm_server, tmp_path
    ):
        """The transport (or its absence) never changes one observable."""
        server, store_dir = warm_server
        workload = mini_workload()
        observables = {}
        for mode in ("nostore", "file", "daemon"):
            runs = []
            for input_name in sorted(workload.inputs):
                if mode == "nostore":
                    shared = None
                elif mode == "file":
                    shared = SharedBodyStore(store_dir,
                                             vm_version=VM_VERSION)
                else:
                    shared = DaemonBackedStore(store_dir, VM_VERSION)
                    assert shared.transport == "daemon"
                result = run_session(
                    workload, input_name,
                    str(tmp_path / ("db-%s-%s" % (mode, input_name))),
                    shared=shared, readonly=True,
                )
                runs.append(observable(result))
            observables[mode] = runs
        assert observables["daemon"] == observables["file"]
        assert observables["daemon"] == observables["nostore"]

    def test_reports_identical_modulo_transport_fields(self, tmp_path):
        """Field-for-field report parity: publish counts, hit counts,
        refresh counts — the daemon replicates the flock store's exact
        accounting, on the donor (cold, publishing) side as well as the
        consumer (warm, reviving) side."""
        workload = mini_workload()
        reports = {}
        for mode in ("file", "daemon"):
            store_dir = str(tmp_path / ("store-" + mode))
            server = None
            if mode == "daemon":
                server = CacheServer(store_dir, vm_version=VM_VERSION)
                server.start()
            try:
                def attach():
                    if mode == "daemon":
                        store = DaemonBackedStore(store_dir, VM_VERSION)
                        assert store.transport == "daemon"
                        return store
                    return SharedBodyStore(store_dir,
                                           vm_version=VM_VERSION)

                runs = []
                donor_db = str(tmp_path / ("donor-" + mode))
                for input_name in sorted(workload.inputs):
                    runs.append(run_session(
                        workload, input_name, donor_db, shared=attach()
                    ).persistence_report)
                for input_name in sorted(workload.inputs):
                    runs.append(run_session(
                        workload, input_name,
                        str(tmp_path / ("consumer-%s-%s"
                                        % (mode, input_name))),
                        shared=attach(), readonly=True,
                    ).persistence_report)
                reports[mode] = runs
            finally:
                if server is not None:
                    server.stop()
        for file_report, daemon_report in zip(reports["file"],
                                              reports["daemon"]):
            stripped_file = {k: v for k, v in file_report.items()
                             if k not in TRANSPORT_KEYS}
            stripped_daemon = {k: v for k, v in daemon_report.items()
                               if k not in TRANSPORT_KEYS}
            assert stripped_file == stripped_daemon
        assert all(r["shared_transport"] == "daemon"
                   for r in reports["daemon"])
        assert all(r["daemon_fallbacks"] == 0 for r in reports["daemon"])

    def test_never_warmed_db_zero_compiles_over_socket(
        self, warm_server, tmp_path
    ):
        """The PR 4 invariant over the socket: an empty database
        attached to a warm daemon revives everything and compiles
        nothing — and the isolated control actually pays compiles, so
        zero is meaningful."""
        _server, store_dir = warm_server
        workload = mini_workload()
        isolated_compiles = warm_compiles = 0
        shared_hits = rpcs = 0
        for input_name in sorted(workload.inputs):
            control = run_session(
                workload, input_name,
                str(tmp_path / ("isolated-" + input_name)), readonly=True,
            ).persistence_report
            isolated_compiles += control["sidecar_host_compiles"]
            store = DaemonBackedStore(store_dir, VM_VERSION)
            report = run_session(
                workload, input_name,
                str(tmp_path / ("warm-" + input_name)),
                shared=store, readonly=True,
            ).persistence_report
            warm_compiles += report["sidecar_host_compiles"]
            shared_hits += report["shared_hits"]
            rpcs += report["daemon_rpcs"]
            assert report["shared_transport"] == "daemon"
        assert isolated_compiles > 0
        assert warm_compiles == 0
        assert shared_hits > 0
        assert rpcs > 0


class TestServerSemantics:
    def test_hot_index_loads_existing_shards(self, tmp_path):
        store_dir = str(tmp_path / "store")
        store = SharedBodyStore(store_dir, vm_version=VM_VERSION)
        store.publish({digest_for(i): blob_for(i) for i in range(20)})
        server = CacheServer(store_dir, vm_version=VM_VERSION)
        hot = server.hot_entries()
        assert len(hot) == 20
        assert hot[digest_for(3)][0] == blob_for(3)

    def test_lookup_heals_from_disk_behind_daemons_back(self, tmp_path):
        """A body published straight to the files while the daemon runs
        (a mixed fleet) is adopted on first socket miss."""
        store_dir = str(tmp_path / "store")
        server = CacheServer(store_dir, vm_version=VM_VERSION)
        SharedBodyStore(store_dir, vm_version=VM_VERSION).publish(
            {digest_for(1): blob_for(1)}
        )
        assert digest_for(1) not in server.hot_entries()
        reply = server.handle_frame(pack_frame(
            "lookup", {"digests": [digest_for(1)]}
        ))
        op, meta, entries = parse_frame(reply)
        assert op == "bodies"
        assert entries[digest_for(1)][0] == blob_for(1)
        assert digest_for(1) in server.hot_entries()

    def test_touch_over_socket_refreshes_disk_stamp(self, tmp_path):
        """The read-only session's LRU signal survives the transport:
        touch → hot-index stamp now → write-back refreshes the shard."""
        clock = FakeClock(1_000)
        store_dir = str(tmp_path / "store")
        seed = SharedBodyStore(store_dir, vm_version=VM_VERSION,
                               clock=clock)
        seed.publish({digest_for(1): blob_for(1)})
        server = CacheServer(store_dir, vm_version=VM_VERSION, clock=clock)
        clock.now = 2_000
        op, meta, _ = parse_frame(server.handle_frame(pack_frame(
            "publish", {"touch": [digest_for(1)]}
        )))
        assert op == "published"
        assert meta["refreshed"] == 1
        assert server.flush() is not None
        fresh = SharedBodyStore(store_dir, vm_version=VM_VERSION)
        entries = dict(fresh.iter_entries())
        assert entries[digest_for(1)][1] == 2_000

    def test_touch_of_absent_digest_is_noop(self, tmp_path):
        server = CacheServer(str(tmp_path / "store"),
                             vm_version=VM_VERSION)
        op, meta, _ = parse_frame(server.handle_frame(pack_frame(
            "publish", {"touch": [digest_for(9)]}
        )))
        assert op == "published"
        assert meta["refreshed"] == 0
        assert server.dirty_count() == 0

    def test_key_mismatch_answers_error_and_client_degrades(
        self, tmp_path
    ):
        store_dir = str(tmp_path / "store")
        server = CacheServer(store_dir, vm_version=VM_VERSION)
        server.start()
        try:
            op, meta, _ = parse_frame(server.handle_frame(pack_frame(
                "lookup", {"vm": "other-vm", "digests": [digest_for(1)]}
            )))
            assert op == "error"
            assert meta["reason"] == "key-mismatch"
            # A client keyed differently silently lands on its own
            # file pool (which addresses its own keytag).
            store = DaemonBackedStore(store_dir, "other-vm")
            assert store.transport == "file"
        finally:
            server.stop()

    def test_unsupported_op_answers_error(self, tmp_path):
        server = CacheServer(str(tmp_path / "store"),
                             vm_version=VM_VERSION)
        op, meta, _ = parse_frame(server.handle_frame(pack_frame("quux")))
        assert op == "error"
        assert "unsupported-op" in meta["reason"]

    def test_flush_failure_keeps_dirty_tail(self, tmp_path, monkeypatch):
        server = CacheServer(str(tmp_path / "store"),
                             vm_version=VM_VERSION)
        server.handle_frame(pack_frame(
            "publish", {}, {digest_for(1): (blob_for(1), 0, 10)}
        ))
        assert server.dirty_count() == 1

        def broken_publish(*args, **kwargs):
            raise OSError("disk on fire")

        monkeypatch.setattr(server.store, "publish", broken_publish)
        assert server.flush() is None
        assert server.dirty_count() == 1
        assert server.stats.flush_errors == 1
        monkeypatch.undo()
        result = server.flush()
        assert result is not None and result.published == 1
        assert server.dirty_count() == 0


class TestCostAwareEviction:
    def make_server(self, tmp_path, max_bytes, clock):
        return CacheServer(str(tmp_path / "store"), vm_version=VM_VERSION,
                           max_bytes=max_bytes, clock=clock)

    def publish(self, server, digest, blob, cost):
        server.handle_frame(pack_frame(
            "publish", {}, {digest: (blob, 0, cost)}
        ))

    def test_cheapest_recompile_evicted_first(self, tmp_path):
        clock = FakeClock()
        server = self.make_server(tmp_path, max_bytes=20, clock=clock)
        cheap, pricey, mid = digest_for(1), digest_for(2), digest_for(3)
        self.publish(server, cheap, b"X" * 10, 5)
        self.publish(server, pricey, b"Y" * 10, 100)
        self.publish(server, mid, b"Z" * 10, 50)
        hot = server.hot_entries()
        assert cheap not in hot
        assert pricey in hot and mid in hot
        assert server.stats.evicted == 1

    def test_stamp_breaks_cost_ties(self, tmp_path):
        clock = FakeClock(1_000)
        server = self.make_server(tmp_path, max_bytes=20, clock=clock)
        old, new = digest_for(1), digest_for(2)
        self.publish(server, old, b"A" * 10, 50)
        clock.now = 2_000
        self.publish(server, new, b"B" * 10, 50)
        self.publish(server, digest_for(3), b"C" * 10, 999)
        hot = server.hot_entries()
        assert old not in hot
        assert new in hot

    def test_evicted_dirty_body_never_hits_disk(self, tmp_path):
        clock = FakeClock()
        server = self.make_server(tmp_path, max_bytes=10, clock=clock)
        victim, keeper = digest_for(1), digest_for(2)
        self.publish(server, victim, b"V" * 10, 5)
        self.publish(server, keeper, b"K" * 10, 500)
        assert victim not in server.hot_entries()
        server.flush()
        fresh = SharedBodyStore(str(tmp_path / "store"),
                                vm_version=VM_VERSION)
        assert fresh.lookup(victim) is None
        assert fresh.lookup(keeper) == b"K" * 10


class TestAdmissionParity:
    def test_daemon_applies_the_same_cost_floor(self, tmp_path):
        store_dir = str(tmp_path / "store")
        server = CacheServer(store_dir, vm_version=VM_VERSION,
                             publish_min_cost_us=100)
        op, meta, _ = parse_frame(server.handle_frame(pack_frame(
            "publish", {},
            {digest_for(1): (blob_for(1), 0, 50),
             digest_for(2): (blob_for(2), 0, 150)},
        )))
        assert meta["published"] == 1
        assert meta["admission_skipped"] == 1
        file_result = SharedBodyStore(
            str(tmp_path / "file-store"), vm_version=VM_VERSION,
            publish_min_cost_us=100,
        ).publish(
            {digest_for(1): blob_for(1), digest_for(2): blob_for(2)},
            costs={digest_for(1): 50, digest_for(2): 150},
        )
        assert file_result.published == meta["published"]
        assert file_result.admission_skipped == meta["admission_skipped"]


class TestResolveAndAttach:
    def test_plain_directory_is_file_backed(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DAEMON", raising=False)
        store = resolve_shared_store(str(tmp_path / "s"), VM_VERSION)
        assert isinstance(store, SharedBodyStore)

    def test_daemon_scheme_selects_the_daemon_transport(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.delenv("REPRO_CACHE_DAEMON", raising=False)
        store = resolve_shared_store(
            "daemon://" + str(tmp_path / "s"), VM_VERSION
        )
        assert isinstance(store, DaemonBackedStore)
        assert store.transport == "file"  # nobody listening: fallback
        assert store.address == default_socket_path(str(tmp_path / "s"))

    def test_env_knob_opts_plain_directories_in(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_CACHE_DAEMON", "1")
        store = resolve_shared_store(str(tmp_path / "s"), VM_VERSION)
        assert isinstance(store, DaemonBackedStore)
        assert store.address == default_socket_path(str(tmp_path / "s"))

    def test_env_knob_names_an_explicit_socket(self, tmp_path, monkeypatch):
        socket_path = str(tmp_path / "elsewhere.sock")
        monkeypatch.setenv("REPRO_CACHE_DAEMON", socket_path)
        store = resolve_shared_store(str(tmp_path / "s"), VM_VERSION)
        assert isinstance(store, DaemonBackedStore)
        assert store.address == socket_path

    def test_register_database_is_always_file_level(self, tmp_path):
        store_dir = str(tmp_path / "store")
        server = CacheServer(store_dir, vm_version=VM_VERSION)
        server.start()
        try:
            store = DaemonBackedStore(store_dir, VM_VERSION)
            store.register_database(str(tmp_path / "db"))
        finally:
            server.stop()
        fresh = SharedBodyStore(store_dir, vm_version=VM_VERSION)
        assert str(tmp_path / "db") in fresh.registered_databases()

    def test_second_daemon_refuses_the_socket(self, tmp_path):
        store_dir = str(tmp_path / "store")
        first = CacheServer(store_dir, vm_version=VM_VERSION)
        first.start()
        try:
            second = CacheServer(store_dir, vm_version=VM_VERSION)
            with pytest.raises(OSError, match="already serving"):
                second.start()
        finally:
            first.stop()

    def test_stale_socket_file_is_reclaimed(self, tmp_path):
        store_dir = str(tmp_path / "store")
        os.makedirs(store_dir)
        # A dead daemon's leftover socket file: nobody accepts on it.
        import socket as socket_module

        leftover = socket_module.socket(socket_module.AF_UNIX,
                                        socket_module.SOCK_STREAM)
        leftover.bind(default_socket_path(store_dir))
        leftover.close()
        server = CacheServer(store_dir, vm_version=VM_VERSION)
        server.start()
        try:
            client = DaemonClient(default_socket_path(store_dir),
                                  vm_version=VM_VERSION)
            assert client.ping()["pid"] == os.getpid()
            client.close()
        finally:
            server.stop()


class TestServeCLI:
    def test_detach_status_stop_roundtrip(self, tmp_path, capsys):
        from repro.cli import main

        store_dir = str(tmp_path / "store")
        SharedBodyStore(store_dir, vm_version=VM_VERSION).publish(
            {digest_for(i): blob_for(i) for i in range(4)}
        )
        assert main(["cache", "serve", store_dir, "--detach"]) == 0
        try:
            assert main(["cache", "serve", store_dir, "--status"]) == 0
            out = capsys.readouterr().out
            assert "4 entries" in out
            # A session attaches through the conventional socket.
            store = DaemonBackedStore(store_dir, VM_VERSION)
            assert store.transport == "daemon"
            assert store.lookup(digest_for(2)) == blob_for(2)
            store.close()
        finally:
            assert main(["cache", "serve", store_dir, "--stop"]) == 0
        assert main(["cache", "serve", store_dir, "--status"]) == 1
        assert main(["cache", "fsck", store_dir]) == 0
