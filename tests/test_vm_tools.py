"""Tests for the client API and the example tools."""

import pytest

from repro.loader.linker import load_process
from repro.machine.costs import DEFAULT_COST_MODEL
from repro.machine.cpu import Machine, run_native
from repro.tools import BBCountTool, CoverageTool, InsCountTool, MemTraceTool
from repro.vm.client import NullTool, Tool
from repro.vm.engine import Engine

from tests.conftest import image_from_asm

COUNTING_PROGRAM = """
main:
    movi t0, 25
loop:
    st   t0, 0(sp)
    ld   t1, 0(sp)
    addi t0, t0, -1
    bne  t0, zero, loop
    movi rv, 1
    movi a0, 0
    syscall
"""


def run_with_tool(tool, source=COUNTING_PROGRAM):
    image = image_from_asm(source)
    return Engine(tool=tool).run(load_process(image))


class TestToolIdentity:
    def test_identity_stable(self):
        assert NullTool().identity() == NullTool().identity()

    def test_identity_distinguishes_tools(self):
        assert BBCountTool().identity() != MemTraceTool().identity()

    def test_version_changes_identity(self):
        class V2(BBCountTool):
            version = "2.0"

        assert V2().identity() != BBCountTool().identity()


class TestBBCount:
    def test_counts_match_execution(self):
        tool = BBCountTool()
        result = run_with_tool(tool)
        # The loop-head block re-executes 24 times (the first iteration
        # runs inside the entry trace's leading block).
        assert max(tool.block_counts.values()) == 24
        assert tool.total_blocks_executed() == result.tool_accounting.analysis_calls

    def test_hottest_blocks_sorted(self):
        tool = BBCountTool()
        run_with_tool(tool)
        ranked = tool.hottest_blocks(3)
        counts = [count for _addr, count in ranked]
        assert counts == sorted(counts, reverse=True)

    def test_analysis_cycles_charged(self):
        tool = BBCountTool(work_cycles=3.0)
        result = run_with_tool(tool)
        expected = result.stats.analysis_calls * (
            DEFAULT_COST_MODEL.analysis_call + 3.0
        )
        assert result.stats.analysis_cycles == pytest.approx(expected)

    def test_instrumentation_increases_vm_overhead(self):
        plain = run_with_tool(NullTool())
        instrumented = run_with_tool(BBCountTool())
        assert (
            instrumented.stats.translation_cycles
            > plain.stats.translation_cycles
        )


class TestInsCount:
    def test_counts_close_to_actual(self):
        tool = InsCountTool()
        result = run_with_tool(tool)
        # Trace-granular counting overshoots early-exited traces (like
        # Pin's inscount2): never undercounts, bounded by 2x here.
        assert result.instructions <= tool.count <= 2 * result.instructions


class TestMemTrace:
    def test_counts_loads_and_stores(self):
        tool = MemTraceTool()
        run_with_tool(tool)
        assert tool.reads == 25
        assert tool.writes == 25

    def test_effective_addresses_captured(self):
        tool = MemTraceTool(keep_addresses=10)
        run_with_tool(tool)
        assert tool.recent
        assert len(tool.recent) <= 10
        # All accesses hit the stack region.
        from repro.machine.cpu import STACK_BASE, STACK_SIZE
        assert all(STACK_BASE <= a < STACK_BASE + STACK_SIZE for a in tool.recent)

    def test_total(self):
        tool = MemTraceTool()
        run_with_tool(tool)
        assert tool.total_accesses == 50


class TestCoverageTool:
    def test_covers_whole_footprint(self):
        tool = CoverageTool()
        result = run_with_tool(tool)
        assert tool.covered == result.stats.trace_identities

    def test_bytes_by_image(self):
        tool = CoverageTool()
        run_with_tool(tool)
        by_image = tool.covered_bytes_by_image()
        assert set(by_image) == {"app"}
        assert by_image["app"] == tool.covered_bytes()


class TestLifecycleHooks:
    def test_on_start_and_exit_called(self):
        calls = []

        class HookTool(Tool):
            name = "hook"

            def on_start(self, machine):
                calls.append("start")

            def on_exit(self, machine, exit_status):
                calls.append(("exit", exit_status))

        run_with_tool(HookTool())
        assert calls == ["start", ("exit", 0)]
