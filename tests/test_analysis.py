"""Tests for the measurement and reporting helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.analysis.coverage import (
    average_cross_coverage,
    coverage_fraction,
    coverage_matrix,
    footprint_bytes,
    library_coverage_fraction,
    library_fraction,
)
from repro.analysis.overhead import (
    OverheadBreakdown,
    improvement_percent,
    speedup,
)
from repro.analysis.report import format_bar_chart, format_matrix, format_table
from repro.analysis.timeline import (
    render_timeline,
    startup_dominated,
    summarize_timeline,
)
from repro.vm.stats import VMStats


def ident(path, offset, size=8):
    return (path, offset, size)


class TestCoverage:
    def test_footprint_bytes(self):
        assert footprint_bytes([ident("a", 0, 16), ident("a", 16, 8)]) == 24
        assert footprint_bytes([]) == 0

    def test_coverage_fraction(self):
        a = {ident("x", 0, 10), ident("x", 10, 10)}
        b = {ident("x", 0, 10)}
        assert coverage_fraction(a, b) == 0.5
        assert coverage_fraction(b, a) == 1.0
        assert coverage_fraction(a, a) == 1.0

    def test_empty_covered_is_full(self):
        assert coverage_fraction(set(), {ident("x", 0)}) == 1.0

    def test_matrix_diagonal(self):
        footprints = {
            "i1": {ident("x", 0), ident("x", 8)},
            "i2": {ident("x", 0)},
        }
        matrix = coverage_matrix(footprints)
        assert matrix["i1"]["i1"] == 1.0
        assert matrix["i2"]["i2"] == 1.0
        assert matrix["i1"]["i2"] == 0.5
        assert matrix["i2"]["i1"] == 1.0

    def test_average_cross_coverage(self):
        footprints = {
            "a": {ident("x", 0)},
            "b": {ident("x", 0)},
        }
        assert average_cross_coverage(footprints) == 1.0
        footprints["c"] = {ident("y", 0)}
        assert average_cross_coverage(footprints) < 1.0

    def test_single_input(self):
        assert average_cross_coverage({"a": {ident("x", 0)}}) == 1.0

    def test_library_restriction(self):
        a = {ident("app", 0, 10), ident("libz.so", 0, 10)}
        b = {ident("libz.so", 0, 10)}
        assert library_coverage_fraction(a, b) == 1.0  # lib part fully covered
        assert coverage_fraction(a, b) == 0.5

    def test_library_fraction(self):
        identities = {ident("app", 0, 25), ident("libz.so", 0, 75)}
        assert library_fraction(identities) == 0.75
        assert library_fraction(set()) == 0.0

    @given(
        st.sets(
            st.tuples(
                st.sampled_from(["app", "libx.so"]),
                st.integers(0, 100),
                st.integers(8, 64),
            ),
            max_size=20,
        ),
        st.sets(
            st.tuples(
                st.sampled_from(["app", "libx.so"]),
                st.integers(0, 100),
                st.integers(8, 64),
            ),
            max_size=20,
        ),
    )
    def test_fraction_bounds_property(self, a, b):
        value = coverage_fraction(a, b)
        assert 0.0 <= value <= 1.0
        if a <= b:
            assert value == 1.0


class TestOverhead:
    def test_improvement(self):
        assert improvement_percent(100, 10) == pytest.approx(90.0)
        assert improvement_percent(100, 100) == 0.0
        assert improvement_percent(100, 150) == pytest.approx(-50.0)

    def test_speedup(self):
        assert speedup(400, 100) == pytest.approx(4.0)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            improvement_percent(0, 1)
        with pytest.raises(ValueError):
            speedup(1, 0)

    def test_breakdown(self):
        decomposition = OverheadBreakdown("x", 100.0, 130.0, 70.0)
        assert decomposition.total_vm_cycles == 200.0
        assert decomposition.vm_overhead_fraction == pytest.approx(0.35)
        assert decomposition.to_dict()["total_vm"] == 200.0


class TestTimeline:
    def _stats_with_events(self, timestamps, total=1000.0):
        stats = VMStats()
        stats._total = total
        stats.translation_events = [(t, 0x1000) for t in timestamps]
        return stats

    def test_startup_dominated(self):
        stats = self._stats_with_events([1, 2, 3, 50, 900])
        summary = summarize_timeline(stats)
        assert summary.early_fraction == pytest.approx(4 / 5)
        assert startup_dominated(stats)

    def test_gcc_like_profile_not_startup_dominated(self):
        stats = self._stats_with_events(list(range(0, 1000, 10)))
        assert not startup_dominated(stats)
        summary = summarize_timeline(stats)
        assert summary.late_fraction > 0.4

    def test_decile_counts_sum(self):
        stats = self._stats_with_events([5, 250, 500, 750, 999])
        summary = summarize_timeline(stats)
        assert sum(summary.decile_counts) == 5

    def test_render_width_and_marks(self):
        stats = self._stats_with_events([0, 999])
        row = render_timeline(stats, width=40)
        assert len(row) == 40
        assert row[0] == "|" and row[-1] == "|"
        assert row.count("|") == 2

    def test_empty_run(self):
        stats = VMStats()
        summary = summarize_timeline(stats)
        assert summary.total_events == 0
        assert render_timeline(stats, width=10) == " " * 10


class TestReport:
    def test_format_matrix(self):
        matrix = {"a": {"a": 1.0, "b": 0.5}, "b": {"a": 0.25, "b": 1.0}}
        text = format_matrix(matrix, order=["a", "b"], title="T")
        assert "T" in text
        assert "100%" in text
        assert "50%" in text

    def test_format_table(self):
        rows = [{"name": "x", "value": 1.25}, {"name": "y", "value": 2.0}]
        text = format_table(rows, columns=["name", "value"], title="t")
        assert "name" in text and "1.2" in text

    def test_format_table_missing_cells(self):
        text = format_table([{"a": 1}], columns=["a", "b"])
        assert text

    def test_bar_chart(self):
        text = format_bar_chart({"x": 10.0, "y": 5.0}, title="bars", unit="%")
        lines = text.splitlines()
        assert lines[0] == "bars"
        assert lines[1].count("#") > lines[2].count("#")

    def test_bar_chart_empty(self):
        assert format_bar_chart({}, title="t") == "t"
