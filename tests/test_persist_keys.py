"""Tests for persistent-cache keys."""

from repro.persist.keys import (
    MappingKey,
    cache_lookup_digest,
    mapping_key,
    tool_key,
    vm_key,
)

from tests.conftest import TINY_PROGRAM, image_from_asm


def key_for(**overrides):
    base = dict(path="libx.so", base=0x1000, size=0x400,
                header_digest="abc", mtime=5)
    base.update(overrides)
    return MappingKey(**base)


class TestMappingKey:
    def test_exact_match(self):
        assert key_for().matches(key_for())

    def test_any_component_breaks_match(self):
        reference = key_for()
        assert not reference.matches(key_for(path="liby.so"))
        assert not reference.matches(key_for(base=0x2000))
        assert not reference.matches(key_for(size=0x800))
        assert not reference.matches(key_for(header_digest="zzz"))
        assert not reference.matches(key_for(mtime=6))

    def test_content_match_ignores_base(self):
        assert key_for().matches_content(key_for(base=0x9999))

    def test_content_match_still_checks_binary(self):
        reference = key_for()
        assert not reference.matches_content(key_for(mtime=99))
        assert not reference.matches_content(key_for(header_digest="zzz"))
        assert not reference.matches_content(key_for(path="other.so"))

    def test_json_roundtrip(self):
        key = key_for()
        assert MappingKey.from_json(key.to_json()) == key

    def test_digest_stable(self):
        assert key_for().digest == key_for().digest


class TestKeyDerivation:
    def test_mapping_key_from_image(self):
        image = image_from_asm(TINY_PROGRAM, mtime=42)
        key = mapping_key(image, 0x40_0000)
        assert key.path == "app"
        assert key.base == 0x40_0000
        assert key.size == image.size
        assert key.mtime == 42
        assert key.header_digest == image.header_digest()

    def test_rebuilt_binary_changes_key(self):
        """Modifying a binary (new mtime) invalidates its translations."""
        old = mapping_key(image_from_asm(TINY_PROGRAM, mtime=1), 0x1000)
        new = mapping_key(image_from_asm(TINY_PROGRAM, mtime=2), 0x1000)
        assert not old.matches(new)
        assert not old.matches_content(new)

    def test_vm_and_tool_keys(self):
        assert vm_key("v1") != vm_key("v2")
        assert tool_key("a") != tool_key("b")
        assert vm_key("v1") == vm_key("v1")

    def test_lookup_digest(self):
        image = image_from_asm(TINY_PROGRAM)
        app = mapping_key(image, 0x1000)
        exact = cache_lookup_digest(app, "v1", "t1")
        assert exact == cache_lookup_digest(app, "v1", "t1")
        assert exact != cache_lookup_digest(app, "v2", "t1")
        assert exact != cache_lookup_digest(app, "v1", "t2")
        assert exact != cache_lookup_digest(None, "v1", "t1")
