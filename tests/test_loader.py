"""Tests for address spaces, layouts, and the dynamic linker."""

import pytest
from hypothesis import given, strategies as st

from repro.binfmt.image import ImageKind
from repro.loader.layout import (
    EXECUTABLE_BASE,
    FixedLayout,
    LIBRARY_REGION_START,
    PerturbedLayout,
)
from repro.loader.linker import (
    ImageStore,
    LinkError,
    load_process,
)
from repro.loader.mapper import (
    AddressSpace,
    Mapping,
    MemoryError_,
    WORD_SIZE,
    to_signed_word,
)

from tests.conftest import image_from_asm


def _lib(path: str, body: str = "ret", needed=()):
    return image_from_asm(
        "%s_fn:\n    %s\n" % (path.split(".")[0], body),
        path=path,
        kind=ImageKind.SHARED_LIBRARY,
        needed=needed,
    )


class TestSignedWord:
    def test_identity_in_range(self):
        assert to_signed_word(42) == 42
        assert to_signed_word(-42) == -42

    def test_wraps(self):
        assert to_signed_word(1 << 63) == -(1 << 63)
        assert to_signed_word((1 << 64) + 5) == 5
        assert to_signed_word(-(1 << 63) - 1) == (1 << 63) - 1

    @given(st.integers(-(2**70), 2**70))
    def test_always_in_range(self, value):
        wrapped = to_signed_word(value)
        assert -(1 << 63) <= wrapped < (1 << 63)
        assert (wrapped - value) % (1 << 64) == 0


class TestAddressSpace:
    def test_anonymous_rw(self):
        space = AddressSpace()
        space.map_anonymous(0x1000, 256, name="x")
        space.write_word(0x1000, -7)
        assert space.read_word(0x1000) == -7

    def test_overlap_rejected(self):
        space = AddressSpace()
        space.map_anonymous(0x1000, 256)
        with pytest.raises(MemoryError_):
            space.map_anonymous(0x10FF, 16)

    def test_adjacent_ok(self):
        space = AddressSpace()
        space.map_anonymous(0x1000, 256)
        space.map_anonymous(0x1100, 256)

    def test_unmapped_access(self):
        space = AddressSpace()
        with pytest.raises(MemoryError_):
            space.read_word(0x5000)
        with pytest.raises(MemoryError_):
            space.write_word(0x5000, 1)

    def test_cross_boundary_read(self):
        space = AddressSpace()
        space.map_anonymous(0x1000, 16)
        with pytest.raises(MemoryError_):
            space.read_bytes(0x1000 + 12, 8)

    def test_find_mapping(self):
        space = AddressSpace()
        low = space.map_anonymous(0x1000, 16, name="low")
        high = space.map_anonymous(0x9000, 16, name="high")
        assert space.find_mapping(0x1008) is low
        assert space.find_mapping(0x9000) is high
        with pytest.raises(MemoryError_):
            space.find_mapping(0x800)

    def test_read_write_bytes(self):
        space = AddressSpace()
        space.map_anonymous(0x2000, 64)
        space.write_bytes(0x2010, b"hello")
        assert space.read_bytes(0x2010, 5) == b"hello"


class TestLinker:
    def test_simple_executable(self):
        image = image_from_asm("main:\n    halt\n")
        process = load_process(image)
        assert process.entry_address == EXECUTABLE_BASE + image.entry
        assert len(process.load_events) == 1

    def test_needs_resolver(self):
        image = image_from_asm("main:\n    halt\n", needed=["libx.so"])
        with pytest.raises(LinkError):
            load_process(image)

    def test_library_not_executable(self):
        lib = _lib("libx.so")
        with pytest.raises(LinkError):
            load_process(lib)

    def test_transitive_dependencies(self):
        libb = _lib("libb.so")
        liba = _lib("liba.so", needed=["libb.so"])
        main = image_from_asm("main:\n    halt\n", needed=["liba.so"])
        store = ImageStore({img.path: img for img in (liba, libb)})
        process = load_process(main, store)
        order = [event.image.path for event in process.load_events]
        assert order == ["app", "liba.so", "libb.so"]

    def test_diamond_loaded_once(self):
        libc = _lib("libc.so")
        liba = _lib("liba.so", needed=["libc.so"])
        libb = _lib("libb.so", needed=["libc.so"])
        main = image_from_asm("main:\n    halt\n", needed=["liba.so", "libb.so"])
        store = ImageStore({img.path: img for img in (liba, libb, libc)})
        process = load_process(main, store)
        paths = [event.image.path for event in process.load_events]
        assert paths.count("libc.so") == 1

    def test_missing_library(self):
        main = image_from_asm("main:\n    halt\n", needed=["libmissing.so"])
        with pytest.raises(LinkError):
            load_process(main, ImageStore())

    def test_cross_image_symbol_resolution(self):
        lib = _lib("libm.so", body="addi t1, t1, 1\n    ret")
        main = image_from_asm(
            """
            main:
                call libm_fn
                halt
            """,
            needed=["libm.so"],
        )
        store = ImageStore({lib.path: lib})
        process = load_process(main, store)
        lib_base = process.mapping_of("libm.so").base
        assert process.resolve_symbol("libm_fn") == lib_base

    def test_undefined_cross_image_symbol(self):
        main = image_from_asm("main:\n    call nowhere\n    halt\n")
        with pytest.raises(LinkError):
            load_process(main)

    def test_symbolize(self):
        image = image_from_asm("main:\n    nop\n    halt\n")
        process = load_process(image)
        assert process.symbolize(process.entry_address) == "app!main"
        assert process.symbolize(process.entry_address + 8) == "app!main+0x8"
        assert process.symbolize(0x12) == "0x12"

    def test_library_bases_distinct_and_in_region(self):
        liba, libb = _lib("liba.so"), _lib("libb.so")
        main = image_from_asm("main:\n    halt\n", needed=["liba.so", "libb.so"])
        store = ImageStore({img.path: img for img in (liba, libb)})
        process = load_process(main, store)
        base_a = process.mapping_of("liba.so").base
        base_b = process.mapping_of("libb.so").base
        assert base_a >= LIBRARY_REGION_START
        assert base_b > base_a


class TestLayouts:
    def _two_lib_process(self, layout):
        liba, libb = _lib("liba.so"), _lib("libb.so")
        main = image_from_asm("main:\n    halt\n", needed=["liba.so", "libb.so"])
        store = ImageStore({img.path: img for img in (liba, libb)})
        process = load_process(main, store, layout=layout)
        return {
            path: process.mapping_of(path).base
            for path in ("liba.so", "libb.so")
        }

    def test_fixed_layout_reproducible(self):
        assert self._two_lib_process(FixedLayout()) == self._two_lib_process(
            FixedLayout()
        )

    def test_perturbed_deterministic_per_seed(self):
        assert self._two_lib_process(PerturbedLayout(7)) == self._two_lib_process(
            PerturbedLayout(7)
        )

    def test_perturbed_seeds_differ(self):
        bases = {
            seed: self._two_lib_process(PerturbedLayout(seed))
            for seed in range(6)
        }
        distinct = {tuple(sorted(b.items())) for b in bases.values()}
        assert len(distinct) > 1

    def test_perturbed_differs_from_fixed(self):
        fixed = self._two_lib_process(FixedLayout())
        seen_shift = False
        for seed in range(8):
            if self._two_lib_process(PerturbedLayout(seed)) != fixed:
                seen_shift = True
                break
        assert seen_shift


class TestCrossImageData:
    def test_app_reads_library_global(self):
        """SYMBOL relocations resolve data objects across images."""
        from repro.binfmt.image import ImageBuilder, ImageKind
        from repro.isa import instructions as ins
        from repro.isa import registers as regs
        from repro.machine.cpu import Machine, run_native
        from repro.machine.syscalls import SYS_EXIT

        lib_builder = ImageBuilder("libdata.so", ImageKind.SHARED_LIBRARY)
        lib_builder.add_function("libdata_noop", [ins.ret()])
        lib_builder.add_data("shared_value", (77).to_bytes(8, "little"))
        lib = lib_builder.build()

        app_builder = ImageBuilder("app", needed=["libdata.so"])
        code = [
            ins.movi(10, 0),              # t0 = &shared_value  [reloc]
            ins.ld(regs.A0, 10, 0),
            ins.movi(regs.RV, SYS_EXIT),
            ins.syscall(),
        ]
        app_builder.add_function("main", code,
                                 symbol_refs=[(0, "shared_value")])
        app_builder.set_entry("main")
        app = app_builder.build()

        process = load_process(app, ImageStore({lib.path: lib}))
        result = run_native(Machine(process))
        assert result.exit_status == 77

    def test_data_objects_relocated_per_mapping(self):
        """Each process gets a private copy of library data."""
        from repro.binfmt.image import ImageBuilder, ImageKind

        lib_builder = ImageBuilder("libd.so", ImageKind.SHARED_LIBRARY)
        lib_builder.add_function("libd_noop", [])
        lib_builder.add_data("blob", b"\x01" * 8)
        lib = lib_builder.build()
        main = image_from_asm("main:\n    halt\n", needed=["libd.so"])
        store = ImageStore({lib.path: lib})
        first = load_process(main, store)
        second = load_process(main, store)
        addr = first.resolve_symbol("blob")
        first.space.write_word(addr, 99)
        assert second.space.read_word(second.resolve_symbol("blob")) != 99
