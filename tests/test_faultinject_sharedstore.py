"""Fault injection against the per-host shared compiled-body store.

The shared store sits one layer further from the simulation than the
private sidecar, so its containment contract is the strictest in the
repo: any induced fault — flipped bytes, truncation, unreadable shards,
``ENOSPC`` at every write point, a crash between tmp write and rename —
must at worst quarantine the damaged shard, degrade the revive chain
(shared store → private sidecar → host compile), and leave the
simulated run bit-for-bit identical.  A shared-store fault must never
corrupt or even touch a consuming database.
"""

import errno
import os

import pytest

from repro.persist.database import CacheDatabase
from repro.persist.manager import PersistenceConfig
from repro.persist.sidecar import SIDECAR_NAME
from repro.persist.sharedstore import (
    BODIES_DIR,
    QUARANTINE_DIR,
    SharedBodyStore,
)
from repro.testing.faultfs import (
    FaultPlan,
    FaultyStorage,
    SimulatedCrash,
    flip_byte,
    truncate_file,
)
from repro.vm.compile import clear_code_object_cache
from repro.vm.engine import VM_VERSION, VMConfig
from repro.workloads.harness import run_vm

from tests.test_persist_manager import mini_workload

pytestmark = pytest.mark.faultinject


def observable(result):
    """Everything the simulation observes; faults must never move it."""
    return (
        result.output,
        result.exit_status,
        result.instructions,
        vars(result.stats),
    )


@pytest.fixture
def workload():
    return mini_workload()


def compiled_run(workload, input_name, db, **kwargs):
    return run_vm(
        workload,
        input_name,
        persistence=PersistenceConfig(database=db, **kwargs),
        vm_config=VMConfig(dispatch_mode="compiled"),
    )


def make_store(directory, storage=None):
    return SharedBodyStore(str(directory), vm_version=VM_VERSION, storage=storage)


def seed_pool(workload, tmp_path):
    """Cold-run a donor database so the pool holds real bodies.

    Returns ``(store_dir, cold_reference, warm_reference)`` — the
    healthy observables for a database's first (translating) and second
    (trace-cache-warm) runs; faulted runs of the matching temperature
    must reproduce them bit-for-bit.
    """
    store = make_store(tmp_path / "store")
    donor = CacheDatabase(str(tmp_path / "donor"), shared_store=store)
    clear_code_object_cache()
    cold = compiled_run(workload, "a", donor)
    assert cold.persistence_report["shared_publishes"] > 0
    clear_code_object_cache()
    warm = compiled_run(workload, "a", donor)
    assert warm.persistence_report["sidecar_host_compiles"] == 0
    return str(tmp_path / "store"), observable(cold), observable(warm)


def pool_shards(store_dir):
    store = make_store(store_dir)
    pool = store._pool_dir()
    return [
        os.path.join(pool, name)
        for name in sorted(os.listdir(pool))
        if name.endswith(".pcs")
    ]


class TestDamagedShardReads:
    @pytest.mark.parametrize("damage", ["flip", "truncate"])
    def test_quarantines_shard_and_degrades_to_host_compile(
        self, damage, workload, tmp_path
    ):
        store_dir, reference, _warm = seed_pool(workload, tmp_path)
        shards = pool_shards(store_dir)
        victim = shards[0]
        if damage == "flip":
            flip_byte(victim, os.path.getsize(victim) // 2)
        else:
            truncate_file(victim, os.path.getsize(victim) // 2)

        store = make_store(store_dir)
        consumer = CacheDatabase(str(tmp_path / "consumer"), shared_store=store)
        clear_code_object_cache()
        run = compiled_run(workload, "a", consumer)

        report = run.persistence_report
        # The consumer has no private sidecar yet, so the damaged
        # shard's bodies fell through to host compile()s; every other
        # shard still served.
        assert report["shared_store_state"] == "attached"
        if len(shards) > 1:
            assert report["shared_hits"] > 0
        assert report["sidecar_host_compiles"] > 0
        # Bit-for-bit identical simulation regardless.
        assert observable(run) == reference
        # Only the damaged shard was quarantined (moved, not deleted) —
        # and the same run's write-back may already have republished the
        # recompiled bodies into a fresh, valid shard at the same path.
        quarantine = os.path.join(store_dir, QUARANTINE_DIR)
        assert len(os.listdir(quarantine)) == 1
        for survivor in shards[1:]:
            assert os.path.exists(survivor)
        # ...the consumer database itself is pristine — no quarantine
        # directory, no degradation.
        assert not os.path.isdir(
            os.path.join(str(tmp_path / "consumer"), "quarantine")
        )
        assert report["degraded_reason"] == ""
        # ...and the session's write-back healed the pool: the next
        # cold consumer revives everything with zero host compiles.
        clear_code_object_cache()
        healed = compiled_run(
            workload, "a",
            CacheDatabase(str(tmp_path / "consumer2"), shared_store=make_store(store_dir)),
        )
        assert healed.persistence_report["sidecar_host_compiles"] == 0
        assert observable(healed) == reference

    def test_flips_across_a_shard_never_escape(self, workload, tmp_path):
        """Sampled byte flips at every region of a shard: lookups must
        miss cleanly (never raise, never return garbage the chain would
        exec) and the run must stay identical, whatever offset is hit."""
        store_dir, reference, _warm = seed_pool(workload, tmp_path)
        victim = pool_shards(store_dir)[0]
        pristine = open(victim, "rb").read()
        size = len(pristine)
        for offset in range(0, size, max(1, size // 17)):
            with open(victim, "wb") as handle:
                handle.write(pristine)
            flip_byte(victim, offset)
            store = make_store(store_dir)
            consumer_dir = str(tmp_path / ("consumer-%d" % offset))
            clear_code_object_cache()
            run = compiled_run(
                workload, "a",
                CacheDatabase(consumer_dir, shared_store=store),
            )
            assert observable(run) == reference, offset
            assert store.quarantined_count == 1, offset
        # Restore for any later assertions on the directory.
        with open(victim, "wb") as handle:
            handle.write(pristine)

    def test_unreadable_shards_degrade_to_private_sidecar(
        self, workload, tmp_path
    ):
        """EIO on every shard read: the shared layer misses, the private
        sidecar serves, zero host compiles on a warmed database."""
        store_dir, _cold, reference = seed_pool(workload, tmp_path)
        # Warm a consumer so its private sidecar references everything.
        warm_db_dir = str(tmp_path / "consumer")
        clear_code_object_cache()
        compiled_run(
            workload, "a",
            CacheDatabase(warm_db_dir, shared_store=make_store(store_dir)),
        )
        faulted = make_store(
            store_dir,
            storage=FaultyStorage(FaultPlan(fail_reads=True, match=BODIES_DIR)),
        )
        clear_code_object_cache()
        run = compiled_run(
            workload, "a", CacheDatabase(warm_db_dir, shared_store=faulted)
        )
        report = run.persistence_report
        assert report["shared_hits"] == 0
        assert report["shared_misses"] > 0
        assert report["sidecar_hits"] > 0
        assert report["sidecar_host_compiles"] == 0
        assert observable(run) == reference
        # IO errors are events, not quarantines — the shards are fine.
        assert faulted.quarantined_count == 0
        assert any(kind == "io-error" for kind, _, _ in faulted.events)

    def test_full_degradation_chain_shared_private_compile(
        self, workload, tmp_path
    ):
        """Damage the pool AND delete the private sidecar: the chain
        bottoms out at host compile with identical observables."""
        store_dir, _cold, reference = seed_pool(workload, tmp_path)
        warm_db_dir = str(tmp_path / "consumer")
        clear_code_object_cache()
        compiled_run(
            workload, "a",
            CacheDatabase(warm_db_dir, shared_store=make_store(store_dir)),
        )
        for shard in pool_shards(store_dir):
            truncate_file(shard, os.path.getsize(shard) // 3)
        os.remove(os.path.join(warm_db_dir, SIDECAR_NAME))
        clear_code_object_cache()
        run = compiled_run(
            workload, "a",
            CacheDatabase(warm_db_dir, shared_store=make_store(store_dir)),
        )
        report = run.persistence_report
        assert report["shared_hits"] == 0
        assert report["sidecar_hits"] == 0
        assert report["sidecar_host_compiles"] > 0
        assert observable(run) == reference
        # The compile results healed both layers for the next session.
        assert report["shared_publishes"] > 0
        assert report["sidecar_written"]


class TestFaultedWrites:
    def test_enospc_at_sampled_publish_write_points(self, workload, tmp_path):
        """Sweep "disk fills up at write N" across the publish: every
        failure point must be report-only for the session, leave prior
        shards intact, and leave the store serving exact-bytes-or-miss.

        The plan's write counter is sticky (write N and everything after
        it fails), so each sampled point models a genuinely full disk
        from that moment on — the harshest ENOSPC shape.
        """
        import shutil

        store_dir, reference, _warm = seed_pool(workload, tmp_path)
        healthy = make_store(store_dir)
        before = {
            digest: healthy.lookup(digest)
            for shard in pool_shards(store_dir)
            for digest in healthy._load_shard(
                os.path.basename(shard)[: -len(".pcs")]
            )
        }
        assert before
        # Count the publish's write calls with a fault-free plan, then
        # sample ~10 failure points across that range (chunked writes
        # make an exhaustive per-call sweep needlessly slow).  Each
        # sample runs against a fresh clone of the seeded pool so its
        # publish of the "b" bodies genuinely writes every time.
        counting = FaultyStorage(FaultPlan())
        count_dir = str(tmp_path / "store-count")
        shutil.copytree(store_dir, count_dir)
        clear_code_object_cache()
        baseline = compiled_run(
            workload, "b",  # new input: fresh bodies force a publish
            CacheDatabase(
                str(tmp_path / "consumer-count"),
                shared_store=make_store(count_dir, storage=counting),
            ),
        )
        assert baseline.persistence_report["shared_publishes"] > 0
        total_writes = counting.op_counts.get("write", 0)
        assert total_writes > 0
        stride = max(1, total_writes // 10)
        failed_points = 0
        for call in range(1, total_writes + 1, stride):
            clone_dir = str(tmp_path / ("store-%d" % call))
            shutil.copytree(store_dir, clone_dir)
            storage = FaultyStorage(
                FaultPlan(
                    fail_write_on_call=call,
                    fail_write_errno=errno.ENOSPC,
                    match=BODIES_DIR,
                )
            )
            store = make_store(clone_dir, storage=storage)
            consumer_dir = str(tmp_path / ("consumer-%d" % call))
            clear_code_object_cache()
            run = compiled_run(
                workload, "b",
                CacheDatabase(consumer_dir, shared_store=store),
            )
            report = run.persistence_report
            assert run.exit_status == 0, call
            # The private sidecar write-back is independent and healthy.
            assert report["sidecar_written"], call
            if report["shared_store_state"].startswith("write-error"):
                failed_points += 1
            else:
                assert report["shared_store_state"] == "attached", call
            # Every previously published body still reads back exactly.
            check = make_store(clone_dir)
            for digest, blob in before.items():
                assert check.lookup(digest) == blob, (call, digest)
        assert failed_points > 0  # the sweep hit real failing points

    def test_crash_before_rename_leaves_old_shard_valid(
        self, workload, tmp_path
    ):
        store_dir, reference, _warm = seed_pool(workload, tmp_path)
        shards = pool_shards(store_dir)
        pristine = {path: open(path, "rb").read() for path in shards}
        storage = FaultyStorage(
            FaultPlan(crash_before_rename=True, match=BODIES_DIR)
        )
        store = make_store(store_dir, storage=storage)
        clear_code_object_cache()
        with pytest.raises(SimulatedCrash):
            compiled_run(
                workload, "b",
                CacheDatabase(str(tmp_path / "consumer"), shared_store=store),
            )
        # Every pre-crash shard is untouched (rename never happened); a
        # .tmp may remain, exactly like a real crash.
        for path, blob in pristine.items():
            assert open(path, "rb").read() == blob
        # The next process runs completely normally from the old pool.
        clear_code_object_cache()
        recovered = compiled_run(
            workload, "a",
            CacheDatabase(str(tmp_path / "consumer2"), shared_store=make_store(store_dir)),
        )
        assert recovered.persistence_report["sidecar_host_compiles"] == 0
        assert observable(recovered) == reference
        # fsck flags the leftover tmp as a note, not damage.
        report = make_store(store_dir).fsck()
        assert report.clean

    def test_registry_write_failure_is_contained(self, workload, tmp_path):
        """A database that cannot register still runs normally — it just
        is not a gc mark root until a later attach succeeds."""
        storage = FaultyStorage(
            FaultPlan(
                fail_write_on_call=1,
                fail_write_errno=errno.EACCES,
                match="registry.json",
            )
        )
        store = make_store(tmp_path / "store", storage=storage)
        db = CacheDatabase(str(tmp_path / "db"), shared_store=store)
        assert any(kind == "io-error" for kind, _, _ in db.events)
        clear_code_object_cache()
        run = compiled_run(workload, "a", db)
        assert run.exit_status == 0
        assert run.persistence_report["shared_store_state"] == "attached"
        assert store.registered_databases() == []


class TestGcUnderFaults:
    def test_gc_with_unreadable_reference_index_sweeps_nothing_referenced(
        self, workload, tmp_path
    ):
        """If a registered database's sidecar cannot be read, gc loses
        its mark set for that database — the failure mode must be
        "report it, sweep nothing extra from certainty", i.e. the
        unreadable index contributes an empty set and is listed."""
        store_dir, _cold, _warm = seed_pool(workload, tmp_path)
        store = make_store(store_dir)
        store.register_database(str(tmp_path / "donor"))
        faulted = make_store(
            store_dir,
            storage=FaultyStorage(
                FaultPlan(fail_reads=True, match=SIDECAR_NAME)
            ),
        )
        report = faulted.gc()
        assert report.unreadable_indexes == [
            os.path.abspath(str(tmp_path / "donor"))
        ]
        # The sweep proceeded with what it knew: bodies the unreadable
        # index referenced were swept (cost: recompiles, never damage) —
        # and the store stays structurally clean.
        assert make_store(store_dir).fsck().clean

    def test_gc_write_failure_leaves_shard_serving(self, tmp_path):
        """ENOSPC during a sweep's shard rewrite: the atomic
        write-replace never renamed, so the shard keeps serving its
        pre-gc content exactly."""
        from tests.test_sharedstore import write_reference_index

        store = make_store(tmp_path / "store")
        kept_digest = "aa" + "0" * 62
        swept_digest = "aa" + "1" * 62  # same shard: forces a rewrite
        store.publish({kept_digest: b"kept-body", swept_digest: b"garbage"})
        db_dir = str(tmp_path / "db")
        write_reference_index(db_dir, [kept_digest])
        store.register_database(db_dir)
        faulted = make_store(
            str(tmp_path / "store"),
            storage=FaultyStorage(
                FaultPlan(
                    fail_write_on_call=1,
                    fail_write_errno=errno.ENOSPC,
                    match=BODIES_DIR,
                )
            ),
        )
        with pytest.raises(OSError):
            faulted.gc()  # partial keep rewrites the shard -> ENOSPC
        check = make_store(str(tmp_path / "store"))
        assert check.lookup(kept_digest) == b"kept-body"
        assert check.lookup(swept_digest) == b"garbage"  # sweep never landed
        assert check.fsck().clean
