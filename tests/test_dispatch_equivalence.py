"""Differential suite: the two dispatch tiers must be bit-identical.

The engine executes traces either through the interpreted uop loop (the
reference oracle) or through per-trace compiled closures
(:mod:`repro.vm.compile`).  The tiers are an implementation detail of
the *simulator*, so every observable of a run — output bytes, exit
status, retired instruction count, every :class:`VMStats` counter and
float cycle total, and the tool accounting — must match exactly, across
every workload corpus, with and without persistence, and through the
hard cases (self-modifying code, module unload/reload, instrumentation
callbacks).

Any divergence here means a closure specialization changed observable
behavior, which docs/performance.md forbids.
"""

import pytest

from repro.loader.linker import load_process
from repro.persist.database import CacheDatabase
from repro.persist.manager import PersistenceConfig
from repro.tools import BBCountTool, InsCountTool, MemTraceTool
from repro.vm.engine import Engine, VMConfig
from repro.workloads.gui import build_gui_suite
from repro.workloads.harness import run_vm
from repro.workloads.oracle import PHASES, build_oracle
from repro.workloads.regression import round_robin_cases
from repro.workloads.spec2k import build_suite

from tests.test_modules import make_workload as make_module_workload
from tests.test_smc import build_smc_image

MODES = ("interpreted", "compiled")


def _config(mode):
    return VMConfig(dispatch_mode=mode)


def signature(result):
    """Everything observable from a run, ready for exact comparison."""
    return {
        "output": result.output,
        "exit_status": result.exit_status,
        "instructions": result.instructions,
        "stats": vars(result.stats),
        "accounting": vars(result.tool_accounting),
        "cache_traces": result.cache_traces,
        "cache_code_bytes": result.cache_code_bytes,
        "cache_data_bytes": result.cache_data_bytes,
    }


def assert_equivalent(run_one, context=""):
    """``run_one(mode)`` must produce identical signatures per mode."""
    results = {mode: run_one(mode) for mode in MODES}
    sig_i = signature(results["interpreted"])
    sig_c = signature(results["compiled"])
    for key in sig_i:
        assert sig_i[key] == sig_c[key], (context, key)
    return results


@pytest.fixture(scope="module")
def spec_suite():
    return build_suite()


@pytest.fixture(scope="module")
def gui_suite():
    apps, _store = build_gui_suite()
    return apps


@pytest.fixture(scope="module")
def oracle_workload():
    return build_oracle()


class TestCorpora:
    def test_spec2k_train(self, spec_suite):
        for name, workload in sorted(spec_suite.items()):
            assert_equivalent(
                lambda mode, wl=workload: run_vm(
                    wl, "train", vm_config=_config(mode)
                ),
                context=("spec2k", name),
            )

    def test_gui_startup(self, gui_suite):
        for name, app in sorted(gui_suite.items()):
            assert_equivalent(
                lambda mode, wl=app: run_vm(
                    wl, "startup", vm_config=_config(mode)
                ),
                context=("gui", name),
            )

    def test_oracle_phases(self, oracle_workload):
        for phase in PHASES:
            assert_equivalent(
                lambda mode, ph=phase: run_vm(
                    oracle_workload, ph, vm_config=_config(mode)
                ),
                context=("oracle", phase),
            )

    def test_regression_sequence(self, spec_suite, tmp_path):
        """The regression-farm pattern: a case sequence accumulating one
        persistent cache — per-case equivalence across tiers."""
        gcc = spec_suite["176.gcc"]
        cases = round_robin_cases(gcc, ["ref-1", "ref-2"], rounds=2)

        def run_sequence(mode):
            db = CacheDatabase(str(tmp_path / ("regress-" + mode)))
            return [
                run_vm(workload, input_name,
                       persistence=PersistenceConfig(database=db),
                       vm_config=_config(mode))
                for workload, input_name in cases
            ]

        sequences = {mode: run_sequence(mode) for mode in MODES}
        for index, (res_i, res_c) in enumerate(
            zip(sequences["interpreted"], sequences["compiled"])
        ):
            assert signature(res_i) == signature(res_c), ("case", index)


class TestPersistence:
    @pytest.mark.parametrize("suite,name,input_name", [
        ("gui", "gvim", "startup"),
        ("spec", "176.gcc", "train"),
    ])
    def test_cold_and_warm(
        self, suite, name, input_name, spec_suite, gui_suite, tmp_path
    ):
        workload = (gui_suite if suite == "gui" else spec_suite)[name]

        def cold_warm(mode):
            db = CacheDatabase(str(tmp_path / ("%s-%s" % (name, mode))))
            cold = run_vm(workload, input_name,
                          persistence=PersistenceConfig(database=db),
                          vm_config=_config(mode))
            warm = run_vm(workload, input_name,
                          persistence=PersistenceConfig(database=db),
                          vm_config=_config(mode))
            return cold, warm

        runs = {mode: cold_warm(mode) for mode in MODES}
        for phase, index in (("cold", 0), ("warm", 1)):
            sig_i = signature(runs["interpreted"][index])
            sig_c = signature(runs["compiled"][index])
            assert sig_i == sig_c, (name, phase)
        # The warm runs really were warm (everything revived, nothing
        # translated), so the compiled tier executed demand-loaded
        # persistent traces, not freshly translated ones.
        for mode in MODES:
            assert runs[mode][1].stats.traces_translated == 0, mode


class TestHardCases:
    def test_self_modifying_code(self):
        """SMC invalidation must behave identically: the closure of the
        patched trace dies with its cache residency, and the patched
        code executes (exit 99) under both tiers."""
        results = assert_equivalent(
            lambda mode: Engine(config=_config(mode)).run(
                load_process(build_smc_image())
            ),
            context="smc",
        )
        assert results["compiled"].exit_status == 99
        assert results["compiled"].stats.smc_invalidations > 0

    def test_smc_with_persistence(self, tmp_path):
        def cold_warm(mode):
            from repro.persist.manager import PersistentCacheSession

            db = CacheDatabase(str(tmp_path / ("smc-" + mode)))

            def one():
                session = PersistentCacheSession(
                    PersistenceConfig(database=db)
                )
                return Engine(config=_config(mode), persistence=session).run(
                    load_process(build_smc_image())
                )

            return one(), one()

        runs = {mode: cold_warm(mode) for mode in MODES}
        for index in (0, 1):
            assert (signature(runs["interpreted"][index])
                    == signature(runs["compiled"][index])), index
        assert runs["compiled"][1].exit_status == 99

    def test_module_reload(self, tmp_path):
        """dlopen/dlclose cycles: unload evicts traces (and their
        closures); reload re-registers retained translations."""
        workload = make_module_workload(cycles=3, increment=5)
        assert_equivalent(
            lambda mode: run_vm(workload, "go", vm_config=_config(mode)),
            context="module-reload",
        )

        def with_persistence(mode):
            db = CacheDatabase(str(tmp_path / ("mod-" + mode)))
            cold = run_vm(workload, "go",
                          persistence=PersistenceConfig(database=db),
                          vm_config=_config(mode))
            warm = run_vm(workload, "go",
                          persistence=PersistenceConfig(database=db),
                          vm_config=_config(mode))
            return cold, warm

        runs = {mode: with_persistence(mode) for mode in MODES}
        for index in (0, 1):
            assert (signature(runs["interpreted"][index])
                    == signature(runs["compiled"][index])), index


class TestInstrumentation:
    @pytest.mark.parametrize("tool_factory", [
        BBCountTool, InsCountTool, MemTraceTool,
    ])
    def test_tool_state_matches(self, tool_factory, gui_suite):
        """Analysis callbacks fire with identical context under both
        tiers: final tool state (not just accounting) must agree."""
        app = gui_suite["gftp"]
        states = {}
        results = {}
        for mode in MODES:
            tool = tool_factory()
            results[mode] = run_vm(
                app, "startup", tool=tool, vm_config=_config(mode)
            )
            states[mode] = vars(tool)
        assert (signature(results["interpreted"])
                == signature(results["compiled"]))
        assert states["interpreted"] == states["compiled"]

    def test_tool_with_persistence(self, gui_suite, tmp_path):
        app = gui_suite["gqview"]

        def cold_warm(mode):
            db = CacheDatabase(str(tmp_path / ("tool-" + mode)))
            runs = []
            for _ in range(2):
                tool = BBCountTool()
                result = run_vm(app, "startup", tool=tool,
                                persistence=PersistenceConfig(database=db),
                                vm_config=_config(mode))
                runs.append((signature(result), vars(tool)))
            return runs

        runs = {mode: cold_warm(mode) for mode in MODES}
        assert runs["interpreted"] == runs["compiled"]


class TestConfig:
    def test_default_mode_is_compiled(self):
        assert VMConfig().dispatch_mode == "compiled"

    def test_unknown_mode_rejected(self, gui_suite):
        from repro.vm.engine import EngineError

        with pytest.raises(EngineError):
            run_vm(gui_suite["dia"], "startup",
                   vm_config=VMConfig(dispatch_mode="jit"))
