"""Differential suite: the two dispatch tiers must be bit-identical.

The engine executes traces either through the interpreted uop loop (the
reference oracle) or through per-trace compiled closures
(:mod:`repro.vm.compile`).  The tiers are an implementation detail of
the *simulator*, so every observable of a run — output bytes, exit
status, retired instruction count, every :class:`VMStats` counter and
float cycle total, and the tool accounting — must match exactly, across
every workload corpus, with and without persistence, and through the
hard cases (self-modifying code, module unload/reload, instrumentation
callbacks).

Any divergence here means a closure specialization changed observable
behavior, which docs/performance.md forbids.
"""

import pytest

from repro.binfmt.image import ImageBuilder
from repro.isa import instructions as ins
from repro.isa import registers as regs
from repro.loader.linker import load_process
from repro.machine.cpu import HEAP_BASE, Machine, run_native
from repro.machine.syscalls import SYS_EXIT
from repro.persist.database import CacheDatabase
from repro.persist.manager import PersistenceConfig
from repro.tools import BBCountTool, InsCountTool, MemTraceTool
from repro.vm.engine import Engine, VMConfig
from repro.workloads.gui import build_gui_suite
from repro.workloads.harness import run_vm
from repro.workloads.oracle import PHASES, build_oracle
from repro.workloads.regression import round_robin_cases
from repro.workloads.spec2k import build_suite

from tests.test_modules import make_workload as make_module_workload
from tests.test_smc import _word_of, build_smc_image

MODES = ("interpreted", "compiled")


def _config(mode):
    return VMConfig(dispatch_mode=mode)


def signature(result):
    """Everything observable from a run, ready for exact comparison."""
    return {
        "output": result.output,
        "exit_status": result.exit_status,
        "instructions": result.instructions,
        "stats": vars(result.stats),
        "accounting": vars(result.tool_accounting),
        "cache_traces": result.cache_traces,
        "cache_code_bytes": result.cache_code_bytes,
        "cache_data_bytes": result.cache_data_bytes,
    }


def assert_equivalent(run_one, context=""):
    """``run_one(mode)`` must produce identical signatures per mode."""
    results = {mode: run_one(mode) for mode in MODES}
    sig_i = signature(results["interpreted"])
    sig_c = signature(results["compiled"])
    for key in sig_i:
        assert sig_i[key] == sig_c[key], (context, key)
    return results


@pytest.fixture(scope="module")
def spec_suite():
    return build_suite()


@pytest.fixture(scope="module")
def gui_suite():
    apps, _store = build_gui_suite()
    return apps


@pytest.fixture(scope="module")
def oracle_workload():
    return build_oracle()


class TestCorpora:
    def test_spec2k_train(self, spec_suite):
        for name, workload in sorted(spec_suite.items()):
            assert_equivalent(
                lambda mode, wl=workload: run_vm(
                    wl, "train", vm_config=_config(mode)
                ),
                context=("spec2k", name),
            )

    def test_gui_startup(self, gui_suite):
        for name, app in sorted(gui_suite.items()):
            assert_equivalent(
                lambda mode, wl=app: run_vm(
                    wl, "startup", vm_config=_config(mode)
                ),
                context=("gui", name),
            )

    def test_oracle_phases(self, oracle_workload):
        for phase in PHASES:
            assert_equivalent(
                lambda mode, ph=phase: run_vm(
                    oracle_workload, ph, vm_config=_config(mode)
                ),
                context=("oracle", phase),
            )

    def test_regression_sequence(self, spec_suite, tmp_path):
        """The regression-farm pattern: a case sequence accumulating one
        persistent cache — per-case equivalence across tiers."""
        gcc = spec_suite["176.gcc"]
        cases = round_robin_cases(gcc, ["ref-1", "ref-2"], rounds=2)

        def run_sequence(mode):
            db = CacheDatabase(str(tmp_path / ("regress-" + mode)))
            return [
                run_vm(workload, input_name,
                       persistence=PersistenceConfig(database=db),
                       vm_config=_config(mode))
                for workload, input_name in cases
            ]

        sequences = {mode: run_sequence(mode) for mode in MODES}
        for index, (res_i, res_c) in enumerate(
            zip(sequences["interpreted"], sequences["compiled"])
        ):
            assert signature(res_i) == signature(res_c), ("case", index)


class TestPersistence:
    @pytest.mark.parametrize("suite,name,input_name", [
        ("gui", "gvim", "startup"),
        ("spec", "176.gcc", "train"),
    ])
    def test_cold_and_warm(
        self, suite, name, input_name, spec_suite, gui_suite, tmp_path
    ):
        workload = (gui_suite if suite == "gui" else spec_suite)[name]

        def cold_warm(mode):
            db = CacheDatabase(str(tmp_path / ("%s-%s" % (name, mode))))
            cold = run_vm(workload, input_name,
                          persistence=PersistenceConfig(database=db),
                          vm_config=_config(mode))
            warm = run_vm(workload, input_name,
                          persistence=PersistenceConfig(database=db),
                          vm_config=_config(mode))
            return cold, warm

        runs = {mode: cold_warm(mode) for mode in MODES}
        for phase, index in (("cold", 0), ("warm", 1)):
            sig_i = signature(runs["interpreted"][index])
            sig_c = signature(runs["compiled"][index])
            assert sig_i == sig_c, (name, phase)
        # The warm runs really were warm (everything revived, nothing
        # translated), so the compiled tier executed demand-loaded
        # persistent traces, not freshly translated ones.
        for mode in MODES:
            assert runs[mode][1].stats.traces_translated == 0, mode


def build_indirect_image(n_helpers=8, mono_iters=60, poly_iters=40,
                         mega_iters=48):
    """An image whose control flow is dominated by indirect branches.

    Three phases stress the compiled tier's indirect-branch inline
    caches across the behaviors a real IC must survive:

    * **monomorphic**: one ``callr`` site calling the same helper every
      iteration — the IC's best case (steady hits after one miss).
    * **polymorphic**: one ``callr`` site alternating between two
      helpers via a heap-resident dispatch table — the monomorphic IC
      misses every iteration and must fall back without diverging.
    * **megamorphic**: the same table-driven site cycling through all
      ``n_helpers`` targets — the paper's indirect "switch" shape.

    Every helper ends in ``ret`` (itself an indirect branch), so return
    sites are exercised too.  ``n_helpers`` must be a power of two (the
    index wraps with a mask).
    """
    assert n_helpers & (n_helpers - 1) == 0
    builder = ImageBuilder("indirect-app")
    for i in range(n_helpers):
        builder.add_function(
            "h%d" % i, [ins.addi(regs.A0, regs.A0, i + 1), ins.ret()]
        )

    t0, t1, t2, t3, t4, t5 = (regs.T0 + i for i in range(6))
    code = []
    refs = []
    # Dispatch table at HEAP_BASE: table[i] = &h_i.
    code.append(ins.movi(t0, HEAP_BASE))
    for i in range(n_helpers):
        refs.append((len(code), "h%d" % i))
        code.append(ins.movi(t1, 0))              # t1 = &h_i    [reloc]
        code.append(ins.st(t0, t1, i * 8))

    # Phase 1: monomorphic callr loop (one site, one target).
    refs.append((len(code), "h0"))
    code.append(ins.movi(t1, 0))                  # t1 = &h0     [reloc]
    code.append(ins.movi(t2, mono_iters))
    head = len(code)
    code.append(ins.callr(t1))
    code.append(ins.addi(t2, t2, -1))
    here = len(code)
    code.append(ins.bne(t2, regs.ZERO, (head - (here + 1)) * 8))

    # Phases 2+3: table-driven callr, index wrapped with a mask — mask 1
    # gives the polymorphic pair, mask n-1 the megamorphic cycle.
    for mask, iters in ((1, poly_iters), (n_helpers - 1, mega_iters)):
        code.append(ins.movi(t3, 0))              # t3 = index
        code.append(ins.movi(t2, iters))
        head = len(code)
        code.append(ins.shli(t4, t3, 3))
        code.append(ins.add(t4, t0, t4))
        code.append(ins.ld(t5, t4, 0))            # t5 = table[index]
        code.append(ins.callr(t5))
        code.append(ins.addi(t3, t3, 1))
        code.append(ins.andi(t3, t3, mask))
        code.append(ins.addi(t2, t2, -1))
        here = len(code)
        code.append(ins.bne(t2, regs.ZERO, (head - (here + 1)) * 8))

    code.append(ins.andi(regs.A0, regs.A0, 127))  # exit-status range
    code.append(ins.movi(regs.RV, SYS_EXIT))
    code.append(ins.syscall())
    builder.add_function("main", code, symbol_refs=refs)
    builder.set_entry("main")
    return builder.build()


def build_indirect_smc_image():
    """SMC between executions of one indirect call site.

    A two-iteration loop calls ``patchme`` through ``callr`` and patches
    its first instruction after the call, so the second iteration's
    indirect transfer must reach the *new* code (exit 99).  A stale
    inline cache that survived the SMC eviction would dispatch the old
    closure instead — this is the IC generation-guard's load-bearing
    case.
    """
    builder = ImageBuilder("indirect-smc-app")
    builder.add_function("patchme", [ins.movi(regs.A0, 1), ins.ret()])
    new_word = _word_of(ins.movi(regs.A0, 99))
    lo = new_word & 0xFFFF
    hi = (new_word >> 16) & ((1 << 47) - 1)
    t1, t2, t3 = (regs.T0 + i for i in (1, 2, 3))
    code = [
        ins.movi(t1, 0),                      # t1 = &patchme    [reloc]
        ins.movi(t3, 2),                      # t3 = iterations
        # loop: the SAME indirect site runs old code, then patched code.
        ins.callr(t1),                        # index 2 == loop head
        ins.movi(t2, hi),
        ins.shli(t2, t2, 16),
        ins.ori(t2, t2, lo),
        ins.st(t1, t2, 0),                    # patch patchme[0]
        ins.addi(t3, t3, -1),
        ins.bne(t3, regs.ZERO, (2 - (8 + 1)) * 8),
        ins.movi(regs.RV, SYS_EXIT),
        ins.syscall(),                        # exit(a0) -> 99
    ]
    builder.add_function("main", code, symbol_refs=[(0, "patchme")])
    builder.set_entry("main")
    return builder.build()


def build_ic_reset_image(iters=4):
    """SMC that evicts an IC'd *target* but not the calling closure.

    ``patchme`` sits alone on code page 0; a never-executed filler
    function pads everything else onto page 1 (pages are ``1 <<
    CODE_PAGE_SHIFT`` = 512 bytes = 64 instructions).  ``main`` loops
    over ONE ``callr`` site: the early iterations warm its IC chain
    (miss + fill, then hits) while a branchless select parks the patch
    store harmlessly in the heap; the last iteration steers it onto
    ``patchme[0]`` *before* the call.  The store runs inside a separate
    ``do_store`` function (direct call, own trace) so the SMC exit it
    triggers cannot bisect the trace holding the ``callr``.  The patch
    evicts page 0 only, so the very same closure (page 1 survived)
    re-executes its warm ``callr`` with a non-empty chain under a stale
    generation — the wholesale chain reset is the only correct path,
    and the final call must reach the patched code (exit 99).
    """
    from tests.test_smc import _word_of

    builder = ImageBuilder("ic-reset-app")
    builder.add_function("patchme", [ins.movi(regs.A0, 1), ins.ret()])
    # 2 insts so far (16 bytes); 64 filler insts push the rest past 512.
    builder.add_function("filler", [ins.nop() for _ in range(64)])
    new_word = _word_of(ins.movi(regs.A0, 99))
    lo = new_word & 0xFFFF
    hi = (new_word >> 16) & ((1 << 47) - 1)
    t1, t2, t3, t5, t6, t7 = (regs.T0 + i for i in (1, 2, 3, 5, 6, 7))
    builder.add_function("do_store", [ins.st(t7, t2, 0), ins.ret()])
    code = [
        ins.movi(t1, 0),                      # t1 = &patchme    [reloc]
        ins.movi(t2, hi),
        ins.shli(t2, t2, 16),
        ins.ori(t2, t2, lo),                  # t2 = patched word
        ins.movi(t5, HEAP_BASE),              # harmless store target
        ins.movi(t3, iters),
    ]
    head = len(code)
    # t7 = heap + (patchme - heap) * (counter < 2): do_store writes to
    # plain heap data until the final iteration patches patchme[0].
    code.extend([
        ins.movi(t7, 2),
        ins.slt(t6, t3, t7),                  # t6 = is-last-iteration
        ins.sub(t7, t1, t5),
        ins.mul(t7, t7, t6),
        ins.add(t7, t5, t7),
    ])
    refs = [(0, "patchme"), (len(code), "do_store")]
    code.extend([
        ins.call(0),                          # do_store         [reloc]
        ins.callr(t1),                        # same IC site every iter
        ins.addi(t3, t3, -1),
    ])
    here = len(code)
    code.append(ins.bne(t3, regs.ZERO, (head - (here + 1)) * 8))
    code.extend([
        ins.movi(regs.RV, SYS_EXIT),
        ins.syscall(),                        # exit(a0) -> 99
    ])
    builder.add_function("main", code, symbol_refs=refs)
    builder.set_entry("main")
    return builder.build()


class TestIndirectHeavy:
    """Indirect-branch-dominated corpus: the inline caches' test bed."""

    def test_matches_native(self):
        image = build_indirect_image()
        native = run_native(Machine(load_process(image)))
        vm = Engine().run(load_process(image))
        assert vm.exit_status == native.exit_status
        assert vm.instructions == native.instructions

    def test_tiers_agree(self):
        results = assert_equivalent(
            lambda mode: Engine(config=_config(mode)).run(
                load_process(build_indirect_image())
            ),
            context="indirect-heavy",
        )
        # The corpus is actually indirect-heavy: every helper call and
        # return resolves indirectly, under both tiers identically.
        stats = results["compiled"].stats
        assert stats.indirect_resolutions >= 2 * (60 + 40 + 48)

    def test_tiers_agree_with_persistence(self, tmp_path):
        from repro.persist.manager import PersistentCacheSession

        def cold_warm(mode):
            db = CacheDatabase(str(tmp_path / ("ind-" + mode)))

            def one():
                session = PersistentCacheSession(
                    PersistenceConfig(database=db)
                )
                return Engine(config=_config(mode), persistence=session).run(
                    load_process(build_indirect_image())
                )

            return one(), one()

        runs = {mode: cold_warm(mode) for mode in MODES}
        for index in (0, 1):
            assert (signature(runs["interpreted"][index])
                    == signature(runs["compiled"][index])), index

    def test_ic_cuts_host_lookups_on_monomorphic_loop(self, monkeypatch):
        """The IC is invisible to the simulation but must actually work:
        on a monomorphic loop the compiled tier resolves repeat indirect
        transfers from the inline cache, so it calls the host-level
        ``CodeCache.lookup`` far less often than the interpreted tier."""
        from repro.vm import codecache

        image_args = dict(n_helpers=2, mono_iters=200, poly_iters=1,
                          mega_iters=1)
        counts = {}
        original = codecache.CodeCache.lookup
        for mode in MODES:
            calls = [0]

            def counting(self, addr, _calls=calls, _orig=original):
                _calls[0] += 1
                return _orig(self, addr)

            monkeypatch.setattr(codecache.CodeCache, "lookup", counting)
            Engine(config=_config(mode)).run(
                load_process(build_indirect_image(**image_args))
            )
            monkeypatch.setattr(codecache.CodeCache, "lookup", original)
            counts[mode] = calls[0]
        assert counts["compiled"] < counts["interpreted"] - 100, counts

    def test_smc_between_indirect_calls(self):
        """Patching an indirect target between calls must reach the new
        code under both tiers: the cache-generation guard forbids an IC
        from dispatching a closure whose trace was evicted by SMC."""
        results = assert_equivalent(
            lambda mode: Engine(config=_config(mode)).run(
                load_process(build_indirect_smc_image())
            ),
            context="indirect-smc",
        )
        assert results["compiled"].exit_status == 99
        assert results["compiled"].stats.smc_invalidations > 0


class TestPolymorphicIC:
    """The polymorphic IC chain: pure host-side, observably invisible.

    Every assertion pairs a chain-engagement check (hits, depths,
    promotions, resets — host wall-clock machinery) with the tier
    bit-identity contract: :class:`ICStats` rides on
    ``VMRunResult.ic_stats``, *outside* the signature, precisely so the
    chain can never leak into simulated observables.
    """

    def _suite(self):
        from repro.workloads.indirect import build_indirect_suite

        return build_indirect_suite()

    def test_bench_corpora_tiers_agree(self):
        """Every bench corpus is bit-identical across tiers, and every
        compiled-tier indirect resolution went through the IC path."""
        for name, workload in sorted(self._suite().items()):
            results = assert_equivalent(
                lambda mode, wl=workload: run_vm(
                    wl, "run", vm_config=_config(mode)
                ),
                context=("indirect-corpus", name),
            )
            compiled = results["compiled"]
            ics = compiled.ic_stats
            assert (ics.hits + ics.overflow_hits + ics.misses
                    == compiled.stats.indirect_resolutions), name
            # The oracle has no ICs: its counters must stay untouched.
            interp = results["interpreted"].ic_stats
            assert interp.hits == interp.misses == 0, name
            assert interp.overflow_hits == 0, name
            assert interp.depth_hits == [0] * len(interp.depth_hits), name

    def test_alternating_pair_hits_through_move_to_front(self):
        """The acceptance corpus: >80% hit rate where the monomorphic
        cell missed every call, with MTF keeping the pair in the top
        two chain entries."""
        workload = self._suite()["alternating_pair"]
        result = run_vm(workload, "run", vm_config=_config("compiled"))
        ics = result.ic_stats
        assert ics.hit_rate > 0.8, ics.to_dict()
        assert ics.depth_hits[0] > 0 and ics.depth_hits[1] > 0
        assert ics.promotions > 0
        # MTF keeps the working pair in the first two entries: nothing
        # ever hits deeper.
        assert sum(ics.depth_hits[2:]) == 0

    def test_rotating_three_exercises_chain_depth(self):
        """Three cycling targets settle at chain depth 3 under MTF (the
        hit target moves to front, pushing the next one to the back)."""
        workload = self._suite()["rotating_3"]
        result = run_vm(workload, "run", vm_config=_config("compiled"))
        ics = result.ic_stats
        assert ics.hit_rate > 0.8, ics.to_dict()
        assert ics.depth_hits[2] > 0
        assert ics.promotions > 0

    def test_megamorphic_chain_stays_bounded(self):
        """Eight cycling targets overflow the chain: cycling + MTF is
        the bounded chain's worst case, so the chain itself misses by
        design — and the overflow hash tier behind it must absorb the
        whole cycle.  Steady state resolves every callr from the
        overflow table: misses stay bounded near the target count (the
        first-cycle fills), the chain never grows past its depth, and
        no indirect exit bounces through the dispatcher."""
        from repro.vm.stats import IC_CHAIN_DEPTH

        suite = self._suite()
        workload = suite["megamorphic"]
        result = run_vm(workload, "run", vm_config=_config("compiled"))
        ics = result.ic_stats
        # The callr site's eight targets (plus the helpers' ret sites
        # resolving back to the loop) all fill within the first cycles;
        # everything after is a chain hit (ret sites, near-monomorphic)
        # or an overflow hit (the callr cycle).
        assert ics.overflow_hits > ics.misses * 10, ics.to_dict()
        assert ics.misses <= 32, ics.to_dict()
        assert ics.hit_rate > 0.95, ics.to_dict()
        assert len(ics.depth_hits) == IC_CHAIN_DEPTH
        # The satellite acceptance: the megamorphic corpus resolves
        # without dispatcher bounces — every IC-predicted successor was
        # trampolined, never handed back to the dispatch loop.
        assert result.link_stats.link_bounces == 0, (
            result.link_stats.to_dict()
        )
        assert result.link_stats.link_ic_hops > 0

    def test_generation_bump_resets_stale_chain(self):
        """Patching an IC'd target evicts its page but not the calling
        closure: the survivor's chain is non-empty and stale, so the
        generation guard must reset it wholesale and re-resolve into
        the patched code."""
        results = assert_equivalent(
            lambda mode: Engine(config=_config(mode)).run(
                load_process(build_ic_reset_image())
            ),
            context="ic-reset",
        )
        compiled = results["compiled"]
        assert compiled.exit_status == 99
        assert compiled.stats.smc_invalidations > 0
        ics = compiled.ic_stats
        assert ics.resets >= 1, ics.to_dict()
        assert ics.hits > 0  # the chain was warm before the patch

    def test_eviction_between_indirect_calls(self):
        """A code pool small enough to flush mid-run churns every chain:
        flushes kill all resident closures, so re-translated traces come
        back with *fresh* (empty) ICs — no stale ``(target, resident)``
        pair can survive into the next epoch, and the tiers stay
        bit-identical through the churn.  (The surviving-closure case,
        where the generation guard must reset a warm chain in place, is
        ``test_generation_bump_resets_stale_chain``.)"""
        config_kwargs = dict(code_pool_bytes=768)
        results = assert_equivalent(
            lambda mode: Engine(
                config=VMConfig(dispatch_mode=mode, **config_kwargs)
            ).run(load_process(build_indirect_image())),
            context="ic-flush",
        )
        compiled = results["compiled"]
        assert compiled.stats.cache_flushes > 0
        ics = compiled.ic_stats
        # Post-flush re-fills still land, and the IC path saw every
        # compiled-tier indirect resolution despite the churn.
        assert ics.hits > 0 and ics.fills > 0, ics.to_dict()
        assert (ics.hits + ics.overflow_hits + ics.misses
                == compiled.stats.indirect_resolutions), ics.to_dict()


class TestHardCases:
    def test_self_modifying_code(self):
        """SMC invalidation must behave identically: the closure of the
        patched trace dies with its cache residency, and the patched
        code executes (exit 99) under both tiers."""
        results = assert_equivalent(
            lambda mode: Engine(config=_config(mode)).run(
                load_process(build_smc_image())
            ),
            context="smc",
        )
        assert results["compiled"].exit_status == 99
        assert results["compiled"].stats.smc_invalidations > 0

    def test_smc_with_persistence(self, tmp_path):
        def cold_warm(mode):
            from repro.persist.manager import PersistentCacheSession

            db = CacheDatabase(str(tmp_path / ("smc-" + mode)))

            def one():
                session = PersistentCacheSession(
                    PersistenceConfig(database=db)
                )
                return Engine(config=_config(mode), persistence=session).run(
                    load_process(build_smc_image())
                )

            return one(), one()

        runs = {mode: cold_warm(mode) for mode in MODES}
        for index in (0, 1):
            assert (signature(runs["interpreted"][index])
                    == signature(runs["compiled"][index])), index
        assert runs["compiled"][1].exit_status == 99

    def test_module_reload(self, tmp_path):
        """dlopen/dlclose cycles: unload evicts traces (and their
        closures); reload re-registers retained translations."""
        workload = make_module_workload(cycles=3, increment=5)
        assert_equivalent(
            lambda mode: run_vm(workload, "go", vm_config=_config(mode)),
            context="module-reload",
        )

        def with_persistence(mode):
            db = CacheDatabase(str(tmp_path / ("mod-" + mode)))
            cold = run_vm(workload, "go",
                          persistence=PersistenceConfig(database=db),
                          vm_config=_config(mode))
            warm = run_vm(workload, "go",
                          persistence=PersistenceConfig(database=db),
                          vm_config=_config(mode))
            return cold, warm

        runs = {mode: with_persistence(mode) for mode in MODES}
        for index in (0, 1):
            assert (signature(runs["interpreted"][index])
                    == signature(runs["compiled"][index])), index


class TestInstrumentation:
    @pytest.mark.parametrize("tool_factory", [
        BBCountTool, InsCountTool, MemTraceTool,
    ])
    def test_tool_state_matches(self, tool_factory, gui_suite):
        """Analysis callbacks fire with identical context under both
        tiers: final tool state (not just accounting) must agree."""
        app = gui_suite["gftp"]
        states = {}
        results = {}
        for mode in MODES:
            tool = tool_factory()
            results[mode] = run_vm(
                app, "startup", tool=tool, vm_config=_config(mode)
            )
            states[mode] = vars(tool)
        assert (signature(results["interpreted"])
                == signature(results["compiled"]))
        assert states["interpreted"] == states["compiled"]

    def test_tool_with_persistence(self, gui_suite, tmp_path):
        app = gui_suite["gqview"]

        def cold_warm(mode):
            db = CacheDatabase(str(tmp_path / ("tool-" + mode)))
            runs = []
            for _ in range(2):
                tool = BBCountTool()
                result = run_vm(app, "startup", tool=tool,
                                persistence=PersistenceConfig(database=db),
                                vm_config=_config(mode))
                runs.append((signature(result), vars(tool)))
            return runs

        runs = {mode: cold_warm(mode) for mode in MODES}
        assert runs["interpreted"] == runs["compiled"]


def build_chain_smc_image(iters=24):
    """SMC on a *direct-linked* (and by then region-fused) successor.

    ``patchme`` sits alone on code page 0 (the filler pads everything
    else onto page 1) and is reached through a direct ``call`` — the
    exact slot the chain trampoline patches and the fusion driver walks.
    The loop runs long enough for the call slot to cross the fusion
    threshold (the two-trace chain call-site -> ``patchme`` fuses into a
    region), then the last iteration patches ``patchme[0]`` before the
    call: the eviction must unlink the incoming slot, kill the region,
    and the very next call must reach the *new* code (exit 99).  A stale
    link or a surviving fused body would execute the old instruction.
    """
    from tests.test_smc import _word_of

    builder = ImageBuilder("chain-smc-app")
    builder.add_function("patchme", [ins.movi(regs.A0, 99), ins.ret()])
    # 2 insts so far (16 bytes); 64 filler insts push the rest past 512.
    builder.add_function("filler", [ins.nop() for _ in range(64)])
    new_word = _word_of(ins.movi(regs.A0, 7))
    lo = new_word & 0xFFFF
    hi = (new_word >> 16) & ((1 << 47) - 1)
    t1, t2, t3, t5, t6, t7 = (regs.T0 + i for i in (1, 2, 3, 5, 6, 7))
    builder.add_function("do_store", [ins.st(t7, t2, 0), ins.ret()])
    code = [
        ins.movi(t1, 0),                      # t1 = &patchme    [reloc]
        ins.movi(t2, hi),
        ins.shli(t2, t2, 16),
        ins.ori(t2, t2, lo),                  # t2 = patched word
        ins.movi(t5, HEAP_BASE),              # harmless store target
        ins.movi(t3, iters),
    ]
    head = len(code)
    # t7 = heap + (patchme - heap) * (counter < 2): do_store writes to
    # plain heap data until the final iteration patches patchme[0].
    code.extend([
        ins.movi(t7, 2),
        ins.slt(t6, t3, t7),                  # t6 = is-last-iteration
        ins.sub(t7, t1, t5),
        ins.mul(t7, t7, t6),
        ins.add(t7, t5, t7),
    ])
    refs = [(0, "patchme"), (len(code), "do_store")]
    code.append(ins.call(0))                  # do_store         [reloc]
    refs.append((len(code), "patchme"))
    code.extend([
        ins.call(0),                          # DIRECT call      [reloc]
        ins.addi(t3, t3, -1),
    ])
    here = len(code)
    code.append(ins.bne(t3, regs.ZERO, (head - (here + 1)) * 8))
    code.extend([
        ins.movi(regs.RV, SYS_EXIT),
        ins.syscall(),                        # exit(a0) -> 7 after patch
    ])
    builder.add_function("main", code, symbol_refs=refs)
    builder.set_entry("main")
    return builder.build()


class TestTraceLinking:
    """Cross-trace linking and superblock fusion: pure host-side.

    Three tiers must agree bit-for-bit on every chain corpus:
    interpreted (the oracle), compiled without linking (the PR-5
    baseline, ``trace_linking=False``) and compiled with the chain
    trampoline + region fusion.  :class:`~repro.vm.stats.LinkStats`
    rides on ``VMRunResult.link_stats``, *outside* the signature,
    exactly like the IC counters — the trampoline may never leak into
    simulated observables.
    """

    LINK_MODES = ("interpreted", "nolink", "linked")

    @staticmethod
    def _link_config(mode, **kwargs):
        if mode == "interpreted":
            return VMConfig(dispatch_mode="interpreted", **kwargs)
        return VMConfig(
            dispatch_mode="compiled",
            trace_linking=(mode == "linked"),
            **kwargs
        )

    def _suite(self):
        from repro.workloads.chains import build_chain_suite

        return build_chain_suite()

    def assert_three_way(self, run_one, context=""):
        """``run_one(mode)`` must produce identical signatures for the
        oracle, the unlinked compiled tier and the linked one."""
        results = {mode: run_one(mode) for mode in self.LINK_MODES}
        base = signature(results["interpreted"])
        for mode in ("nolink", "linked"):
            sig = signature(results[mode])
            for key in base:
                assert base[key] == sig[key], (context, mode, key)
        return results

    def test_chain_corpora_three_way(self):
        """Every bench corpus: three-way bit-identity, the stable
        chains never bounce through the dispatcher, and fusion engages
        (the ``trace_linking`` family's correctness gate)."""
        for name, workload in sorted(self._suite().items()):
            results = self.assert_three_way(
                lambda mode, wl=workload: run_vm(
                    wl, "run", vm_config=self._link_config(mode)
                ),
                context=("chain-corpus", name),
            )
            links = results["linked"].link_stats
            assert links.link_bounces == 0, (name, links.to_dict())
            assert links.link_direct_hops > 0, name
            assert links.regions_fused > 0, name
            assert links.region_entries > 0, name
            assert links.region_hops > 0, name
            # Linking machinery must stay cold when disabled, and the
            # oracle has none at all.
            assert results["nolink"].link_stats.chained_exits == 0, name
            assert results["nolink"].link_stats.regions_fused == 0, name
            assert results["interpreted"].link_stats.chained_exits == 0

    def test_relay_ring_fuses_into_one_region(self):
        """relay_4 fits one region: steady state is one region entry
        plus one back-edge hop per iteration, with zero per-exit
        dispatcher re-entries (the acceptance criterion)."""
        workload = self._suite()["relay_4"]
        result = run_vm(
            workload, "run", vm_config=self._link_config("linked")
        )
        links = result.link_stats
        assert links.link_bounces == 0, links.to_dict()
        assert links.regions_fused == 1, links.to_dict()
        # 4000 iterations, 4 transfers each: nearly all stay host-side.
        assert links.chained_exits > 3 * 4000, links.to_dict()
        assert links.region_entries > 3500, links.to_dict()

    def test_long_relay_splits_at_region_cap(self):
        """relay_12 exceeds ``REGION_MAX_MEMBERS``: the fusion driver
        must cap the first region and fuse the tail separately instead
        of growing without bound."""
        from repro.vm.compile import REGION_MAX_MEMBERS

        workload = self._suite()["relay_12"]
        result = run_vm(
            workload, "run", vm_config=self._link_config("linked")
        )
        links = result.link_stats
        assert links.regions_fused >= 2, links.to_dict()
        assert links.link_bounces == 0, links.to_dict()
        assert 12 > REGION_MAX_MEMBERS  # the corpus really overflows

    def test_smc_on_linked_successor(self):
        """Patching a direct-linked, region-fused successor: eviction
        must unlink the incoming slot and kill the region, and the next
        call reaches the new code under all three tiers."""
        results = self.assert_three_way(
            lambda mode: Engine(config=self._link_config(mode)).run(
                load_process(build_chain_smc_image())
            ),
            context="chain-smc",
        )
        linked = results["linked"]
        assert linked.exit_status == 7
        assert linked.stats.smc_invalidations > 0
        links = linked.link_stats
        assert links.link_direct_hops > 0, links.to_dict()
        assert links.regions_fused >= 1, links.to_dict()
        assert links.region_invalidations >= 1, links.to_dict()

    def test_cache_flush_mid_chain(self):
        """A code pool small enough to flush mid-run: flushes unlink
        every slot and drop every region wholesale, and the re-formed
        chains re-fuse without diverging from the oracle."""
        # Sized to hold most — not all — of relay_4's five traces, so
        # links form and take hops between the recurring flushes.
        config_kwargs = dict(code_pool_bytes=320)
        workload = self._suite()["relay_4"]
        results = self.assert_three_way(
            lambda mode: run_vm(
                workload, "run",
                vm_config=self._link_config(mode, **config_kwargs),
            ),
            context="chain-flush",
        )
        linked = results["linked"]
        assert linked.stats.cache_flushes > 0
        links = linked.link_stats
        assert links.link_direct_hops > 0, links.to_dict()

    def test_budget_faults_identically_mid_chain(self):
        """An instruction budget that runs out mid-trampoline must
        fault at exactly the pc the oracle faults at: the trampoline
        checks the budget before every hop and hands the successor back
        to the dispatch loop's own check."""
        from repro.machine.cpu import MachineFault

        workload = self._suite()["relay_4"]
        faults = {}
        for mode in self.LINK_MODES:
            with pytest.raises(MachineFault) as excinfo:
                run_vm(
                    workload, "run",
                    vm_config=self._link_config(
                        mode, max_instructions=50_000
                    ),
                )
            faults[mode] = str(excinfo.value)
        assert faults["interpreted"] == faults["nolink"] == faults["linked"]

    def test_persistence_round_trip_three_way(self, tmp_path):
        """Link state must never persist: warm runs revive traces with
        fresh (unlinked) slots, re-link on insertion, re-fuse regions,
        and stay bit-identical to the oracle — a revived stale link
        would dispatch a dead closure or diverge."""
        workload = self._suite()["relay_4"]

        def cold_warm(mode):
            db = CacheDatabase(str(tmp_path / ("chain-" + mode)))
            return [
                run_vm(workload, "run",
                       persistence=PersistenceConfig(database=db),
                       vm_config=self._link_config(mode))
                for _ in range(2)
            ]

        runs = {mode: cold_warm(mode) for mode in self.LINK_MODES}
        for index in (0, 1):
            base = signature(runs["interpreted"][index])
            for mode in ("nolink", "linked"):
                assert base == signature(runs[mode][index]), (mode, index)
        warm = runs["linked"][1]
        assert warm.stats.traces_translated == 0
        links = warm.link_stats
        assert links.link_bounces == 0, links.to_dict()
        assert links.regions_fused > 0, links.to_dict()
        assert links.link_direct_hops > 0, links.to_dict()


class TestConfig:
    def test_default_mode_is_compiled(self):
        assert VMConfig().dispatch_mode == "compiled"

    def test_unknown_mode_rejected(self, gui_suite):
        from repro.vm.engine import EngineError

        with pytest.raises(EngineError):
            run_vm(gui_suite["dia"], "startup",
                   vm_config=VMConfig(dispatch_mode="jit"))
