"""Fault injection for the cache-server daemon transport.

The daemon's whole safety argument: the flock store is the source of
truth, the socket is an accelerator, and *any* transport failure — the
daemon killed -9 mid-publish, a torn or garbage frame, a hung peer —
must degrade the client silently to the file path.  A live run is
never corrupted, never even perturbed, and ``cache fsck`` stays clean
after every fault (the daemon only ever writes through the store's
lock → merge → atomic-rename publish protocol).
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import socket
import threading
import time

import pytest

from repro.persist.cacheserver import (
    FRAME_MAGIC,
    FRAME_PREAMBLE,
    CacheServer,
    DaemonProtocolError,
    default_socket_path,
    pack_frame,
    parse_frame,
    read_frame,
)
from repro.persist.daemon import (
    DaemonBackedStore,
    DaemonClient,
    DaemonError,
)
from repro.persist.database import CacheDatabase
from repro.persist.manager import PersistenceConfig
from repro.persist.sharedstore import SharedBodyStore
from repro.vm.compile import clear_code_object_cache
from repro.vm.engine import VM_VERSION, VMConfig
from repro.workloads.harness import run_vm

from tests.test_persist_manager import mini_workload

pytestmark = pytest.mark.faultinject


def digest_for(i: int) -> str:
    return "%02x%062x" % (i % 8, i)


def blob_for(i: int) -> bytes:
    return b"fault-body-%d" % i


def assert_fsck_clean(store_dir: str) -> None:
    report = SharedBodyStore(store_dir, vm_version=VM_VERSION).fsck()
    assert report.clean, [
        (i.filename, i.status, i.detail) for i in report.items
    ]


# -- a real daemon process to kill -------------------------------------------


def _serve_forever(store_dir: str) -> None:
    CacheServer(store_dir, vm_version=VM_VERSION,
                flush_interval_s=0.05).serve_forever()


def start_daemon_process(store_dir: str):
    context = multiprocessing.get_context("fork")
    process = context.Process(target=_serve_forever, args=(store_dir,),
                              daemon=True)
    process.start()
    address = default_socket_path(store_dir)
    deadline = time.monotonic() + 15.0
    while time.monotonic() < deadline:
        probe = DaemonClient(address, vm_version=VM_VERSION, timeout_s=0.5)
        try:
            probe.ping()
            return process
        except DaemonError:
            time.sleep(0.05)
        finally:
            probe.close()
    process.terminate()
    raise AssertionError("daemon process never came up at %s" % address)


class TestKillNine:
    def test_kill9_mid_publish_degrades_silently(self, tmp_path):
        """SIGKILL at an arbitrary point of a publish stream: the
        client flips to the file transport without surfacing anything,
        every post-kill publish lands on disk, and no shard is ever
        damaged (the unflushed pre-kill tail is lost, not torn)."""
        store_dir = str(tmp_path / "store")
        SharedBodyStore(store_dir, vm_version=VM_VERSION).publish(
            {digest_for(0): blob_for(0)}
        )
        process = start_daemon_process(store_dir)
        store = DaemonBackedStore(store_dir, VM_VERSION, timeout_s=1.0)
        assert store.transport == "daemon"
        killed_at = None
        for i in range(1, 40):
            if i == 17:
                os.kill(process.pid, signal.SIGKILL)
                process.join(timeout=10)
                killed_at = i
            # No publish may raise: before the kill they go over the
            # socket, after it the client degrades mid-stream.
            store.publish({digest_for(i): blob_for(i)},
                          costs={digest_for(i): 10})
        assert killed_at is not None
        assert store.transport == "file"
        assert store.daemon_fallbacks == 1
        fresh = SharedBodyStore(store_dir, vm_version=VM_VERSION)
        # Everything the file transport wrote is durable; the daemon's
        # unflushed tail may be gone but nothing may be corrupt.
        for i in range(killed_at + 1, 40):
            assert fresh.lookup(digest_for(i)) == blob_for(i)
        assert fresh.lookup(digest_for(0)) == blob_for(0)
        assert_fsck_clean(store_dir)

    def test_sessions_fall_back_after_daemon_death(self, tmp_path):
        """A fleet session started after the daemon died behaves
        exactly like a file-backed session: same observables, zero
        host compiles against the warm pool, clean fsck."""
        store_dir = str(tmp_path / "store")
        workload = mini_workload()
        shared = SharedBodyStore(store_dir, vm_version=VM_VERSION)
        clear_code_object_cache()
        run_vm(workload, "ab",
               persistence=PersistenceConfig(
                   database=CacheDatabase(str(tmp_path / "donor")),
                   shared_store=shared,
               ),
               vm_config=VMConfig(dispatch_mode="compiled"))
        process = start_daemon_process(store_dir)
        os.kill(process.pid, signal.SIGKILL)
        process.join(timeout=10)

        def consumer(tag, attached):
            clear_code_object_cache()
            return run_vm(
                workload, "ab",
                persistence=PersistenceConfig(
                    database=CacheDatabase(str(tmp_path / tag)),
                    readonly=True,
                    shared_store=attached,
                ),
                vm_config=VMConfig(dispatch_mode="compiled"),
            )

        via_daemon_spec = consumer(
            "consumer-daemon", DaemonBackedStore(store_dir, VM_VERSION,
                                                 timeout_s=0.5)
        )
        via_file = consumer(
            "consumer-file", SharedBodyStore(store_dir,
                                             vm_version=VM_VERSION)
        )
        assert via_daemon_spec.output == via_file.output
        assert via_daemon_spec.exit_status == via_file.exit_status
        assert (vars(via_daemon_spec.stats) == vars(via_file.stats))
        report = via_daemon_spec.persistence_report
        assert report["shared_transport"] == "file"
        assert report["sidecar_host_compiles"] == 0
        assert report["shared_hits"] > 0
        assert_fsck_clean(store_dir)


class TestGarbageOverTheSocket:
    """A daemon must survive any byte stream a client throws at it."""

    @pytest.fixture
    def live_server(self, tmp_path):
        store_dir = str(tmp_path / "store")
        SharedBodyStore(store_dir, vm_version=VM_VERSION).publish(
            {digest_for(1): blob_for(1)}
        )
        server = CacheServer(store_dir, vm_version=VM_VERSION)
        server.start()
        yield server, store_dir
        server.stop()

    def _raw(self, store_dir: str) -> socket.socket:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(2.0)
        sock.connect(default_socket_path(store_dir))
        return sock

    def _assert_still_serving(self, store_dir: str) -> None:
        client = DaemonClient(default_socket_path(store_dir),
                              vm_version=VM_VERSION, timeout_s=2.0)
        try:
            assert client.ping()["entries"] >= 1
        finally:
            client.close()

    def test_garbage_magic_answers_error_and_daemon_survives(
        self, live_server
    ):
        server, store_dir = live_server
        sock = self._raw(store_dir)
        sock.sendall(b"NOTPCSD-garbage-garbage-garbage!")
        # The daemon answers with a well-formed error frame, then tears
        # the connection down (no resync over a CRC-framed stream).
        op, meta, _ = parse_frame(read_frame(sock))
        assert op == "error"
        assert "bad-frame" in meta["reason"]
        # The connection is torn down after the error frame (EOF, or a
        # reset when our unread garbage was still buffered server-side).
        try:
            assert read_frame(sock) is None
        except OSError:
            pass
        sock.close()
        assert server.stats.bad_frames >= 1
        self._assert_still_serving(store_dir)

    def test_truncated_frame_is_survived(self, live_server):
        server, store_dir = live_server
        frame = pack_frame("ping", {"vm": VM_VERSION})
        sock = self._raw(store_dir)
        sock.sendall(frame[: len(frame) // 2])
        sock.close()  # connection dies mid-frame
        self._assert_still_serving(store_dir)

    def test_oversized_length_is_rejected_before_allocation(
        self, live_server
    ):
        server, store_dir = live_server
        preamble = FRAME_PREAMBLE.pack(FRAME_MAGIC, 1, 0,
                                       1 << 31, 0xDEADBEEF)
        sock = self._raw(store_dir)
        sock.sendall(preamble)
        reply = sock.recv(1 << 16)
        sock.close()
        assert reply == b"" or b"bad-frame" in reply
        self._assert_still_serving(store_dir)

    def test_corrupt_payload_crc_is_rejected(self, live_server):
        server, store_dir = live_server
        frame = bytearray(pack_frame("ping", {"vm": VM_VERSION}))
        frame[-1] ^= 0xFF  # flip one payload byte; CRC now lies
        sock = self._raw(store_dir)
        sock.sendall(bytes(frame))
        op, meta, _ = parse_frame(read_frame(sock))
        assert op == "error"
        assert "checksum" in meta["reason"]
        sock.close()
        assert server.stats.bad_frames >= 1
        self._assert_still_serving(store_dir)


# -- misbehaving servers the client must survive ------------------------------


class FakeServer:
    """A unix-socket peer with a scripted (mis)behavior per request."""

    def __init__(self, path: str, behaviors):
        self.path = path
        self.behaviors = list(behaviors)
        self.sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self.sock.bind(path)
        self.sock.listen(8)
        self.sock.settimeout(0.2)
        self._stop = threading.Event()
        self._served = 0
        self.thread = threading.Thread(target=self._loop, daemon=True)
        self.thread.start()

    def _loop(self):
        while not self._stop.is_set():
            try:
                conn, _ = self.sock.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            try:
                self._serve(conn)
            finally:
                try:
                    conn.close()
                except OSError:
                    pass

    def _serve(self, conn):
        conn.settimeout(5.0)
        while not self._stop.is_set():
            try:
                raw = read_frame(conn)
            except (DaemonProtocolError, OSError):
                return
            if raw is None:
                return
            behavior = (self.behaviors[self._served]
                        if self._served < len(self.behaviors)
                        else self.behaviors[-1])
            self._served += 1
            if behavior == "pong":
                conn.sendall(pack_frame("pong", {"entries": 0}))
            elif behavior == "half-frame":
                conn.sendall(pack_frame("pong", {})[:10])
                return
            elif behavior == "garbage":
                conn.sendall(b"\x00" * 64)
                return
            elif behavior == "hang":
                self._stop.wait(30.0)
                return

    def close(self):
        self._stop.set()
        self.thread.join(timeout=5)
        try:
            self.sock.close()
        finally:
            if os.path.exists(self.path):
                os.unlink(self.path)


class TestClientAgainstMisbehavior:
    def seed(self, tmp_path):
        store_dir = str(tmp_path / "store")
        SharedBodyStore(store_dir, vm_version=VM_VERSION).publish(
            {digest_for(1): blob_for(1)}
        )
        return store_dir

    def test_hung_daemon_times_out_into_fallback(self, tmp_path):
        store_dir = self.seed(tmp_path)
        fake = FakeServer(default_socket_path(store_dir), ["hang"])
        try:
            start = time.monotonic()
            store = DaemonBackedStore(store_dir, VM_VERSION,
                                      timeout_s=0.2)
            elapsed = time.monotonic() - start
            assert store.transport == "file"
            assert elapsed < 5.0  # bounded by the timeout, not the hang
            assert store.lookup(digest_for(1)) == blob_for(1)
        finally:
            fake.close()

    def test_half_frame_reply_degrades_mid_session(self, tmp_path):
        store_dir = self.seed(tmp_path)
        fake = FakeServer(default_socket_path(store_dir),
                          ["pong", "half-frame"])
        try:
            store = DaemonBackedStore(store_dir, VM_VERSION,
                                      timeout_s=1.0)
            assert store.transport == "daemon"  # the pong fooled it
            # The torn reply must surface as a clean miss→fallback,
            # not an exception: the lookup is answered by the files.
            assert store.lookup(digest_for(1)) == blob_for(1)
            assert store.transport == "file"
            assert store.daemon_fallbacks == 1
        finally:
            fake.close()

    def test_garbage_reply_degrades_mid_session(self, tmp_path):
        store_dir = self.seed(tmp_path)
        fake = FakeServer(default_socket_path(store_dir),
                          ["pong", "garbage"])
        try:
            store = DaemonBackedStore(store_dir, VM_VERSION,
                                      timeout_s=1.0)
            assert store.transport == "daemon"
            result = store.publish({digest_for(2): blob_for(2)},
                                   costs={digest_for(2): 10})
            assert result.published == 1  # served by the file fallback
            assert store.transport == "file"
            fresh = SharedBodyStore(store_dir, vm_version=VM_VERSION)
            assert fresh.lookup(digest_for(2)) == blob_for(2)
        finally:
            fake.close()
        assert_fsck_clean(store_dir)

    def test_error_reply_is_daemon_error_for_the_raw_client(
        self, tmp_path
    ):
        store_dir = self.seed(tmp_path)
        server = CacheServer(store_dir, vm_version=VM_VERSION)
        server.start()
        try:
            client = DaemonClient(default_socket_path(store_dir),
                                  vm_version="other-vm", timeout_s=1.0)
            with pytest.raises(DaemonError, match="key-mismatch"):
                client.request("lookup", {"digests": [digest_for(1)]})
            client.close()
        finally:
            server.stop()
        assert_fsck_clean(store_dir)

    def test_no_socket_at_all_is_the_quiet_path(self, tmp_path):
        store_dir = self.seed(tmp_path)
        store = DaemonBackedStore(store_dir, VM_VERSION, timeout_s=0.2)
        assert store.transport == "file"
        assert store.daemon_fallbacks == 0  # never had a daemon to lose
        assert store.lookup(digest_for(1)) == blob_for(1)
        assert store.publish({digest_for(3): blob_for(3)},
                             costs={digest_for(3): 10}).published == 1
        assert_fsck_clean(store_dir)
