"""Fault injection against the compiled-body sidecar.

The sidecar's containment contract is stricter than the trace cache's:
it is a pure host-side accelerator, so *any* induced fault — flipped
bytes, truncation, unreadable file, ``ENOSPC`` mid-write, a crash
between tmp write and rename — must leave the simulated run bit-for-bit
identical, must never degrade the persistence session, and must never
touch the trace cache (which is keyed and written independently).
"""

import errno
import os

import pytest

from repro.persist.database import CacheDatabase, QUARANTINE_DIR
from repro.persist.manager import PersistenceConfig
from repro.persist.sidecar import SIDECAR_NAME
from repro.testing.faultfs import (
    FaultPlan,
    FaultyStorage,
    SimulatedCrash,
    flip_byte,
    truncate_file,
)
from repro.vm.compile import clear_code_object_cache
from repro.vm.engine import VMConfig
from repro.workloads.harness import run_vm

from tests.test_persist_manager import mini_workload

pytestmark = pytest.mark.faultinject


def observable(result):
    """Everything the simulation observes; faults must never move it."""
    return (
        result.output,
        result.exit_status,
        result.instructions,
        vars(result.stats),
    )


@pytest.fixture
def workload():
    return mini_workload()


def compiled_run(workload, input_name, db):
    return run_vm(
        workload,
        input_name,
        persistence=PersistenceConfig(database=db),
        vm_config=VMConfig(dispatch_mode="compiled"),
    )


def seed(workload, directory):
    """Cold-populate a database (traces + sidecar); return its path."""
    db = CacheDatabase(directory)
    clear_code_object_cache()
    compiled_run(workload, "a", db)
    return os.path.join(directory, SIDECAR_NAME)


class TestDamagedSidecarReads:
    @pytest.mark.parametrize("damage", ["flip", "truncate"])
    def test_quarantined_without_touching_trace_persistence(
        self, damage, workload, tmp_path
    ):
        # Reference: a healthy warm run.
        seed(workload, str(tmp_path / "ref"))
        clear_code_object_cache()
        reference = compiled_run(
            workload, "a", CacheDatabase(str(tmp_path / "ref"))
        )
        assert reference.persistence_report["sidecar_hits"] > 0

        path = seed(workload, str(tmp_path / "db"))
        if damage == "flip":
            flip_byte(path, os.path.getsize(path) // 2)
        else:
            truncate_file(path, os.path.getsize(path) // 2)
        clear_code_object_cache()
        db = CacheDatabase(str(tmp_path / "db"))
        warm = compiled_run(workload, "a", db)

        report = warm.persistence_report
        # The damage cost exactly the compile()s the sidecar would have
        # saved — nothing else.
        assert report["sidecar_state"] == "quarantined"
        assert report["sidecar_hits"] == 0
        assert report["sidecar_host_compiles"] > 0
        # Trace persistence is untouched: the cache was found, revived,
        # and the session never degraded.
        assert report["cache_found"]
        assert not report["fallback_jit_only"]
        assert not report["cache_quarantined"]
        assert report["degraded_reason"] == ""
        assert warm.stats.traces_from_persistent > 0
        assert warm.stats.traces_translated == 0
        # Bit-for-bit identical simulation.
        assert observable(warm) == observable(reference)
        # Quarantine moved the damaged bytes aside (never deleted)...
        quarantined = os.listdir(
            os.path.join(str(tmp_path / "db"), QUARANTINE_DIR)
        )
        assert any(SIDECAR_NAME in name for name in quarantined)
        # ...and the write-back healed the sidecar for the next process.
        assert report["sidecar_written"]
        assert os.path.exists(path)
        clear_code_object_cache()
        healed = compiled_run(
            workload, "a", CacheDatabase(str(tmp_path / "db"))
        )
        assert healed.persistence_report["sidecar_state"] == "loaded"
        assert healed.persistence_report["sidecar_host_compiles"] == 0

    def test_flips_across_the_file_never_escape(self, workload, tmp_path):
        """Sampled byte flips at every region of the sidecar: each run
        must complete with identical output, whatever the offset hit."""
        path = seed(workload, str(tmp_path / "db"))
        size = os.path.getsize(path)
        pristine = open(path, "rb").read()
        db = CacheDatabase(str(tmp_path / "db"))
        clear_code_object_cache()
        reference = observable(compiled_run(workload, "a", db))
        for offset in range(0, size, max(1, size // 23)):
            with open(path, "wb") as handle:
                handle.write(pristine)
            flip_byte(path, offset)
            clear_code_object_cache()
            run = compiled_run(
                workload, "a", CacheDatabase(str(tmp_path / "db"))
            )
            assert observable(run) == reference, offset
            assert run.persistence_report["sidecar_hits"] == 0, offset

    def test_unreadable_sidecar_is_io_error_state(self, workload, tmp_path):
        seed(workload, str(tmp_path / "db"))
        storage = FaultyStorage(
            FaultPlan(fail_reads=True, match=SIDECAR_NAME)
        )
        db = CacheDatabase(str(tmp_path / "db"), storage=storage)
        clear_code_object_cache()
        warm = compiled_run(workload, "a", db)
        report = warm.persistence_report
        assert report["sidecar_state"] == "io-error"
        assert report["sidecar_host_compiles"] > 0
        assert report["cache_found"]
        assert warm.stats.traces_from_persistent > 0


class TestFaultedSidecarWrites:
    def test_enospc_on_sidecar_write_spares_the_trace_cache(
        self, workload, tmp_path
    ):
        seed(workload, str(tmp_path / "db"))
        storage = FaultyStorage(
            FaultPlan(
                fail_write_on_call=1,
                fail_write_errno=errno.ENOSPC,
                match=SIDECAR_NAME,
            )
        )
        db = CacheDatabase(str(tmp_path / "db"), storage=storage)
        clear_code_object_cache()
        # Input "b" compiles new bodies, forcing a sidecar write-back.
        result = run_vm(
            workload, "b",
            persistence=PersistenceConfig(database=db),
            vm_config=VMConfig(dispatch_mode="compiled"),
        )
        report = result.persistence_report
        assert report["sidecar_state"].startswith("write-error")
        assert not report["sidecar_written"]
        # The trace cache write-back happened anyway.
        assert report["written"]
        assert report["new_traces_persisted"] > 0
        assert not report["fallback_jit_only"]
        assert result.exit_status == 0

    def test_crash_before_rename_leaves_old_sidecar_valid(
        self, workload, tmp_path
    ):
        path = seed(workload, str(tmp_path / "db"))
        before = open(path, "rb").read()
        storage = FaultyStorage(
            FaultPlan(crash_before_rename=True, match=SIDECAR_NAME)
        )
        db = CacheDatabase(str(tmp_path / "db"), storage=storage)
        clear_code_object_cache()
        with pytest.raises(SimulatedCrash):
            run_vm(
                workload, "b",
                persistence=PersistenceConfig(database=db),
                vm_config=VMConfig(dispatch_mode="compiled"),
            )
        # The previous sidecar is untouched (rename never happened) and
        # the next process runs normally from it.
        assert open(path, "rb").read() == before
        clear_code_object_cache()
        recovered = compiled_run(
            workload, "a", CacheDatabase(str(tmp_path / "db"))
        )
        assert recovered.persistence_report["sidecar_state"] == "loaded"
        assert recovered.persistence_report["sidecar_host_compiles"] == 0
        assert recovered.exit_status == 0
