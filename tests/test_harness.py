"""Tests for the workload harness and codecache range eviction."""

import pytest

from repro.isa import instructions as ins
from repro.machine.costs import DEFAULT_COST_MODEL
from repro.vm.codecache import CodeCache
from repro.workloads.harness import run_native, run_vm

from tests.test_persist_manager import mini_workload
from tests.test_vm_codecache import translated_at


class TestHarness:
    def test_run_native_matches_run_vm(self):
        workload = mini_workload()
        native = run_native(workload, "ab")
        vm = run_vm(workload, "ab")
        assert native.exit_status == vm.exit_status
        assert native.instructions == vm.instructions

    def test_cost_model_override(self):
        workload = mini_workload()
        expensive = DEFAULT_COST_MODEL.with_overrides(
            trace_compile_per_inst=1000.0
        )
        cheap = run_vm(workload, "a")
        costly = run_vm(workload, "a", cost_model=expensive)
        assert costly.stats.translation_cycles > cheap.stats.translation_cycles
        assert costly.instructions == cheap.instructions

    def test_each_run_is_a_fresh_process(self):
        workload = mini_workload()
        first = run_vm(workload, "a")
        second = run_vm(workload, "a")
        # Deterministic: identical stats, independent state.
        assert first.stats.total_cycles == second.stats.total_cycles
        assert first.output == second.output

    def test_unknown_input_raises(self):
        workload = mini_workload()
        with pytest.raises(KeyError):
            run_vm(workload, "nonexistent")


class TestEvictRange:
    def test_evicts_overlapping_only(self):
        cache = CodeCache()
        inside = translated_at(0x1000, n=4)
        straddling = translated_at(0x11F0, n=4)  # crosses 0x1200
        outside = translated_at(0x2000, n=4)
        for translated in (inside, straddling, outside):
            cache.insert(translated)
        evicted = cache.evict_range(0x1000, 0x1200)
        assert len(evicted) == 2
        assert cache.lookup(0x1000) is None
        assert cache.lookup(0x11F0) is None
        assert cache.lookup(0x2000) is not None

    def test_empty_range(self):
        cache = CodeCache()
        cache.insert(translated_at(0x1000))
        assert cache.evict_range(0x5000, 0x5200) == []
        assert len(cache) == 1

    def test_unlinks_pointers_into_range(self):
        cache = CodeCache()
        jumper = translated_at(0x3000, target=0x1000)
        cache.insert(jumper)
        cache.insert(translated_at(0x1000))
        assert jumper.final_slot.is_linked
        cache.evict_range(0x0F00, 0x1100)
        assert not jumper.final_slot.is_linked
