"""Tests for the workload-construction DSL."""

import random

import pytest

from repro.loader.linker import load_process
from repro.machine.cpu import Machine, run_native
from repro.workloads.builder import (
    AppBuilder,
    FeatureBlock,
    InputSpec,
    MAX_FEATURES,
    WorkloadBuildError,
    leaf_function,
    loop_function,
    nonleaf_function,
)
from repro.workloads.harness import Workload, run_native as run_native_wl
from repro.workloads.harness import run_vm


class TestInputSpec:
    def test_mask_encoding_low_bits(self):
        spec = InputSpec("x", features=frozenset({0, 3, 30}))
        mask_lo, mask_hi, _ = spec.to_args()
        assert mask_lo == (1 << 0) | (1 << 3) | (1 << 30)
        assert mask_hi == 0

    def test_mask_encoding_high_bits(self):
        spec = InputSpec("x", features=frozenset({31, 61}))
        mask_lo, mask_hi, _ = spec.to_args()
        assert mask_lo == 0
        assert mask_hi == (1 << 0) | (1 << 30)

    def test_iterations_passed(self):
        assert InputSpec("x", hot_iterations=321).to_args()[2] == 321

    def test_out_of_range_feature(self):
        with pytest.raises(WorkloadBuildError):
            InputSpec("x", features=frozenset({MAX_FEATURES})).to_args()


class TestFunctionGenerators:
    def test_leaf_ends_with_ret(self):
        fn = leaf_function(random.Random(1), 10)
        assert len(fn.code) == 10
        assert fn.code[-1].opcode.name == "RET"
        assert not fn.symbol_refs

    def test_leaf_minimum_size(self):
        with pytest.raises(WorkloadBuildError):
            leaf_function(random.Random(1), 1)

    def test_leaf_deterministic(self):
        a = leaf_function(random.Random(7), 12)
        b = leaf_function(random.Random(7), 12)
        assert a.code == b.code

    def test_nonleaf_calls_each_callee(self):
        fn = nonleaf_function(random.Random(1), 30, ["f", "g", "h"])
        assert [sym for _i, sym in fn.symbol_refs] == ["f", "g", "h"]
        assert len(fn.code) == 30

    def test_nonleaf_spills_lr(self):
        fn = nonleaf_function(random.Random(1), 20, ["f"])
        names = [inst.opcode.name for inst in fn.code]
        assert names[0] == "ADDI"  # sp adjust
        assert names[1] == "ST"  # lr spill
        assert names[-3] == "LD"  # lr restore
        assert names[-1] == "RET"

    def test_loop_function_shape(self):
        fn = loop_function(random.Random(1), 5, ["f"], memory_ops=1,
                           syscalls_per_iteration=1)
        names = [inst.opcode.name for inst in fn.code]
        assert "SYSCALL" in names
        assert "BLT" in names
        assert names[-1] == "RET"


def tiny_app(seed=3):
    app = AppBuilder("t", seed=seed)
    app.add_init_block("boot", size=20, subfunctions=1)
    app.add_feature(FeatureBlock(index=0, size=24, subfunctions=1))
    app.add_feature(FeatureBlock(index=1, size=24, subfunctions=1))
    app.set_hot_kernel(size=8, helpers=1, helper_size=4)
    image = app.build()
    inputs = {
        "none": InputSpec("none", frozenset(), hot_iterations=5),
        "f0": InputSpec("f0", frozenset({0}), hot_iterations=5),
        "f01": InputSpec("f01", frozenset({0, 1}), hot_iterations=5),
        "long": InputSpec("long", frozenset(), hot_iterations=500),
    }
    return Workload(name="t", image=image, inputs=inputs)


class TestAppBuilder:
    def test_runs_to_clean_exit(self):
        result = run_native_wl(tiny_app(), "f01")
        assert result.exit_status == 0

    def test_feature_mask_controls_execution(self):
        base = run_native_wl(tiny_app(), "none").instructions
        one = run_native_wl(tiny_app(), "f0").instructions
        two = run_native_wl(tiny_app(), "f01").instructions
        assert base < one < two

    def test_iterations_control_run_length(self):
        short = run_native_wl(tiny_app(), "none").instructions
        long = run_native_wl(tiny_app(), "long").instructions
        assert long > short + 400 * 8

    def test_deterministic_image(self):
        assert tiny_app().image.content_digest() == tiny_app().image.content_digest()

    def test_seed_changes_code(self):
        assert (
            tiny_app(seed=3).image.content_digest()
            != tiny_app(seed=4).image.content_digest()
        )

    def test_duplicate_feature_rejected(self):
        app = AppBuilder("t", seed=1)
        app.add_feature(FeatureBlock(index=0))
        with pytest.raises(WorkloadBuildError):
            app.add_feature(FeatureBlock(index=0))

    def test_feature_footprint_reflects_mask(self):
        wl = tiny_app()
        f0 = run_vm(wl, "f0").stats.trace_identities
        f01 = run_vm(wl, "f01").stats.trace_identities
        assert f0 < f01  # strict subset

    def test_vm_native_equivalence(self):
        wl = tiny_app()
        nat = run_native_wl(wl, "f01")
        vm = run_vm(wl, "f01")
        assert vm.instructions == nat.instructions
        assert vm.exit_status == nat.exit_status


class TestWorkloadContainer:
    def test_unknown_input(self):
        with pytest.raises(KeyError):
            tiny_app().input("missing")

    def test_load(self):
        process = tiny_app().load()
        assert process.executable.path == "t"
