"""Property-based tests on core invariants (hypothesis).

These generate random-but-valid programs and cache contents and check the
properties every experiment silently depends on:

* translated execution is architecturally identical to native execution
  for *any* program;
* a persist/revive round trip reproduces the trace exactly;
* cache files survive serialization byte-exactly;
* liveness analysis is a sound over-approximation.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.binfmt.image import ImageBuilder
from repro.isa import instructions as ins
from repro.isa import registers as regs
from repro.loader.linker import load_process
from repro.machine.cpu import Machine, run_native
from repro.machine.syscalls import SYS_EXIT
from repro.persist.cachefile import (
    PersistedExit,
    PersistedTrace,
    PersistentCache,
)
from repro.persist.keys import MappingKey
from repro.vm.engine import Engine
from repro.vm.trace import ExitKind, Trace, TraceExit
from repro.vm.translator import compute_liveness


# --------------------------------------------------------------------------
# Random straight-line program generation: ALU ops + stack memory +
# bounded loops, always terminating in exit(status).
# --------------------------------------------------------------------------

_SCRATCH = list(range(10, 18))


def _random_program(seed: int, length: int, loops: int):
    rng = random.Random(seed)
    code = [ins.movi(reg, rng.randrange(-100, 100)) for reg in _SCRATCH]
    for _ in range(length):
        kind = rng.randrange(8)
        rd, rs1, rs2 = (rng.choice(_SCRATCH) for _ in range(3))
        if kind == 0:
            code.append(ins.add(rd, rs1, rs2))
        elif kind == 1:
            code.append(ins.sub(rd, rs1, rs2))
        elif kind == 2:
            code.append(ins.xor(rd, rs1, rs2))
        elif kind == 3:
            code.append(ins.addi(rd, rs1, rng.randrange(-50, 50)))
        elif kind == 4:
            code.append(ins.slt(rd, rs1, rs2))
        elif kind == 5:
            code.append(ins.shli(rd, rs1, rng.randrange(1, 4)))
        elif kind == 6:
            code.append(ins.st(regs.SP, rs1, 8 * rng.randrange(0, 4)))
        else:
            code.append(ins.ld(rd, regs.SP, 8 * rng.randrange(0, 4)))
    for _ in range(loops):
        counter = 20  # t10: reserved loop counter
        trip = rng.randrange(1, 9)
        code.append(ins.movi(counter, trip))
        body_len = rng.randrange(1, 4)
        head = len(code)
        for _ in range(body_len):
            code.append(
                ins.addi(rng.choice(_SCRATCH), rng.choice(_SCRATCH),
                         rng.randrange(-3, 3))
            )
        code.append(ins.addi(counter, counter, -1))
        offset = (head - (len(code) + 1)) * 8
        code.append(ins.bne(counter, regs.ZERO, offset))
    code.append(ins.movi(regs.RV, SYS_EXIT))
    code.append(ins.andi(regs.A0, rng.choice(_SCRATCH), 127))
    code.append(ins.syscall())
    return code


def _build(code):
    builder = ImageBuilder("prop")
    builder.add_function("main", code)
    builder.set_entry("main")
    return builder.build()


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    length=st.integers(0, 40),
    loops=st.integers(0, 3),
)
def test_vm_native_equivalence_property(seed, length, loops):
    """For any generated program, the VM preserves architectural behaviour."""
    image = _build(_random_program(seed, length, loops))
    native = run_native(Machine(load_process(image)))
    under_vm = Engine().run(load_process(image))
    assert under_vm.exit_status == native.exit_status
    assert under_vm.instructions == native.instructions


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    length=st.integers(1, 30),
)
def test_liveness_soundness_property(seed, length):
    """Any register actually read before being written must be live-in."""
    code = _random_program(seed, length, 0)
    trace = Trace(entry=0, instructions=code[:24])
    trace.exits = [TraceExit(ExitKind.FALLTHROUGH, len(trace.instructions) - 1,
                             target=len(trace.instructions) * 8)]
    liveness = compute_liveness(trace)
    written = set()
    for index, inst in enumerate(trace.instructions):
        for reg in inst.registers_read():
            if reg not in written:
                # Read before any in-trace write: must be live at entry.
                assert liveness[0] & (1 << reg), (index, reg)
        written |= inst.registers_written()


_trace_strategy = st.builds(
    PersistedTrace,
    entry=st.integers(0x1000, 0xFFFF00).map(lambda a: a & ~7),
    image_path=st.sampled_from(["app", "libx.so", "liby.so"]),
    image_offset=st.integers(0, 0xFFFF).map(lambda a: a & ~7),
    n_insts=st.integers(1, 24),
    code=st.binary(min_size=8, max_size=256),
    exits=st.lists(
        st.builds(
            PersistedExit,
            kind=st.integers(0, 5),
            index=st.integers(0, 23),
            target=st.one_of(st.none(), st.integers(0, 2**31 - 1)),
            target_path=st.sampled_from(["", "app", "libx.so"]),
            target_offset=st.integers(0, 0xFFFF),
        ),
        max_size=4,
    ),
    data_size=st.integers(64, 2048),
    liveness=st.lists(st.integers(0, 2**32 - 1), max_size=24),
)


@settings(max_examples=40, deadline=None)
@given(traces=st.lists(_trace_strategy, max_size=6))
def test_cachefile_roundtrip_property(traces):
    """Any syntactically valid cache serializes and parses byte-exactly."""
    cache = PersistentCache(vm_version="v", tool_identity="t", app_path="app")
    cache.image_keys["app"] = MappingKey("app", 0x1000, 64, "hd", 1)
    seen = set()
    for trace in traces:
        if trace.identity in seen:
            continue
        seen.add(trace.identity)
        cache.traces.append(trace)
    clone = PersistentCache.from_bytes(cache.to_bytes())
    assert len(clone.traces) == len(cache.traces)
    for original, loaded in zip(cache.traces, clone.traces):
        assert loaded.entry == original.entry
        assert loaded.code == original.code
        assert loaded.exits == original.exits
        assert loaded.data_size == original.data_size


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    length=st.integers(0, 25),
    loops=st.integers(0, 2),
)
def test_persistence_architectural_transparency_property(seed, length, loops, tmp_path_factory):
    """Running from a persistent cache is indistinguishable from cold."""
    from repro.persist.database import CacheDatabase
    from repro.persist.manager import PersistenceConfig, PersistentCacheSession

    image = _build(_random_program(seed, length, loops))
    db = CacheDatabase(str(tmp_path_factory.mktemp("pdb")))

    def run():
        session = PersistentCacheSession(PersistenceConfig(database=db))
        return Engine(persistence=session).run(load_process(image))

    cold = run()
    warm = run()
    assert warm.stats.traces_translated == 0
    assert warm.exit_status == cold.exit_status
    assert warm.instructions == cold.instructions
