"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.binfmt.image import Image, ImageBuilder, ImageKind
from repro.isa.assembler import assemble
from repro.loader.linker import ImageStore, load_process
from repro.machine.cpu import Machine
from repro.persist.database import CacheDatabase


def image_from_asm(
    source: str,
    path: str = "app",
    kind: ImageKind = ImageKind.EXECUTABLE,
    needed=(),
    entry: str = "main",
    exports=None,
    mtime: int = 1,
) -> Image:
    """Assemble source text into a complete image."""
    unit = assemble(source)
    builder = ImageBuilder(path, kind, needed=needed, mtime=mtime)
    builder.add_unit(unit, exports=exports)
    if kind == ImageKind.EXECUTABLE:
        builder.set_entry(entry)
    return builder.build()


#: A minimal program: a short loop, a call, then exit(7).
TINY_PROGRAM = """
main:
    movi t0, 10
loop:
    addi t0, t0, -1
    bne  t0, zero, loop
    call helper
    movi rv, 1
    movi a0, 7
    syscall
helper:
    addi t1, t1, 3
    ret
"""


@pytest.fixture
def tiny_image() -> Image:
    return image_from_asm(TINY_PROGRAM)


@pytest.fixture
def tiny_machine(tiny_image) -> Machine:
    return Machine(load_process(tiny_image))


@pytest.fixture
def cache_db(tmp_path) -> CacheDatabase:
    return CacheDatabase(str(tmp_path / "pcc-db"))


def make_machine(source: str, store: ImageStore = None, **kwargs) -> Machine:
    """Assemble, link and wrap a program for execution."""
    image = image_from_asm(source, **kwargs)
    return Machine(load_process(image, store))
