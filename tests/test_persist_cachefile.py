"""Tests for the on-disk persistent cache format."""

import pytest

from repro.persist.cachefile import (
    CacheFileError,
    PersistedExit,
    PersistedReloc,
    PersistedTrace,
    PersistentCache,
)
from repro.persist.keys import MappingKey
from repro.vm.trace import ExitKind


def make_trace(offset=0, path="app", n=4, data_size=400):
    return PersistedTrace(
        entry=0x40_0000 + offset,
        image_path=path,
        image_offset=offset,
        n_insts=n,
        code=bytes(range(n)) * 8,  # n*8 bytes of fake encoded code
        exits=[
            PersistedExit(int(ExitKind.DIRECT), n - 1, 0x41_0000, path, 0x100)
        ],
        relocs=[PersistedReloc(n - 1, path, 0x100)],
        data_size=data_size,
        liveness=[0xFF] * n,
    )


def make_cache(n_traces=3):
    cache = PersistentCache(
        vm_version="vm-1", tool_identity="tool-1", app_path="app"
    )
    cache.image_keys["app"] = MappingKey("app", 0x40_0000, 0x1000, "hd", 1)
    for index in range(n_traces):
        cache.traces.append(make_trace(offset=index * 64))
    return cache


class TestRoundTrip:
    def test_full_roundtrip(self):
        cache = make_cache()
        clone = PersistentCache.from_bytes(cache.to_bytes())
        assert clone.vm_version == cache.vm_version
        assert clone.tool_identity == cache.tool_identity
        assert clone.app_path == cache.app_path
        assert clone.image_keys == cache.image_keys
        assert len(clone.traces) == len(cache.traces)
        for original, loaded in zip(cache.traces, clone.traces):
            assert loaded.entry == original.entry
            assert loaded.code == original.code
            assert loaded.exits == original.exits
            assert loaded.relocs == original.relocs
            assert loaded.liveness == original.liveness
            assert loaded.data_size == original.data_size

    def test_save_load(self, tmp_path):
        path = str(tmp_path / "x.cache")
        cache = make_cache()
        cache.save(path)
        assert len(PersistentCache.load(path).traces) == 3

    def test_corruption_detected(self):
        blob = bytearray(make_cache().to_bytes())
        blob[len(blob) // 2] ^= 0x5A
        with pytest.raises(CacheFileError):
            PersistentCache.from_bytes(bytes(blob))

    def test_bad_magic(self):
        with pytest.raises(CacheFileError):
            PersistentCache.from_bytes(b"XXXX" + b"\x00" * 32)

    def test_empty_cache_roundtrip(self):
        cache = PersistentCache(vm_version="v", tool_identity="t", app_path="a")
        clone = PersistentCache.from_bytes(cache.to_bytes())
        assert clone.traces == []


class TestPools:
    def test_data_blob_exact_size(self):
        trace = make_trace(data_size=512)
        assert len(trace.build_data_blob()) == 512

    def test_data_pool_matches_directory(self):
        cache = make_cache()
        blob = cache.to_bytes()
        # from_bytes validates pool sizes internally; this must not raise.
        PersistentCache.from_bytes(blob)

    def test_pool_totals(self):
        cache = make_cache(n_traces=4)
        assert cache.total_code_bytes == sum(t.code_size for t in cache.traces)
        assert cache.total_data_bytes == 4 * 400

    def test_file_size_includes_both_pools(self):
        small = make_cache(n_traces=1).file_size
        large = make_cache(n_traces=5).file_size
        assert large > small + 4 * 400  # at least the extra data blobs


class TestAccumulation:
    def test_adds_only_new_identities(self):
        cache = make_cache(n_traces=2)
        existing = make_trace(offset=0)  # duplicate identity
        fresh = make_trace(offset=999)
        added = cache.accumulate([existing, fresh], {})
        assert added == 1
        assert len(cache.traces) == 3

    def test_generation_bumped(self):
        cache = make_cache()
        before = cache.generation
        cache.accumulate([], {})
        assert cache.generation == before + 1

    def test_keys_refreshed(self):
        cache = make_cache()
        new_key = MappingKey("libz.so", 0x9000, 64, "zz", 3)
        cache.accumulate([], {"libz.so": new_key})
        assert cache.image_keys["libz.so"] == new_key

    def test_drop_traces(self):
        cache = make_cache(n_traces=3)
        dropped = cache.drop_traces({("app", 0), ("app", 64)})
        assert dropped == 2
        assert len(cache.traces) == 1

    def test_identity(self):
        trace = make_trace(offset=8, path="libq.so")
        assert trace.identity == ("libq.so", 8)

    def test_traces_for_image(self):
        cache = make_cache()
        cache.traces.append(make_trace(offset=0, path="libw.so"))
        assert len(cache.traces_for_image("libw.so")) == 1
        assert len(cache.traces_for_image("app")) == 3


class TestDirectoryValidation:
    def _tamper(self, field, value):
        """Serialize a cache, corrupt one directory field, re-frame.

        Re-frames with valid checksums at every level, so the *semantic*
        validation of the directory records is what gets exercised — not
        the CRCs.
        """
        import json
        import struct
        import zlib

        from repro.persist.cachefile import FORMAT_VERSION, MAGIC, PREAMBLE

        def crc(data):
            return zlib.crc32(data) & 0xFFFFFFFF

        blob = make_cache().to_bytes()
        _, _, flags, header_len, _ = PREAMBLE.unpack_from(blob, 0)
        header_start = PREAMBLE.size
        header = json.loads(blob[header_start:header_start + header_len])
        dir_size = header["sections"]["directory"][0]
        dir_start = header_start + header_len
        directory = json.loads(blob[dir_start:dir_start + dir_size])
        directory[0][field] = value
        new_directory = json.dumps(directory, sort_keys=True).encode()
        header["sections"]["directory"] = [len(new_directory), crc(new_directory)]
        new_header = json.dumps(header, sort_keys=True).encode()
        body = (
            PREAMBLE.pack(
                MAGIC, FORMAT_VERSION, flags, len(new_header), crc(new_header)
            )
            + new_header
            + new_directory
            + blob[dir_start + dir_size:-4]
        )
        return body + struct.pack("<I", crc(body))

    @pytest.mark.parametrize(
        "field,value",
        [
            ("code_offset", -8),
            ("code_size", -1),
            ("data_size", -1),
            ("n_insts", 0),
            ("code_offset", 10**6),
        ],
    )
    def test_out_of_bounds_records_rejected(self, field, value):
        with pytest.raises(CacheFileError):
            PersistentCache.from_bytes(self._tamper(field, value))
