"""Tests for the assembler and disassembler."""

import pytest
from hypothesis import given, strategies as st

from repro.isa import instructions as ins
from repro.isa.assembler import AssemblyError, assemble
from repro.isa.disassembler import disassemble, format_instruction
from repro.isa.encoding import encode_all
from repro.isa.instructions import IMM_MAX, IMM_MIN, INSTRUCTION_SIZE, Instruction
from repro.isa.opcodes import Opcode
from repro.isa.registers import parse_register, register_name


class TestAssembleBasics:
    def test_three_reg(self):
        unit = assemble("add r1, r2, r3")
        assert unit.code == [ins.add(1, 2, 3)]

    def test_abi_aliases(self):
        unit = assemble("add rv, sp, lr")
        inst = unit.code[0]
        assert (inst.rd, inst.rs1, inst.rs2) == (1, 28, 30)

    def test_immediates(self):
        unit = assemble("addi t0, t0, -42\nmovi a0, 0x1000")
        assert unit.code[0].imm == -42
        assert unit.code[1].imm == 0x1000

    def test_memory_operands(self):
        unit = assemble("ld t1, 8(sp)\nst t1, -16(fp)")
        load, store = unit.code
        assert load.opcode == Opcode.LD and load.imm == 8
        assert store.opcode == Opcode.ST and store.imm == -16

    def test_no_operand_forms(self):
        unit = assemble("nop\nret\nsyscall\nhalt")
        assert [inst.opcode for inst in unit.code] == [
            Opcode.NOP, Opcode.RET, Opcode.SYSCALL, Opcode.HALT,
        ]

    def test_comments_and_blanks(self):
        unit = assemble("""
        ; full line comment
        nop  # trailing comment
        """)
        assert len(unit.code) == 1


class TestLabels:
    def test_backward_branch(self):
        unit = assemble("""
        loop:
            addi t0, t0, -1
            bne t0, zero, loop
        """)
        # branch at index 1; target offset = 0 - 16 = -16
        assert unit.code[1].imm == -16

    def test_forward_branch(self):
        unit = assemble("""
            beq t0, zero, done
            nop
        done:
            ret
        """)
        assert unit.code[0].imm == 8  # skip one instruction

    def test_label_offsets_recorded(self):
        unit = assemble("a:\nnop\nb:\nnop")
        assert unit.labels == {"a": 0, "b": INSTRUCTION_SIZE}

    def test_duplicate_label_rejected(self):
        with pytest.raises(AssemblyError):
            assemble("x:\nnop\nx:\nnop")

    def test_label_on_same_line(self):
        unit = assemble("start: nop")
        assert unit.labels["start"] == 0
        assert unit.code == [ins.nop()]


class TestRelocations:
    def test_local_call_records_relocation(self):
        unit = assemble("call f\nf:\nret")
        assert unit.relocations == [(0, "f")]
        assert unit.code[0].imm == INSTRUCTION_SIZE  # unit-relative

    def test_external_call(self):
        unit = assemble("call external_fn")
        assert unit.relocations == [(0, "external_fn")]
        assert unit.code[0].imm == 0

    def test_numeric_jmp_no_relocation(self):
        unit = assemble("jmp 0x400000")
        assert unit.relocations == []
        assert unit.code[0].imm == 0x400000


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "frobnicate r1",
            "add r1, r2",
            "addi r1, r2, banana",
            "ld r1, r2",
            "add r99, r1, r2",
        ],
    )
    def test_rejects(self, bad):
        with pytest.raises(AssemblyError):
            assemble(bad)

    def test_error_carries_line_number(self):
        try:
            assemble("nop\nbogus r1")
        except AssemblyError as exc:
            assert exc.line_number == 2
        else:
            pytest.fail("expected AssemblyError")


class TestDisassembler:
    def test_format_all_shapes(self):
        samples = [
            ins.add(1, 2, 3), ins.addi(1, 2, -3), ins.movi(4, 9),
            ins.lui(4, 9), ins.ld(1, 28, 8), ins.st(28, 1, 8),
            ins.beq(1, 2, -8), ins.jmp(0x40), ins.call(0x40),
            ins.jr(5), ins.callr(5), ins.ret(), ins.syscall(),
            ins.halt(), ins.nop(),
        ]
        for inst in samples:
            text = format_instruction(inst)
            assert text and "%" not in text

    def test_disassemble_addresses(self):
        lines = disassemble(encode_all([ins.nop(), ins.ret()]), base=0x100)
        assert lines[0].startswith("0x00000100:")
        assert lines[1].startswith("0x00000108:")

    def test_roundtrip_through_assembler(self):
        source = [ins.add(1, 2, 3), ins.ld(4, 28, 16), ins.bne(1, 2, -8),
                  ins.jmp(0x400), ins.ret()]
        text = "\n".join(format_instruction(inst) for inst in source)
        assert assemble(text).code == source


@given(
    st.lists(
        st.sampled_from(
            [ins.add(1, 2, 3), ins.addi(5, 5, 7), ins.movi(6, -4),
             ins.ld(1, 28, 8), ins.st(28, 2, 0), ins.slt(3, 1, 2),
             ins.beq(1, 2, 16), ins.jr(5), ins.ret(), ins.nop()]
        ),
        max_size=30,
    )
)
def test_disassemble_reassemble_property(program):
    """Disassembly of any register-addressed program reassembles exactly."""
    text = "\n".join(format_instruction(inst) for inst in program)
    assert assemble(text).code == program


class TestRegisters:
    def test_names_roundtrip(self):
        for reg in range(32):
            assert parse_register(register_name(reg)) == reg

    def test_rn_forms(self):
        assert parse_register("r0") == 0
        assert parse_register("R31") == 31

    def test_unknown(self):
        with pytest.raises(ValueError):
            parse_register("r32")
        with pytest.raises(ValueError):
            parse_register("bogus")

    def test_name_out_of_range(self):
        with pytest.raises(ValueError):
            register_name(32)
