"""Tests for the command-line interface."""

import pytest

from repro.cli import main

from tests.conftest import TINY_PROGRAM, image_from_asm


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out


class TestList:
    def test_lists_all_suites(self, capsys):
        code, out = run_cli(capsys, "list")
        assert code == 0
        for expected in ("164.gzip", "176.gcc", "gftp", "oracle"):
            assert expected in out


class TestRun:
    def test_native(self, capsys):
        code, out = run_cli(capsys, "run", "spec", "164.gzip", "train",
                            "--native")
        assert code == 0
        assert "exit status:  0" in out
        assert "cycles" in out

    def test_vm(self, capsys):
        code, out = run_cli(capsys, "run", "spec", "164.gzip", "train")
        assert code == 0
        assert "traces translated" in out
        assert "vm overhead fraction" in out

    def test_vm_with_tool(self, capsys):
        code, out = run_cli(capsys, "run", "spec", "164.gzip", "train",
                            "--tool", "bbcount")
        assert code == 0
        assert "analysis" in out

    def test_persistence_round_trip(self, capsys, tmp_path):
        db = str(tmp_path / "db")
        run_cli(capsys, "run", "spec", "164.gzip", "train", "--pcache", db)
        code, out = run_cli(capsys, "run", "spec", "164.gzip", "train",
                            "--pcache", db)
        assert code == 0
        assert "traces translated:      0" in out

    def test_unknown_workload(self, capsys):
        with pytest.raises(SystemExit):
            main(["run", "spec", "999.nope", "ref-1"])

    def test_unknown_suite(self, capsys):
        with pytest.raises(SystemExit):
            main(["run", "nosuite", "x", "y"])

    def test_layout_seed(self, capsys, tmp_path):
        db = str(tmp_path / "db")
        run_cli(capsys, "run", "gui", "gftp", "startup", "--pcache", db)
        code, out = run_cli(
            capsys, "run", "gui", "gftp", "startup", "--pcache", db,
            "--readonly", "--layout-seed", "5",
        )
        assert code == 0
        assert "'invalidated': " in out  # relocation caused invalidations

    def test_pic_flag(self, capsys, tmp_path):
        db = str(tmp_path / "db")
        run_cli(capsys, "run", "gui", "gftp", "startup", "--pcache", db,
                "--pic")
        code, out = run_cli(
            capsys, "run", "gui", "gftp", "startup", "--pcache", db,
            "--pic", "--readonly", "--layout-seed", "5",
        )
        assert code == 0
        assert "traces translated:      0" in out


class TestTimeline:
    def test_renders(self, capsys):
        code, out = run_cli(capsys, "timeline", "spec", "164.gzip", "train",
                            "--width", "40")
        assert code == 0
        assert "translation events" in out
        assert "[" in out and "]" in out


class TestPcache:
    def test_list_empty(self, capsys, tmp_path):
        code, out = run_cli(capsys, "pcache", "list", str(tmp_path / "empty"))
        assert code == 0
        assert "empty database" in out

    def test_list_and_show(self, capsys, tmp_path):
        db = str(tmp_path / "db")
        run_cli(capsys, "run", "spec", "164.gzip", "train", "--pcache", db)
        code, out = run_cli(capsys, "pcache", "list", db)
        assert code == 0
        assert "spec/164.gzip" in out
        code, out = run_cli(capsys, "pcache", "show", db)
        assert code == 0
        assert "code pool" in out
        assert "traces by image" in out

    def test_show_empty(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["pcache", "show", str(tmp_path / "none")])

    def test_show_bad_index(self, capsys, tmp_path):
        db = str(tmp_path / "db")
        run_cli(capsys, "run", "spec", "164.gzip", "train", "--pcache", db)
        with pytest.raises(SystemExit):
            main(["pcache", "show", db, "--index", "7"])


class TestDisasm:
    def test_disassembles_image(self, capsys, tmp_path):
        image = image_from_asm(TINY_PROGRAM)
        path = str(tmp_path / "app.sbf")
        image.save(path)
        code, out = run_cli(capsys, "disasm", path)
        assert code == 0
        assert "movi" in out
        assert "syscall" in out

    def test_base_offset(self, capsys, tmp_path):
        image = image_from_asm(TINY_PROGRAM)
        path = str(tmp_path / "app.sbf")
        image.save(path)
        code, out = run_cli(capsys, "disasm", path, "--base", "0x400000")
        assert code == 0
        assert "0x00400000:" in out


class TestVersion:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0


class TestShellSuiteCli:
    def test_run_shell_tool(self, capsys, tmp_path):
        db = str(tmp_path / "db")
        code, out = run_cli(capsys, "run", "shell", "ls", "run",
                            "--pcache", db)
        assert code == 0
        assert "traces translated" in out
        code, out = run_cli(capsys, "run", "shell", "cat", "run",
                            "--pcache", db, "--inter-app", "--readonly")
        assert code == 0
        assert "'cache_found': True" in out
