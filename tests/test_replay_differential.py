"""Differential-replay regression suite over the real workload corpus.

Records the regression-driver corpus plus one representative workload
per bench family, then replays everything under **both** dispatch tiers
and asserts bit-identical results — the record/replay analog of the
bench suite's cross-tier identity check, with the recorded baseline
standing in for the live baseline run.

Also proves the suite can actually fail: a seeded divergence (one
mutated logged ``SYS_RAND`` value in a stored log) must be reported by
``repro replay --diff`` with a nonzero exit code.
"""

import pytest

from repro.cli import main as cli_main
from repro.machine.syscalls import SYS_RAND
from repro.persist.database import CacheDatabase
from repro.replay.harness import DifferentialReplayHarness, record_session
from repro.workloads.nondet import build_nondet_suite

from tests.test_persist_manager import mini_workload


@pytest.fixture(scope="module")
def corpus_db(tmp_path_factory):
    """A database holding recordings of the whole differential corpus."""
    db = CacheDatabase(str(tmp_path_factory.mktemp("replay-corpus") / "db"))

    # Regression-driver corpus: the mini workload's full input set.
    mini = mini_workload()
    resolvable = {}
    for input_name in sorted(mini.inputs):
        outcome = record_session(mini, input_name, database=db)
        resolvable[outcome.log_name] = (mini, input_name)

    # One workload per bench family (suite-resolvable meta):
    #   fig5a_gui / fig2b_gui / record_overhead -> a GUI startup;
    #   headline_spec -> one SPEC2K Train run and one Oracle phase;
    #   indirect_heavy -> one indirect-branch corpus.
    from repro.workloads.gui import build_gui_suite
    from repro.workloads.indirect import build_indirect_suite
    from repro.workloads.oracle import PHASES, build_oracle
    from repro.workloads.spec2k import build_suite

    gui_apps, _store = build_gui_suite()
    bench_members = [
        (gui_apps["gftp"], "startup", None),
        (sorted(build_suite().items())[0][1], "train", None),
        (build_oracle(), PHASES[0], None),
        (sorted(build_indirect_suite().items())[0][1], "run", None),
    ]
    # Plus the nondeterminism-sensitive suite (the only corpus members
    # whose output depends on the logged values, hence the canary host).
    nondet = build_nondet_suite()
    for name in sorted(nondet):
        bench_members.append((nondet[name], "short", "nondet"))

    for workload, input_name, suite in bench_members:
        outcome = record_session(
            workload, input_name, database=db, suite=suite
        )
        resolvable[outcome.log_name] = (workload, input_name)

    db.resolvable = resolvable  # test-only annotation
    return db


def _resolve(db):
    """Resolver over the fixture's own workload objects (the bench
    members are not all suite-addressable, so meta alone is not enough)."""

    def resolve(meta):
        for workload, input_name in db.resolvable.values():
            if (workload.name == meta["workload"]
                    and input_name == meta["input"]):
                return workload, input_name, lambda: None
        raise KeyError(meta.get("name"))

    return resolve


class TestDifferentialRegression:
    def test_whole_corpus_replays_bit_identically(self, corpus_db):
        """Every recording, both dispatch tiers, zero drift."""
        harness = DifferentialReplayHarness(
            corpus_db, resolve=_resolve(corpus_db)
        )
        report = harness.replay_all(modes=("interpreted", "compiled"))
        problems = [o for o in report.outcomes if o.status != "match"]
        assert report.clean, problems
        assert len(report.outcomes) == 2 * len(corpus_db.list_replay_logs())

    def test_seeded_divergence_canary(self, corpus_db, tmp_path, capsys):
        """Mutating one logged SYS_RAND value in one log is detected by
        ``repro replay --diff`` and flips the exit code."""
        # Work on a copy so the module-scoped corpus stays pristine.
        canary_db = CacheDatabase(str(tmp_path / "canary-db"))
        source_name = next(
            name for name in corpus_db.list_replay_logs()
            if name.startswith("dice-")
        )
        log = corpus_db.load_replay_log(source_name)
        for event in log.events:
            if event[0] == "v" and event[1] == SYS_RAND:
                event[2] = (event[2] + 1) & ((1 << 48) - 1)
                break
        else:
            pytest.fail("dice recording carries no SYS_RAND event")
        canary_db.store_replay_log(log, name=source_name)

        exit_code = cli_main(["replay", str(tmp_path / "canary-db"), "--diff"])
        out = capsys.readouterr().out
        assert exit_code == 1
        assert "drift found" in out
        assert "diff" in out

    def test_canary_control_is_clean(self, corpus_db, tmp_path, capsys):
        """The unmutated copy of the same log replays clean — so the
        canary's failure is attributable to the mutation alone."""
        control_db = CacheDatabase(str(tmp_path / "control-db"))
        source_name = next(
            name for name in corpus_db.list_replay_logs()
            if name.startswith("dice-")
        )
        control_db.store_replay_log(
            corpus_db.load_replay_log(source_name), name=source_name
        )
        exit_code = cli_main(["replay", str(tmp_path / "control-db"), "--diff"])
        assert exit_code == 0
        assert "replay: clean" in capsys.readouterr().out
