"""Corruption fuzz of the cache-file format.

Exhaustive single-byte flips and truncation at every offset: every
induced fault must surface as a typed :class:`CacheFileError` naming a
real section — never a ``struct.error``, ``zlib.error``, ``KeyError`` or
a silently wrong cache object.
"""

import json

import pytest

from repro.persist.cachefile import (
    CacheFileError,
    FORMAT_VERSION,
    LEGACY_MAGIC,
    MAGIC,
    PREAMBLE,
    SUPPORTED_FEATURES,
    PersistentCache,
    verify_sections,
)
from repro.testing.faultfs import flip_byte, truncate_file

from tests.test_persist_cachefile import make_cache

pytestmark = pytest.mark.faultinject

#: Sections a validation error may legitimately attribute damage to.
KNOWN_SECTIONS = {
    "preamble", "header", "directory", "code_pool", "data_pool", "trailer",
}


@pytest.fixture(scope="module")
def blob():
    return make_cache(n_traces=2).to_bytes()


class TestByteFlips:
    def test_every_single_byte_flip_is_detected(self, blob):
        """No offset exists where a flipped byte goes unnoticed."""
        for offset in range(len(blob)):
            corrupt = bytearray(blob)
            corrupt[offset] ^= 0xFF
            with pytest.raises(CacheFileError) as excinfo:
                PersistentCache.from_bytes(bytes(corrupt))
            assert excinfo.value.section in KNOWN_SECTIONS, offset

    def test_low_bit_flips_sampled(self, blob):
        """Single-bit damage (the most plausible media fault) sampled
        across the file."""
        for offset in range(0, len(blob), 7):
            corrupt = bytearray(blob)
            corrupt[offset] ^= 0x01
            with pytest.raises(CacheFileError):
                PersistentCache.from_bytes(bytes(corrupt))

    def test_flip_on_disk_helper(self, tmp_path, blob):
        path = str(tmp_path / "x.cache")
        cache = make_cache(n_traces=2)
        cache.save(path)
        flip_byte(path, len(blob) // 2)
        with pytest.raises(CacheFileError):
            PersistentCache.load(path)


class TestSectionAttribution:
    """Damage is localized: the error names the section holding it."""

    def _section_spans(self, blob):
        _, _, _, header_len, _ = PREAMBLE.unpack_from(blob, 0)
        header_start = PREAMBLE.size
        header = json.loads(blob[header_start:header_start + header_len])
        spans = {"header": (header_start, header_start + header_len)}
        offset = header_start + header_len
        for name in ("directory", "code_pool", "data_pool"):
            size = header["sections"][name][0]
            spans[name] = (offset, offset + size)
            offset += size
        return spans

    @pytest.mark.parametrize(
        "section", ["header", "directory", "code_pool", "data_pool"]
    )
    def test_flip_inside_section_is_attributed(self, blob, section):
        start, end = self._section_spans(blob)[section]
        assert end > start, "empty section cannot be fuzzed"
        corrupt = bytearray(blob)
        corrupt[(start + end) // 2] ^= 0xFF
        with pytest.raises(CacheFileError) as excinfo:
            PersistentCache.from_bytes(bytes(corrupt))
        assert excinfo.value.section == section

    def test_trailer_flip_attributed_to_trailer(self, blob):
        corrupt = bytearray(blob)
        corrupt[-1] ^= 0xFF
        with pytest.raises(CacheFileError) as excinfo:
            PersistentCache.from_bytes(bytes(corrupt))
        assert excinfo.value.section == "trailer"

    def test_verify_sections_reports_damage(self, blob):
        spans = self._section_spans(blob)
        start, end = spans["code_pool"]
        corrupt = bytearray(blob)
        corrupt[(start + end) // 2] ^= 0xFF
        damage = verify_sections(bytes(corrupt))
        assert list(damage) == ["code_pool"]
        assert verify_sections(blob) == {}


class TestTruncation:
    def test_truncation_at_every_offset_is_detected(self, blob):
        for length in range(len(blob)):
            with pytest.raises(CacheFileError) as excinfo:
                PersistentCache.from_bytes(blob[:length])
            assert excinfo.value.section in KNOWN_SECTIONS, length

    def test_truncate_on_disk_helper(self, tmp_path):
        path = str(tmp_path / "x.cache")
        cache = make_cache()
        cache.save(path)
        truncate_file(path, cache.file_size // 2)
        with pytest.raises(CacheFileError):
            PersistentCache.load(path)

    def test_garbage_and_short_files_raise_typed_error(self):
        for junk in (b"", b"\x00", b"PCC", b"garbage" * 100, b"\xff" * 64):
            with pytest.raises(CacheFileError):
                PersistentCache.from_bytes(junk)


class TestVersionAndFeatureGates:
    def test_legacy_v1_magic_has_defined_incompatibility_path(self, blob):
        corrupt = LEGACY_MAGIC + blob[len(MAGIC):]
        with pytest.raises(CacheFileError) as excinfo:
            PersistentCache.from_bytes(corrupt)
        assert "version" in str(excinfo.value)
        assert excinfo.value.section == "header"

    def test_future_version_rejected(self, blob):
        _, _, flags, header_len, header_crc = PREAMBLE.unpack_from(blob, 0)
        corrupt = (
            PREAMBLE.pack(MAGIC, FORMAT_VERSION + 1, flags, header_len, header_crc)
            + blob[PREAMBLE.size:]
        )
        with pytest.raises(CacheFileError) as excinfo:
            PersistentCache.from_bytes(corrupt)
        assert "unsupported format version" in str(excinfo.value)

    def test_unknown_feature_flag_rejected(self, blob):
        unknown = 0x8000
        assert not SUPPORTED_FEATURES & unknown
        _, version, flags, header_len, header_crc = PREAMBLE.unpack_from(blob, 0)
        corrupt = (
            PREAMBLE.pack(MAGIC, version, flags | unknown, header_len, header_crc)
            + blob[PREAMBLE.size:]
        )
        with pytest.raises(CacheFileError) as excinfo:
            PersistentCache.from_bytes(corrupt)
        assert "feature flags" in str(excinfo.value)

    def test_supported_feature_flag_roundtrips(self):
        cache = make_cache()
        cache.feature_flags = SUPPORTED_FEATURES
        clone = PersistentCache.from_bytes(cache.to_bytes())
        assert clone.feature_flags == SUPPORTED_FEATURES
