"""Tests for ``repro cache fsck`` — the operator-facing recovery tool.

One test shells out to ``python -m repro.cli cache fsck <db>`` so the
documented command line (also exposed as ``make fsck``) is exercised
verbatim, not just the in-process entry point.
"""

import os
import subprocess
import sys

import pytest

from repro.cli import main
from repro.persist.database import CacheDatabase, QUARANTINE_DIR
from repro.persist.manager import PersistenceConfig
from repro.testing.faultfs import flip_byte, truncate_file
from repro.workloads.harness import run_vm

from tests.test_persist_manager import mini_workload

pytestmark = pytest.mark.faultinject


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out


def seeded_directory(tmp_path):
    db = CacheDatabase(str(tmp_path / "db"))
    run_vm(mini_workload(), "a", persistence=PersistenceConfig(database=db))
    return db.directory, db.entries()[0].filename


class TestFsck:
    def test_clean_database_exits_zero(self, tmp_path, capsys):
        directory, filename = seeded_directory(tmp_path)
        code, out = run_cli(capsys, "cache", "fsck", directory)
        assert code == 0
        assert "fsck: clean" in out
        assert filename in out

    def test_empty_database(self, tmp_path, capsys):
        code, out = run_cli(capsys, "cache", "fsck", str(tmp_path / "empty"))
        assert code == 0
        assert "nothing to check" in out

    def test_corrupt_file_exits_one_and_names_the_section(
        self, tmp_path, capsys
    ):
        directory, filename = seeded_directory(tmp_path)
        path = os.path.join(directory, filename)
        # Land the flip deep in the file: pool damage, precise section.
        flip_byte(path, int(os.path.getsize(path) * 0.9))
        code, out = run_cli(capsys, "cache", "fsck", directory)
        assert code == 1
        assert "fsck: damage found" in out
        assert filename in out
        assert "corrupt" in out
        # Some real section is named in the report.
        assert any(
            section in out
            for section in ("header", "directory", "code_pool", "data_pool")
        )
        # Without --quarantine the file was left exactly where it was.
        assert os.path.exists(path)

    def test_quarantine_flag_moves_file_aside(self, tmp_path, capsys):
        directory, filename = seeded_directory(tmp_path)
        path = os.path.join(directory, filename)
        truncate_file(path, os.path.getsize(path) // 2)
        code, out = run_cli(capsys, "cache", "fsck", directory, "--quarantine")
        assert code == 1
        assert "quarantined: %s" % filename in out
        assert not os.path.exists(path)
        assert os.path.exists(os.path.join(directory, QUARANTINE_DIR, filename))
        # A second pass is healthy: the damage was contained (the only
        # entry is gone, so the database reads as empty and clean).
        code, out = run_cli(capsys, "cache", "fsck", directory)
        assert code == 0

    def test_stale_tmp_reported(self, tmp_path, capsys):
        directory, _ = seeded_directory(tmp_path)
        with open(os.path.join(directory, "x.cache.tmp"), "wb") as handle:
            handle.write(b"partial")
        code, out = run_cli(capsys, "cache", "fsck", directory)
        assert code == 1
        assert "stale-tmp" in out

    def test_missing_indexed_file_reported(self, tmp_path, capsys):
        directory, filename = seeded_directory(tmp_path)
        os.unlink(os.path.join(directory, filename))
        code, out = run_cli(capsys, "cache", "fsck", directory)
        assert code == 1
        assert "missing" in out


class TestScriptEntryPoint:
    def test_documented_command_line(self, tmp_path):
        """The exact invocation from the docs and the Makefile:
        ``python -m repro.cli cache fsck <db>``."""
        directory, filename = seeded_directory(tmp_path)
        env = dict(os.environ)
        repo_src = os.path.join(os.path.dirname(__file__), "..", "src")
        env["PYTHONPATH"] = os.path.abspath(repo_src)
        command = [sys.executable, "-m", "repro.cli", "cache", "fsck", directory]

        clean = subprocess.run(
            command, capture_output=True, text=True, env=env
        )
        assert clean.returncode == 0, clean.stderr
        assert "fsck: clean" in clean.stdout

        flip_byte(os.path.join(directory, filename), 50)
        damaged = subprocess.run(
            command, capture_output=True, text=True, env=env
        )
        assert damaged.returncode == 1, damaged.stderr
        assert "fsck: damage found" in damaged.stdout
