"""Property-based record/replay round trips (hypothesis).

Random programs over the whole nondeterminism surface — SYS_RAND,
SYS_GETPID, SYS_CLOCK, SYS_GETTID, thread spawns and yields — combined
with random layout-perturbation seeds, must round-trip record -> replay
bit-identically under both dispatch tiers.  When a future change breaks
the property, hypothesis shrinks the op list to a minimal divergent
program, which is the debugging artifact we actually want.
"""

from hypothesis import given, settings, strategies as st

from repro.binfmt.image import ImageBuilder, ImageKind
from repro.isa import instructions as ins
from repro.isa import registers as regs
from repro.machine.syscalls import (
    SYS_CLOCK,
    SYS_EXIT,
    SYS_GETPID,
    SYS_GETTID,
    SYS_RAND,
    SYS_THREAD_CREATE,
    SYS_YIELD,
)
from repro.replay.harness import record_session, replay_session
from repro.replay.log import ReplayLog
from repro.workloads.builder import FunctionCode, InputSpec
from repro.workloads.harness import Workload
from repro.workloads.nondet import _syscall, _write_rv

#: The op alphabet random programs draw from.  Value-producing ops write
#: their result into the output stream so a wrongly replayed value is
#: always observable.
OPS = ("rand", "getpid", "clock", "gettid", "yield", "spawn")

ops_lists = st.lists(st.sampled_from(OPS), min_size=0, max_size=12)
seeds = st.one_of(st.none(), st.integers(min_value=0, max_value=2**16))


def build_program(ops) -> Workload:
    """A workload whose main performs exactly ``ops`` then exits.

    Spawned workers announce their tid and draw a random, so scheduling
    and spawn ordering feed the output too.
    """
    image = ImageBuilder("prop/replay", ImageKind.EXECUTABLE)

    worker = FunctionCode()
    _syscall(worker, SYS_GETTID)
    _write_rv(worker)
    _syscall(worker, SYS_YIELD)
    _syscall(worker, SYS_RAND)
    _write_rv(worker)
    worker.emit(ins.ret())
    image.add_function("worker", worker.code, symbol_refs=worker.symbol_refs)

    main = FunctionCode()
    value_ops = {
        "rand": SYS_RAND, "getpid": SYS_GETPID,
        "clock": SYS_CLOCK, "gettid": SYS_GETTID,
    }
    for op in ops:
        if op in value_ops:
            _syscall(main, value_ops[op])
            _write_rv(main)
        elif op == "yield":
            _syscall(main, SYS_YIELD)
        elif op == "spawn":
            main.symbol_refs.append((len(main.code), "worker"))
            main.emit(ins.movi(regs.A0, 0))
            main.emit(ins.movi(regs.A1, 0))
            _syscall(main, SYS_THREAD_CREATE)
            _write_rv(main)
    main.emit(ins.movi(regs.A0, 0))
    _syscall(main, SYS_EXIT)
    image.add_function("main", main.code, symbol_refs=main.symbol_refs)
    image.set_entry("main")
    return Workload(
        name="prop-replay",
        image=image.build(),
        inputs={"run": InputSpec(name="run", hot_iterations=1)},
    )


class TestRoundTripProperties:
    @given(ops=ops_lists, seed=seeds)
    @settings(max_examples=25, deadline=None)
    def test_record_replay_bit_identical_both_tiers(self, ops, seed):
        workload = build_program(ops)
        rec = record_session(workload, "run", layout_seed=seed)
        for mode in ("interpreted", "compiled"):
            out = replay_session(rec.log, workload, "run",
                                 dispatch_mode=mode)
            assert out.bit_identical, (ops, seed, mode, out.diff)

    @given(ops=ops_lists, seed=seeds)
    @settings(max_examples=15, deadline=None)
    def test_serialization_preserves_the_round_trip(self, ops, seed):
        """The on-disk form replays exactly like the in-memory log."""
        workload = build_program(ops)
        rec = record_session(workload, "run", layout_seed=seed)
        revived = ReplayLog.from_bytes(rec.log.to_bytes())
        assert revived.events == rec.log.events
        out = replay_session(revived, workload, "run")
        assert out.bit_identical, (ops, seed, out.diff)

    @given(ops=ops_lists)
    @settings(max_examples=15, deadline=None)
    def test_event_count_matches_nondeterminism(self, ops):
        """Every op lands in the log: value ops and yields as events,
        spawns as spawn + later scheduling records, plus the final
        exit-path decisions."""
        workload = build_program(ops)
        rec = record_session(workload, "run")
        spawns = sum(1 for op in ops if op == "spawn")
        assert sum(1 for e in rec.log.events if e[0] == "n") == spawns
        value_ops = sum(1 for op in ops if op in
                        ("rand", "getpid", "clock", "gettid"))
        recorded_values = sum(1 for e in rec.log.events if e[0] == "v")
        # Workers add gettid+rand each; main's value ops are a floor.
        assert recorded_values >= value_ops
