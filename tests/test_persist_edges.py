"""Edge-case tests for persistence sessions and accumulation semantics."""

import pytest

from repro.loader.layout import PerturbedLayout
from repro.persist.database import CacheDatabase
from repro.persist.manager import PersistenceConfig
from repro.vm.engine import VMConfig
from repro.workloads.harness import run_vm

from tests.test_persist_manager import mini_workload, persisted_run


@pytest.fixture
def workload():
    return mini_workload()


@pytest.fixture
def db(tmp_path):
    return CacheDatabase(str(tmp_path / "db"))


class TestSessionLifecycle:
    def test_sessions_are_single_use(self, workload, db):
        """A session carries per-run state; the harness creates a fresh one
        per run, and reusing one would double-count. This test locks the
        harness behaviour: two runs through run_vm are independent."""
        first = persisted_run(workload, "a", db)
        second = persisted_run(workload, "a", db)
        assert first.persistence_report["preloaded"] == 0
        assert second.persistence_report["preloaded"] > 0

    def test_report_shape_stable(self, workload, db):
        report = persisted_run(workload, "a", db).persistence_report
        expected_keys = {
            "cache_found", "source_app", "preloaded", "invalidated",
            "rebased", "retained_unloaded", "version_conflict",
            "new_traces_persisted", "written", "total_traces_after_write",
            "key_checks", "unbacked_skipped", "cache_quarantined",
            "fallback_jit_only", "degraded_reason", "storage_errors",
            "sidecar_state", "sidecar_entries", "sidecar_hits",
            "sidecar_host_compiles", "sidecar_written",
            "sidecar_new_entries",
            "shared_store_state", "shared_hits", "shared_misses",
            "shared_publishes", "shared_gc_evictions",
            "shared_touch_refreshes", "shared_admission_skipped",
            "shared_transport", "daemon_rpcs", "daemon_fallbacks",
            "ic_hits", "ic_misses", "ic_resets", "ic_depth_hits",
            "ic_overflow_hits",
            "link_direct_hops", "link_ic_hops", "link_bounces",
            "regions_fused", "region_entries", "region_hops",
            "region_invalidations", "fusion_aborts",
            "queue_enqueued", "queue_compiled_offpath", "queue_swap_ins",
            "queue_generation_discards", "queue_full_syncs",
            "queue_backlog_high_water", "queue_interpreted_runs",
            "record_state", "record_events", "record_log",
            "replay_state", "replay_events",
        }
        assert set(report) == expected_keys


class TestAccumulationEdges:
    def test_three_way_accumulation_is_input_order_independent(
        self, workload, tmp_path
    ):
        """The accumulated cache's trace-identity set is the union of the
        runs' footprints regardless of run order."""
        footprints = {}
        for order_name, order in (
            ("ab", ["a", "b"]), ("ba", ["b", "a"])
        ):
            db = CacheDatabase(str(tmp_path / order_name))
            for input_name in order:
                persisted_run(workload, input_name, db)
            entry = db.entries()[0]
            import os
            from repro.persist.cachefile import PersistentCache

            cache = PersistentCache.load(
                os.path.join(db.directory, entry.filename)
            )
            footprints[order_name] = cache.trace_identities()
        assert footprints["ab"] == footprints["ba"]

    def test_generation_counter_advances(self, workload, db, tmp_path):
        import os
        from repro.persist.cachefile import PersistentCache

        persisted_run(workload, "a", db)
        persisted_run(workload, "b", db)

        entry = db.entries()[0]
        cache = PersistentCache.load(os.path.join(db.directory, entry.filename))
        assert cache.generation >= 2

    def test_idempotent_rerun_skips_write(self, workload, db):
        persisted_run(workload, "a", db)
        entry_before = db.entries()[0]
        warm = persisted_run(workload, "a", db)
        # Nothing new: the manager skips the disk write entirely.
        assert not warm.persistence_report["written"]
        assert db.entries()[0].filename == entry_before.filename


class TestRelocationEdges:
    def test_full_cycle_relocate_then_return(self, workload, db):
        """Layout moves away and back: the cache follows the latest layout
        and keeps working at every step."""
        base_run = persisted_run(workload, "a", db)
        moved = run_vm(workload, "a",
                       persistence=PersistenceConfig(database=db),
                       layout=PerturbedLayout(9))
        assert moved.persistence_report["invalidated"] > 0
        # The write-back refreshed keys to the perturbed layout...
        back = run_vm(workload, "a",
                      persistence=PersistenceConfig(database=db))
        # ...so returning to the fixed layout invalidates again but still
        # executes correctly and re-accumulates.
        assert back.exit_status == base_run.exit_status
        final = run_vm(workload, "a",
                       persistence=PersistenceConfig(database=db))
        assert final.stats.traces_translated == 0

    def test_pic_survives_arbitrary_layout_hops(self, workload, db):
        seeds = [None, 3, 11, None, 7]
        for index, seed in enumerate(seeds):
            layout = PerturbedLayout(seed) if seed is not None else None
            result = run_vm(
                workload, "a",
                persistence=PersistenceConfig(database=db, relocatable=True),
                layout=layout,
            )
            assert result.exit_status == 0
            if index > 0:
                assert result.stats.traces_translated == 0, (index, seed)


class TestFlushWithPersistence:
    def test_flush_during_preloaded_run(self, workload, db):
        """A flush discards preloaded traces too; the union survives via
        the flush write-back."""
        persisted_run(workload, "ab", db)
        config = VMConfig(code_pool_bytes=2000, data_pool_bytes=7000)
        squeezed = run_vm(workload, "ab",
                          persistence=PersistenceConfig(database=db),
                          vm_config=config)
        assert squeezed.exit_status == 0
        # Afterwards, an ample run still finds a complete cache.
        final = persisted_run(workload, "ab", db)
        assert final.stats.traces_translated == 0
