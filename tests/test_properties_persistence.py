"""Stateful property test: persistence transparency under arbitrary runs.

The system's core safety property: no matter what sequence of runs shares
a cache database — different inputs, relocated layouts, position-
independent mode on or off — every run's *architectural* outcome (exit
status, instruction count, output) equals a clean native run of the same
input under the same layout.  Invalidation bugs, stale-literal reuse, or
accumulation corruption would all break this.
"""

from hypothesis import given, settings, strategies as st

from repro.loader.layout import FixedLayout, PerturbedLayout
from repro.persist.database import CacheDatabase
from repro.persist.manager import PersistenceConfig
from repro.workloads.harness import run_native, run_vm

from tests.test_persist_manager import mini_workload

_INPUTS = ("a", "b", "ab")
_LAYOUT_SEEDS = (None, 3, 7)

run_step = st.tuples(
    st.sampled_from(_INPUTS),
    st.sampled_from(_LAYOUT_SEEDS),
    st.booleans(),  # position-independent translations
)


def _layout(seed):
    return FixedLayout() if seed is None else PerturbedLayout(seed)


@settings(max_examples=12, deadline=None)
@given(steps=st.lists(run_step, min_size=1, max_size=6))
def test_any_run_sequence_is_transparent(steps, tmp_path_factory):
    workload = mini_workload()
    database = CacheDatabase(str(tmp_path_factory.mktemp("seqdb")))

    # Native references, computed once per (input, seed) pair.
    references = {}
    for input_name, seed, _pic in steps:
        key = (input_name, seed)
        if key not in references:
            references[key] = run_native(
                workload, input_name, layout=_layout(seed)
            )

    for input_name, seed, pic in steps:
        result = run_vm(
            workload,
            input_name,
            persistence=PersistenceConfig(database=database, relocatable=pic),
            layout=_layout(seed),
        )
        reference = references[(input_name, seed)]
        assert result.exit_status == reference.exit_status
        assert result.instructions == reference.instructions
        assert result.output == reference.output


@settings(max_examples=8, deadline=None)
@given(steps=st.lists(run_step, min_size=2, max_size=5))
def test_cache_files_always_parse(steps, tmp_path_factory):
    """Whatever sequence wrote the cache, the file stays well-formed."""
    import os

    from repro.persist.cachefile import PersistentCache

    workload = mini_workload()
    database = CacheDatabase(str(tmp_path_factory.mktemp("seqdb")))
    for input_name, seed, pic in steps:
        run_vm(
            workload,
            input_name,
            persistence=PersistenceConfig(database=database, relocatable=pic),
            layout=_layout(seed),
        )
    for entry in database.entries():
        cache = PersistentCache.load(
            os.path.join(database.directory, entry.filename)
        )
        # Identities are unique and every directory record is consistent.
        identities = [trace.identity for trace in cache.traces]
        assert len(identities) == len(set(identities))
        for trace in cache.traces:
            assert len(trace.code) >= trace.n_insts * 8
            assert trace.data_size > 0
