"""Background compile queue: off-path compilation must change nothing.

The contract (:mod:`repro.vm.compilequeue`): under
``compile_mode="background"`` cold traces run interpreted while a worker
thread prepares their closures, which swap in at a later entry guarded
by ``CodeCache.generation``.  Because the interpreted oracle and the
compiled tier are bit-identical *per execution*, a run may mix tiers
freely per trace execution — so every observable of a background run
(output, exit status, every ``VMStats`` counter) must equal the
synchronous run and the pure-interpreted run exactly, through SMC,
cache churn and queue overflow.  The stateful unit tests drive the
queue deterministically (``workers=0``) through the races the threaded
engine can only hit probabilistically: generation bumps between enqueue
and swap-in, queue-full fallbacks, and worker failures.
"""

import pytest

from repro.loader.linker import load_process
from repro.persist.database import CacheDatabase
from repro.persist.manager import PersistenceConfig
from repro.vm.compile import UNCOMPILABLE, clear_code_object_cache
from repro.vm.compilequeue import CompileQueue
from repro.vm.engine import Engine, EngineError, VMConfig
from repro.workloads.chains import build_chain_suite
from repro.workloads.gui import build_gui_suite
from repro.workloads.harness import run_vm
from repro.workloads.warmup import build_warmup_workload

from tests.test_smc import build_smc_image

COMPILE_MODES = ("sync", "background")


def signature(result):
    return {
        "output": result.output,
        "exit_status": result.exit_status,
        "instructions": result.instructions,
        "stats": vars(result.stats),
        "cache_traces": result.cache_traces,
        "cache_code_bytes": result.cache_code_bytes,
        "cache_data_bytes": result.cache_data_bytes,
    }


def assert_modes_identical(run_one, context=""):
    """``run_one(compile_mode)`` must match sync, background AND the
    interpreted oracle bit-for-bit."""
    results = {mode: run_one(mode) for mode in COMPILE_MODES}
    sigs = {mode: signature(result) for mode, result in results.items()}
    assert sigs["sync"] == sigs["background"], (
        "compile modes diverged%s" % (": " + context if context else "")
    )
    return results


class TestDifferential:
    """Background vs. sync vs. interpreted across the hard workloads."""

    def test_startup_corpus_all_tiers(self):
        """The compile-dominated corpus the family gates on: sync,
        background and the interpreted oracle agree bit-for-bit, and
        background did real off-path work."""
        workload = build_warmup_workload("startup_a")

        def run_one(mode):
            clear_code_object_cache()
            return run_vm(workload, "default",
                          vm_config=VMConfig(compile_mode=mode))

        results = assert_modes_identical(run_one, context="warmup corpus")
        oracle = run_vm(workload, "default",
                        vm_config=VMConfig(dispatch_mode="interpreted"))
        assert signature(results["background"]) == signature(oracle)
        queue = results["background"].queue_stats
        assert queue.enqueued > 0
        assert queue.interpreted_runs >= queue.enqueued
        # The sync run never touches a queue.
        assert results["sync"].queue_stats.enqueued == 0

    def test_hot_chains_swap_in(self):
        """Hot re-entered traces actually swap their closures in (the
        background tier is not just interpreting everything) and the
        chain trampoline composes with pending bodies."""
        workload = build_chain_suite()["relay_4"]

        def run_one(mode):
            clear_code_object_cache()
            return run_vm(workload, "run",
                          vm_config=VMConfig(compile_mode=mode))

        results = assert_modes_identical(run_one, context="relay_4")
        assert results["background"].queue_stats.swap_ins > 0

    def test_smc_under_background_compilation(self):
        """Self-modifying code invalidates traces while their compiles
        are in flight; the generation guard keeps the tiers identical."""

        def run_one(mode):
            clear_code_object_cache()
            return Engine(config=VMConfig(compile_mode=mode)).run(
                load_process(build_smc_image())
            )

        results = assert_modes_identical(run_one, context="smc")
        assert results["background"].stats.smc_invalidations > 0

    def test_cache_churn_under_background_compilation(self):
        """A code pool small enough to flush mid-run discards queued
        results wholesale; every flush epoch stays bit-identical."""
        apps, _store = build_gui_suite()
        _name, app = sorted(apps.items())[0]

        def run_one(mode):
            clear_code_object_cache()
            return run_vm(
                app, "startup",
                vm_config=VMConfig(compile_mode=mode, code_pool_bytes=768),
            )

        results = assert_modes_identical(run_one, context="cache churn")
        assert results["background"].stats.cache_flushes > 0

    def test_queue_overflow_degrades_to_sync(self):
        """A depth-1 queue overflows on any compile burst: the fallback
        compiles inline (never drops a trace) and observables hold."""

        def run_one(mode):
            clear_code_object_cache()
            return run_vm(
                build_warmup_workload("startup_b"), "default",
                vm_config=VMConfig(
                    compile_mode=mode, compile_queue_depth=1
                ),
            )

        results = assert_modes_identical(run_one, context="depth-1 queue")
        queue = results["background"].queue_stats
        assert queue.queue_full_syncs > 0

    def test_zero_workers_runs_fully_interpreted(self):
        """``compile_workers=0`` never drains the queue: the run stays
        on the interpreted tier end to end yet remains bit-identical —
        the strongest form of the mixed-tier safety argument."""
        workload = build_warmup_workload("startup_b")

        def run_one(mode):
            clear_code_object_cache()
            return run_vm(
                workload, "default",
                vm_config=VMConfig(
                    compile_mode=mode, compile_workers=0,
                    compile_queue_depth=4096,
                ),
            )

        results = assert_modes_identical(run_one, context="workers=0")
        queue = results["background"].queue_stats
        assert queue.swap_ins == 0
        assert queue.enqueued > 0

    def test_unknown_compile_mode_rejected(self):
        workload = build_warmup_workload("startup_a")
        with pytest.raises(EngineError):
            run_vm(workload, "default",
                   vm_config=VMConfig(compile_mode="eager"))

    def test_background_with_persistence_reports_queue(self, tmp_path):
        """The manager mirrors queue counters into the session report
        (host-side observability, outside ``VMStats``)."""
        workload = build_warmup_workload("startup_a")
        clear_code_object_cache()
        result = run_vm(
            workload, "default",
            persistence=PersistenceConfig(
                database=CacheDatabase(str(tmp_path / "db"))
            ),
            vm_config=VMConfig(compile_mode="background"),
        )
        report = result.persistence_report
        assert report["queue_enqueued"] == result.queue_stats.enqueued
        assert report["queue_swap_ins"] == result.queue_stats.swap_ins
        assert (report["queue_interpreted_runs"]
                == result.queue_stats.interpreted_runs)
        # A warm second session still routes preloaded traces through
        # the queue (their *bodies* start cold in a fresh process), and
        # program-level observables hold.  VMStats legitimately differs
        # from the cold session — preloading removes simulated
        # translation work, which is the paper's whole point — so only
        # the program-level observables are compared.
        clear_code_object_cache()
        # Linking is disabled on the warm pass to keep the zero-compile
        # assertion deterministic: whether the *cold background* session
        # fused (and so recorded) superblock region bodies depends on
        # worker swap-in timing, but every plain trace body is recorded
        # unconditionally.
        warm = run_vm(
            workload, "default",
            persistence=PersistenceConfig(
                database=CacheDatabase(str(tmp_path / "db"))
            ),
            vm_config=VMConfig(
                compile_mode="background", trace_linking=False
            ),
        )
        assert warm.output == result.output
        assert warm.exit_status == result.exit_status
        assert warm.persistence_report["queue_enqueued"] > 0
        assert warm.persistence_report["sidecar_host_compiles"] == 0


# ---------------------------------------------------------------------------
# Deterministic unit tests: fake compiler, manual drain.
# ---------------------------------------------------------------------------


class FakeTrace:
    def __init__(self, name):
        self.name = name
        self.compiled_body = None


class FakeCompiler:
    """Mimics TraceCompiler's prepare/bind/compile split."""

    def __init__(self, fail_for=()):
        self.fail_for = set(fail_for)
        self.prepares = []
        self.binds = []
        self.sync_compiles = []

    def prepare(self, translated):
        self.prepares.append(translated.name)
        if translated.name in self.fail_for:
            raise RuntimeError("codegen exploded")
        return ("prepared", translated.name)

    def bind(self, translated, prepared):
        assert prepared == ("prepared", translated.name)
        self.binds.append(translated.name)
        body = lambda: translated.name
        translated.compiled_body = body
        return body

    def compile(self, translated):
        self.sync_compiles.append(translated.name)
        body = lambda: translated.name
        translated.compiled_body = body
        return body


class FakeCache:
    def __init__(self):
        self.generation = 0


class TestQueueStateMachine:
    def make(self, depth=8, fail_for=()):
        cache = FakeCache()
        compiler = FakeCompiler(fail_for=fail_for)
        return CompileQueue(compiler, cache, depth=depth, workers=0), \
            compiler, cache

    def test_enqueue_process_swap_in(self):
        queue, compiler, _cache = self.make()
        trace = FakeTrace("t0")
        assert queue.poll(trace) is None
        assert queue.pending(trace)
        assert queue.backlog == 1
        assert queue.stats.enqueued == 1
        assert queue.stats.interpreted_runs == 1
        # Still pending until somebody drains: every poll is one more
        # interpreted execution.
        assert queue.poll(trace) is None
        assert queue.stats.interpreted_runs == 2
        assert queue.process_one()
        assert queue.stats.compiled_offpath == 1
        body = queue.poll(trace)
        assert body is not None and body is trace.compiled_body
        assert queue.stats.swap_ins == 1
        assert compiler.binds == ["t0"]
        assert not queue.pending(trace)

    def test_generation_bump_discards_and_reenqueues(self):
        queue, compiler, cache = self.make()
        trace = FakeTrace("t0")
        assert queue.poll(trace) is None
        queue.drain()
        # SMC evict / flush between enqueue and swap-in.
        cache.generation += 1
        assert queue.poll(trace) is None  # discarded, re-enqueued
        assert queue.stats.generation_discards == 1
        assert trace.compiled_body is None
        assert queue.pending(trace)
        queue.drain()
        body = queue.poll(trace)
        assert body is trace.compiled_body and body is not None
        assert queue.stats.swap_ins == 1
        # Both resolutions ran prepare; only the valid one bound.
        assert compiler.prepares == ["t0", "t0"]
        assert compiler.binds == ["t0"]

    def test_queue_full_falls_back_to_sync(self):
        queue, compiler, _cache = self.make(depth=1)
        first, second = FakeTrace("t0"), FakeTrace("t1")
        assert queue.poll(first) is None
        body = queue.poll(second)  # queue full: compiled inline
        assert body is second.compiled_body and body is not None
        assert queue.stats.queue_full_syncs == 1
        assert compiler.sync_compiles == ["t1"]
        assert not queue.pending(second)
        # The queued trace is unaffected by the overflow.
        queue.drain()
        assert queue.poll(first) is first.compiled_body

    def test_worker_failure_marks_uncompilable(self):
        queue, compiler, _cache = self.make(fail_for=("t0",))
        trace = FakeTrace("t0")
        assert queue.poll(trace) is None
        queue.drain()
        assert queue.poll(trace) is UNCOMPILABLE
        assert trace.compiled_body is UNCOMPILABLE
        assert queue.stats.compiled_offpath == 0
        assert compiler.binds == []

    def test_backlog_high_water_tracks_peak(self):
        queue, _compiler, _cache = self.make(depth=8)
        traces = [FakeTrace("t%d" % index) for index in range(5)]
        for trace in traces:
            assert queue.poll(trace) is None
        assert queue.stats.backlog_high_water == 5
        queue.drain()
        for trace in traces:
            assert queue.poll(trace) is trace.compiled_body
        assert queue.stats.backlog_high_water == 5

    def test_shutdown_idempotent_with_threads(self):
        cache = FakeCache()
        compiler = FakeCompiler()
        queue = CompileQueue(compiler, cache, depth=8, workers=2)
        trace = FakeTrace("t0")
        assert queue.poll(trace) is None
        queue.shutdown()
        queue.shutdown()  # second call is a no-op
        # The worker drained the task on its way to the sentinel.
        assert compiler.prepares == ["t0"]
