"""Tests for the compilation unit: liveness, sizes, costs, stubs."""

import pytest

from repro.isa import instructions as ins
from repro.isa import registers as regs
from repro.isa.instructions import INSTRUCTION_SIZE
from repro.machine.costs import DEFAULT_COST_MODEL
from repro.vm.client import InstrumentationPoint, PointKind, Tool
from repro.vm.trace import ExitKind, Trace, TraceExit
from repro.vm.translator import (
    LINK_RECORD_BYTES,
    LIVENESS_BYTES_PER_INST,
    ADDR_TABLE_BYTES_PER_INST,
    REGISTER_BINDINGS_BYTES,
    STUB_INSTS_PER_EXIT,
    TRACE_OBJECT_BYTES,
    TranslatedTrace,
    Translator,
    compute_liveness,
    index_links,
)


def make_trace(instructions, exits=None, entry=0x1000):
    trace = Trace(entry=entry, instructions=list(instructions))
    if exits is None:
        exits = [TraceExit(ExitKind.INDIRECT, len(instructions) - 1)]
    trace.exits = exits
    return trace


class TestLiveness:
    def test_written_then_unread_register_dies(self):
        # t1 = ...; t2 = t1 + t1; ret  -- t1 dead before its def
        trace = make_trace([
            ins.movi(10, 5),
            ins.add(11, 10, 10),
            ins.ret(),
        ])
        live = compute_liveness(trace)
        # Before inst 0 executes, t1 (r10) must not be live (it's defined
        # there before any use).
        assert not (live[0] & (1 << 10))
        # Before inst 1, t1 is live (about to be read).
        assert live[1] & (1 << 10)

    def test_exit_points_conservative(self):
        trace = make_trace(
            [ins.movi(10, 5), ins.bne(1, 2, 8), ins.add(11, 10, 10), ins.ret()],
            exits=[
                TraceExit(ExitKind.BRANCH_TAKEN, 1, target=0x2000),
                TraceExit(ExitKind.INDIRECT, 3),
            ],
        )
        live = compute_liveness(trace)
        all_live = (1 << regs.NUM_REGISTERS) - 1
        # At the branch, everything is conservatively live.
        assert live[1] == all_live & ~0 | live[1]  # sanity: defined
        # The final ret is an exit: everything live minus nothing written.
        assert live[3] == all_live & ~(0)

    def test_one_mask_per_instruction(self):
        trace = make_trace([ins.nop()] * 7)
        assert len(compute_liveness(trace)) == 7


class _TwoPointTool(Tool):
    name = "twopoint"

    def instrument_trace(self, trace):
        return [
            InstrumentationPoint(PointKind.TRACE_ENTRY, 0, lambda c: None,
                                 label="entry"),
            InstrumentationPoint(PointKind.BEFORE_INST, 1, lambda c: None,
                                 label="inst1"),
        ]


class TestTranslation:
    def _translate(self, trace, tool=None):
        return Translator(DEFAULT_COST_MODEL, tool).translate(trace)

    def test_code_bytes_include_body_and_stubs(self):
        trace = make_trace([ins.nop(), ins.ret()])
        result = self._translate(trace)
        expected = (2 + STUB_INSTS_PER_EXIT * 1) * INSTRUCTION_SIZE
        assert result.translated.code_size == expected

    def test_data_size_formula(self):
        trace = make_trace([ins.nop()] * 5)
        result = self._translate(trace)
        expected = (
            TRACE_OBJECT_BYTES
            + REGISTER_BINDINGS_BYTES
            + 5 * (LIVENESS_BYTES_PER_INST + ADDR_TABLE_BYTES_PER_INST)
            + 1 * LINK_RECORD_BYTES
        )
        assert result.translated.data_size == expected

    def test_data_exceeds_code_for_typical_traces(self):
        """Figure 9: data structures consume more than the traces."""
        trace = make_trace([ins.nop()] * 10)
        result = self._translate(trace)
        assert result.translated.data_size > result.translated.code_size

    def test_compile_cost_scales_with_length(self):
        short = self._translate(make_trace([ins.ret()]))
        long = self._translate(make_trace([ins.nop()] * 20 + [ins.ret()]))
        assert long.compile_cycles > short.compile_cycles
        cost = DEFAULT_COST_MODEL
        assert short.compile_cycles == pytest.approx(
            cost.trace_compile_fixed + 1 * cost.trace_compile_per_inst
        )

    def test_instrumentation_compile_cost(self):
        trace = make_trace([ins.nop(), ins.nop(), ins.ret()])
        plain = self._translate(trace)
        instrumented = self._translate(trace, _TwoPointTool())
        delta = instrumented.compile_cycles - plain.compile_cycles
        assert delta == pytest.approx(
            2 * DEFAULT_COST_MODEL.instrument_compile_per_inst
        )

    def test_points_indexed(self):
        trace = make_trace([ins.nop(), ins.nop(), ins.ret()])
        translated = self._translate(trace, _TwoPointTool()).translated
        assert set(translated.points_by_index) == {0, 1}
        assert len(translated.points) == 2

    def test_instrumented_code_larger(self):
        trace = make_trace([ins.nop(), ins.nop(), ins.ret()])
        plain = self._translate(trace).translated
        instrumented = self._translate(trace, _TwoPointTool()).translated
        assert instrumented.code_size > plain.code_size


class TestLinkSlots:
    def test_branch_slots_and_final(self):
        trace = make_trace(
            [ins.bne(1, 2, 8), ins.nop(), ins.jmp(0x5000)],
            exits=[
                TraceExit(ExitKind.BRANCH_TAKEN, 0, target=0x2000),
                TraceExit(ExitKind.DIRECT, 2, target=0x5000),
            ],
        )
        translated = Translator(DEFAULT_COST_MODEL).translate(trace).translated
        assert set(translated.branch_slots) == {0}
        assert translated.final_slot.exit.kind == ExitKind.DIRECT

    def test_linkable(self):
        trace = make_trace(
            [ins.syscall()],
            exits=[TraceExit(ExitKind.SYSCALL, 0, target=0x1008)],
        )
        translated = Translator(DEFAULT_COST_MODEL).translate(trace).translated
        assert not translated.final_slot.is_linkable  # syscalls exit to VM

    def test_index_links_rebuild(self):
        trace = make_trace(
            [ins.bne(1, 2, 8), ins.ret()],
            exits=[
                TraceExit(ExitKind.BRANCH_TAKEN, 0, target=0x2000),
                TraceExit(ExitKind.INDIRECT, 1),
            ],
        )
        translated = Translator(DEFAULT_COST_MODEL).translate(trace).translated
        translated.branch_slots = {}
        translated.final_slot = None
        index_links(translated)
        assert 0 in translated.branch_slots
        assert translated.final_slot is translated.links[-1]
