"""Record-and-replay tier: PCRL1 format, hooks, sessions, database, CLI.

The acceptance contract under test: a session recorded once replays
**bit-identically** — same output bytes, exit status, and every VMStats
counter — under either dispatch tier, and any deviation (structural or
value-level) fails loudly with a located :class:`ReplayDivergence` or a
field-level diff, never silently.
"""

import pytest

from repro.machine.syscalls import SYS_RAND
from repro.persist.database import CacheDatabase
from repro.persist.manager import PersistenceConfig, PersistentCacheSession
from repro.replay.harness import (
    DifferentialReplayHarness,
    record_session,
    replay_session,
)
from repro.replay.log import (
    REPLAY_LOG_SUFFIX,
    ReplayLog,
    ReplayLogError,
    result_snapshot,
    snapshot_diff,
    verify_replay_log,
)
from repro.replay.session import RecordingHook, ReplayDivergence, ReplayHook
from repro.workloads.harness import run_vm
from repro.workloads.nondet import build_nondet_suite


@pytest.fixture(scope="module")
def suite():
    return build_nondet_suite()


@pytest.fixture
def db(tmp_path):
    return CacheDatabase(str(tmp_path / "db"))


def _sample_log():
    return ReplayLog(
        meta={"name": "t", "pid": 7, "rng_state": 42, "layout_seed": None},
        events=[["v", 6, 123], ["s", 2], ["t", "yield", 1], ["n", 2]],
        baseline={"exit_status": 0, "stats": {"total_cycles": 10}},
    )


class TestLogFormat:
    def test_round_trip(self):
        log = _sample_log()
        loaded = ReplayLog.from_bytes(log.to_bytes())
        assert loaded.meta == log.meta
        assert loaded.events == log.events
        assert loaded.baseline == log.baseline

    def test_empty_round_trip(self):
        loaded = ReplayLog.from_bytes(ReplayLog().to_bytes())
        assert loaded.events == [] and loaded.baseline is None

    def test_trailer_crc_detects_any_flip(self):
        blob = bytearray(_sample_log().to_bytes())
        blob[len(blob) // 2] ^= 0xFF
        with pytest.raises(ReplayLogError):
            ReplayLog.from_bytes(bytes(blob))

    def test_bad_magic(self):
        blob = bytearray(_sample_log().to_bytes())
        blob[0] ^= 0xFF
        with pytest.raises(ReplayLogError) as excinfo:
            ReplayLog.from_bytes(bytes(blob))
        # The trailer CRC catches it first; either attribution is honest.
        assert excinfo.value.section in ("preamble", "trailer")

    def test_truncation(self):
        blob = _sample_log().to_bytes()
        with pytest.raises(ReplayLogError):
            ReplayLog.from_bytes(blob[: len(blob) // 2])
        with pytest.raises(ReplayLogError) as excinfo:
            ReplayLog.from_bytes(blob[:3])
        assert excinfo.value.section == "preamble"

    def test_verify_healthy_is_empty(self):
        assert verify_replay_log(_sample_log().to_bytes()) == {}

    def test_verify_maps_damage(self):
        blob = bytearray(_sample_log().to_bytes())
        blob[-2] ^= 0x01
        damage = verify_replay_log(bytes(blob))
        assert damage and "trailer" in damage

    def test_events_must_be_records(self):
        log = _sample_log()
        log.events = ["not-a-record"]
        with pytest.raises(ReplayLogError) as excinfo:
            ReplayLog.from_bytes(log.to_bytes())
        assert excinfo.value.section == "events"


class TestSnapshotDiff:
    def test_identical(self):
        snap = {"a": 1, "b": {"c": [1, 2]}}
        assert snapshot_diff(snap, snap) == []

    def test_leaf_difference_is_located(self):
        diff = snapshot_diff({"a": {"b": 1}}, {"a": {"b": 2}})
        assert diff == ["a.b: recorded 1, replayed 2"]

    def test_missing_keys(self):
        diff = snapshot_diff({"a": 1}, {"b": 1})
        assert "a: absent in replay" in diff
        assert "b: absent in recording" in diff


class TestHooks:
    def test_recording_shapes(self):
        hook = RecordingHook()

        class R:
            value = 99

        hook.on_syscall(6, "rand", R())     # nondet: value-carrying
        hook.on_syscall(2, "write", R())    # structural
        hook.on_schedule("yield", [1, 2], 2)
        hook.on_schedule("exit", [], None)
        hook.on_spawn(3)
        assert hook.events == [
            ["v", 6, 99], ["s", 2], ["t", "yield", 2], ["t", "exit", -1],
            ["n", 3],
        ]

    def test_recording_never_alters(self):
        hook = RecordingHook()

        class R:
            value = 5

        result = R()
        assert hook.on_syscall(6, "rand", result) is result
        assert hook.on_schedule("yield", [1, 2], 1) == 1

    def test_replay_substitutes_value(self):
        hook = ReplayHook([["v", 6, 1234]])

        class R:
            value = 0

        assert hook.on_syscall(6, "rand", R()).value == 1234

    def test_replay_syscall_order_divergence(self):
        hook = ReplayHook([["s", 2]])

        class R:
            value = 0

        with pytest.raises(ReplayDivergence, match="order diverged"):
            hook.on_syscall(5, "brk", R())

    def test_replay_exhausted_log(self):
        hook = ReplayHook([])

        class R:
            value = 0

        with pytest.raises(ReplayDivergence, match="log exhausted"):
            hook.on_syscall(6, "rand", R())

    def test_replay_kind_mismatch(self):
        hook = ReplayHook([["t", "yield", 1]])
        with pytest.raises(ReplayDivergence, match="scheduler mismatch"):
            hook.on_schedule("exit", [1], 1)

    def test_replay_tid_not_runnable(self):
        hook = ReplayHook([["t", "yield", 9]])
        with pytest.raises(ReplayDivergence, match="not runnable"):
            hook.on_schedule("yield", [1, 2], 1)

    def test_replay_forces_logged_tid(self):
        hook = ReplayHook([["t", "yield", 2]])
        assert hook.on_schedule("yield", [1, 2], 1) == 2

    def test_replay_spawn_mismatch(self):
        hook = ReplayHook([["n", 2]])
        with pytest.raises(ReplayDivergence, match="spawn mismatch"):
            hook.on_spawn(3)

    def test_trailing_events_diverge(self):
        hook = ReplayHook([["v", 6, 1]])
        with pytest.raises(ReplayDivergence, match="unconsumed"):
            hook.verify_exhausted()

    def test_divergence_carries_location(self):
        hook = ReplayHook([])
        with pytest.raises(ReplayDivergence) as excinfo:
            hook.on_spawn(1)
        assert excinfo.value.index == 0
        assert "event 0" in str(excinfo.value)

    def test_divergence_is_not_oserror(self):
        # The engine's persistence backstop degrades on OSError; a
        # divergence must never be absorbable by it.
        assert not issubclass(ReplayDivergence, OSError)


class TestRoundTrip:
    @pytest.mark.parametrize("name", ("dice", "clockwork", "relay"))
    @pytest.mark.parametrize("mode", ("interpreted", "compiled"))
    def test_bit_identical_same_mode(self, suite, name, mode):
        rec = record_session(suite[name], "short", suite="nondet",
                             dispatch_mode=mode)
        out = replay_session(rec.log, suite[name], "short",
                             dispatch_mode=mode)
        assert out.bit_identical, out.diff

    @pytest.mark.parametrize("name", ("dice", "relay"))
    def test_bit_identical_across_modes(self, suite, name):
        """A recording from one dispatch tier replays bit-identically
        under the other — the tier-equivalence contract, via replay."""
        rec = record_session(suite[name], "long", suite="nondet",
                             dispatch_mode="compiled")
        for mode in ("interpreted", "compiled"):
            out = replay_session(rec.log, suite[name], "long",
                                 dispatch_mode=mode)
            assert out.bit_identical, (mode, out.diff)

    def test_layout_perturbation_round_trips(self, suite):
        for seed in (1, 77, 4096):
            rec = record_session(suite["dice"], "short", suite="nondet",
                                 layout_seed=seed)
            assert rec.log.meta["layout_seed"] == seed
            out = replay_session(rec.log, suite["dice"], "short")
            assert out.bit_identical, (seed, out.diff)

    def test_reseeded_os_state_round_trips(self, suite):
        rec = record_session(suite["dice"], "short", suite="nondet")
        assert rec.log.meta["pid"] == 1000
        assert "rng_state" in rec.log.meta
        # Replay re-seeds the OS from meta, so even the substituted
        # values match what the replayed OS would itself produce.
        out = replay_session(rec.log, suite["dice"], "short")
        assert out.bit_identical

    def test_serialized_log_round_trips(self, suite):
        rec = record_session(suite["relay"], "short", suite="nondet")
        revived = ReplayLog.from_bytes(rec.log.to_bytes())
        out = replay_session(revived, suite["relay"], "short")
        assert out.bit_identical, out.diff

    def test_mutated_rand_is_detected(self, suite):
        rec = record_session(suite["dice"], "short", suite="nondet")
        mutated = ReplayLog.from_bytes(rec.log.to_bytes())
        for event in mutated.events:
            if event[0] == "v" and event[1] == SYS_RAND:
                event[2] ^= 0xFF
                break
        else:
            pytest.fail("no SYS_RAND event recorded")
        out = replay_session(mutated, suite["dice"], "short")
        assert not out.bit_identical
        assert any("output_b64" in line or "exit_status" in line
                   for line in out.diff)

    def test_truncated_events_diverge(self, suite):
        rec = record_session(suite["dice"], "short", suite="nondet")
        truncated = ReplayLog.from_bytes(rec.log.to_bytes())
        truncated.events.pop()
        with pytest.raises(ReplayDivergence):
            replay_session(truncated, suite["dice"], "short")

    def test_extra_events_diverge(self, suite):
        rec = record_session(suite["dice"], "short", suite="nondet")
        padded = ReplayLog.from_bytes(rec.log.to_bytes())
        padded.events.append(["v", SYS_RAND, 1])
        with pytest.raises(ReplayDivergence, match="unconsumed"):
            replay_session(padded, suite["dice"], "short")

    def test_wrong_workload_diverges(self, suite):
        rec = record_session(suite["relay"], "short", suite="nondet")
        with pytest.raises(ReplayDivergence):
            replay_session(rec.log, suite["clockwork"], "short")


class TestSessionConfig:
    def test_record_and_replay_are_exclusive(self):
        with pytest.raises(ValueError):
            PersistentCacheSession(
                PersistenceConfig(record=True, replay_log=ReplayLog())
            )

    def test_recording_is_persistence_neutral(self, suite, db):
        """A recorded run's observable result equals a plain run's —
        recording must not perturb what it observes."""
        plain = run_vm(suite["dice"], "short")
        rec = record_session(suite["dice"], "short", database=db,
                             suite="nondet")
        assert result_snapshot(rec.result) == result_snapshot(plain)

    def test_record_without_database_is_unsaved(self, suite):
        rec = record_session(suite["dice"], "short", suite="nondet")
        report = rec.result.persistence_report
        assert report["record_state"] == "unsaved"
        assert report["record_events"] == len(rec.log.events) > 0
        assert rec.log_name == ""

    def test_record_with_database_is_written(self, suite, db):
        rec = record_session(suite["dice"], "short", database=db,
                             suite="nondet")
        report = rec.result.persistence_report
        assert report["record_state"] == "written"
        assert report["record_log"] == rec.log_name
        assert rec.log_name in db.list_replay_logs()

    def test_replay_report_states(self, suite):
        rec = record_session(suite["dice"], "short", suite="nondet")
        out = replay_session(rec.log, suite["dice"], "short")
        report = out.result.persistence_report
        assert report["replay_state"] == "replayed"
        assert report["replay_events"] == len(rec.log.events)

    def test_recorded_meta_identity(self, suite):
        rec = record_session(suite["dice"], "long", suite="nondet",
                             tool_name="none", layout_seed=5)
        meta = rec.log.meta
        assert meta["workload"] == "dice"
        assert meta["input"] == "long"
        assert meta["suite"] == "nondet"
        assert meta["dispatch_mode"] == "compiled"
        assert meta["layout_seed"] == 5
        assert meta["vm_version"]


class TestDatabaseStorage:
    def test_store_names_never_collide(self, suite, db):
        first = record_session(suite["dice"], "short", database=db,
                               suite="nondet")
        second = record_session(suite["dice"], "short", database=db,
                                suite="nondet")
        assert first.log_name != second.log_name
        assert db.list_replay_logs() == sorted(
            [first.log_name, second.log_name]
        )

    def test_load_round_trips(self, suite, db):
        rec = record_session(suite["relay"], "short", database=db,
                             suite="nondet")
        loaded = db.load_replay_log(rec.log_name)
        assert loaded.events == rec.log.events
        assert loaded.baseline == rec.log.baseline

    def test_explicit_name_gets_suffix(self, db):
        name = db.store_replay_log(_sample_log(), name="custom")
        assert name == "custom" + REPLAY_LOG_SUFFIX
        assert db.load_replay_log(name).events == _sample_log().events

    def test_damaged_log_quarantined_on_load(self, db, tmp_path):
        import os

        name = db.store_replay_log(_sample_log())
        path = os.path.join(db.replay_directory(), name)
        from repro.testing.faultfs import flip_byte

        flip_byte(path, 30)
        with pytest.raises(ReplayLogError):
            db.load_replay_log(name)
        # Quarantined, not deleted: the damaged file moved aside.
        assert not os.path.exists(path)
        quarantined = os.path.join(
            str(db.directory), "quarantine", "replay", name
        )
        assert os.path.exists(quarantined)
        assert any(kind == "quarantine" for kind, _f, _r in db.events)

    def test_fsck_reports_replay_logs(self, db):
        name = db.store_replay_log(_sample_log())
        report = db.fsck()
        labels = {item.filename: item.status for item in report.items}
        assert labels.get("replay/" + name) == "ok"

    def test_fsck_flags_damage(self, db):
        import os

        from repro.testing.faultfs import flip_byte

        name = db.store_replay_log(_sample_log())
        flip_byte(os.path.join(db.replay_directory(), name), 25)
        report = db.fsck()
        assert not report.clean
        statuses = [item.status for item in report.items
                    if item.filename == "replay/" + name]
        assert "corrupt" in statuses

    def test_fsck_quarantines_damage(self, db):
        import os

        from repro.testing.faultfs import flip_byte

        name = db.store_replay_log(_sample_log())
        flip_byte(os.path.join(db.replay_directory(), name), 25)
        report = db.fsck(quarantine=True)
        assert "replay/" + name in report.quarantined
        assert db.list_replay_logs() == []


class TestDifferentialHarness:
    def test_sweep_clean(self, suite, db):
        record_session(suite["dice"], "short", database=db, suite="nondet")
        record_session(suite["relay"], "short", database=db, suite="nondet")
        report = DifferentialReplayHarness(db).replay_all()
        assert report.clean
        assert report.counts() == {"match": 4}  # 2 logs x 2 modes

    def test_empty_database_is_not_clean(self, db):
        # "clean" asserts coverage, not vacuous truth.
        report = DifferentialReplayHarness(db).replay_all()
        assert not report.clean and report.outcomes == []

    def test_unresolvable_meta_is_error(self, db):
        db.store_replay_log(_sample_log())  # meta has no suite
        report = DifferentialReplayHarness(db).replay_all()
        assert not report.clean
        assert report.outcomes[0].status == "error"

    def test_custom_resolver(self, suite, db):
        rec = record_session(suite["dice"], "short", database=db)
        assert rec.log.meta["suite"] is None  # default meta: unresolvable

        def resolve(meta):
            return suite[str(meta["workload"])], str(meta["input"]), lambda: None

        report = DifferentialReplayHarness(db, resolve=resolve).replay_all(
            modes=("compiled",)
        )
        assert report.clean


class TestCli:
    def _record(self, tmp_path, *extra):
        from repro.cli import main

        return main(["run", "nondet", "dice", "short", "--record",
                     "--pcache", str(tmp_path / "db"), *extra])

    def test_record_then_diff_clean(self, tmp_path, capsys):
        assert self._record(tmp_path) == 0
        out = capsys.readouterr().out
        assert "recording: written" in out

        from repro.cli import main

        assert main(["replay", str(tmp_path / "db"), "--diff"]) == 0
        out = capsys.readouterr().out
        assert "replay: clean" in out

    def test_single_log_replay(self, tmp_path, capsys):
        assert self._record(tmp_path) == 0
        capsys.readouterr()
        from repro.cli import main

        db = CacheDatabase(str(tmp_path / "db"))
        [name] = db.list_replay_logs()
        assert main(["replay", str(tmp_path / "db"), "--log", name,
                     "--mode", "compiled"]) == 0
        assert "bit-identical" in capsys.readouterr().out

    def test_canary_drift_exits_nonzero(self, tmp_path, capsys):
        """The seeded-divergence canary: one flipped logged SYS_RAND
        value must surface as drift with a nonzero exit code."""
        assert self._record(tmp_path) == 0
        db = CacheDatabase(str(tmp_path / "db"))
        [name] = db.list_replay_logs()
        log = db.load_replay_log(name)
        for event in log.events:
            if event[0] == "v" and event[1] == SYS_RAND:
                event[2] ^= 0xFF
                break
        db.store_replay_log(log, name=name)
        capsys.readouterr()
        from repro.cli import main

        assert main(["replay", str(tmp_path / "db"), "--diff"]) == 1
        assert "drift found" in capsys.readouterr().out

    def test_empty_database_diff_is_clean_noop(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["replay", str(tmp_path / "empty"), "--diff"]) == 0
        assert "no replay logs" in capsys.readouterr().out

    def test_record_rejects_cache_flags(self, tmp_path):
        with pytest.raises(SystemExit):
            self._record(tmp_path, "--readonly")
