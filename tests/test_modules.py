"""Tests for dynamic module load/unload (dlopen/dlclose).

Covers the machine semantics, the VM's module-aware translation retention
(after Li et al. [19], which the paper's §5 contrasts with persistence),
and the persistence manager's run-time load interception.
"""

import pytest

from repro.binfmt.image import ImageBuilder, ImageKind
from repro.isa import instructions as ins
from repro.isa import registers as regs
from repro.loader.linker import LinkError, load_process
from repro.machine.cpu import Machine, run_native
from repro.machine.syscalls import (
    SYS_DLCLOSE,
    SYS_DLOPEN,
    SYS_EXIT,
)
from repro.persist.database import CacheDatabase
from repro.persist.manager import PersistenceConfig, PersistentCacheSession
from repro.vm.engine import Engine, VMConfig
from repro.workloads.harness import Workload, run_native as run_native_wl, run_vm
from repro.workloads.builder import InputSpec


def build_module(name="plugin.so", increment=5, mtime=None):
    """A module exporting ``entry`` at offset 0: t6 += increment; ret.

    A rebuilt module gets a fresh mtime (defaulting to the increment), as
    a real rebuild would — mapping keys rely on it, exactly like the
    paper's (and Pin's) keys do.
    """
    builder = ImageBuilder(
        name, ImageKind.SHARED_LIBRARY,
        mtime=increment if mtime is None else mtime,
    )
    builder.add_function(
        "plugin_entry",
        [ins.addi(16, 16, increment), ins.ret()],  # t6 += increment
    )
    return builder.build()


def build_host(open_close_cycles=2):
    """An app that dlopens module 0, calls it, dlcloses, repeatedly."""
    code = [
        ins.movi(regs.S0, 0),  # cycle counter
    ]
    loop_head = len(code)
    code += [
        ins.movi(regs.A0, 0),
        ins.movi(regs.RV, SYS_DLOPEN),
        ins.syscall(),                    # rv = module base
        ins.or_(regs.T0, regs.RV, regs.ZERO),
        ins.callr(regs.T0),               # call plugin_entry at base+0
        ins.movi(regs.A0, 0),
        ins.movi(regs.RV, SYS_DLCLOSE),
        ins.syscall(),
        ins.addi(regs.S0, regs.S0, 1),
        ins.movi(regs.T0 + 1, open_close_cycles),
    ]
    here = len(code)
    code.append(ins.blt(regs.S0, regs.T0 + 1, (loop_head - (here + 1)) * 8))
    code += [
        ins.movi(regs.RV, SYS_EXIT),
        ins.or_(regs.A0, 16, regs.ZERO),  # exit(t6)
        ins.syscall(),
    ]
    builder = ImageBuilder("host-app")
    builder.add_function("main", code)
    builder.set_entry("main")
    return builder.build()


def make_workload(cycles=2, increment=5):
    return Workload(
        name="host",
        image=build_host(cycles),
        inputs={"go": InputSpec("go", hot_iterations=0)},
        modules=[build_module(increment=increment)],
    )


class TestMachineSemantics:
    def test_dlopen_call_dlclose(self):
        workload = make_workload(cycles=3, increment=5)
        result = run_native_wl(workload, "go")
        assert result.exit_status == 15  # called once per cycle

    def test_module_base_stable_across_reloads(self):
        process = load_process(
            build_host(), optional_modules=[build_module()]
        )
        machine = Machine(process)
        first = machine.dlopen(0)
        machine.dlclose(0)
        second = machine.dlopen(0)
        assert first == second

    def test_dlopen_idempotent(self):
        process = load_process(
            build_host(), optional_modules=[build_module()]
        )
        machine = Machine(process)
        assert machine.dlopen(0) == machine.dlopen(0)

    def test_unknown_module(self):
        process = load_process(build_host())
        machine = Machine(process)
        with pytest.raises(LinkError):
            machine.dlopen(7)

    def test_dlclose_unloaded(self):
        process = load_process(
            build_host(), optional_modules=[build_module()]
        )
        machine = Machine(process)
        with pytest.raises(LinkError):
            machine.dlclose(0)

    def test_unmapped_after_close(self):
        process = load_process(
            build_host(), optional_modules=[build_module()]
        )
        machine = Machine(process)
        base = machine.dlopen(0)
        machine.dlclose(0)
        from repro.loader.mapper import MemoryError_

        with pytest.raises(MemoryError_):
            process.space.find_mapping(base)


class TestVMSemantics:
    def test_vm_native_equivalence(self):
        workload = make_workload(cycles=3)
        native = run_native_wl(workload, "go")
        vm = run_vm(workload, "go")
        assert vm.exit_status == native.exit_status
        assert vm.instructions == native.instructions

    def test_module_retention_avoids_retranslation(self):
        """Second dlopen re-registers the stashed translations."""
        workload = make_workload(cycles=3)
        vm = run_vm(workload, "go")
        assert vm.stats.module_loads == 3
        assert vm.stats.module_unloads == 3
        assert vm.stats.module_traces_retained >= 2  # cycles 2 and 3
        # The plugin translated exactly once.
        plugin_translations = [
            identity for identity in vm.stats.trace_identities
            if identity[0] == "plugin.so"
        ]
        assert len(plugin_translations) == 1

    def test_retention_disabled_retranslates(self):
        workload = make_workload(cycles=3)
        vm = run_vm(
            workload, "go",
            vm_config=VMConfig(module_retention=False),
        )
        assert vm.stats.module_traces_retained == 0
        # Each reload re-translates the plugin.
        assert vm.stats.traces_translated >= 3


class TestModulePersistence:
    def test_module_traces_persisted_and_revived(self, tmp_path):
        """Module translations persist (host keeps it loaded at exit) and
        revive at dlopen time in the next run."""
        module = build_module()
        # Host that opens the module and exits WITHOUT closing it.
        code = [
            ins.movi(regs.A0, 0),
            ins.movi(regs.RV, SYS_DLOPEN),
            ins.syscall(),
            ins.or_(regs.T0, regs.RV, regs.ZERO),
            ins.callr(regs.T0),
            ins.movi(regs.RV, SYS_EXIT),
            ins.or_(regs.A0, 16, regs.ZERO),
            ins.syscall(),
        ]
        builder = ImageBuilder("host-keep")
        builder.add_function("main", code)
        builder.set_entry("main")
        workload = Workload(
            name="host-keep",
            image=builder.build(),
            inputs={"go": InputSpec("go", hot_iterations=0)},
            modules=[module],
        )
        db = CacheDatabase(str(tmp_path / "db"))
        first = run_vm(workload, "go",
                       persistence=PersistenceConfig(database=db))
        assert first.exit_status == 5
        second = run_vm(workload, "go",
                        persistence=PersistenceConfig(database=db))
        assert second.exit_status == 5
        assert second.stats.traces_translated == 0
        # The module's trace came back through the dlopen interception.
        assert second.stats.traces_from_persistent >= first.cache_traces

    def _keep_open_workload(self, increment):
        """A host that dlopens and exits with the module still loaded, so
        its traces ARE persisted."""
        code = [
            ins.movi(regs.A0, 0),
            ins.movi(regs.RV, SYS_DLOPEN),
            ins.syscall(),
            ins.or_(regs.T0, regs.RV, regs.ZERO),
            ins.callr(regs.T0),
            ins.movi(regs.RV, SYS_EXIT),
            ins.or_(regs.A0, 16, regs.ZERO),
            ins.syscall(),
        ]
        builder = ImageBuilder("host-keep")
        builder.add_function("main", code)
        builder.set_entry("main")
        return Workload(
            name="host-keep",
            image=builder.build(),
            inputs={"go": InputSpec("go", hot_iterations=0)},
            modules=[build_module(increment=increment)],
        )

    def test_rebuilt_module_invalidated_at_dlopen(self, tmp_path):
        """A rebuilt module (new mtime) fails the key check at dlopen:
        its persisted traces are invalidated and the NEW code executes."""
        db = CacheDatabase(str(tmp_path / "db"))
        first = run_vm(self._keep_open_workload(5), "go",
                       persistence=PersistenceConfig(database=db))
        assert first.exit_status == 5
        changed = run_vm(self._keep_open_workload(9), "go",
                         persistence=PersistenceConfig(database=db))
        assert changed.exit_status == 9  # correctness: new code executed
        assert changed.persistence_report["invalidated"] > 0
        # And the refreshed cache now serves the new module verbatim.
        warm = run_vm(self._keep_open_workload(9), "go",
                      persistence=PersistenceConfig(database=db))
        assert warm.exit_status == 9
        assert warm.stats.traces_translated == 0


class TestModuleSmcInteraction:
    def test_modified_module_trace_not_retained_across_reload(self):
        """Write into a loaded module's code, dlclose, dlopen: the reload
        maps a pristine copy and must execute the ORIGINAL code, not a
        stashed translation of the modified bytes."""
        from repro.isa.encoding import encode
        from repro.machine.syscalls import SYS_DLCLOSE, SYS_DLOPEN

        module = build_module(increment=5)
        new_word = int.from_bytes(
            encode(ins.addi(16, 16, 50)), "little", signed=True
        )
        lo = new_word & 0xFFFF
        hi = (new_word >> 16) & ((1 << 47) - 1)
        code = [
            # open + call (t6 += 5), translating the original code
            ins.movi(regs.A0, 0),
            ins.movi(regs.RV, SYS_DLOPEN),
            ins.syscall(),
            ins.or_(regs.T0, regs.RV, regs.ZERO),
            ins.callr(regs.T0),
            # patch the module's first instruction to t6 += 50 and rerun
            ins.movi(regs.T0 + 2, hi),
            ins.shli(regs.T0 + 2, regs.T0 + 2, 16),
            ins.ori(regs.T0 + 2, regs.T0 + 2, lo),
            ins.st(regs.T0, regs.T0 + 2, 0),
            ins.callr(regs.T0),               # t6 += 50 (modified)
            # close and reopen: pristine copy again
            ins.movi(regs.A0, 0),
            ins.movi(regs.RV, SYS_DLCLOSE),
            ins.syscall(),
            ins.movi(regs.A0, 0),
            ins.movi(regs.RV, SYS_DLOPEN),
            ins.syscall(),
            ins.or_(regs.T0, regs.RV, regs.ZERO),
            ins.callr(regs.T0),               # must be t6 += 5 again
            ins.movi(regs.RV, SYS_EXIT),
            ins.or_(regs.A0, 16, regs.ZERO),
            ins.syscall(),
        ]
        builder = ImageBuilder("smc-host")
        builder.add_function("main", code)
        builder.set_entry("main")
        workload = Workload(
            name="smc-host",
            image=builder.build(),
            inputs={"go": InputSpec("go", hot_iterations=0)},
            modules=[module],
        )
        native = run_native_wl(workload, "go")
        assert native.exit_status == 60  # 5 + 50 + 5
        vm = run_vm(workload, "go")
        assert vm.exit_status == 60
        assert vm.instructions == native.instructions
