"""Small behaviours not covered by the focused suites."""

import pytest

from repro.analysis.report import format_matrix
from repro.loader.linker import ImageStore, load_process
from repro.machine.cpu import Machine, run_native
from repro.vm.client import ToolAccounting

from tests.conftest import TINY_PROGRAM, image_from_asm


class TestReportNonPercent:
    def test_matrix_raw_values(self):
        matrix = {"a": {"a": 1.0, "b": 0.5}, "b": {"a": 0.25, "b": 1.0}}
        text = format_matrix(matrix, order=["a", "b"], as_percent=False)
        assert "1.00" in text and "0.50" in text
        assert "%" not in text


class TestToolAccounting:
    def test_record_call_aggregates(self):
        accounting = ToolAccounting()
        accounting.record_call("x", 2.0)
        accounting.record_call("x", 3.0)
        accounting.record_call("y", 1.0)
        assert accounting.analysis_calls == 3
        assert accounting.analysis_cycles == 6.0
        assert accounting.calls_by_label == {"x": 2, "y": 1}


class TestImageStore:
    def test_contains(self):
        image = image_from_asm(TINY_PROGRAM)
        store = ImageStore()
        assert "app" not in store
        store.add(image)
        assert "app" in store
        assert store("app") is image


class TestThreadEdges:
    def test_yield_with_single_thread_is_noop(self):
        machine = Machine(load_process(image_from_asm(
            """
            main:
                movi rv, 10     ; SYS_YIELD with nobody else runnable
                syscall
                movi rv, 1
                movi a0, 4
                syscall
            """
        )))
        result = run_native(machine)
        assert result.exit_status == 4
        assert len(machine.threads) == 1

    def test_round_robin_over_three_workers(self):
        """Workers run strictly in spawn order at each yield round."""
        from repro.binfmt.image import ImageBuilder
        from repro.isa import instructions as ins
        from repro.isa import registers as regs
        from repro.machine.syscalls import (
            SYS_EXIT, SYS_THREAD_CREATE, SYS_WRITE, SYS_YIELD,
        )

        builder = ImageBuilder("rr")
        # worker: write one byte ('A' + arg) to output, exit.
        worker = [
            ins.addi(regs.T0 + 1, regs.A0, ord("A")),
            ins.st(regs.SP, regs.T0 + 1, 0),
            ins.movi(regs.A0, 1),
            ins.or_(regs.A1, regs.SP, regs.ZERO),
            ins.movi(regs.RV, SYS_WRITE),
            ins.syscall(),
            ins.movi(regs.RV, SYS_EXIT),
            ins.movi(regs.A0, 0),
            ins.syscall(),
        ]
        builder.add_function("worker", worker)
        main = []
        refs = []
        for index in range(3):
            refs.append((len(main), "worker"))
            main += [
                ins.movi(regs.A0, 0),
                ins.movi(regs.A1, index),
                ins.movi(regs.RV, SYS_THREAD_CREATE),
                ins.syscall(),
            ]
        main += [
            ins.movi(regs.RV, SYS_YIELD),
            ins.syscall(),
            ins.movi(regs.RV, SYS_EXIT),
            ins.movi(regs.A0, 0),
            ins.syscall(),
        ]
        builder.add_function("main", main, symbol_refs=refs)
        builder.set_entry("main")
        machine = Machine(load_process(builder.build()))
        result = run_native(machine)
        # One yield lets all three workers run to completion in spawn
        # order before control returns to main.
        assert result.output == b"ABC"

    def test_output_byte_order_is_deterministic_under_vm(self):
        from repro.vm.engine import Engine
        from repro.binfmt.image import ImageBuilder
        from repro.isa import instructions as ins
        from repro.isa import registers as regs
        from repro.machine.syscalls import (
            SYS_EXIT, SYS_THREAD_CREATE, SYS_WRITE, SYS_YIELD,
        )

        builder = ImageBuilder("rr2")
        worker = [
            ins.addi(regs.T0 + 1, regs.A0, ord("x")),
            ins.st(regs.SP, regs.T0 + 1, 0),
            ins.movi(regs.A0, 1),
            ins.or_(regs.A1, regs.SP, regs.ZERO),
            ins.movi(regs.RV, SYS_WRITE),
            ins.syscall(),
            ins.movi(regs.RV, SYS_EXIT),
            ins.movi(regs.A0, 0),
            ins.syscall(),
        ]
        builder.add_function("worker", worker)
        main = []
        refs = []
        for index in range(2):
            refs.append((len(main), "worker"))
            main += [
                ins.movi(regs.A0, 0),
                ins.movi(regs.A1, index),
                ins.movi(regs.RV, SYS_THREAD_CREATE),
                ins.syscall(),
            ]
        main += [
            ins.movi(regs.RV, SYS_YIELD),
            ins.syscall(),
            ins.movi(regs.RV, SYS_EXIT),
            ins.movi(regs.A0, 0),
            ins.syscall(),
        ]
        builder.add_function("main", main, symbol_refs=refs)
        builder.set_entry("main")
        image = builder.build()
        native = run_native(Machine(load_process(image)))
        vm = Engine().run(load_process(image))
        assert native.output == vm.output == b"xy"
