"""Property-based tests for the PCSD1 wire protocol and the daemon's
hot index.

Two invariants, each pushed through random inputs:

* **Framing**: ``parse_frame(pack_frame(...))`` is the identity on
  ``(op, meta, entries)`` — including four-element PCSS1-shape records
  with an implied cost of 0 — and *every* single-byte flip of a packed
  frame is detected (the preamble's reserved field must be zero exactly
  so this holds; no flip can hide).
* **Hot index vs. disk**: after any interleaving of publish / lookup /
  touch / flush frames against a socketless :class:`CacheServer`, a
  final flush leaves every hot body bit-identical on disk, the byte cap
  honored, and ``fsck`` clean — the daemon can never invent state the
  flock store would not have.
"""

from __future__ import annotations

import json
import shutil
import struct
import tempfile

import pytest
from hypothesis import given, settings, strategies as st

from repro.persist.cacheserver import (
    FRAME_PREAMBLE,
    CacheServer,
    DaemonProtocolError,
    pack_frame,
    parse_frame,
)
from repro.persist.sharedstore import SharedBodyStore
from repro.vm.engine import VM_VERSION

pytestmark = pytest.mark.faultinject

#: Same dense digest universe as the shared-store properties: a few
#: shards, lots of collisions.
DIGESTS = tuple("%02x%062x" % (i % 4, i) for i in range(12))


def body_of(digest: str) -> bytes:
    return (b"canonical:" + digest.encode()) * 2


# -- framing ------------------------------------------------------------------

META = st.dictionaries(
    st.text(min_size=1, max_size=8),
    st.one_of(st.integers(-2**31, 2**31), st.text(max_size=16),
              st.booleans()),
    max_size=4,
)

ENTRIES = st.dictionaries(
    st.sampled_from(DIGESTS),
    st.tuples(st.binary(max_size=200), st.integers(0, 2**31),
              st.integers(0, 2**20)),
    max_size=6,
)


@settings(max_examples=60, deadline=None)
@given(op=st.sampled_from(["ping", "lookup", "publish", "bodies"]),
       meta=META, entries=ENTRIES)
def test_frame_round_trip(op, meta, entries):
    out_op, out_meta, out_entries = parse_frame(
        pack_frame(op, meta, entries)
    )
    assert out_op == op
    assert out_meta == meta
    assert out_entries == {
        digest: (blob, stamp, cost)
        for digest, (blob, stamp, cost) in entries.items()
    }


def test_four_element_records_parse_with_cost_zero():
    """Hand-build a frame whose records use the pre-cost PCSS1 shape:
    the parser must accept it with an implied cost_us of 0."""
    blob = b"legacy-body"
    header = {
        "op": "bodies",
        "meta": {},
        "records": [[DIGESTS[0], 0, len(blob), 1234]],  # len-4 record
    }
    header_blob = json.dumps(header, sort_keys=True).encode()
    payload = struct.pack("<I", len(header_blob)) + header_blob + blob
    import zlib

    frame = FRAME_PREAMBLE.pack(
        b"PCSD", 1, 0, len(payload), zlib.crc32(payload) & 0xFFFFFFFF
    ) + payload
    op, _meta, entries = parse_frame(frame)
    assert op == "bodies"
    assert entries == {DIGESTS[0]: (blob, 1234, 0)}


@settings(max_examples=60, deadline=None)
@given(
    entries=ENTRIES,
    flip=st.tuples(st.integers(0, 2**16), st.integers(1, 255)),
)
def test_every_single_byte_flip_is_detected(entries, flip):
    """One flipped byte anywhere in a frame must never parse clean.

    This is why the preamble's reserved field is *enforced* zero: were
    it ignored, a flip landing there would slide through undetected.
    """
    frame = bytearray(pack_frame("publish", {"touch": []}, entries))
    offset, xor = flip
    frame[offset % len(frame)] ^= xor
    with pytest.raises(DaemonProtocolError):
        parse_frame(bytes(frame))


@settings(max_examples=40, deadline=None)
@given(cut=st.integers(0, 2**16))
def test_any_truncation_is_detected(cut):
    frame = pack_frame(
        "bodies", {"count": 1}, {DIGESTS[0]: (body_of(DIGESTS[0]), 7, 5)}
    )
    prefix = frame[: cut % len(frame)]  # strictly shorter than the frame
    with pytest.raises(DaemonProtocolError):
        parse_frame(prefix)


# -- hot index consistency ----------------------------------------------------

OPS = st.one_of(
    st.tuples(st.just("publish"), st.lists(
        st.integers(0, len(DIGESTS) - 1), min_size=1, max_size=6)),
    st.tuples(st.just("touch"), st.lists(
        st.integers(0, len(DIGESTS) - 1), min_size=1, max_size=4)),
    st.tuples(st.just("lookup"), st.integers(0, len(DIGESTS) - 1)),
    st.tuples(st.just("flush"), st.just(None)),
)


@settings(max_examples=40, deadline=None)
@given(
    ops=st.lists(OPS, min_size=1, max_size=24),
    cap=st.one_of(st.none(), st.integers(50, 2000)),
)
def test_any_frame_interleaving_keeps_hot_index_consistent_with_disk(
    ops, cap
):
    tmp = tempfile.mkdtemp(prefix="pcsd-prop-")
    try:
        ticks = iter(range(1, 10_000))
        server = CacheServer(
            tmp, vm_version=VM_VERSION, max_bytes=cap,
            clock=lambda: next(ticks),
        )
        for opcode, payload in ops:
            if opcode == "publish":
                batch = {
                    DIGESTS[i]: (body_of(DIGESTS[i]), 0, 10 + i)
                    for i in payload
                }
                frame = pack_frame("publish", {"vm": VM_VERSION}, batch)
            elif opcode == "touch":
                frame = pack_frame(
                    "publish",
                    {"vm": VM_VERSION,
                     "touch": sorted({DIGESTS[i] for i in payload})},
                )
            elif opcode == "lookup":
                frame = pack_frame(
                    "lookup",
                    {"vm": VM_VERSION, "digests": [DIGESTS[payload]]},
                )
            else:
                frame = pack_frame("flush", {"vm": VM_VERSION})
            op, meta, entries = parse_frame(server.handle_frame(frame))
            assert op != "error", meta
            if opcode == "lookup":
                for digest, (blob, _stamp, _cost) in entries.items():
                    assert blob == body_of(digest), digest

        assert server.flush() is not None  # final write-back succeeds
        hot = server.hot_entries()
        if cap is not None:
            assert sum(len(r[0]) for r in hot.values()) <= cap

        # Every hot body is now on disk with identical bytes, seen by a
        # store instance with no warm shard cache.
        fresh = SharedBodyStore(tmp, vm_version=VM_VERSION)
        for digest, (blob, _stamp, _cost) in hot.items():
            assert fresh.lookup(digest) == blob, digest
        assert fresh.fsck().clean
        assert server.dirty_count() == 0
    finally:
        shutil.rmtree(tmp, ignore_errors=True)
