"""Tests for the persistent cache database."""

import os

from repro.persist.cachefile import PersistentCache
from repro.persist.database import CacheDatabase
from repro.persist.keys import MappingKey

from tests.test_persist_cachefile import make_cache, make_trace


def app_key(path="app", base=0x40_0000):
    return MappingKey(path, base, 0x1000, "hd-" + path, 1)


class TestStoreLookup:
    def test_roundtrip(self, tmp_path):
        db = CacheDatabase(str(tmp_path))
        cache = make_cache()
        db.store(cache, app_key())
        found = db.lookup(app_key(), "vm-1", "tool-1")
        assert found is not None
        assert len(found.traces) == 3

    def test_miss_on_unknown_app(self, tmp_path):
        db = CacheDatabase(str(tmp_path))
        db.store(make_cache(), app_key())
        assert db.lookup(app_key("other"), "vm-1", "tool-1") is None

    def test_miss_on_vm_version(self, tmp_path):
        db = CacheDatabase(str(tmp_path))
        db.store(make_cache(), app_key())
        assert db.lookup(app_key(), "vm-2", "tool-1") is None

    def test_miss_on_tool(self, tmp_path):
        db = CacheDatabase(str(tmp_path))
        db.store(make_cache(), app_key())
        assert db.lookup(app_key(), "vm-1", "tool-2") is None

    def test_replace_same_triple(self, tmp_path):
        db = CacheDatabase(str(tmp_path))
        db.store(make_cache(n_traces=2), app_key())
        db.store(make_cache(n_traces=5), app_key())
        assert len(db.entries()) == 1
        assert len(db.lookup(app_key(), "vm-1", "tool-1").traces) == 5

    def test_index_survives_reopen(self, tmp_path):
        CacheDatabase(str(tmp_path)).store(make_cache(), app_key())
        reopened = CacheDatabase(str(tmp_path))
        assert reopened.lookup(app_key(), "vm-1", "tool-1") is not None

    def test_clear(self, tmp_path):
        db = CacheDatabase(str(tmp_path))
        entry = db.store(make_cache(), app_key())
        db.clear()
        assert db.entries() == []
        assert not os.path.exists(os.path.join(str(tmp_path), entry.filename))
        assert db.lookup(app_key(), "vm-1", "tool-1") is None


def _cache_for_app(app_path, n_traces):
    cache = PersistentCache(
        vm_version="vm-1", tool_identity="tool-1", app_path=app_path
    )
    for index in range(n_traces):
        cache.traces.append(make_trace(offset=index * 64, path=app_path))
    return cache


class TestInterApplicationLookup:
    def test_finds_other_apps_cache(self, tmp_path):
        db = CacheDatabase(str(tmp_path))
        db.store(_cache_for_app("gvim", 3), app_key("gvim"))
        found = db.lookup_inter_application("vm-1", "tool-1",
                                            exclude_app_path="gftp")
        assert found is not None
        assert found.app_path == "gvim"

    def test_excludes_own_app(self, tmp_path):
        db = CacheDatabase(str(tmp_path))
        db.store(_cache_for_app("gftp", 3), app_key("gftp"))
        assert db.lookup_inter_application(
            "vm-1", "tool-1", exclude_app_path="gftp"
        ) is None

    def test_vm_and_tool_still_checked(self, tmp_path):
        db = CacheDatabase(str(tmp_path))
        db.store(_cache_for_app("gvim", 3), app_key("gvim"))
        assert db.lookup_inter_application("vm-2", "tool-1") is None
        assert db.lookup_inter_application("vm-1", "tool-9") is None

    def test_default_picks_largest(self, tmp_path):
        db = CacheDatabase(str(tmp_path))
        db.store(_cache_for_app("small", 1), app_key("small"))
        db.store(_cache_for_app("big", 8), app_key("big"))
        found = db.lookup_inter_application("vm-1", "tool-1")
        assert found.app_path == "big"

    def test_custom_selector(self, tmp_path):
        db = CacheDatabase(str(tmp_path))
        db.store(_cache_for_app("small", 1), app_key("small"))
        db.store(_cache_for_app("big", 8), app_key("big"))

        def pick_small(candidates):
            return min(candidates, key=lambda entry: entry.file_size)

        found = db.lookup_inter_application("vm-1", "tool-1", select=pick_small)
        assert found.app_path == "small"

    def test_selector_may_decline(self, tmp_path):
        db = CacheDatabase(str(tmp_path))
        db.store(_cache_for_app("x", 1), app_key("x"))
        found = db.lookup_inter_application(
            "vm-1", "tool-1", select=lambda candidates: None
        )
        assert found is None
