"""Tests for multi-threaded execution (paper: the persistent system
supports single-threaded, multi-threaded, and multi-process applications).

Threads are cooperatively scheduled at yield/exit system calls, so
interleaving is deterministic and identical between native and VM
execution — which the equivalence tests here rely on.
"""

import pytest

from repro.binfmt.image import ImageBuilder
from repro.isa.assembler import assemble
from repro.loader.linker import load_process
from repro.machine.cpu import (
    Machine,
    THREAD_EXIT_STUB,
    run_native,
)
from repro.persist.database import CacheDatabase
from repro.persist.manager import PersistenceConfig, PersistentCacheSession
from repro.vm.engine import Engine


def build_mt_image(source: str, data=("counter", 8)):
    unit = assemble(source)
    builder = ImageBuilder("mt-app")
    builder.add_unit(unit, exports=["main"])
    if data:
        builder.add_data(data[0], b"\x00" * data[1])
    builder.set_entry("main")
    return builder.build()


TWO_WORKERS = """
main:
    movi a0, worker
    movi a1, 5
    movi rv, 9            ; SYS_THREAD_CREATE
    syscall
    movi a0, worker
    movi a1, 7
    movi rv, 9
    syscall
    movi rv, 10           ; SYS_YIELD (let both workers run)
    syscall
    movi rv, 10
    syscall
    movi t0, counter
    ld   a0, 0(t0)
    movi rv, 1            ; SYS_EXIT: last thread ends the process
    syscall
worker:
    movi t1, counter
    ld   t2, 0(t1)
    add  t2, t2, a0
    st   t2, 0(t1)
    movi rv, 10           ; yield mid-work
    syscall
    movi rv, 1            ; thread exit
    movi a0, 0
    syscall
"""

RETURNING_WORKER = """
main:
    movi a0, worker
    movi a1, 3
    movi rv, 9
    syscall
    movi rv, 10
    syscall
    movi rv, 1
    movi a0, 42
    syscall
worker:
    add  t1, a0, a0
    ret                   ; returns into the thread-exit shim
"""

GETTID_PROGRAM = """
main:
    movi rv, 11           ; SYS_GETTID
    syscall
    or   a0, rv, zero
    movi rv, 1
    syscall
"""


class TestThreadSemantics:
    def test_shared_memory_and_scheduling(self):
        image = build_mt_image(TWO_WORKERS)
        result = run_native(Machine(load_process(image)))
        assert result.exit_status == 12  # 5 + 7 accumulated by workers

    def test_thread_ids_allocated(self):
        image = build_mt_image(TWO_WORKERS)
        machine = Machine(load_process(image))
        run_native(machine)
        assert [t.tid for t in machine.threads] == [1, 2, 3]
        assert all(not t.alive for t in machine.threads)

    def test_threads_have_distinct_stacks(self):
        image = build_mt_image(TWO_WORKERS)
        machine = Machine(load_process(image))
        run_native(machine)
        import repro.isa.registers as regs
        stacks = {t.registers[regs.SP] // (1 << 20) for t in machine.threads}
        assert len(stacks) == 3

    def test_returning_worker_exits_via_stub(self):
        image = build_mt_image(RETURNING_WORKER, data=None)
        result = run_native(Machine(load_process(image)))
        assert result.exit_status == 42

    def test_gettid(self):
        image = build_mt_image(GETTID_PROGRAM, data=None)
        result = run_native(Machine(load_process(image)))
        assert result.exit_status == 1  # main thread

    def test_exit_stub_mapped(self):
        image = build_mt_image(GETTID_PROGRAM, data=None)
        machine = Machine(load_process(image))
        mapping = machine.process.space.find_mapping(THREAD_EXIT_STUB)
        assert mapping.image is None  # anonymous: unbacked code


class TestVMEquivalence:
    @pytest.mark.parametrize("source", [TWO_WORKERS, RETURNING_WORKER])
    def test_native_vm_identical(self, source):
        data = ("counter", 8) if "counter" in source else None
        image = build_mt_image(source, data=data)
        native = run_native(Machine(load_process(image)))
        vm = Engine().run(load_process(image))
        assert vm.exit_status == native.exit_status
        assert vm.instructions == native.instructions

    def test_thread_exit_stub_executes_under_vm(self):
        image = build_mt_image(RETURNING_WORKER, data=None)
        vm = Engine().run(load_process(image))
        assert vm.exit_status == 42
        # The stub's trace has no backing image.
        assert any(
            path == "" for path, _o, _s in vm.stats.trace_identities
        )


class TestPersistenceWithThreads:
    def test_cache_written_when_last_thread_exits(self, tmp_path):
        image = build_mt_image(TWO_WORKERS)
        db = CacheDatabase(str(tmp_path / "db"))

        def run():
            session = PersistentCacheSession(PersistenceConfig(database=db))
            return Engine(persistence=session).run(load_process(image))

        first = run()
        assert first.persistence_report["written"]
        second = run()
        assert second.stats.traces_translated == 0
        assert second.exit_status == first.exit_status == 12

    def test_unbacked_stub_trace_never_persisted(self, tmp_path):
        image = build_mt_image(RETURNING_WORKER, data=None)
        db = CacheDatabase(str(tmp_path / "db"))
        session = PersistentCacheSession(PersistenceConfig(database=db))
        Engine(persistence=session).run(load_process(image))
        cache = db.lookup(
            # recompute the app key the way the manager does
            __import__("repro.persist.keys", fromlist=["mapping_key"]).mapping_key(
                image, 0x40_0000
            ),
            __import__("repro.vm.engine", fromlist=["VM_VERSION"]).VM_VERSION,
            Engine().tool.identity(),
        )
        assert cache is not None
        assert all(trace.image_path == "mt-app" for trace in cache.traces)

        # The second run re-translates exactly the unbacked stub trace.
        session = PersistentCacheSession(PersistenceConfig(database=db))
        warm = Engine(persistence=session).run(load_process(image))
        assert warm.stats.traces_translated == 1
        (identity,) = warm.stats.trace_identities
        assert identity[0] == ""
