"""Tests for the intra-execution code cache."""

import pytest

from repro.isa import instructions as ins
from repro.machine.costs import DEFAULT_COST_MODEL
from repro.vm.codecache import CacheFull, CodeCache
from repro.vm.trace import ExitKind, Trace, TraceExit
from repro.vm.translator import Translator


def translated_at(entry, target=None, n=3):
    """A minimal translated trace at ``entry`` optionally jumping to ``target``."""
    if target is not None:
        body = [ins.nop()] * (n - 1) + [ins.jmp(target)]
        exits = [TraceExit(ExitKind.DIRECT, n - 1, target=target)]
    else:
        body = [ins.nop()] * (n - 1) + [ins.ret()]
        exits = [TraceExit(ExitKind.INDIRECT, n - 1)]
    trace = Trace(entry=entry, instructions=body, exits=exits)
    return Translator(DEFAULT_COST_MODEL).translate(trace).translated


class TestLookupInsert:
    def test_miss_then_hit(self):
        cache = CodeCache()
        assert cache.lookup(0x1000) is None
        translated = translated_at(0x1000)
        cache.insert(translated)
        assert cache.lookup(0x1000) is translated
        assert 0x1000 in cache
        assert len(cache) == 1

    def test_duplicate_rejected(self):
        cache = CodeCache()
        cache.insert(translated_at(0x1000))
        with pytest.raises(ValueError):
            cache.insert(translated_at(0x1000))

    def test_occupancy_tracks_sizes(self):
        cache = CodeCache()
        translated = translated_at(0x1000)
        cache.insert(translated)
        code, data = cache.occupancy()
        assert code == translated.code_size
        assert data == translated.data_size

    def test_stats(self):
        cache = CodeCache()
        cache.lookup(0x1)
        cache.insert(translated_at(0x1000))
        cache.lookup(0x1000)
        assert cache.stats.lookups == 2
        assert cache.stats.hits == 1
        assert cache.stats.traces_inserted == 1


class TestLinking:
    def test_forward_link_on_target_arrival(self):
        cache = CodeCache()
        jumper = translated_at(0x1000, target=0x2000)
        cache.insert(jumper)
        assert not jumper.final_slot.is_linked
        cache.insert(translated_at(0x2000))
        assert jumper.final_slot.is_linked
        assert jumper.final_slot.linked_entry == 0x2000

    def test_backward_link_at_insert(self):
        cache = CodeCache()
        cache.insert(translated_at(0x2000))
        jumper = translated_at(0x1000, target=0x2000)
        patches = cache.insert(jumper)
        assert jumper.final_slot.is_linked
        assert patches == 1

    def test_patch_count(self):
        cache = CodeCache()
        for index in range(3):
            cache.insert(translated_at(0x1000 + index * 0x100, target=0x9000))
        patches = cache.insert(translated_at(0x9000))
        assert patches == 3
        assert cache.stats.link_patches == 3


class TestEviction:
    def test_evict_unlinks_incoming(self):
        cache = CodeCache()
        jumper = translated_at(0x1000, target=0x2000)
        cache.insert(jumper)
        cache.insert(translated_at(0x2000))
        assert jumper.final_slot.is_linked
        cache.evict(0x2000)
        assert not jumper.final_slot.is_linked
        assert cache.lookup(0x2000) is None

    def test_evict_returns_space(self):
        cache = CodeCache()
        translated = translated_at(0x1000)
        cache.insert(translated)
        cache.evict(0x1000)
        assert cache.occupancy() == (0, 0)

    def test_evict_missing(self):
        with pytest.raises(KeyError):
            CodeCache().evict(0x1234)


class TestCapacityAndFlush:
    def test_code_pool_exhaustion(self):
        translated = translated_at(0x1000)
        cache = CodeCache(code_capacity=translated.code_size,
                          data_capacity=10**6)
        cache.insert(translated)
        with pytest.raises(CacheFull):
            cache.insert(translated_at(0x2000))

    def test_data_pool_exhaustion(self):
        translated = translated_at(0x1000)
        cache = CodeCache(code_capacity=10**6,
                          data_capacity=translated.data_size)
        cache.insert(translated)
        with pytest.raises(CacheFull):
            cache.insert(translated_at(0x2000))

    def test_flush_discards_everything(self):
        cache = CodeCache()
        cache.insert(translated_at(0x1000, target=0x9000))
        cache.insert(translated_at(0x2000))
        discarded = cache.flush()
        assert discarded == 2
        assert len(cache) == 0
        assert cache.occupancy() == (0, 0)
        assert cache.stats.flushes == 1
        # Pending links must be gone: inserting the old target now patches
        # nothing.
        assert cache.insert(translated_at(0x9000)) == 0

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            CodeCache(code_capacity=0)

    def test_traces_listing(self):
        cache = CodeCache()
        first = translated_at(0x1000)
        second = translated_at(0x2000)
        cache.insert(first)
        cache.insert(second)
        assert cache.traces() == [first, second]
