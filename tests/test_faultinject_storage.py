"""Fault-injection tests of the storage seam itself.

The atomic write-replace protocol (tmp file + fsync + rename) must never
expose a torn destination file, whatever point the IO fails at.
"""

import errno

import pytest

from repro.persist.storage import (
    FileStorage,
    TMP_SUFFIX,
    WRITE_CHUNK_BYTES,
)
from repro.testing.faultfs import (
    FaultPlan,
    FaultyStorage,
    InjectedIOError,
    SimulatedCrash,
)

pytestmark = pytest.mark.faultinject

PAYLOAD = bytes(range(256)) * 20  # several write chunks


class TestAtomicWrite:
    def test_roundtrip(self, tmp_path):
        storage = FileStorage()
        path = str(tmp_path / "blob")
        storage.write_atomic(path, PAYLOAD)
        assert storage.read_bytes(path) == PAYLOAD
        assert not storage.exists(path + TMP_SUFFIX)

    def test_empty_payload(self, tmp_path):
        storage = FileStorage()
        path = str(tmp_path / "blob")
        storage.write_atomic(path, b"")
        assert storage.read_bytes(path) == b""

    def test_chunked(self, tmp_path):
        storage = FaultyStorage()
        path = str(tmp_path / "blob")
        storage.write_atomic(path, PAYLOAD)
        expected = -(-len(PAYLOAD) // WRITE_CHUNK_BYTES)
        assert storage.op_counts["write"] == expected


class TestWriteFaults:
    @pytest.mark.parametrize("errno_value", [errno.ENOSPC, errno.EIO])
    def test_nth_write_failure_preserves_old_contents(self, tmp_path, errno_value):
        """ENOSPC/EIO mid-write: the destination keeps its previous
        complete contents; only the tmp file is partial."""
        path = str(tmp_path / "blob")
        FileStorage().write_atomic(path, b"old contents")

        storage = FaultyStorage(
            FaultPlan(fail_write_on_call=2, fail_write_errno=errno_value)
        )
        with pytest.raises(InjectedIOError) as excinfo:
            storage.write_atomic(path, PAYLOAD)
        assert excinfo.value.errno == errno_value
        assert FileStorage().read_bytes(path) == b"old contents"
        # The partial tmp file is left behind, like a real crash would.
        tmp_blob = FileStorage().read_bytes(path + TMP_SUFFIX)
        assert len(tmp_blob) < len(PAYLOAD)

    def test_every_failing_write_index_is_safe(self, tmp_path):
        """Sweep the fault across every chunk the write performs."""
        path = str(tmp_path / "blob")
        total_chunks = -(-len(PAYLOAD) // WRITE_CHUNK_BYTES)
        for n in range(1, total_chunks + 1):
            FileStorage().write_atomic(path, b"old")
            storage = FaultyStorage(FaultPlan(fail_write_on_call=n))
            with pytest.raises(InjectedIOError):
                storage.write_atomic(path, PAYLOAD)
            assert FileStorage().read_bytes(path) == b"old", n

    def test_retry_after_fault_succeeds(self, tmp_path):
        path = str(tmp_path / "blob")
        faulty = FaultyStorage(FaultPlan(fail_write_on_call=1))
        with pytest.raises(InjectedIOError):
            faulty.write_atomic(path, PAYLOAD)
        FileStorage().write_atomic(path, PAYLOAD)  # the disk recovered
        assert FileStorage().read_bytes(path) == PAYLOAD


class TestCrashBetweenTmpAndRename:
    def test_destination_untouched(self, tmp_path):
        path = str(tmp_path / "blob")
        FileStorage().write_atomic(path, b"old contents")
        storage = FaultyStorage(FaultPlan(crash_before_rename=True))
        with pytest.raises(SimulatedCrash):
            storage.write_atomic(path, PAYLOAD)
        assert FileStorage().read_bytes(path) == b"old contents"
        # The fully written tmp file exists but never became visible.
        assert FileStorage().read_bytes(path + TMP_SUFFIX) == PAYLOAD

    def test_crash_is_not_an_oserror(self):
        """Nothing in the production stack may catch a simulated kill."""
        assert not issubclass(SimulatedCrash, OSError)
        assert not issubclass(SimulatedCrash, Exception)

    def test_rename_io_error(self, tmp_path):
        path = str(tmp_path / "blob")
        storage = FaultyStorage(FaultPlan(fail_rename_errno=errno.EIO))
        with pytest.raises(InjectedIOError):
            storage.write_atomic(path, PAYLOAD)
        assert not FileStorage().exists(path)


class TestReadFaults:
    def test_flip(self, tmp_path):
        path = str(tmp_path / "blob")
        FileStorage().write_atomic(path, PAYLOAD)
        flipped = FaultyStorage(FaultPlan(flip_read_byte_at=3)).read_bytes(path)
        assert flipped != PAYLOAD
        assert len(flipped) == len(PAYLOAD)
        assert flipped[3] == PAYLOAD[3] ^ 0xFF

    def test_truncate(self, tmp_path):
        path = str(tmp_path / "blob")
        FileStorage().write_atomic(path, PAYLOAD)
        cut = FaultyStorage(FaultPlan(truncate_read_to=10)).read_bytes(path)
        assert cut == PAYLOAD[:10]

    def test_match_limits_blast_radius(self, tmp_path):
        plan = FaultPlan(fail_reads=True, match="victim")
        storage = FaultyStorage(plan)
        safe = str(tmp_path / "safe")
        victim = str(tmp_path / "victim")
        FileStorage().write_atomic(safe, b"ok")
        FileStorage().write_atomic(victim, b"boom")
        assert storage.read_bytes(safe) == b"ok"
        with pytest.raises(InjectedIOError):
            storage.read_bytes(victim)


class TestLocking:
    def test_lock_excludes_second_holder(self, tmp_path):
        """flock is per-file-description: a second descriptor blocks."""
        fcntl = pytest.importorskip("fcntl")
        lock_path = str(tmp_path / "lk")
        storage = FileStorage()
        with storage.lock(lock_path):
            handle = open(lock_path, "a+b")
            try:
                with pytest.raises(OSError):
                    fcntl.flock(
                        handle.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB
                    )
            finally:
                handle.close()
        # Released: acquirable again.
        with storage.lock(lock_path):
            pass
