"""Tests for the compiled-body sidecar (repro.persist.sidecar).

The sidecar persists host-compiled trace factories across processes so
a warm process's first run performs zero host ``compile()`` calls.  It
is a pure host-side accelerator: these tests pin the format, the
wholesale invalidation keying (VM version + host bytecode format), the
database lifecycle (open/merge-write/quarantine/fsck), and — most
importantly — that enabling or damaging it never changes anything the
simulation observes.
"""

import os

import pytest

from repro.persist.database import CacheDatabase, QUARANTINE_DIR
from repro.persist.manager import PersistenceConfig
from repro.persist.sidecar import (
    PREAMBLE,
    SIDECAR_NAME,
    CompiledBodyStore,
    SidecarError,
    host_code_tag,
    sidecar_staleness,
    verify_sidecar,
)
from repro.vm.compile import clear_code_object_cache
from repro.vm.engine import VM_VERSION, VMConfig
from repro.workloads.harness import run_vm

from tests.test_persist_manager import mini_workload, persisted_run


@pytest.fixture
def workload():
    return mini_workload()


@pytest.fixture
def db(tmp_path):
    return CacheDatabase(str(tmp_path / "db"))


def compiled_run(workload, input_name, db, **kwargs):
    return run_vm(
        workload,
        input_name,
        persistence=PersistenceConfig(database=db, **kwargs),
        vm_config=VMConfig(dispatch_mode="compiled"),
    )


def observable(result):
    """What the simulation observes — the sidecar must never move it."""
    return (
        result.output,
        result.exit_status,
        result.instructions,
        vars(result.stats),
    )


def make_store(n=3):
    store = CompiledBodyStore.fresh(VM_VERSION)
    for i in range(n):
        code = compile("x_%d = %d" % (i, i), "<sidecar-test>", "exec")
        store.record_code("digest-%d" % i, code)
    return store


class TestFormat:
    def test_roundtrip(self):
        store = make_store()
        revived = CompiledBodyStore.from_bytes(store.to_bytes())
        assert revived.vm_version == VM_VERSION
        assert revived.host_tag == host_code_tag()
        assert revived.entries == store.entries
        for i in range(3):
            code = revived.lookup_code("digest-%d" % i)
            namespace = {}
            exec(code, namespace)
            assert namespace["x_%d" % i] == i

    def test_empty_roundtrip(self):
        store = CompiledBodyStore.fresh(VM_VERSION)
        revived = CompiledBodyStore.from_bytes(store.to_bytes())
        assert len(revived) == 0
        assert revived.matches_host(VM_VERSION)

    def test_record_is_idempotent(self):
        store = make_store(1)
        before = store.new_entries
        store.record_bytes("digest-0", b"different")
        assert store.new_entries == before
        assert store.entries["digest-0"] != b"different"

    def test_every_single_byte_flip_is_detected(self):
        blob = make_store(2).to_bytes()
        for offset in range(len(blob)):
            corrupt = bytearray(blob)
            corrupt[offset] ^= 0xFF
            with pytest.raises(SidecarError) as excinfo:
                CompiledBodyStore.from_bytes(bytes(corrupt))
            assert excinfo.value.section in (
                "preamble", "header", "directory", "body_pool", "trailer",
            ), offset

    def test_truncation_at_every_length_is_detected(self):
        blob = make_store(2).to_bytes()
        for length in range(len(blob)):
            with pytest.raises(SidecarError):
                CompiledBodyStore.from_bytes(blob[:length])

    def test_damage_attribution_names_the_right_section(self):
        store = make_store(2)
        blob = store.to_bytes()
        # Body-pool bytes start after preamble + header + directory;
        # flipping one must be attributed to the pool (or the trailer,
        # which covers the whole file) — not to the header.
        damage = verify_sidecar(
            blob[:-5] + bytes([blob[-5] ^ 0xFF]) + blob[-4:]
        )
        assert damage
        assert "header" not in damage
        assert verify_sidecar(blob) == {}

    def test_staleness_keys(self):
        blob = make_store(1).to_bytes()
        assert sidecar_staleness(blob, VM_VERSION) is None
        reason = sidecar_staleness(blob, "repro-dbi-99.0.0")
        assert reason is not None and VM_VERSION in reason

    def test_host_tag_mismatch_is_stale(self):
        store = make_store(1)
        store.host_tag = "other-python|marshal0"
        blob = store.to_bytes()
        assert sidecar_staleness(blob, VM_VERSION) is not None
        assert not CompiledBodyStore.from_bytes(blob).matches_host(VM_VERSION)

    def test_unmarshalable_entry_reads_as_miss(self):
        store = make_store(1)
        store.record_bytes("bad", b"\x00not marshal\xff")
        revived = CompiledBodyStore.from_bytes(store.to_bytes())
        assert revived.lookup_code("bad") is None
        assert "bad" not in revived.entries
        assert revived.lookup_code("digest-0") is not None


class TestDatabaseLifecycle:
    def test_open_missing_is_fresh(self, db):
        store, state = db.open_sidecar(VM_VERSION)
        assert state == "fresh"
        assert len(store) == 0

    def test_store_and_reload(self, db):
        db.store_sidecar(make_store(2))
        store, state = db.open_sidecar(VM_VERSION)
        assert state == "loaded"
        assert len(store) == 2

    def test_concurrent_writers_merge(self, db):
        first = CompiledBodyStore.fresh(VM_VERSION)
        first.record_bytes("only-in-first", b"a")
        second = CompiledBodyStore.fresh(VM_VERSION)
        second.record_bytes("only-in-second", b"b")
        db.store_sidecar(first)
        db.store_sidecar(second)
        store, _state = db.open_sidecar(VM_VERSION)
        assert set(store.entries) == {"only-in-first", "only-in-second"}

    def test_stale_version_is_ignored_wholesale(self, db):
        stale = CompiledBodyStore(
            vm_version="repro-dbi-0.0.1", entries={"d": b"x"}
        )
        db.storage.write_atomic(
            os.path.join(db.directory, SIDECAR_NAME), stale.to_bytes()
        )
        store, state = db.open_sidecar(VM_VERSION)
        assert state == "stale-vm"
        assert len(store) == 0  # fresh store under current keys

    def test_corrupt_sidecar_is_quarantined(self, db):
        db.store_sidecar(make_store(1))
        path = os.path.join(db.directory, SIDECAR_NAME)
        blob = bytearray(db.storage.read_bytes(path))
        blob[PREAMBLE.size + 3] ^= 0xFF
        with open(path, "wb") as handle:
            handle.write(bytes(blob))
        store, state = db.open_sidecar(VM_VERSION)
        assert state == "quarantined"
        assert len(store) == 0
        assert not os.path.exists(path)  # moved aside, not deleted
        quarantined = os.listdir(os.path.join(db.directory, QUARANTINE_DIR))
        assert any(SIDECAR_NAME in name for name in quarantined)


class TestFsck:
    def test_healthy_sidecar_is_ok(self, workload, db):
        compiled_run(workload, "a", db)
        report = db.fsck()
        items = {i.filename: i.status for i in report.items}
        assert items[SIDECAR_NAME] == "ok"
        assert report.clean

    def test_corrupt_sidecar_reported_and_quarantined(self, workload, db):
        compiled_run(workload, "a", db)
        path = os.path.join(db.directory, SIDECAR_NAME)
        blob = bytearray(db.storage.read_bytes(path))
        blob[-2] ^= 0xFF
        with open(path, "wb") as handle:
            handle.write(bytes(blob))
        report = db.fsck()
        assert not report.clean
        assert any(
            i.filename == SIDECAR_NAME and i.status == "corrupt"
            for i in report.items
        )
        report = db.fsck(quarantine=True)
        assert SIDECAR_NAME in report.quarantined
        assert not os.path.exists(path)

    def test_stale_sidecar_is_a_note_not_damage(self, workload, db):
        compiled_run(workload, "a", db)
        report = db.fsck(vm_version="repro-dbi-99.0.0")
        assert report.clean  # stale is expected, not damage
        assert any(
            n.filename == SIDECAR_NAME and n.status == "stale-vm"
            for n in report.notes
        )

    def test_orphan_sidecar_is_a_note_not_damage(self, workload, db):
        compiled_run(workload, "a", db)
        db.clear()  # drops every indexed cache, leaves the sidecar
        report = db.fsck()
        assert report.clean
        assert any(
            n.filename == SIDECAR_NAME and n.status == "orphan"
            for n in report.notes
        )

    def test_fsck_cli_prints_notes_and_exits_zero(self, workload, db, capsys):
        from repro.cli import main

        compiled_run(workload, "a", db)
        db.clear()
        exit_code = main(["cache", "fsck", db.directory])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "note:" in out and "orphan" in out


class TestEndToEnd:
    def test_warm_process_skips_host_compile(self, workload, db):
        clear_code_object_cache()  # other tests share the factory memo
        cold = compiled_run(workload, "a", db)
        assert cold.persistence_report["sidecar_written"]
        assert cold.persistence_report["sidecar_host_compiles"] > 0
        # A new process has no in-memory factory memo; the sidecar is
        # the only thing standing between it and a full recompile.
        clear_code_object_cache()
        warm = compiled_run(workload, "a", db)
        assert warm.persistence_report["sidecar_state"] == "loaded"
        assert warm.persistence_report["sidecar_hits"] > 0
        assert warm.persistence_report["sidecar_host_compiles"] == 0
        assert observable(warm) == observable(cold) or (
            # Cold translates, warm revives: stats legitimately differ
            # in translation counters; output and exit must not.
            (warm.output, warm.exit_status)
            == (cold.output, cold.exit_status)
        )

    def test_sidecar_on_off_is_observably_identical(self, workload, tmp_path):
        signatures = {}
        for flag in (True, False):
            db = CacheDatabase(str(tmp_path / ("db-%s" % flag)))
            clear_code_object_cache()
            runs = [
                observable(compiled_run(workload, "a", db, sidecar=flag))
                for _ in range(2)
            ]
            signatures[flag] = runs
        assert signatures[True] == signatures[False]

    def test_vm_version_bump_degrades_to_jit_only_compile(self, workload, db):
        """A sidecar stamped by another VM version is ignored wholesale:
        the run pays host compile() again (JIT-only degradation for the
        sidecar) but must not crash, and trace persistence — keyed
        independently — keeps working."""
        compiled_run(workload, "a", db)
        path = os.path.join(db.directory, SIDECAR_NAME)
        old = CompiledBodyStore.from_bytes(db.storage.read_bytes(path))
        forged = CompiledBodyStore(
            vm_version=VM_VERSION + "-bumped",
            host_tag=old.host_tag,
            entries=dict(old.entries),
        )
        db.storage.write_atomic(path, forged.to_bytes())
        clear_code_object_cache()
        warm = compiled_run(workload, "a", db)
        assert warm.persistence_report["sidecar_state"] == "stale-vm"
        assert warm.persistence_report["sidecar_hits"] == 0
        assert warm.persistence_report["sidecar_host_compiles"] > 0
        # Trace persistence is unaffected by the stale sidecar.
        assert warm.stats.traces_translated == 0
        assert warm.stats.traces_from_persistent > 0
        # The write-back re-stamped the sidecar under current keys.
        healed = CompiledBodyStore.from_bytes(db.storage.read_bytes(path))
        assert healed.matches_host(VM_VERSION)

    def test_interpreted_mode_never_touches_the_sidecar(self, workload, db):
        result = run_vm(
            workload, "a",
            persistence=PersistenceConfig(database=db),
            vm_config=VMConfig(dispatch_mode="interpreted"),
        )
        assert result.persistence_report["sidecar_state"] == "disabled"
        assert not os.path.exists(os.path.join(db.directory, SIDECAR_NAME))

    def test_disabled_config_never_touches_the_sidecar(self, workload, db):
        result = compiled_run(workload, "a", db, sidecar=False)
        assert result.persistence_report["sidecar_state"] == "disabled"
        assert not os.path.exists(os.path.join(db.directory, SIDECAR_NAME))
