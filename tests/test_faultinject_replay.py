"""Fault injection on the PCRL1 replay-log path.

The invariant, mirroring the rest of the persistence layer: **storage
faults on the replay log never affect the live run and never fail
silently**.  A failed write degrades recording to a reported error with
the run's result intact; damaged evidence on the read side fails replay
loudly and is quarantined — moved aside, never deleted.
"""

import os

import pytest

from repro.persist.database import CacheDatabase
from repro.replay.harness import (
    DifferentialReplayHarness,
    record_session,
    replay_session,
)
from repro.replay.log import ReplayLogError, result_snapshot
from repro.testing.faultfs import (
    FaultPlan,
    FaultyStorage,
    SimulatedCrash,
    flip_byte,
    truncate_file,
)
from repro.workloads.harness import run_vm
from repro.workloads.nondet import build_nondet_suite

pytestmark = pytest.mark.faultinject


@pytest.fixture(scope="module")
def suite():
    return build_nondet_suite()


def _db(tmp_path, plan=None):
    return CacheDatabase(
        str(tmp_path / "db"),
        storage=FaultyStorage(plan) if plan is not None else None,
    )


class TestWriteFaults:
    def test_enospc_disables_recording_not_the_run(self, suite, tmp_path):
        """A full disk at log-write time: the run's result is untouched,
        the failure is reported, and no log is published."""
        plan = FaultPlan(fail_write_on_call=1, match="replay")
        db = _db(tmp_path, plan)
        rec = record_session(suite["dice"], "short", database=db,
                             suite="nondet")
        report = rec.result.persistence_report
        assert report["record_state"].startswith("write-error:")
        assert rec.log_name == ""
        assert db.list_replay_logs() == []
        # The live run is byte-for-byte what an unfaulted run produces.
        plain = run_vm(suite["dice"], "short")
        assert result_snapshot(rec.result) == result_snapshot(plain)
        # The in-memory log is still intact and replayable.
        assert replay_session(rec.log, suite["dice"], "short").bit_identical

    def test_every_write_fault_point(self, suite, tmp_path):
        """Sweep the failing chunk across every write the log performs."""
        # Count the writes an unfaulted store performs first.
        probe = _db(tmp_path / "probe", FaultPlan())
        record_session(suite["dice"], "short", database=probe,
                       suite="nondet")
        total_writes = probe.storage.op_counts.get("write", 0)
        assert total_writes > 0
        for nth in range(1, total_writes + 1):
            db = _db(tmp_path / ("w%d" % nth),
                     FaultPlan(fail_write_on_call=nth, match="replay"))
            rec = record_session(suite["dice"], "short", database=db,
                                 suite="nondet")
            state = rec.result.persistence_report["record_state"]
            assert state.startswith("write-error:"), (nth, state)
            assert db.list_replay_logs() == [], nth

    def test_crash_before_rename_leaves_no_visible_log(self, suite, tmp_path):
        """A kill between tmp-write and rename: nothing becomes visible;
        a fresh process finds only a stale tmp (fsck-reported) and can
        record again."""
        plan = FaultPlan(crash_before_rename=True, match="replay")
        db = _db(tmp_path, plan)
        with pytest.raises(SimulatedCrash):
            record_session(suite["dice"], "short", database=db,
                           suite="nondet")
        # Fresh process, plain storage.
        reopened = CacheDatabase(str(tmp_path / "db"))
        assert reopened.list_replay_logs() == []
        report = reopened.fsck()
        assert any(
            item.status == "stale-tmp"
            and item.filename.startswith("replay/")
            for item in report.items
        )
        # Recording still works after the crash.
        rec = record_session(suite["dice"], "short", database=reopened,
                             suite="nondet")
        assert rec.result.persistence_report["record_state"] == "written"


class TestReadFaults:
    def _recorded(self, suite, tmp_path):
        db = CacheDatabase(str(tmp_path / "db"))
        rec = record_session(suite["dice"], "short", database=db,
                             suite="nondet")
        return db, rec.log_name

    def test_bit_flip_fails_loudly_and_quarantines(self, suite, tmp_path):
        db, name = self._recorded(suite, tmp_path)
        path = os.path.join(db.replay_directory(), name)
        flip_byte(path, 40)
        with pytest.raises(ReplayLogError):
            db.load_replay_log(name)
        assert not os.path.exists(path)  # moved, and...
        assert os.path.exists(os.path.join(
            str(tmp_path / "db"), "quarantine", "replay", name
        ))  # ...never deleted.

    def test_every_byte_flip_is_caught(self, suite, tmp_path):
        """CRC coverage: flipping any single byte of the file must be
        detected (sampled across the file for runtime)."""
        db, name = self._recorded(suite, tmp_path)
        path = os.path.join(db.replay_directory(), name)
        blob = open(path, "rb").read()
        for offset in range(0, len(blob), max(1, len(blob) // 40)):
            flip_byte(path, offset)
            from repro.replay.log import verify_replay_log

            damaged = open(path, "rb").read()
            assert verify_replay_log(damaged), offset
            flip_byte(path, offset)  # restore

    def test_truncation_fails_loudly(self, suite, tmp_path):
        db, name = self._recorded(suite, tmp_path)
        path = os.path.join(db.replay_directory(), name)
        size = os.path.getsize(path)
        truncate_file(path, size // 2)
        with pytest.raises(ReplayLogError):
            db.load_replay_log(name)

    def test_read_eio_propagates(self, suite, tmp_path):
        db, name = self._recorded(suite, tmp_path)
        faulted = CacheDatabase(
            str(tmp_path / "db"),
            storage=FaultyStorage(FaultPlan(fail_reads=True, match="replay")),
        )
        with pytest.raises(OSError):
            faulted.load_replay_log(name)

    def test_sweep_survives_damaged_member(self, suite, tmp_path):
        """One damaged log in the database: its sweep entry is an error,
        every healthy log still replays to a verdict."""
        db = CacheDatabase(str(tmp_path / "db"))
        record_session(suite["dice"], "short", database=db, suite="nondet")
        bad = record_session(suite["relay"], "short", database=db,
                             suite="nondet")
        flip_byte(os.path.join(db.replay_directory(), bad.log_name), 33)
        report = DifferentialReplayHarness(db).replay_all(
            modes=("compiled",)
        )
        by_status = {}
        for outcome in report.outcomes:
            by_status.setdefault(outcome.status, []).append(outcome.log_name)
        assert not report.clean
        assert bad.log_name in by_status["error"]
        assert len(by_status["match"]) == 1
