"""The wall-clock harness's result file accumulates across invocations.

``run_wallclock`` records a *trajectory*: each family's numbers stay in
``BENCH_wallclock.json`` until that family is re-measured.  A selective
``--family`` invocation used to rewrite the file wholesale, silently
discarding every family measured earlier — these tests pin the merge
semantics (preserve untouched families, refresh re-run ones, recompute
the gate over the merged set, degrade to a plain write on a missing or
corrupt file).
"""

import json

import pytest

from repro.bench import (
    GATE_WORKLOAD,
    _merge_existing,
    run_wallclock,
)


def _fake_results(**families):
    return {
        "host": {"python": "x", "platform": "y"},
        "config": {"warmup_reps": 0, "timed_reps": 1},
        "workloads": dict(families),
    }


class TestMergeExisting:
    def test_missing_file_degrades_to_plain_write(self, tmp_path):
        results = _fake_results(fam_a={"speedup_x": 1.0})
        merged = _merge_existing(str(tmp_path / "absent.json"), results)
        assert merged == results

    def test_corrupt_file_degrades_to_plain_write(self, tmp_path):
        path = tmp_path / "bench.json"
        path.write_text("{not json")
        results = _fake_results(fam_a={"speedup_x": 1.0})
        assert _merge_existing(str(path), results) == results

    def test_untouched_families_preserved(self, tmp_path):
        path = tmp_path / "bench.json"
        path.write_text(json.dumps(_fake_results(
            fam_old={"speedup_x": 3.0}, fam_both={"speedup_x": 1.0},
        )))
        merged = _merge_existing(str(path), _fake_results(
            fam_both={"speedup_x": 2.0}, fam_new={"speedup_x": 9.0},
        ))
        workloads = merged["workloads"]
        assert workloads["fam_old"] == {"speedup_x": 3.0}   # preserved
        assert workloads["fam_both"] == {"speedup_x": 2.0}  # refreshed
        assert workloads["fam_new"] == {"speedup_x": 9.0}   # added

    def test_host_and_config_describe_current_invocation(self, tmp_path):
        path = tmp_path / "bench.json"
        stale = _fake_results(fam_old={})
        stale["host"] = {"python": "ancient", "platform": "other-box"}
        path.write_text(json.dumps(stale))
        merged = _merge_existing(str(path), _fake_results(fam_new={}))
        assert merged["host"] == {"python": "x", "platform": "y"}


class TestRunWallclockMerge:
    """End-to-end: two invocations into one file, nothing lost."""

    @pytest.fixture(scope="class")
    def merged_file(self, tmp_path_factory):
        tmp_path = tmp_path_factory.mktemp("bench-merge")
        out_path = str(tmp_path / "bench.json")
        # First invocation stands in for an earlier full run that
        # measured the gate family (fabricated numbers keep this fast).
        seed = {
            "host": {"python": "old"},
            "config": {"warmup_reps": 9, "timed_reps": 9},
            "workloads": {
                GATE_WORKLOAD: {
                    "speedup_x": 2.5,
                    "identical_results": True,
                    "interpreted_s": 0.5,
                    "compiled_s": 0.2,
                },
            },
            "gate": {"workload": GATE_WORKLOAD, "threshold_x": 1.5},
        }
        with open(out_path, "w") as handle:
            json.dump(seed, handle)
        results = run_wallclock(
            scratch_dir=str(tmp_path / "scratch"),
            warmup=0,
            reps=1,
            families=("indirect_heavy",),
            out_path=out_path,
        )
        with open(out_path) as handle:
            return results, json.load(handle)

    def test_selective_rerun_preserves_other_families(self, merged_file):
        results, on_disk = merged_file
        assert GATE_WORKLOAD in on_disk["workloads"]
        assert "indirect_heavy" in on_disk["workloads"]
        assert on_disk["workloads"][GATE_WORKLOAD]["speedup_x"] == 2.5

    def test_returned_results_match_file(self, merged_file):
        results, on_disk = merged_file
        assert results == on_disk

    def test_gate_recomputed_over_merged_set(self, merged_file):
        """The gate family wasn't re-run, but its preserved numbers
        still drive the recorded gate verdict."""
        _results, on_disk = merged_file
        gate = on_disk["gate"]
        assert gate["workload"] == GATE_WORKLOAD
        assert gate["speedup_x"] == 2.5
        assert gate["pass"] is True

    def test_rerun_family_carries_ic_counters(self, merged_file):
        _results, on_disk = merged_file
        family = on_disk["workloads"]["indirect_heavy"]
        assert family["identical_results"] is True
        per = family["ic_per_corpus"]
        assert per["alternating_pair"]["hit_rate"] > 0.8
        assert per["rotating_3"]["hit_rate"] > 0.8
