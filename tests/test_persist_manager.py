"""End-to-end tests of the persistent cache manager through the engine.

Each scenario here is one of the paper's §3.2 behaviors: same-input reuse,
key validation and invalidation (rebuilt binaries, relocated libraries,
changed VM/tool), accumulation, write-back on flush, inter-application
reuse, and the position-independent-translation extension.
"""

import pytest

from repro.loader.layout import FixedLayout, PerturbedLayout
from repro.loader.linker import ImageStore
from repro.machine.costs import DEFAULT_COST_MODEL
from repro.persist.database import CacheDatabase
from repro.persist.manager import PersistenceConfig
from repro.tools import BBCountTool
from repro.vm.engine import VMConfig
from repro.workloads.builder import AppBuilder, FeatureBlock, InputSpec
from repro.workloads.corpus import LibrarySpec, build_library
from repro.workloads.harness import Workload, run_vm


def mini_workload(mtime=1, lib_mtime=1, app_path="mini"):
    """A small app with two selectable features and one shared library."""
    lib_spec = LibrarySpec("libmini.so", n_funcs=6, func_size=10, seed=5,
                           mtime=lib_mtime)
    lib = build_library(lib_spec)
    app = AppBuilder(app_path, seed=9, needed=["libmini.so"], mtime=mtime)
    app.add_init_block("boot", size=30, subfunctions=1,
                       library_calls=[lib_spec.init_symbol])
    app.add_feature(FeatureBlock(index=0, size=40, subfunctions=1,
                                 library_calls=("libmini_fn0", "libmini_fn1")))
    app.add_feature(FeatureBlock(index=1, size=40, subfunctions=1,
                                 library_calls=("libmini_fn2",)))
    app.set_hot_kernel(size=10, helpers=1, helper_size=6)
    image = app.build()
    inputs = {
        "a": InputSpec("a", features=frozenset({0}), hot_iterations=30),
        "b": InputSpec("b", features=frozenset({1}), hot_iterations=30),
        "ab": InputSpec("ab", features=frozenset({0, 1}), hot_iterations=30),
    }
    store = ImageStore({lib.path: lib})
    return Workload(name="mini", image=image, store=store, inputs=inputs)


@pytest.fixture
def workload():
    return mini_workload()


@pytest.fixture
def db(tmp_path):
    return CacheDatabase(str(tmp_path / "db"))


def persisted_run(workload, input_name, db, **config_kwargs):
    return run_vm(
        workload,
        input_name,
        persistence=PersistenceConfig(database=db, **config_kwargs),
        layout=config_kwargs.pop("_layout", None),
    )


class TestSameInput:
    def test_second_run_translates_nothing(self, workload, db):
        first = persisted_run(workload, "a", db)
        second = persisted_run(workload, "a", db)
        assert first.stats.traces_translated > 0
        assert second.stats.traces_translated == 0
        assert second.stats.traces_from_persistent == first.stats.traces_translated
        assert second.exit_status == first.exit_status

    def test_second_run_cheaper(self, workload, db):
        first = persisted_run(workload, "a", db)
        second = persisted_run(workload, "a", db)
        assert second.stats.total_cycles < first.stats.total_cycles
        assert second.stats.translation_cycles == 0

    def test_first_run_reports_miss(self, workload, db):
        report = persisted_run(workload, "a", db).persistence_report
        assert not report["cache_found"]
        assert report["written"]

    def test_architectural_equivalence_preserved(self, workload, db):
        baseline = run_vm(workload, "a")
        persisted_run(workload, "a", db)
        warm = persisted_run(workload, "a", db)
        assert warm.instructions == baseline.instructions
        assert warm.output == baseline.output


class TestCrossInputAccumulation:
    def test_cross_input_partial_reuse(self, workload, db):
        persisted_run(workload, "a", db)
        cross = persisted_run(workload, "b", db)
        # Input b shares base + library init + hot kernel with a, but has
        # its own feature code: some reuse, some translation.
        assert cross.stats.traces_from_persistent > 0
        assert cross.stats.traces_translated > 0

    def test_accumulation_completes_footprint(self, workload, db):
        persisted_run(workload, "a", db)
        persisted_run(workload, "b", db)  # accumulates b's new traces
        third = persisted_run(workload, "ab", db)
        assert third.stats.traces_translated == 0

    def test_accumulated_cache_grows(self, workload, db):
        first = persisted_run(workload, "a", db).persistence_report
        second = persisted_run(workload, "b", db).persistence_report
        assert second["total_traces_after_write"] > first["total_traces_after_write"]

    def test_no_accumulate_rewrites_from_cache_contents(self, workload, db):
        """accumulate=False persists exactly the intra-execution cache.

        Preloaded-and-valid traces are resident, so they survive; the
        rewrite is from the code cache, not a merge with the old file.
        """
        first = persisted_run(workload, "a", db).persistence_report
        second = persisted_run(workload, "b", db, accumulate=False)
        report = second.persistence_report
        assert report["written"]
        expected = (
            second.stats.traces_from_persistent + second.stats.traces_translated
        )
        assert report["total_traces_after_write"] == expected
        assert report["total_traces_after_write"] >= first["total_traces_after_write"]


class TestInvalidation:
    def test_rebuilt_binary_invalidates(self, db):
        old = mini_workload(mtime=1)
        persisted_run(old, "a", db)
        rebuilt = mini_workload(mtime=2)
        run = persisted_run(rebuilt, "a", db)
        # The app key hash includes mtime: exact lookup misses entirely.
        assert not run.persistence_report["cache_found"]
        assert run.stats.traces_from_persistent == 0

    def test_rebuilt_library_invalidates_its_traces(self, db):
        old = mini_workload(lib_mtime=1)
        first = persisted_run(old, "a", db)
        rebuilt = mini_workload(lib_mtime=2)
        run = persisted_run(rebuilt, "a", db)
        report = run.persistence_report
        assert report["cache_found"]  # app key unchanged
        assert report["invalidated"] > 0
        assert run.stats.traces_from_persistent > 0  # app traces survive
        assert run.stats.traces_translated > 0  # lib re-translated

    def test_relocated_library_invalidates_without_pic(self, workload, db):
        run_vm(workload, "a", persistence=PersistenceConfig(database=db),
               layout=FixedLayout())
        moved = run_vm(
            workload, "a",
            persistence=PersistenceConfig(database=db),
            layout=PerturbedLayout(5),
        )
        report = moved.persistence_report
        assert report["invalidated"] > 0
        assert report["rebased"] == 0
        assert moved.stats.traces_translated > 0

    def test_relocated_library_rebased_with_pic(self, workload, db):
        run_vm(workload, "a",
               persistence=PersistenceConfig(database=db, relocatable=True),
               layout=FixedLayout())
        moved = run_vm(
            workload, "a",
            persistence=PersistenceConfig(database=db, relocatable=True),
            layout=PerturbedLayout(5),
        )
        report = moved.persistence_report
        assert report["rebased"] > 0
        assert moved.stats.traces_translated == 0
        assert moved.exit_status == 0


class TestVersioning:
    def test_tool_mismatch_rejects_cache(self, workload, db):
        persisted_run(workload, "a", db)
        instrumented = run_vm(
            workload, "a",
            tool=BBCountTool(),
            persistence=PersistenceConfig(database=db),
        )
        # Different tool key: exact lookup misses (filed under another
        # tool digest), so everything is retranslated.
        assert instrumented.stats.traces_from_persistent == 0
        assert instrumented.stats.traces_translated > 0

    def test_vm_version_mismatch(self, workload, db):
        persisted_run(workload, "a", db)
        upgraded = run_vm(
            workload, "a",
            persistence=PersistenceConfig(database=db),
            vm_config=VMConfig(vm_version="repro-dbi-2.0.0"),
        )
        assert upgraded.stats.traces_from_persistent == 0

    def test_prime_with_wrong_tool_flagged(self, workload, db):
        persisted_run(workload, "a", db)
        donor = db.entries()[0]
        from repro.persist.cachefile import PersistentCache
        import os
        cache = PersistentCache.load(os.path.join(db.directory, donor.filename))
        primed = run_vm(
            workload, "a",
            tool=BBCountTool(),
            persistence=PersistenceConfig(prime_with=cache, readonly=True,
                                          database=db),
        )
        assert primed.persistence_report["version_conflict"]
        assert primed.stats.traces_from_persistent == 0


class TestReadonlyAndFlush:
    def test_readonly_never_writes(self, workload, db):
        baseline = persisted_run(workload, "a", db)
        entries_before = [e.filename for e in db.entries()]
        run = persisted_run(workload, "b", db, readonly=True)
        assert not run.persistence_report["written"]
        assert [e.filename for e in db.entries()] == entries_before
        # And the b-only traces were NOT accumulated:
        again = persisted_run(workload, "b", db, readonly=True)
        assert again.stats.traces_translated > 0

    def test_flush_triggers_writeback(self, workload, db):
        config = VMConfig(code_pool_bytes=2000, data_pool_bytes=7000)
        first = run_vm(workload, "a",
                       persistence=PersistenceConfig(database=db),
                       vm_config=config)
        assert first.stats.cache_flushes > 0
        # Despite the flush, the union of translations was persisted.
        second = persisted_run(workload, "a", db)
        assert second.stats.traces_translated == 0


class TestInterApplication:
    def _two_apps(self):
        donor = mini_workload(app_path="appdonor")
        target = mini_workload(app_path="apptarget")
        return donor, target

    def test_library_translations_cross_apps(self, db):
        donor, target = self._two_apps()
        persisted_run(donor, "a", db)
        run = run_vm(
            target, "a",
            persistence=PersistenceConfig(database=db, inter_application=True,
                                          readonly=True),
        )
        report = run.persistence_report
        assert report["cache_found"]
        assert report["source_app"] == "appdonor"
        assert run.stats.traces_from_persistent > 0  # shared library code
        assert run.stats.traces_translated > 0  # its own app code

    def test_donor_app_traces_not_preloaded(self, db):
        donor, target = self._two_apps()
        persisted_run(donor, "a", db)
        run = run_vm(
            target, "a",
            persistence=PersistenceConfig(database=db, inter_application=True,
                                          readonly=True),
        )
        # appdonor's own image is not loaded in apptarget's process.
        assert run.persistence_report["retained_unloaded"] > 0

    def test_exact_mode_does_not_cross_apps(self, db):
        donor, target = self._two_apps()
        persisted_run(donor, "a", db)
        run = persisted_run(target, "a", db)
        assert not run.persistence_report["cache_found"]

    def test_faster_than_cold_start(self, db):
        donor, target = self._two_apps()
        persisted_run(donor, "a", db)
        cold = run_vm(target, "a")
        warm = run_vm(
            target, "a",
            persistence=PersistenceConfig(database=db, inter_application=True,
                                          readonly=True),
        )
        assert warm.stats.total_cycles < cold.stats.total_cycles


class TestCostCharging:
    def test_persistence_cycles_charged_on_reuse(self, workload, db):
        persisted_run(workload, "a", db)
        warm = persisted_run(workload, "a", db)
        stats = warm.stats
        assert stats.persistence_cycles > 0
        cost = DEFAULT_COST_MODEL
        # Demand loads happen once per executed persisted trace.
        executed = stats.traces_from_persistent
        assert stats.persistence_cycles >= cost.pcache_open
        assert stats.persistence_cycles <= (
            cost.pcache_open
            + executed * (cost.pcache_trace_load + cost.pcache_meta_load)
            + 10 * cost.pcache_key_check
            + cost.pcache_write_fixed
            + executed * cost.pcache_write_per_trace
            + 1
        )

    def test_key_checks_counted_per_load_event(self, workload, db):
        persisted_run(workload, "a", db)
        warm = persisted_run(workload, "a", db)
        # app + libmini.so = 2 load events.
        assert warm.persistence_report["key_checks"] == 2
