"""Differential tests for the anti-instrumentation workload family.

Three-way differentials (native oracle vs. VM interpreted vs. VM
compiled tiers) over :mod:`repro.workloads.adversarial`, plus targeted
images for the attack shapes the engine's caches are most exposed to:
SMC on a target cached in an indirect-branch inline cache, SMC on a
member of a fused superblock region, self-checksumming across a
code-cache flush, and SMC against module traces revived by
module-aware retention.  Also home to the lagging-native-clock
regression (satellite bugfix, PR 10).
"""

import struct

import pytest

from repro.binfmt.image import ImageBuilder
from repro.isa import instructions as ins
from repro.isa import registers as regs
from repro.loader.linker import load_process
from repro.machine.cpu import DEFAULT_COST_MODEL, Machine, run_native
from repro.machine.syscalls import SYS_CLOCK, SYS_EXIT, SYS_WRITE
from repro.vm.engine import Engine, VMConfig
from repro.workloads.adversarial import (
    CHURN_WORKLOADS,
    _materialize,
    _word_of,
    build_adversarial_suite,
)
from repro.workloads.builder import FunctionCode
from repro.workloads.harness import run_native as run_workload_native
from repro.workloads.harness import run_vm

INTERPRETED = VMConfig(dispatch_mode="interpreted")
COMPILED = VMConfig(dispatch_mode="compiled", trace_linking=False)
LINKED = VMConfig(dispatch_mode="compiled", trace_linking=True)


def _words(output: bytes):
    return [
        struct.unpack("<q", output[i:i + 8])[0]
        for i in range(0, len(output), 8)
    ]


class TestSuiteDifferential:
    """Every suite member: native vs. interpreted vs. compiled tiers."""

    @pytest.fixture(scope="class")
    def suite(self):
        return build_adversarial_suite()

    @pytest.mark.parametrize(
        "name",
        ["checksum", "churn_hot", "churn_region", "churn_boundary",
         "dlopen_smc"],
    )
    def test_matches_native(self, suite, name):
        workload = suite[name]
        native = run_workload_native(workload, "run")
        for config in (INTERPRETED, COMPILED, LINKED):
            result = run_vm(workload, "run", vm_config=config)
            assert result.output == native.output, name
            assert result.exit_status == native.exit_status, name

    @pytest.mark.parametrize("name", sorted(CHURN_WORKLOADS))
    def test_churners_trigger_invalidation(self, suite, name):
        result = run_vm(suite[name], "run", vm_config=COMPILED)
        assert result.stats.smc_invalidations > 0, name

    def test_timer_identical_across_tiers(self, suite):
        """The clock probe's raw deltas (and therefore its branch
        decisions) must be bit-identical across every VM tier — a
        dispatch tier that shifted mid-run clocks would hand the
        program a side channel distinguishing the tiers."""
        oracle = run_vm(suite["timer"], "run", vm_config=INTERPRETED)
        for config in (COMPILED, LINKED):
            result = run_vm(suite["timer"], "run", vm_config=config)
            assert result.output == oracle.output
            assert result.exit_status == oracle.exit_status
            assert vars(result.stats) == vars(oracle.stats)
        deltas = _words(oracle.output)
        assert all(delta > 0 for delta in deltas[:2])


def build_ic_smc_image():
    """SMC against a target cached in an indirect inline cache.

    A ``callr`` site alternates between two targets long enough for
    the compiled tier's IC chain to hold both, then main rewrites
    ``target_a[0]`` and keeps calling: the chain entry for the old
    trace must be dropped (generation bump), never chained to.

    Per iteration pre-patch: t8 = 11 then 22 (s0 += 33); post-patch:
    77 then 22 (s0 += 99).
    """
    builder = ImageBuilder("ic-smc-app")
    builder.add_function("target_a", [ins.movi(regs.T0 + 8, 11), ins.ret()])
    builder.add_function("target_b", [ins.movi(regs.T0 + 8, 22), ins.ret()])
    main = FunctionCode()
    main.symbol_refs.append((len(main.code), "target_a"))
    main.emit(ins.movi(regs.T0 + 1, 0))
    main.symbol_refs.append((len(main.code), "target_b"))
    main.emit(ins.movi(regs.T0 + 2, 0))
    main.emit(ins.movi(regs.S0, 0))
    main.emit(ins.movi(regs.T0 + 7, 12))

    def call_loop():
        main.emit(ins.movi(regs.T0 + 3, 0))
        head = len(main.code)
        main.emit(ins.callr(regs.T0 + 1))
        main.emit(ins.add(regs.S0, regs.S0, regs.T0 + 8))
        main.emit(ins.callr(regs.T0 + 2))
        main.emit(ins.add(regs.S0, regs.S0, regs.T0 + 8))
        main.emit(ins.addi(regs.T0 + 3, regs.T0 + 3, 1))
        here = len(main.code)
        main.emit(ins.blt(regs.T0 + 3, regs.T0 + 7, (head - (here + 1)) * 8))

    call_loop()
    _materialize(main, regs.T0 + 6, _word_of(ins.movi(regs.T0 + 8, 77)))
    main.emit(ins.st(regs.T0 + 1, regs.T0 + 6, 0))
    call_loop()
    main.emit(ins.st(regs.SP, regs.S0, 0))
    main.emit(ins.movi(regs.A0, 8))
    main.emit(ins.or_(regs.A1, regs.SP, regs.ZERO))
    main.emit(ins.movi(regs.RV, SYS_WRITE))
    main.emit(ins.syscall())
    main.emit(ins.andi(regs.A0, regs.S0, 127))
    main.emit(ins.movi(regs.RV, SYS_EXIT))
    main.emit(ins.syscall())
    builder.add_function("main", main.code, symbol_refs=main.symbol_refs)
    builder.set_entry("main")
    return builder.build()


class TestSMCOnICTarget:
    EXPECTED = 12 * 33 + 12 * 99  # 1584

    def test_three_way(self):
        image = build_ic_smc_image()
        native = run_native(Machine(load_process(image)))
        assert _words(native.output) == [self.EXPECTED]
        for config in (INTERPRETED, COMPILED, LINKED):
            result = Engine(config=config).run(load_process(image))
            assert result.output == native.output
            assert result.exit_status == native.exit_status

    def test_ic_engaged_then_reset(self):
        result = Engine(config=COMPILED).run(
            load_process(build_ic_smc_image())
        )
        # The chain served hits before the patch, and the SMC store
        # was detected.  (No ``resets`` assertion: the store lands on
        # the same 512-byte page as the caller, so the caller's trace —
        # and its chain — is evicted wholesale and rebuilt empty
        # rather than discarded on a generation check.)
        assert result.ic_stats.hits > 0
        assert result.stats.smc_invalidations > 0


class TestSMCOnRegionMember:
    def test_three_way_with_fusion(self):
        workload = build_adversarial_suite()["churn_region"]
        native = run_workload_native(workload, "run")
        linked = run_vm(workload, "run", vm_config=LINKED)
        assert linked.output == native.output
        assert linked.exit_status == native.exit_status
        # The attack only means something if the chain actually fused
        # before the patch landed on a member.
        assert linked.link_stats.regions_fused > 0
        assert linked.link_stats.region_invalidations > 0
        assert linked.stats.smc_invalidations > 0


class TestChecksumAfterFlush:
    def test_three_way_across_flush(self):
        """Self-checksums must read identical code bytes even after the
        code cache flushed and every trace was retranslated."""
        workload = build_adversarial_suite()["checksum"]
        native = run_workload_native(workload, "run")
        for base in (INTERPRETED, COMPILED, LINKED):
            config = VMConfig(
                dispatch_mode=base.dispatch_mode,
                trace_linking=base.trace_linking,
                code_pool_bytes=2048,
                data_pool_bytes=2048,
            )
            result = run_vm(workload, "run", vm_config=config)
            assert result.stats.cache_flushes > 0
            assert result.output == native.output
            assert result.exit_status == native.exit_status


class TestSMCOnRevivedModuleTraces:
    def test_revival_keeps_detection_armed(self):
        """Regression: traces revived by module-aware retention (and by
        persistence preload — both go through ``CodeCache.insert``)
        must re-arm the SMC detector for their pages.  dlclose discards
        the page tracking; before the fix, a reload served revived
        traces whose pages were no longer watched, so later stores
        into the module went undetected and the stale body kept
        running."""
        workload = build_adversarial_suite()["dlopen_smc"]
        native = run_workload_native(workload, "run")
        result = run_vm(workload, "run", vm_config=COMPILED)
        assert result.output == native.output
        assert result.exit_status == native.exit_status
        # One invalidation per iteration: every store was seen, even
        # the ones landing on revived traces.
        iterations = len(native.output) // 8
        assert result.stats.smc_invalidations == iterations
        assert result.stats.module_traces_retained > 0


_SPIN_TRIPS = 64
_SPIN_BODY_INSTS = 3


def build_clock_probe_image():
    """Three ``SYS_CLOCK`` reads separated by fixed spin loops, each
    stamp written to output."""
    builder = ImageBuilder("clock-probe-app")
    main = FunctionCode()

    def clock_and_write():
        main.emit(ins.movi(regs.RV, SYS_CLOCK))
        main.emit(ins.syscall())
        main.emit(ins.st(regs.SP, regs.RV, 0))
        main.emit(ins.movi(regs.A0, 8))
        main.emit(ins.or_(regs.A1, regs.SP, regs.ZERO))
        main.emit(ins.movi(regs.RV, SYS_WRITE))
        main.emit(ins.syscall())

    def spin():
        main.emit(ins.movi(regs.T0 + 2, 0))
        main.emit(ins.movi(regs.T0 + 7, _SPIN_TRIPS))
        head = len(main.code)
        main.emit(ins.addi(regs.T0 + 3, regs.T0 + 3, 5))
        main.emit(ins.addi(regs.T0 + 2, regs.T0 + 2, 1))
        here = len(main.code)
        main.emit(ins.blt(regs.T0 + 2, regs.T0 + 7, (head - (here + 1)) * 8))

    clock_and_write()
    spin()
    clock_and_write()
    spin()
    clock_and_write()
    main.emit(ins.movi(regs.A0, 0))
    main.emit(ins.movi(regs.RV, SYS_EXIT))
    main.emit(ins.syscall())
    builder.add_function("main", main.code)
    builder.set_entry("main")
    return builder.build()


class TestNativeClockAdvances:
    """Regression: mid-run native ``SYS_CLOCK`` must include
    instructions retired so far (satellite bugfix, PR 10) — before the
    fix it returned only accumulated syscall cost, reading ~0 across a
    million-instruction spin."""

    def test_monotone_and_tracks_instructions(self):
        result = run_native(Machine(load_process(build_clock_probe_image())))
        first, second, third = _words(result.output)
        assert first < second < third
        spin_cost = (
            _SPIN_TRIPS * _SPIN_BODY_INSTS * DEFAULT_COST_MODEL.native_inst
        )
        # Each gap covers at least its spin loop's retired instructions.
        assert second - first >= spin_cost
        assert third - second >= spin_cost
        # Identical phases cost identical cycles.
        assert second - first == third - second

    def test_final_cycles_formula_unchanged(self):
        """The fix changes what mid-run probes see, not the final
        accounting: total cycles are still exactly retired instructions
        plus per-syscall cost."""
        result = run_native(Machine(load_process(build_clock_probe_image())))
        syscalls = 7  # 3 clock + 3 write + 1 exit
        expected = (
            result.instructions * DEFAULT_COST_MODEL.native_inst
            + syscalls * DEFAULT_COST_MODEL.native_syscall
        )
        assert result.cycles == expected
