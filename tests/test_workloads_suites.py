"""Tests for the SPEC2K / GUI / Oracle workload suites.

Suite-scale runs live in benchmarks/; these tests check construction,
correct execution, and the *structural* properties the experiments rely
on (coverage bands, library fractions, dependency sharing) on the
fastest-to-run configurations.
"""

import pytest

from repro.analysis.coverage import (
    average_cross_coverage,
    coverage_fraction,
    library_fraction,
)
from repro.workloads.corpus import LibrarySpec, build_library, default_gui_corpus
from repro.workloads.gui import (
    COMMON_PREFIX,
    GUI_APPS,
    build_gui_suite,
    common_library_matrix,
)
from repro.workloads.harness import run_native, run_vm
from repro.workloads.oracle import (
    PHASES,
    build_oracle,
    expected_coverage_matrix,
    phase_features,
)
from repro.workloads.spec2k import (
    SPEC2K_INT,
    TRAIN_DIVISOR,
    build_benchmark,
    build_suite,
)


class TestCorpus:
    def test_library_builds_and_exports(self):
        spec = LibrarySpec("libfoo.so", n_funcs=8, func_size=12, seed=1)
        image = build_library(spec)
        exported = set(image.global_symbols())
        assert set(spec.function_names()) <= exported
        assert spec.init_symbol in exported

    def test_library_deterministic(self):
        spec = LibrarySpec("libfoo.so", n_funcs=8, func_size=12, seed=1)
        assert build_library(spec).content_digest() == build_library(spec).content_digest()

    def test_default_corpus_complete(self):
        corpus = default_gui_corpus()
        for app in GUI_APPS.values():
            for dep in app.needed:
                assert dep in corpus, dep


class TestSpecSuite:
    @pytest.fixture(scope="class")
    def small_benchmarks(self):
        return build_suite(("164.gzip", "253.perlbmk"))

    def test_eon_omitted(self):
        assert "252.eon" not in SPEC2K_INT
        assert len(SPEC2K_INT) == 11

    def test_train_is_shorter(self, small_benchmarks):
        wl = small_benchmarks["164.gzip"]
        ref = wl.input("ref-1")
        train = wl.input("train")
        assert train.hot_iterations == ref.hot_iterations // TRAIN_DIVISOR

    def test_runs_cleanly(self, small_benchmarks):
        for wl in small_benchmarks.values():
            result = run_native(wl, "train")
            assert result.exit_status == 0

    def test_gzip_inputs_identical_coverage(self, small_benchmarks):
        wl = small_benchmarks["164.gzip"]
        feats = [wl.input("ref-%d" % i).features for i in (1, 2, 3)]
        assert feats[0] == feats[1] == feats[2]

    def test_perlbmk_inputs_differ(self, small_benchmarks):
        wl = small_benchmarks["253.perlbmk"]
        assert wl.input("ref-1").features != wl.input("ref-2").features

    def test_gcc_has_largest_footprint(self):
        gcc = SPEC2K_INT["176.gcc"]
        gcc_static = gcc.n_features * gcc.feature_size
        for name, params in SPEC2K_INT.items():
            if name == "176.gcc":
                continue
            assert params.n_features * params.feature_size < gcc_static

    def test_gcc_coverage_band(self):
        """Table 3(a): gcc cross-input coverage between ~80 and <100%."""
        wl = build_benchmark(SPEC2K_INT["176.gcc"])
        footprints = {}
        for index in range(1, 6):
            name = "ref-%d" % index
            footprints[name] = run_vm(wl, name).stats.trace_identities
        for a in footprints:
            for b in footprints:
                cov = coverage_fraction(footprints[a], footprints[b])
                if a == b:
                    assert cov == 1.0
                else:
                    assert 0.75 <= cov < 1.0, (a, b, cov)


class TestGuiSuite:
    @pytest.fixture(scope="class")
    def suite(self):
        return build_gui_suite()

    def test_five_applications(self, suite):
        apps, _store = suite
        assert set(apps) == {"gftp", "gvim", "dia", "file-roller", "gqview"}

    def test_common_prefix_shared(self, suite):
        apps, _store = suite
        for app in apps.values():
            assert tuple(app.image.needed[: len(COMMON_PREFIX)]) == COMMON_PREFIX

    def test_startup_runs_cleanly(self, suite):
        apps, _store = suite
        for app in apps.values():
            assert run_native(app, "startup").exit_status == 0

    def test_common_library_matrix_table2(self, suite):
        apps, _store = suite
        matrix = common_library_matrix(apps)
        for a in matrix:
            assert matrix[a][a] == len(apps[a].image.needed)
            for b in matrix:
                # Table 2: every pair shares at least the toolkit prefix.
                assert matrix[a][b] >= len(COMMON_PREFIX)
                assert matrix[a][b] == matrix[b][a]

    def test_library_dominates_startup_footprint(self, suite):
        """Table 1: 75%+ of startup code is library code."""
        apps, _store = suite
        for name, app in apps.items():
            identities = run_vm(app, "startup").stats.trace_identities
            fraction = library_fraction(identities)
            assert fraction > 0.7, (name, fraction)
            if name != "gvim":
                assert fraction > 0.8, (name, fraction)

    def test_gvim_has_most_app_code(self, suite):
        apps, _store = suite
        fractions = {
            name: library_fraction(run_vm(app, "startup").stats.trace_identities)
            for name, app in apps.items()
        }
        assert min(fractions, key=fractions.get) == "gvim"

    def test_file_roller_emulates_signals(self, suite):
        apps, _store = suite
        result = run_vm(apps["file-roller"], "startup")
        assert result.stats.signals_emulated > 0
        others = run_vm(apps["gftp"], "startup")
        assert others.stats.signals_emulated == 0


class TestOracle:
    @pytest.fixture(scope="class")
    def oracle(self):
        return build_oracle()

    def test_five_phases(self, oracle):
        assert set(oracle.inputs) == set(PHASES)

    def test_phases_run_cleanly(self, oracle):
        for phase in PHASES:
            assert run_native(oracle, phase).exit_status == 0

    def test_block_model_matches_measurement(self, oracle):
        """The predicted coverage matrix must match measured coverage."""
        predicted = expected_coverage_matrix()
        footprints = {
            phase: run_vm(oracle, phase).stats.trace_identities
            for phase in PHASES
        }
        for a in PHASES:
            for b in PHASES:
                measured = coverage_fraction(footprints[a], footprints[b])
                assert measured == pytest.approx(predicted[a][b], abs=0.12), (
                    a, b, measured, predicted[a][b],
                )

    def test_table3b_shape(self, oracle):
        """Start isolated; Open dominant; Close mostly covered by Open."""
        footprints = {
            phase: run_vm(oracle, phase).stats.trace_identities
            for phase in PHASES
        }
        cov = lambda a, b: coverage_fraction(footprints[a], footprints[b])
        # Start's code is poorly covered by every other phase.
        for other in ("Mount", "Open", "Work", "Close"):
            assert cov(other, "Start") < 0.5
        # Open covers Close best of all phases (paper: 91%).
        assert cov("Close", "Open") > 0.75
        assert cov("Close", "Open") == max(
            cov("Close", other) for other in PHASES if other != "Close"
        )

    def test_average_coverage_low(self, oracle):
        """Figure 4: Oracle has the lowest inter-execution coverage."""
        footprints = {
            phase: run_vm(oracle, phase).stats.trace_identities
            for phase in PHASES
        }
        average = average_cross_coverage(footprints)
        assert 0.3 < average < 0.7

    def test_syscall_heavy(self, oracle):
        result = run_vm(oracle, "Work")
        assert result.stats.syscalls_emulated > 500

    def test_phase_features_distinct(self):
        assert phase_features("Start") != phase_features("Open")
        for phase in PHASES:
            assert phase_features(phase)
