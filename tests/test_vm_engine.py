"""Engine tests: VM-vs-native equivalence, accounting, flush, dispatch."""

import pytest

from repro.loader.linker import load_process
from repro.machine.costs import DEFAULT_COST_MODEL
from repro.machine.cpu import Machine, run_native
from repro.vm.engine import Engine, EngineError, VMConfig
from repro.vm.codecache import DEFAULT_CODE_POOL_BYTES

from tests.conftest import TINY_PROGRAM, image_from_asm


PROGRAMS = {
    "loop": TINY_PROGRAM,
    "nested_calls": """
    main:
        call outer
        movi rv, 1
        movi a0, 5
        syscall
    outer:
        addi sp, sp, -8
        st   lr, 0(sp)
        call inner
        call inner
        ld   lr, 0(sp)
        addi sp, sp, 8
        ret
    inner:
        addi t1, t1, 1
        ret
    """,
    "indirect": """
    main:
        call get
        callr t0
        movi rv, 1
        or   a0, t3, zero
        syscall
    get:
        movi t0, target
        ret
    target:
        movi t3, 9
        ret
    """,
    "memory": """
    main:
        movi t0, 64
        st   t0, 0(sp)
        ld   t1, 0(sp)
        movi rv, 1
        or   a0, t1, zero
        syscall
    """,
    "branchy": """
    main:
        movi t0, 20
    loop:
        andi t1, t0, 1
        beq  t1, zero, even
        addi t2, t2, 3
        jmp  next
    even:
        addi t2, t2, 1
    next:
        addi t0, t0, -1
        bne  t0, zero, loop
        movi rv, 1
        andi a0, t2, 127
        syscall
    """,
}


def run_both(source):
    image = image_from_asm(source)
    native = run_native(Machine(load_process(image)))
    vm = Engine().run(load_process(image))
    return native, vm


class TestEquivalence:
    """Translated execution is bit-identical to native execution."""

    @pytest.mark.parametrize("name", sorted(PROGRAMS))
    def test_same_architectural_outcome(self, name):
        native, vm = run_both(PROGRAMS[name])
        assert vm.exit_status == native.exit_status
        assert vm.instructions == native.instructions
        assert vm.output == native.output

    def test_kernel_loop_instruction_counts(self):
        source = """
        main:
            movi t0, 1000
        spin:
            addi t0, t0, -1
            bne  t0, zero, spin
            movi rv, 1
            movi a0, 0
            syscall
        """
        native, vm = run_both(source)
        assert vm.instructions == native.instructions == 1000 * 2 + 4


class TestAccounting:
    def test_components_sum_to_total(self):
        _native, vm = run_both(PROGRAMS["branchy"])
        stats = vm.stats
        assert stats.total_cycles == pytest.approx(
            stats.vm_overhead_cycles + stats.translated_code_cycles
        )
        assert stats.vm_overhead_cycles == pytest.approx(
            stats.translation_cycles
            + stats.dispatch_cycles
            + stats.persistence_cycles
        )

    def test_translation_events_recorded(self):
        _native, vm = run_both(PROGRAMS["loop"])
        assert len(vm.stats.translation_events) == vm.stats.traces_translated
        timestamps = [t for t, _ in vm.stats.translation_events]
        assert timestamps == sorted(timestamps)
        assert all(0 <= t <= vm.stats.total_cycles for t in timestamps)

    def test_translation_cost_formula(self):
        _native, vm = run_both(PROGRAMS["memory"])
        # One straight-line program: translation cycles must match the
        # per-trace formula summed over trace lengths.
        cost = DEFAULT_COST_MODEL
        total_insts = sum(
            size // 8 for (_p, _o, size) in vm.stats.trace_identities
        )
        expected = (
            vm.stats.traces_translated * cost.trace_compile_fixed
            + total_insts * cost.trace_compile_per_inst
        )
        assert vm.stats.translation_cycles == pytest.approx(expected)

    def test_exec_cycles_match_instructions(self):
        _native, vm = run_both(PROGRAMS["branchy"])
        stats = vm.stats
        cost = DEFAULT_COST_MODEL
        expected = (
            stats.instructions_executed * cost.translated_inst
            + stats.indirect_resolutions * cost.indirect_resolution
        )
        assert stats.translated_exec_cycles == pytest.approx(expected)

    def test_emulation_charges(self):
        _native, vm = run_both(PROGRAMS["loop"])
        assert vm.stats.syscalls_emulated == 1
        assert vm.stats.emulation_cycles == pytest.approx(
            DEFAULT_COST_MODEL.syscall_emulation
        )

    def test_indirect_resolutions_counted(self):
        _native, vm = run_both(PROGRAMS["indirect"])
        assert vm.stats.indirect_resolutions >= 2  # callr + rets

    def test_trace_identities_attributed_to_image(self):
        _native, vm = run_both(PROGRAMS["loop"])
        assert vm.stats.trace_identities
        assert all(path == "app" for path, _o, _s in vm.stats.trace_identities)


class TestCodeReuse:
    def test_no_retranslation_of_hot_code(self):
        """Once translated, looping code never re-enters the compiler."""
        image = image_from_asm(
            """
            main:
                movi t0, 500
            spin:
                addi t0, t0, -1
                bne  t0, zero, spin
                movi rv, 1
                movi a0, 0
                syscall
            """
        )
        vm = Engine().run(load_process(image))
        # A 500-iteration loop in <=3 traces: translations ~ footprint.
        assert vm.stats.traces_translated <= 4
        assert vm.instructions > 900

    def test_linking_avoids_vm_entries(self):
        """Linked traces chain without a VM round-trip per iteration."""
        image = image_from_asm(
            """
            main:
                movi t0, 300
            spin:
                addi t0, t0, -1
                jmp  check
            check:
                bne  t0, zero, spin
                movi rv, 1
                movi a0, 0
                syscall
            """
        )
        vm = Engine().run(load_process(image))
        # ~600 trace transitions, but VM entries stay O(footprint).
        assert vm.stats.vm_entries < 20


class TestCacheFlushPath:
    def test_small_pools_trigger_flush(self):
        image = image_from_asm(TINY_PROGRAM)
        config = VMConfig(code_pool_bytes=400, data_pool_bytes=700)
        vm = Engine(config=config).run(load_process(image))
        assert vm.exit_status == 7
        assert vm.stats.cache_flushes >= 1

    def test_trace_bigger_than_pool(self):
        image = image_from_asm(TINY_PROGRAM)
        config = VMConfig(code_pool_bytes=8, data_pool_bytes=8)
        with pytest.raises(EngineError):
            Engine(config=config).run(load_process(image))

    def test_default_pools_do_not_flush(self):
        _native, vm = run_both(PROGRAMS["branchy"])
        assert vm.stats.cache_flushes == 0


class TestBudget:
    def test_engine_budget_exhaustion(self):
        from repro.machine.cpu import MachineFault

        image = image_from_asm("main:\nspin:\n    jmp spin\n")
        config = VMConfig(max_instructions=500)
        with pytest.raises(MachineFault):
            Engine(config=config).run(load_process(image))


class TestResultShape:
    def test_cache_occupancy_reported(self):
        _native, vm = run_both(PROGRAMS["loop"])
        assert vm.cache_traces == vm.stats.traces_translated
        assert vm.cache_code_bytes > 0
        assert vm.cache_data_bytes > vm.cache_code_bytes  # Figure 9

    def test_persistence_report_empty_without_session(self):
        _native, vm = run_both(PROGRAMS["loop"])
        assert vm.persistence_report == {}
