"""Tests for the SBF binary image format."""

import pytest

from repro.binfmt.image import Image, ImageBuilder, ImageFormatError, ImageKind
from repro.binfmt.relocations import (
    IMM_OFFSET,
    Relocation,
    RelocationError,
    RelocationKind,
    apply_relocation,
    read_imm,
    write_imm,
)
from repro.binfmt.sections import Section, SectionFlags, align_up
from repro.binfmt.symbols import Symbol, SymbolBinding, SymbolKind
from repro.isa import instructions as ins
from repro.isa.encoding import encode, encode_all

from tests.conftest import TINY_PROGRAM, image_from_asm


class TestSections:
    def test_align_up(self):
        assert align_up(0) == 0
        assert align_up(1) == 64
        assert align_up(64) == 64
        assert align_up(65) == 128
        assert align_up(100, 16) == 112

    def test_align_up_rejects_bad_alignment(self):
        with pytest.raises(ValueError):
            align_up(5, 0)

    def test_contains(self):
        section = Section(".text", bytearray(32), vaddr=64)
        assert section.contains(64)
        assert section.contains(95)
        assert not section.contains(96)
        assert not section.contains(63)

    def test_flags(self):
        text = Section(".text", flags=SectionFlags.READ | SectionFlags.EXEC)
        data = Section(".data", flags=SectionFlags.READ | SectionFlags.WRITE)
        assert text.is_executable and not text.is_writable
        assert data.is_writable and not data.is_executable


class TestBuilder:
    def test_function_addresses_sequential(self):
        builder = ImageBuilder("x")
        a = builder.add_function("a", [ins.ret()])
        b = builder.add_function("b", [ins.nop(), ins.ret()])
        assert a == 0
        assert b == 8

    def test_data_after_text(self):
        builder = ImageBuilder("x")
        builder.add_function("f", [ins.ret()])
        builder.add_data("blob", b"\x01\x02\x03")
        image = builder.build()
        data = image.section(".data")
        text = image.section(".text")
        assert data.vaddr >= align_up(text.end)
        sym = image.find_symbol("blob")
        assert sym.kind == SymbolKind.OBJECT
        assert sym.vaddr == data.vaddr

    def test_entry_symbol(self):
        builder = ImageBuilder("x")
        builder.add_function("pre", [ins.nop(), ins.ret()])
        builder.add_function("go", [ins.ret()])
        builder.set_entry("go")
        assert builder.build().entry == 16

    def test_missing_entry_symbol(self):
        builder = ImageBuilder("x")
        builder.add_function("f", [ins.ret()])
        builder.set_entry("nope")
        with pytest.raises(ImageFormatError):
            builder.build()

    def test_builder_single_use(self):
        builder = ImageBuilder("x")
        builder.add_function("f", [ins.ret()])
        builder.build()
        with pytest.raises(RuntimeError):
            builder.build()
        with pytest.raises(RuntimeError):
            builder.add_function("g", [ins.ret()])

    def test_symbol_refs_recorded(self):
        builder = ImageBuilder("x")
        builder.add_function("f", [ins.call(0), ins.ret()], symbol_refs=[(0, "g")])
        image = builder.build()
        assert len(image.relocations) == 1
        reloc = image.relocations[0]
        assert reloc.kind == RelocationKind.SYMBOL and reloc.symbol == "g"


class TestSerialization:
    def test_roundtrip(self):
        image = image_from_asm(TINY_PROGRAM)
        clone = Image.from_bytes(image.to_bytes())
        assert clone.path == image.path
        assert clone.entry == image.entry
        assert clone.section(".text").data == image.section(".text").data
        assert clone.symbols == image.symbols
        assert clone.relocations == image.relocations
        assert clone.needed == image.needed
        assert clone.mtime == image.mtime

    def test_checksum_detects_corruption(self):
        blob = bytearray(image_from_asm(TINY_PROGRAM).to_bytes())
        blob[len(blob) // 2] ^= 0xFF
        with pytest.raises(ImageFormatError):
            Image.from_bytes(bytes(blob))

    def test_bad_magic(self):
        with pytest.raises(ImageFormatError):
            Image.from_bytes(b"NOPE" + b"\x00" * 64)

    def test_save_load(self, tmp_path):
        image = image_from_asm(TINY_PROGRAM)
        path = str(tmp_path / "app.sbf")
        image.save(path)
        assert Image.load(path).content_digest() == image.content_digest()


class TestDigests:
    def test_header_digest_stable(self):
        a = image_from_asm(TINY_PROGRAM)
        b = image_from_asm(TINY_PROGRAM)
        assert a.header_digest() == b.header_digest()

    def test_content_digest_sensitive_to_code(self):
        a = image_from_asm(TINY_PROGRAM)
        b = image_from_asm(TINY_PROGRAM.replace("movi a0, 7", "movi a0, 8"))
        assert a.content_digest() != b.content_digest()

    def test_header_digest_sensitive_to_structure(self):
        a = image_from_asm(TINY_PROGRAM, path="one")
        b = image_from_asm(TINY_PROGRAM, path="two")
        assert a.header_digest() != b.header_digest()


class TestImageLookups:
    def test_section_missing(self):
        image = image_from_asm(TINY_PROGRAM)
        with pytest.raises(KeyError):
            image.section(".bss")
        assert image.has_section(".text")

    def test_find_symbol(self):
        image = image_from_asm(TINY_PROGRAM)
        assert image.find_symbol("main") is not None
        assert image.find_symbol("nonexistent") is None

    def test_global_symbols_filtering(self):
        image = image_from_asm(TINY_PROGRAM, exports=["main"])
        names = set(image.global_symbols())
        assert names == {"main"}

    def test_size_is_aligned(self):
        image = image_from_asm(TINY_PROGRAM)
        assert image.size % 64 == 0
        assert image.size >= image.section(".text").end


class TestRelocationPrimitives:
    def test_read_write_imm(self):
        data = bytearray(encode(ins.jmp(0x1234)))
        assert read_imm(data, 0) == 0x1234
        write_imm(data, 0, 0x5678)
        assert read_imm(data, 0) == 0x5678

    def test_relative(self):
        data = bytearray(encode(ins.jmp(0x10)))
        reloc = Relocation(".text", 0, RelocationKind.RELATIVE)
        apply_relocation(reloc, data, 0x400000, lambda name: 0)
        assert read_imm(data, 0) == 0x400010

    def test_symbol(self):
        data = bytearray(encode(ins.call(0)))
        reloc = Relocation(".text", 0, RelocationKind.SYMBOL, symbol="f")
        apply_relocation(reloc, data, 0, {"f": 0x9000}.__getitem__)
        assert read_imm(data, 0) == 0x9000

    def test_symbol_with_addend(self):
        data = bytearray(encode(ins.call(0)))
        reloc = Relocation(".text", 0, RelocationKind.SYMBOL, symbol="f", addend=8)
        apply_relocation(reloc, data, 0, {"f": 0x9000}.__getitem__)
        assert read_imm(data, 0) == 0x9008

    def test_undefined_symbol(self):
        data = bytearray(encode(ins.call(0)))
        reloc = Relocation(".text", 0, RelocationKind.SYMBOL, symbol="missing")
        with pytest.raises(RelocationError):
            apply_relocation(reloc, data, 0, {}.__getitem__)

    def test_out_of_bounds(self):
        reloc = Relocation(".text", 64, RelocationKind.RELATIVE)
        with pytest.raises(RelocationError):
            apply_relocation(reloc, bytearray(8), 0, lambda n: 0)

    def test_unaligned_offset_rejected(self):
        with pytest.raises(ValueError):
            Relocation(".text", 3, RelocationKind.RELATIVE)

    def test_symbol_kind_requires_name(self):
        with pytest.raises(ValueError):
            Relocation(".text", 0, RelocationKind.SYMBOL)
