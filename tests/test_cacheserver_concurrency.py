"""Multi-process stress tests for the cache-server daemon.

The daemon's concurrency story layers on top of the flock store's: one
real daemon process serves N writer and M reader client processes over
the socket while a direct-to-files sweeper runs ``gc`` concurrently.
The invariants are the shared store's, now through two transports at
once:

* **no torn reads** — a daemon lookup returns the exact published bytes
  or a clean miss, never garbage, even while the flusher races direct
  file writers;
* **no lost publishes** — after the daemon's final flush, every digest
  any client published over the socket is durable in the shard files;
* **gc under load is safe** — a concurrent sweeper (which sees only the
  files, never the hot index) cannot corrupt the store or evict a
  referenced body;
* the store ends ``fsck``-clean.

Process counts reuse the shared-store dials: ``REPRO_STRESS_WRITERS`` /
``REPRO_STRESS_READERS`` / ``REPRO_STRESS_ROUNDS``.
"""

import multiprocessing
import os
import time

import pytest

from repro.persist.cacheserver import CacheServer, default_socket_path
from repro.persist.daemon import DaemonBackedStore, DaemonClient, DaemonError
from repro.persist.sharedstore import SharedBodyStore
from repro.vm.engine import VM_VERSION

from tests.test_sharedstore import write_reference_index
from tests.test_sharedstore_concurrency import (
    DIGEST_SPACE,
    ROUNDS,
    WRITERS,
    READERS,
    gc_worker,
    mp_context,
    run_workers,
    stress_blob,
    stress_digest,
)

pytestmark = pytest.mark.faultinject


def daemon_proc(store_dir: str) -> None:
    """The daemon process body: serve until a client sends shutdown."""
    CacheServer(store_dir, vm_version=VM_VERSION,
                flush_interval_s=0.1).serve_forever()


def daemon_writer_worker(store_dir: str, seed: int, rounds: int) -> None:
    """Like the flock writer_worker, but publishing over the socket.

    Falling back to the files is *allowed* (that is the contract), but
    in this controlled run the daemon stays up, so the worker asserts
    the socket actually carried its traffic.
    """
    store = DaemonBackedStore(store_dir, VM_VERSION, timeout_s=10.0)
    for round_no in range(rounds):
        start = (seed * 7 + round_no * 11) % DIGEST_SPACE
        batch = {}
        costs = {}
        for k in range(DIGEST_SPACE // 2):
            digest = stress_digest((start + k) % DIGEST_SPACE)
            batch[digest] = stress_blob(digest)
            costs[digest] = 50 + k
        store.publish(batch, costs=costs)
    if store.transport != "daemon":
        raise AssertionError("daemon writer degraded to the file path")


def daemon_reader_worker(store_dir: str, rounds: int) -> None:
    """Poll every digest over the socket; exact bytes or clean miss."""
    store = DaemonBackedStore(store_dir, VM_VERSION, timeout_s=10.0)
    for _ in range(rounds * 4):
        for i in range(DIGEST_SPACE):
            digest = stress_digest(i)
            blob = store.lookup(digest)
            if blob is not None and blob != stress_blob(digest):
                raise AssertionError("torn read for %s" % digest)
    if store.transport != "daemon":
        raise AssertionError("daemon reader degraded to the file path")


def file_writer_worker(store_dir: str, seed: int, rounds: int) -> None:
    """A mixed-fleet writer publishing straight to the files while the
    daemon is live — its bodies must flow through the heal-on-miss path."""
    store = SharedBodyStore(store_dir, vm_version=VM_VERSION)
    for round_no in range(rounds):
        start = (seed * 13 + round_no * 5) % DIGEST_SPACE
        batch = {}
        for k in range(DIGEST_SPACE // 4):
            digest = stress_digest((start + k) % DIGEST_SPACE)
            batch[digest] = stress_blob(digest)
        store.publish(batch)


def start_daemon(store_dir: str):
    ctx = mp_context()
    proc = ctx.Process(target=daemon_proc, args=(store_dir,), daemon=True)
    proc.start()
    address = default_socket_path(store_dir)
    deadline = time.monotonic() + 15.0
    while time.monotonic() < deadline:
        client = DaemonClient(address, vm_version=VM_VERSION, timeout_s=0.5)
        try:
            client.ping()
            return proc, address
        except DaemonError:
            time.sleep(0.05)
        finally:
            client.close()
    proc.terminate()
    raise AssertionError("daemon never came up at %s" % address)


def stop_daemon(proc, address: str) -> None:
    client = DaemonClient(address, vm_version=VM_VERSION, timeout_s=5.0)
    try:
        client.request("flush")
        client.request("shutdown")
    except DaemonError:
        pass  # already gone: the join below settles it
    finally:
        client.close()
    proc.join(timeout=30)
    assert proc.exitcode == 0, "daemon exited %s" % proc.exitcode


def test_socket_writers_lose_nothing_after_final_flush(tmp_path):
    store_dir = str(tmp_path / "store")
    SharedBodyStore(store_dir, vm_version=VM_VERSION)
    proc, address = start_daemon(store_dir)
    try:
        run_workers(
            [(daemon_writer_worker, (store_dir, seed, ROUNDS))
             for seed in range(WRITERS)]
        )
    finally:
        stop_daemon(proc, address)
    # serve_forever's clean stop flushed; every socket publish is now in
    # the shard files, visible with no daemon anywhere.
    store = SharedBodyStore(store_dir, vm_version=VM_VERSION)
    for i in range(DIGEST_SPACE):
        digest = stress_digest(i)
        assert store.lookup(digest) == stress_blob(digest), digest
    assert store.fsck().clean


def test_mixed_transports_with_concurrent_gc_stay_sound(tmp_path):
    """Socket writers + direct file writers + socket readers + a gc
    sweeper, all at once.  Referenced digests survive, reads are never
    torn through either transport, and the store ends clean."""
    store_dir = str(tmp_path / "store")
    store = SharedBodyStore(store_dir, vm_version=VM_VERSION)
    db_dir = str(tmp_path / "db")
    write_reference_index(
        db_dir, [stress_digest(i) for i in range(DIGEST_SPACE)]
    )
    store.register_database(db_dir)
    proc, address = start_daemon(store_dir)
    try:
        run_workers(
            [(daemon_writer_worker, (store_dir, seed, ROUNDS))
             for seed in range(max(2, WRITERS - 1))]
            + [(file_writer_worker, (store_dir, 99, ROUNDS))]
            + [(gc_worker, (store_dir, ROUNDS * 2))]
            + [(daemon_reader_worker, (store_dir, ROUNDS))
               for _ in range(max(1, READERS - 1))]
        )
    finally:
        stop_daemon(proc, address)
    final = SharedBodyStore(store_dir, vm_version=VM_VERSION)
    for i in range(DIGEST_SPACE):
        digest = stress_digest(i)
        assert final.lookup(digest) == stress_blob(digest), digest
    assert final.fsck().clean


def test_reader_heals_direct_file_publishes_through_the_daemon(tmp_path):
    """A body published straight to the files while the daemon is live
    must be served over the socket via heal-on-miss — the mixed-fleet
    case where only some sessions attached to the daemon."""
    store_dir = str(tmp_path / "store")
    SharedBodyStore(store_dir, vm_version=VM_VERSION)
    proc, address = start_daemon(store_dir)
    try:
        direct = SharedBodyStore(store_dir, vm_version=VM_VERSION)
        digest = stress_digest(0)
        direct.publish({digest: stress_blob(digest)})
        client_store = DaemonBackedStore(store_dir, VM_VERSION,
                                         timeout_s=10.0)
        assert client_store.transport == "daemon"
        assert client_store.lookup(digest) == stress_blob(digest)
        assert client_store.transport == "daemon"  # served via socket
    finally:
        stop_daemon(proc, address)
    assert SharedBodyStore(store_dir, vm_version=VM_VERSION).fsck().clean
