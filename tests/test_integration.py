"""Integration tests: the paper's headline behaviours at test scale.

The full-scale regenerations live in benchmarks/; these tests pin the
qualitative claims on the cheapest configurations so a plain ``pytest
tests/`` already verifies the reproduction's shape.
"""

import pytest

from repro.analysis.overhead import improvement_percent
from repro.persist.database import CacheDatabase
from repro.persist.manager import PersistenceConfig
from repro.tools import MemTraceTool
from repro.workloads.gui import build_gui_suite
from repro.workloads.harness import run_native, run_vm
from repro.workloads.oracle import PHASES, build_oracle
from repro.workloads.spec2k import build_suite


@pytest.fixture(scope="module")
def gui():
    apps, _store = build_gui_suite()
    return apps


@pytest.fixture(scope="module")
def oracle():
    return build_oracle()


class TestGuiHeadlines:
    def test_startup_slowdown_band(self, gui):
        """Figure 2(b): GUI startup 15-100x slower under the VM."""
        for name, app in gui.items():
            native = run_native(app, "startup")
            vm = run_vm(app, "startup")
            slowdown = vm.stats.total_cycles / native.cycles
            assert 10 < slowdown < 120, (name, slowdown)

    def test_same_input_persistence_near_90_percent(self, gui, tmp_path):
        """§4.2: inter-execution persistence improves GUI startup ~90%."""
        improvements = []
        for name, app in gui.items():
            db = CacheDatabase(str(tmp_path / name))
            cold = run_vm(app, "startup")
            run_vm(app, "startup", persistence=PersistenceConfig(database=db))
            warm = run_vm(app, "startup", persistence=PersistenceConfig(database=db))
            assert warm.stats.traces_translated == 0
            improvements.append(
                improvement_percent(cold.stats.total_cycles, warm.stats.total_cycles)
            )
        average = sum(improvements) / len(improvements)
        assert 80 < average < 98

    def test_inter_application_persistence(self, gui, tmp_path):
        """§4.5: another app's cache still improves startup substantially,
        but less than same-input persistence."""
        db = CacheDatabase(str(tmp_path / "donor"))
        run_vm(gui["gftp"], "startup", persistence=PersistenceConfig(database=db))
        cold = run_vm(gui["gqview"], "startup")
        cross = run_vm(
            gui["gqview"], "startup",
            persistence=PersistenceConfig(
                database=db, inter_application=True, readonly=True
            ),
        )
        gain = improvement_percent(cold.stats.total_cycles, cross.stats.total_cycles)
        assert 25 < gain < 85
        assert cross.stats.traces_from_persistent > 0
        assert cross.stats.traces_translated > 0  # own code retranslated


class TestOracleHeadlines:
    def test_unit_test_speedup(self, oracle, tmp_path):
        """§4.2: persistence gives a large speedup on the phase sequence."""
        db = CacheDatabase(str(tmp_path / "oracle"))
        cold_total = 0.0
        for phase in PHASES:
            cold_total += run_vm(
                oracle, phase, persistence=PersistenceConfig(database=db)
            ).stats.total_cycles
        warm_total = 0.0
        for phase in PHASES:
            result = run_vm(
                oracle, phase, persistence=PersistenceConfig(database=db)
            )
            assert result.stats.traces_translated == 0
            warm_total += result.stats.total_cycles
        assert improvement_percent(cold_total, warm_total) > 40

    def test_memtrace_instrumented_speedup(self, oracle, tmp_path):
        """§4.2: memory-reference instrumentation amplifies the benefit
        (paper: ~4x on Oracle)."""
        db = CacheDatabase(str(tmp_path / "oracle-mem"))
        cold = run_vm(
            oracle, "Work", tool=MemTraceTool(),
            persistence=PersistenceConfig(database=db),
        )
        warm = run_vm(
            oracle, "Work", tool=MemTraceTool(),
            persistence=PersistenceConfig(database=db),
        )
        assert warm.stats.traces_translated == 0
        speedup = cold.stats.total_cycles / warm.stats.total_cycles
        assert speedup > 1.5
        # Analysis still runs from the persisted, instrumented traces.
        assert warm.stats.analysis_calls > 0

    def test_cross_phase_reuse_ordering(self, oracle, tmp_path):
        """Using Open's cache helps Close more than Start's cache does
        (Table 3(b): Open covers 91% of Close, Start only 29%)."""
        db_start = CacheDatabase(str(tmp_path / "start"))
        db_open = CacheDatabase(str(tmp_path / "open"))
        run_vm(oracle, "Start", persistence=PersistenceConfig(database=db_start))
        run_vm(oracle, "Open", persistence=PersistenceConfig(database=db_open))
        via_start = run_vm(
            oracle, "Close",
            persistence=PersistenceConfig(database=db_start, readonly=True),
        )
        via_open = run_vm(
            oracle, "Close",
            persistence=PersistenceConfig(database=db_open, readonly=True),
        )
        assert via_open.stats.total_cycles < via_start.stats.total_cycles


class TestSpecHeadlines:
    @pytest.fixture(scope="class")
    def pair(self):
        return build_suite(("164.gzip", "176.gcc"))

    def test_gcc_dominated_by_vm_overhead(self, pair):
        """Figure 2(a)/§4.3: gcc spends a large share of its time in the
        VM; gzip does not."""
        gcc = run_vm(pair["176.gcc"], "ref-1")
        gzip = run_vm(pair["164.gzip"], "ref-1")
        assert gcc.stats.overhead_fraction() > 0.25
        assert gzip.stats.overhead_fraction() < 0.15

    def test_train_benefits_exceed_ref(self, pair, tmp_path):
        """Figure 5(a): Train inputs benefit more than Reference inputs."""
        wl = pair["164.gzip"]
        gains = {}
        for input_name in ("ref-1", "train"):
            db = CacheDatabase(str(tmp_path / input_name))
            cold = run_vm(wl, input_name,
                          persistence=PersistenceConfig(database=db))
            warm = run_vm(wl, input_name,
                          persistence=PersistenceConfig(database=db))
            gains[input_name] = improvement_percent(
                cold.stats.total_cycles, warm.stats.total_cycles
            )
        assert gains["train"] > gains["ref-1"] > 0

    def test_persistence_never_hurts(self, pair, tmp_path):
        """§4.3/§6: 'a persistent cache does not degrade performance when
        it is ineffective' — even a cold-miss run stays within a small
        bound of the no-persistence run."""
        wl = pair["164.gzip"]
        db = CacheDatabase(str(tmp_path / "nohurt"))
        plain = run_vm(wl, "ref-1")
        with_miss = run_vm(wl, "ref-1",
                           persistence=PersistenceConfig(database=db))
        overhead = (
            with_miss.stats.total_cycles / plain.stats.total_cycles - 1.0
        )
        assert overhead < 0.05  # the write-back is the only extra cost
