"""Tests for trace selection semantics."""

import pytest

from repro.isa import instructions as ins
from repro.isa.encoding import decode
from repro.isa.instructions import INSTRUCTION_SIZE
from repro.vm.trace import (
    DEFAULT_MAX_TRACE_INSTS,
    ExitKind,
    TraceSelector,
)


def selector_for(code, base=0x1000, max_insts=DEFAULT_MAX_TRACE_INSTS):
    """Build a TraceSelector over an in-memory instruction list."""

    def fetch(pc):
        index = (pc - base) // INSTRUCTION_SIZE
        return code[index]

    return TraceSelector(fetch, max_insts), base


class TestTermination:
    @pytest.mark.parametrize(
        "terminator,kind",
        [
            (ins.jmp(0x4000), ExitKind.DIRECT),
            (ins.call(0x4000), ExitKind.DIRECT),
            (ins.jr(5), ExitKind.INDIRECT),
            (ins.callr(5), ExitKind.INDIRECT),
            (ins.ret(), ExitKind.INDIRECT),
            (ins.syscall(), ExitKind.SYSCALL),
            (ins.halt(), ExitKind.HALT),
        ],
    )
    def test_terminators_end_trace(self, terminator, kind):
        code = [ins.nop(), ins.nop(), terminator, ins.nop()]
        selector, base = selector_for(code)
        trace = selector.select(base)
        assert len(trace.instructions) == 3
        assert trace.exits[-1].kind == kind
        assert trace.exits[-1].index == 2

    def test_direct_exit_target(self):
        code = [ins.jmp(0x4000)]
        selector, base = selector_for(code)
        trace = selector.select(base)
        assert trace.exits[-1].target == 0x4000

    def test_syscall_exit_resume_target(self):
        code = [ins.nop(), ins.syscall()]
        selector, base = selector_for(code)
        trace = selector.select(base)
        assert trace.exits[-1].target == base + 2 * INSTRUCTION_SIZE

    def test_indirect_has_no_target(self):
        code = [ins.ret()]
        selector, base = selector_for(code)
        assert selector.select(base).exits[-1].target is None


class TestConditionalBranches:
    def test_branch_does_not_end_trace(self):
        code = [ins.bne(1, 2, 16), ins.nop(), ins.ret()]
        selector, base = selector_for(code)
        trace = selector.select(base)
        assert len(trace.instructions) == 3

    def test_branch_side_exit(self):
        code = [ins.nop(), ins.bne(1, 2, 16), ins.ret()]
        selector, base = selector_for(code)
        trace = selector.select(base)
        branch_exits = [e for e in trace.exits if e.kind == ExitKind.BRANCH_TAKEN]
        assert len(branch_exits) == 1
        exit_ = branch_exits[0]
        assert exit_.index == 1
        assert exit_.target == base + 2 * INSTRUCTION_SIZE + 16

    def test_multiple_branches_in_order(self):
        code = [ins.beq(1, 2, 8), ins.bne(3, 4, 8), ins.ret()]
        selector, base = selector_for(code)
        trace = selector.select(base)
        kinds = [e.kind for e in trace.exits]
        assert kinds == [ExitKind.BRANCH_TAKEN, ExitKind.BRANCH_TAKEN, ExitKind.INDIRECT]


class TestLengthLimit:
    def test_limit_produces_fallthrough(self):
        code = [ins.nop()] * 40
        selector, base = selector_for(code, max_insts=8)
        trace = selector.select(base)
        assert len(trace.instructions) == 8
        final = trace.exits[-1]
        assert final.kind == ExitKind.FALLTHROUGH
        assert final.target == base + 8 * INSTRUCTION_SIZE

    def test_limit_one(self):
        code = [ins.nop(), ins.nop()]
        selector, base = selector_for(code, max_insts=1)
        trace = selector.select(base)
        assert len(trace.instructions) == 1

    def test_invalid_limit(self):
        with pytest.raises(ValueError):
            TraceSelector(lambda pc: ins.nop(), max_trace_insts=0)

    def test_branch_at_limit_keeps_both_exits(self):
        code = [ins.nop(), ins.bne(1, 2, 8), ins.nop()]
        selector, base = selector_for(code, max_insts=2)
        trace = selector.select(base)
        kinds = [e.kind for e in trace.exits]
        assert kinds == [ExitKind.BRANCH_TAKEN, ExitKind.FALLTHROUGH]
        assert trace.exits[-1].target == base + 2 * INSTRUCTION_SIZE


class TestTraceProperties:
    def test_addresses(self):
        code = [ins.nop(), ins.nop(), ins.ret()]
        selector, base = selector_for(code)
        trace = selector.select(base)
        assert trace.size == 3 * INSTRUCTION_SIZE
        assert trace.end == base + trace.size
        assert trace.address_of(1) == base + INSTRUCTION_SIZE
        assert trace.instruction_addresses() == [base, base + 8, base + 16]

    def test_image_attribution(self):
        code = [ins.ret()]
        selector, base = selector_for(code)
        trace = selector.select(base, image_path="libx.so", image_base=0x900)
        assert trace.image_path == "libx.so"
        assert trace.image_base == 0x900

    def test_uops_match_instructions(self):
        code = [ins.addi(1, 1, 5), ins.ret()]
        selector, base = selector_for(code)
        trace = selector.select(base)
        assert trace.uops == [inst.as_tuple() for inst in trace.instructions]

    def test_layout_unaltered(self):
        """Selection must not transform application instructions."""
        code = [ins.addi(1, 1, 5), ins.bne(1, 2, -16), ins.ret()]
        selector, base = selector_for(code)
        trace = selector.select(base)
        assert trace.instructions == code
