"""Property-based corruption tests (Hypothesis).

The contract under test: ``serialize -> corrupt -> load`` never yields a
cache object with a damaged trace.  Either the load raises a typed
:class:`CacheFileError`, or the corruption was a byte-for-byte no-op and
the load returns the original content exactly.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.persist.cachefile import CacheFileError, PersistentCache
from repro.persist.keys import MappingKey
from repro.testing.faultfs import FaultPlan, FaultyStorage

from tests.test_persist_cachefile import make_cache

pytestmark = pytest.mark.faultinject

#: Pre-serialized blobs of varying shapes (empty, one trace, several).
BLOBS = tuple(make_cache(n_traces=n).to_bytes() for n in (0, 1, 3))


def load_or_typed_error(blob):
    """Load ``blob``; any failure must be a CacheFileError, nothing else."""
    try:
        return PersistentCache.from_bytes(blob)
    except CacheFileError:
        return None
    # Anything else (struct.error, zlib.error, KeyError, ...) propagates
    # and fails the test.


class TestSingleByteCorruption:
    @settings(max_examples=300, deadline=None)
    @given(
        blob=st.sampled_from(BLOBS),
        offset_seed=st.integers(min_value=0, max_value=2**31),
        mask=st.integers(min_value=1, max_value=255),
    )
    def test_one_corrupted_byte_never_yields_a_bad_trace(
        self, blob, offset_seed, mask
    ):
        offset = offset_seed % len(blob)
        corrupt = bytearray(blob)
        corrupt[offset] ^= mask
        loaded = load_or_typed_error(bytes(corrupt))
        assert loaded is None  # every real change is caught by a checksum

    @settings(max_examples=100, deadline=None)
    @given(
        blob=st.sampled_from(BLOBS),
        offset_seed=st.integers(min_value=0, max_value=2**31),
        mask=st.integers(min_value=1, max_value=255),
    )
    def test_error_names_a_real_section(self, blob, offset_seed, mask):
        offset = offset_seed % len(blob)
        corrupt = bytearray(blob)
        corrupt[offset] ^= mask
        with pytest.raises(CacheFileError) as excinfo:
            PersistentCache.from_bytes(bytes(corrupt))
        assert excinfo.value.section in {
            "preamble", "header", "directory",
            "code_pool", "data_pool", "trailer",
        }


class TestStructuralCorruption:
    @settings(max_examples=200, deadline=None)
    @given(
        blob=st.sampled_from(BLOBS),
        length_seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_truncation_detected(self, blob, length_seed):
        length = length_seed % len(blob)  # strictly shorter
        assert load_or_typed_error(blob[:length]) is None

    @settings(max_examples=200, deadline=None)
    @given(
        blob=st.sampled_from(BLOBS),
        junk=st.binary(min_size=1, max_size=64),
    )
    def test_appended_garbage_detected(self, blob, junk):
        assert load_or_typed_error(blob + junk) is None

    @settings(max_examples=200, deadline=None)
    @given(junk=st.binary(max_size=256))
    def test_arbitrary_bytes_never_crash_untyped(self, junk):
        loaded = load_or_typed_error(junk)
        # Random bytes essentially never form a valid file; if they do,
        # the checksummed framing guarantees well-formed content.
        if loaded is not None:
            assert loaded.to_bytes() == junk

    @settings(max_examples=100, deadline=None)
    @given(
        blob=st.sampled_from(BLOBS),
        start_seed=st.integers(min_value=0, max_value=2**31),
        chunk=st.binary(min_size=1, max_size=32),
    )
    def test_spliced_bytes_detected_or_noop(self, blob, start_seed, chunk):
        """Overwrite a random span: either detected, or nothing changed."""
        start = start_seed % len(blob)
        corrupt = bytearray(blob)
        corrupt[start:start + len(chunk)] = chunk
        corrupt = bytes(corrupt)
        loaded = load_or_typed_error(corrupt)
        if loaded is not None:
            assert corrupt == blob  # the splice happened to be identical

    @settings(max_examples=50, deadline=None)
    @given(mtime=st.integers(min_value=0, max_value=2**31))
    def test_roundtrip_of_varied_keys(self, mtime):
        cache = make_cache(n_traces=1)
        cache.image_keys["app"] = MappingKey("app", 0x40_0000, 0x1000, "hd", mtime)
        clone = PersistentCache.from_bytes(cache.to_bytes())
        assert clone.image_keys["app"].mtime == mtime


class TestReadFaultProperties:
    @settings(max_examples=100, deadline=None)
    @given(
        offset_seed=st.integers(min_value=0, max_value=2**31),
        mask=st.integers(min_value=1, max_value=255),
    )
    def test_on_disk_flip_through_storage_seam(
        self, tmp_path_factory, offset_seed, mask
    ):
        """A flip injected at the *read* layer (media fault rather than a
        damaged file) is equally contained."""
        base = tmp_path_factory.mktemp("prop")
        path = str(base / "x.cache")
        cache = make_cache(n_traces=2)
        cache.save(path)
        size = cache.file_size
        storage = FaultyStorage(
            FaultPlan(flip_read_byte_at=offset_seed % size)
        )
        with pytest.raises(CacheFileError):
            PersistentCache.load(path, storage=storage)
        # The file itself is untouched: a clean read still succeeds.
        assert len(PersistentCache.load(path).traces) == 2
