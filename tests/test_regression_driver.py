"""Tests for the regression-test driver."""

import pytest

from repro.persist.database import CacheDatabase
from repro.tools import CoverageTool
from repro.workloads.oracle import PHASES, build_oracle
from repro.workloads.regression import (
    RegressionDriver,
    interleaved_cases,
    round_robin_cases,
)

from tests.test_persist_manager import mini_workload


@pytest.fixture
def driver(tmp_path):
    return RegressionDriver(CacheDatabase(str(tmp_path / "db")))


class TestSequenceConstruction:
    def test_round_robin(self):
        workload = mini_workload()
        cases = round_robin_cases(workload, ["a", "b"], rounds=3)
        assert len(cases) == 6
        assert [name for _w, name in cases] == ["a", "b"] * 3

    def test_interleaved(self):
        w1, w2 = mini_workload(app_path="w1"), mini_workload(app_path="w2")
        cases = interleaved_cases([w1, w2], ["a"], count=5)
        assert len(cases) == 5
        assert {w.name for w, _n in cases} == {"mini"}


class TestDriver:
    def test_costs_drop_over_repeated_tests(self, driver):
        workload = mini_workload()
        report = driver.run_sequence(round_robin_cases(workload, ["a"], 3))
        cycles = report.cycles_by_test()
        assert cycles[1] < cycles[0]
        assert cycles[2] <= cycles[1] * 1.01
        assert report.outcomes[1].traces_translated == 0

    def test_accumulation_across_different_tests(self, driver):
        workload = mini_workload()
        report = driver.run_sequence(
            round_robin_cases(workload, ["a", "b", "ab"], 2)
        )
        # Second pass: everything is cached, nothing translates.
        for outcome in report.outcomes[3:]:
            assert outcome.traces_translated == 0, outcome

    def test_improvement_metric(self, driver):
        workload = mini_workload()
        report = driver.run_sequence(round_robin_cases(workload, ["a"], 2))
        assert 0.0 < report.improvement_over_first_pass() < 1.0

    def test_warmup_point(self, driver):
        workload = mini_workload()
        report = driver.run_sequence(round_robin_cases(workload, ["a"], 4))
        warm = report.warmup_point()
        assert warm is not None
        assert warm <= 1

    def test_without_persistence_no_improvement(self, tmp_path):
        driver = RegressionDriver(
            CacheDatabase(str(tmp_path / "db")), persistence_enabled=False
        )
        workload = mini_workload()
        report = driver.run_sequence(round_robin_cases(workload, ["a"], 3))
        cycles = report.cycles_by_test()
        assert cycles[0] == pytest.approx(cycles[1]) == pytest.approx(cycles[2])
        assert report.total_translations == 3 * report.outcomes[0].traces_translated

    def test_exit_statuses_recorded(self, driver):
        workload = mini_workload()
        report = driver.run_sequence(round_robin_cases(workload, ["a"], 1))
        assert report.outcomes[0].exit_status == 0

    def test_with_tool(self, tmp_path):
        driver = RegressionDriver(
            CacheDatabase(str(tmp_path / "db")), tool_factory=CoverageTool
        )
        workload = mini_workload()
        report = driver.run_sequence(round_robin_cases(workload, ["a"], 2))
        assert report.outcomes[1].traces_translated == 0


class TestOracleUnitTests:
    def test_unit_test_sequence_improves(self, tmp_path):
        """Two full Oracle regression tests: the second is much cheaper
        (the paper's headline deployment)."""
        driver = RegressionDriver(CacheDatabase(str(tmp_path / "db")))
        oracle = build_oracle()
        report = driver.run_sequence(
            round_robin_cases(oracle, list(PHASES), rounds=2)
        )
        first_test = sum(report.cycles_by_test()[:5])
        second_test = sum(report.cycles_by_test()[5:])
        assert second_test < 0.6 * first_test
        for outcome in report.outcomes[5:]:
            assert outcome.traces_translated == 0
