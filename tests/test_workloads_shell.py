"""Tests for the shell-utility suite."""

import pytest

from repro.analysis.coverage import library_fraction
from repro.persist.database import CacheDatabase
from repro.persist.manager import PersistenceConfig
from repro.workloads.harness import run_native, run_vm
from repro.workloads.shell import SHELL_TOOLS, build_shell_suite


@pytest.fixture(scope="module")
def suite():
    tools, _store = build_shell_suite()
    return tools


class TestConstruction:
    def test_six_tools(self, suite):
        assert set(suite) == set(SHELL_TOOLS)

    def test_all_link_against_libc(self, suite):
        for tool in suite.values():
            assert tool.image.needed == ["libc.so"]

    def test_run_cleanly(self, suite):
        for name, tool in suite.items():
            assert run_native(tool, "run").exit_status == 0, name


class TestColdCodeBehaviour:
    def test_extreme_slowdowns(self, suite):
        """Short-lived utilities are the worst case for a DBI engine."""
        for name, tool in suite.items():
            native = run_native(tool, "run")
            vm = run_vm(tool, "run")
            slowdown = vm.stats.total_cycles / native.cycles
            assert slowdown > 40, (name, slowdown)

    def test_libc_dominates_footprint(self, suite):
        for name, tool in suite.items():
            identities = run_vm(tool, "run").stats.trace_identities
            assert library_fraction(identities) > 0.4, name

    def test_footprints_overlap_but_differ(self, suite):
        ls = run_vm(suite["ls"], "run").stats.trace_identities
        cat = run_vm(suite["cat"], "run").stats.trace_identities
        libc = lambda ids: {i for i in ids if i[0] == "libc.so"}
        assert libc(ls) & libc(cat)  # shared libc functions
        assert libc(ls) != libc(cat)  # but not identical subsets


class TestPersistence:
    def test_same_tool_reuse(self, suite, tmp_path):
        db = CacheDatabase(str(tmp_path / "db"))
        cold = run_vm(suite["grep"], "run",
                      persistence=PersistenceConfig(database=db))
        warm = run_vm(suite["grep"], "run",
                      persistence=PersistenceConfig(database=db))
        assert warm.stats.traces_translated == 0
        assert warm.stats.total_cycles < 0.2 * cold.stats.total_cycles

    def test_first_tool_warms_the_rest(self, suite, tmp_path):
        """Inter-application persistence across shell utilities: running
        `ls` once accelerates every other tool's first run."""
        db = CacheDatabase(str(tmp_path / "db"))
        run_vm(suite["ls"], "run", persistence=PersistenceConfig(database=db))
        for name in ("cat", "cp", "grep", "wc", "touch"):
            cold = run_vm(suite[name], "run")
            crossed = run_vm(
                suite[name], "run",
                persistence=PersistenceConfig(
                    database=db, inter_application=True, readonly=True
                ),
            )
            gain = 1 - crossed.stats.total_cycles / cold.stats.total_cycles
            assert gain > 0.25, (name, gain)
            assert crossed.stats.traces_from_persistent > 0

    def test_accumulation_across_tools(self, suite, tmp_path):
        """A shared inter-app database converges: after every tool ran
        once, reruns translate only their own app code... and after their
        own run, nothing at all."""
        db = CacheDatabase(str(tmp_path / "db"))
        for name in suite:
            run_vm(suite[name], "run",
                   persistence=PersistenceConfig(database=db))
        for name in suite:
            warm = run_vm(suite[name], "run",
                          persistence=PersistenceConfig(database=db))
            assert warm.stats.traces_translated == 0, name
