"""Unit + property tests for the binary instruction encoding."""

import pytest
from hypothesis import given, strategies as st

from repro.isa import instructions as ins
from repro.isa.encoding import (
    DecodeError,
    decode,
    decode_all,
    encode,
    encode_all,
)
from repro.isa.instructions import IMM_MAX, IMM_MIN, INSTRUCTION_SIZE, Instruction
from repro.isa.opcodes import Opcode

_OPCODES = list(Opcode)

instruction_strategy = st.builds(
    Instruction,
    opcode=st.sampled_from(_OPCODES),
    rd=st.integers(0, 31),
    rs1=st.integers(0, 31),
    rs2=st.integers(0, 31),
    imm=st.integers(IMM_MIN, IMM_MAX),
)


class TestEncode:
    def test_fixed_width(self):
        assert len(encode(ins.nop())) == INSTRUCTION_SIZE
        assert len(encode(ins.movi(5, -123456))) == INSTRUCTION_SIZE

    def test_layout(self):
        raw = encode(Instruction(Opcode.ADD, rd=1, rs1=2, rs2=3, imm=0))
        assert raw[0] == int(Opcode.ADD)
        assert raw[1:4] == bytes([1, 2, 3])

    def test_encode_all_concatenates(self):
        code = encode_all([ins.nop(), ins.ret()])
        assert len(code) == 2 * INSTRUCTION_SIZE


class TestDecode:
    def test_roundtrip_simple(self):
        inst = ins.addi(3, 4, -77)
        assert decode(encode(inst)) == inst

    def test_offset(self):
        blob = encode(ins.nop()) + encode(ins.ret())
        assert decode(blob, INSTRUCTION_SIZE) == ins.ret()

    def test_truncated(self):
        with pytest.raises(DecodeError):
            decode(b"\x01\x02\x03")

    def test_illegal_opcode(self):
        raw = bytearray(encode(ins.nop()))
        raw[0] = 0xEE
        with pytest.raises(DecodeError):
            decode(bytes(raw))

    def test_illegal_register(self):
        raw = bytearray(encode(ins.nop()))
        raw[1] = 200
        with pytest.raises(DecodeError):
            decode(bytes(raw))

    def test_decode_all_alignment(self):
        with pytest.raises(DecodeError):
            decode_all(b"\x00" * (INSTRUCTION_SIZE + 1))

    def test_decode_all_roundtrip(self):
        program = [ins.movi(1, 1), ins.add(1, 1, 1), ins.halt()]
        assert decode_all(encode_all(program)) == program


class TestEncodingProperties:
    @given(instruction_strategy)
    def test_roundtrip(self, inst):
        assert decode(encode(inst)) == inst

    @given(st.lists(instruction_strategy, max_size=40))
    def test_roundtrip_sequences(self, program):
        blob = encode_all(program)
        assert len(blob) == INSTRUCTION_SIZE * len(program)
        assert decode_all(blob) == program

    @given(instruction_strategy, instruction_strategy)
    def test_injective(self, a, b):
        if a != b:
            assert encode(a) != encode(b)
