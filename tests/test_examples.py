"""Smoke tests: every example script runs cleanly end to end."""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")

EXAMPLES = sorted(
    name for name in os.listdir(EXAMPLES_DIR) if name.endswith(".py")
)


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip(), "example produced no output"
