"""End-to-end crash-consistency invariant: every induced fault yields
either a fully valid cache or a clean JIT-only run with identical
program output.

Each scenario seeds a persistent-cache database, injects one fault class
(byte flip, truncation, ``ENOSPC``/``EIO`` mid-write, kill between
tmp-write and rename, corrupt index, unreadable file), reruns the
workload, and asserts:

* the run's *architectural* outcome (exit status, instruction count,
  output bytes) is identical to a run with no persistence at all;
* no trace was revived from a damaged section
  (``traces_from_persistent == 0`` and ``preloaded == 0``);
* the damage was contained and reported (quarantine + degradation
  counters), never raised through the engine;
* the database recovers: subsequent healthy runs rebuild and then reuse
  a fresh cache.
"""

import glob
import os

import pytest

from repro.persist.cachefile import PersistentCache
from repro.persist.database import CacheDatabase, QUARANTINE_DIR
from repro.persist.manager import PersistenceConfig
from repro.testing.faultfs import (
    FaultPlan,
    FaultyStorage,
    SimulatedCrash,
    flip_byte,
    truncate_file,
)
from repro.workloads.harness import run_vm

from tests.test_persist_manager import mini_workload

pytestmark = pytest.mark.faultinject


def arch(result):
    """The architectural outcome persistence must never change."""
    return (result.exit_status, result.instructions, result.output)


@pytest.fixture
def workload():
    return mini_workload()


@pytest.fixture
def reference(workload):
    """The no-persistence outcome of input "a"."""
    return arch(run_vm(workload, "a"))


def seeded_db(tmp_path, workload, name="db"):
    """A database primed by one persisted run of input "a"."""
    db = CacheDatabase(str(tmp_path / name))
    run_vm(workload, "a", persistence=PersistenceConfig(database=db))
    assert len(db.entries()) == 1
    return db


def cache_path(db):
    return os.path.join(db.directory, db.entries()[0].filename)


def assert_degraded_cleanly(result, reference):
    assert arch(result) == reference
    assert result.stats.traces_from_persistent == 0
    report = result.persistence_report
    assert report["preloaded"] == 0
    assert report["cache_found"] is False
    assert report["fallback_jit_only"] is True
    assert report["degraded_reason"]


def assert_recovers(workload, directory, reference):
    """After the fault: a cold run rebuilds the cache, a warm run reuses
    it, and both have the reference architectural outcome."""
    db = CacheDatabase(directory)
    cold = run_vm(workload, "a", persistence=PersistenceConfig(database=db))
    warm = run_vm(workload, "a", persistence=PersistenceConfig(database=db))
    assert arch(cold) == reference
    assert arch(warm) == reference
    assert warm.persistence_report["cache_found"] is True
    assert warm.stats.traces_from_persistent > 0
    assert warm.stats.traces_translated == 0


class TestCorruptCacheFile:
    #: Offsets chosen to land in different sections of a real cache file:
    #: preamble/header up front, directory after it, pools at relative
    #: depths, trailer at the end.
    FLIP_SPOTS = (0, 8, 40, 200, 0.25, 0.5, 0.75, 0.98, -1)

    @pytest.mark.parametrize("spot", FLIP_SPOTS)
    def test_byte_flip_degrades_to_identical_jit_run(
        self, tmp_path, workload, reference, spot
    ):
        db = seeded_db(tmp_path, workload)
        path = cache_path(db)
        size = os.path.getsize(path)
        offset = int(spot * size) if isinstance(spot, float) else spot
        flip_byte(path, offset)

        result = run_vm(
            workload, "a", persistence=PersistenceConfig(database=db)
        )
        assert_degraded_cleanly(result, reference)
        assert result.persistence_report["cache_quarantined"] == 1
        assert result.stats.persistence_degraded == 1

        # Quarantined, never deleted: the damaged file moved aside.
        assert not os.path.exists(path)
        quarantined = glob.glob(
            os.path.join(db.directory, QUARANTINE_DIR, "*")
        )
        assert len(quarantined) == 1

    @pytest.mark.parametrize("fraction", (0.0, 0.3, 0.6, 0.95))
    def test_truncation_degrades_to_identical_jit_run(
        self, tmp_path, workload, reference, fraction
    ):
        db = seeded_db(tmp_path, workload)
        path = cache_path(db)
        truncate_file(path, int(os.path.getsize(path) * fraction))
        result = run_vm(
            workload, "a", persistence=PersistenceConfig(database=db)
        )
        assert_degraded_cleanly(result, reference)
        assert result.persistence_report["cache_quarantined"] == 1

    def test_recovery_after_quarantine(self, tmp_path, workload, reference):
        db = seeded_db(tmp_path, workload)
        flip_byte(cache_path(db), 100)
        degraded = run_vm(
            workload, "a", persistence=PersistenceConfig(database=db)
        )
        assert_degraded_cleanly(degraded, reference)
        # A degraded session never writes back; the next session rebuilds.
        assert degraded.persistence_report["written"] is False
        assert_recovers(workload, db.directory, reference)


class TestWriteBackFaults:
    def test_enospc_mid_write_back_keeps_run_and_database_intact(
        self, tmp_path, workload, reference
    ):
        directory = str(tmp_path / "db")
        storage = FaultyStorage(FaultPlan(fail_write_on_call=3, match=".cache"))
        db = CacheDatabase(directory, storage=storage)
        result = run_vm(
            workload, "a", persistence=PersistenceConfig(database=db)
        )
        # The program ran to completion with its normal outcome.
        assert arch(result) == reference
        report = result.persistence_report
        assert report["written"] is False
        assert report["fallback_jit_only"] is True
        assert "write-back failed" in report["degraded_reason"]
        assert result.stats.persistence_storage_errors >= 1
        # The database never saw a torn file: no indexed entries, and any
        # leftover is only the partial .tmp.
        clean = CacheDatabase(directory)
        assert clean.entries() == []
        assert_recovers(workload, directory, reference)

    def test_every_failing_write_index_is_safe(
        self, tmp_path, workload, reference
    ):
        """Sweep ENOSPC across every chunk write the write-back performs."""
        probe = FaultyStorage()
        db = CacheDatabase(
            str(tmp_path / "probe"), storage=probe
        )
        run_vm(workload, "a", persistence=PersistenceConfig(database=db))
        total_writes = probe.op_counts["write"]
        assert total_writes >= 2

        for n in range(1, total_writes + 1):
            directory = str(tmp_path / ("db-%d" % n))
            storage = FaultyStorage(FaultPlan(fail_write_on_call=n))
            db = CacheDatabase(directory, storage=storage)
            result = run_vm(
                workload, "a", persistence=PersistenceConfig(database=db)
            )
            assert arch(result) == reference, n
            # Whatever survived on disk must be valid or invisible.
            clean = CacheDatabase(directory)
            for entry in clean.entries():
                loaded = PersistentCache.load(
                    os.path.join(directory, entry.filename)
                )
                assert loaded.traces, n

    def test_crash_between_tmp_write_and_rename(
        self, tmp_path, workload, reference
    ):
        """The kill lands at the worst instant of the write-back: the new
        cache is fully written to .tmp but never renamed in."""
        directory = str(tmp_path / "db")
        storage = FaultyStorage(
            FaultPlan(crash_before_rename=True, match=".cache")
        )
        db = CacheDatabase(directory, storage=storage)
        with pytest.raises(SimulatedCrash):
            run_vm(workload, "a", persistence=PersistenceConfig(database=db))

        # A fresh "process" finds a consistent database: no torn cache
        # file is visible, only the stale tmp marks the interruption.
        clean = CacheDatabase(directory)
        report = clean.fsck()
        statuses = {item.status for item in report.items}
        assert "corrupt" not in statuses
        assert any(item.status == "stale-tmp" for item in report.items)
        assert_recovers(workload, directory, reference)

    def test_crash_during_accumulation_preserves_previous_cache(
        self, tmp_path, workload, reference
    ):
        """Crashing an accumulating write-back must leave the previous
        generation fully readable."""
        directory = str(tmp_path / "db")
        seeded = seeded_db(tmp_path, workload, "db")
        before = PersistentCache.load(cache_path(seeded))

        storage = FaultyStorage(
            FaultPlan(crash_before_rename=True, match=".cache")
        )
        db = CacheDatabase(directory, storage=storage)
        with pytest.raises(SimulatedCrash):
            run_vm(workload, "b", persistence=PersistenceConfig(database=db))

        clean = CacheDatabase(directory)
        after = clean.lookup(
            app_key=_app_key_of(before),
            vm_version=before.vm_version,
            tool_identity=before.tool_identity,
        )
        assert after is not None
        assert after.trace_identities() == before.trace_identities()
        assert arch(run_vm(workload, "a")) == reference


def _app_key_of(cache):
    return cache.image_keys[cache.app_path]


class TestIndexAndReadFaults:
    def test_corrupt_index_resets_and_run_is_unaffected(
        self, tmp_path, workload, reference
    ):
        db = seeded_db(tmp_path, workload)
        index_path = os.path.join(db.directory, "index.json")
        with open(index_path, "wb") as handle:
            handle.write(b"{ not json !!")

        reopened = CacheDatabase(db.directory)
        assert reopened.entries() == []
        assert reopened.quarantined_count == 1
        # The orphaned cache file is still on disk for fsck to find.
        orphans = [
            item for item in reopened.fsck().items if item.status == "orphan"
        ]
        assert len(orphans) == 1
        result = run_vm(
            workload, "a", persistence=PersistenceConfig(database=reopened)
        )
        assert arch(result) == reference
        # The write-back re-created the index row; the database is whole
        # again (the orphan was re-adopted under its deterministic name).
        assert reopened.fsck().clean

    def test_read_io_error_is_a_clean_miss(
        self, tmp_path, workload, reference
    ):
        directory = str(tmp_path / "db")
        seeded_db(tmp_path, workload)
        storage = FaultyStorage(FaultPlan(fail_reads=True, match=".cache"))
        db = CacheDatabase(directory, storage=storage)
        result = run_vm(
            workload, "a",
            persistence=PersistenceConfig(database=db, readonly=True),
        )
        assert arch(result) == reference
        assert result.stats.traces_from_persistent == 0
        # EIO does not quarantine (the file may be fine next boot) but
        # the miss is recorded.
        assert any(kind == "io-error" for kind, _, _ in db.events)

    def test_vanished_directory_at_write_back(
        self, tmp_path, workload, reference
    ):
        import shutil

        directory = str(tmp_path / "db")
        db = CacheDatabase(directory)
        shutil.rmtree(directory)
        result = run_vm(
            workload, "a", persistence=PersistenceConfig(database=db)
        )
        assert arch(result) == reference
        assert result.persistence_report["fallback_jit_only"] is True


class TestConcurrentAccumulation:
    def test_interleaved_same_entry_stores_never_tear_the_file(
        self, tmp_path, workload
    ):
        """Two sessions accumulate into the same database entry with
        stale in-memory views: the loser's work is replaced wholesale,
        never interleaved into an unreadable file."""
        directory = str(tmp_path / "db")
        db_a = CacheDatabase(directory)
        db_b = CacheDatabase(directory)  # both start from an empty view
        run_vm(workload, "a", persistence=PersistenceConfig(database=db_a))
        run_vm(workload, "b", persistence=PersistenceConfig(database=db_b))

        clean = CacheDatabase(directory)
        assert len(clean.entries()) == 1
        entry = clean.entries()[0]
        loaded = PersistentCache.load(
            os.path.join(directory, entry.filename)
        )
        assert loaded.traces  # fully readable
        assert clean.fsck().clean

    def test_interleaved_different_apps_both_survive(self, tmp_path):
        """The index merge under the lock keeps both writers' rows even
        when each session holds a stale index snapshot."""
        directory = str(tmp_path / "db")
        app_one = mini_workload(app_path="mini-one")
        app_two = mini_workload(app_path="mini-two")
        db_one = CacheDatabase(directory)
        db_two = CacheDatabase(directory)  # stale: does not see one's row
        run_vm(app_one, "a", persistence=PersistenceConfig(database=db_one))
        run_vm(app_two, "a", persistence=PersistenceConfig(database=db_two))

        clean = CacheDatabase(directory)
        assert len(clean.entries()) == 2
        assert clean.fsck().clean
        # Both caches load and preload on their next runs.
        for app in (app_one, app_two):
            warm = run_vm(
                app, "a",
                persistence=PersistenceConfig(database=CacheDatabase(directory)),
            )
            assert warm.persistence_report["cache_found"] is True
            assert warm.stats.traces_translated == 0

    def test_threaded_stores_keep_index_consistent(self, tmp_path):
        """Truly concurrent stores (threads) serialize on the advisory
        lock; every writer's entry survives."""
        import threading

        directory = str(tmp_path / "db")
        workloads = [
            mini_workload(app_path="mini-%d" % index) for index in range(4)
        ]
        errors = []

        def one_run(app):
            try:
                run_vm(
                    app, "a",
                    persistence=PersistenceConfig(
                        database=CacheDatabase(directory)
                    ),
                )
            except BaseException as exc:  # noqa: BLE001 - recorded for assert
                errors.append(exc)

        threads = [
            threading.Thread(target=one_run, args=(app,)) for app in workloads
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        clean = CacheDatabase(directory)
        assert len(clean.entries()) == 4
        assert clean.fsck().clean
