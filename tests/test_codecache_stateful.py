"""Stateful property testing of the code cache (hypothesis RuleBasedStateMachine).

Random interleavings of insert / evict / evict_range / flush must preserve
the cache's structural invariants:

* occupancy equals the sum of resident trace sizes, never exceeds capacity;
* every linked exit points at a *resident* trace entry;
* the translation map answers exactly the resident entries;
* eviction unlinks every incoming pointer to the victim.
"""

import hypothesis.strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.vm.codecache import CacheFull, CodeCache

from tests.test_vm_codecache import translated_at

_ENTRIES = [0x1000 + i * 0x100 for i in range(24)]


class CodeCacheMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.cache = CodeCache(code_capacity=4096, data_capacity=16384)
        self.resident = {}

    @rule(
        entry=st.sampled_from(_ENTRIES),
        link_target=st.one_of(st.none(), st.sampled_from(_ENTRIES)),
        n=st.integers(2, 8),
    )
    def insert(self, entry, link_target, n):
        if entry in self.resident:
            return
        translated = translated_at(entry, target=link_target, n=n)
        try:
            self.cache.insert(translated)
        except CacheFull:
            return
        self.resident[entry] = translated

    @precondition(lambda self: self.resident)
    @rule(data=st.data())
    def evict(self, data):
        entry = data.draw(st.sampled_from(sorted(self.resident)))
        self.cache.evict(entry)
        del self.resident[entry]

    @rule(
        start=st.sampled_from(_ENTRIES),
        span=st.integers(0x80, 0x600),
    )
    def evict_range(self, start, span):
        evicted = self.cache.evict_range(start, start + span)
        for translated in evicted:
            del self.resident[translated.entry]

    @rule()
    def flush(self):
        self.cache.flush()
        self.resident.clear()

    # -- invariants -----------------------------------------------------------

    @invariant()
    def occupancy_matches_contents(self):
        code = sum(t.code_size for t in self.resident.values())
        data = sum(t.data_size for t in self.resident.values())
        assert self.cache.occupancy() == (code, data)
        assert code <= self.cache.code_capacity
        assert data <= self.cache.data_capacity

    @invariant()
    def map_answers_exactly_residents(self):
        assert len(self.cache) == len(self.resident)
        for entry, translated in self.resident.items():
            assert self.cache.lookup(entry) is translated
        for entry in _ENTRIES:
            if entry not in self.resident:
                assert self.cache.lookup(entry) is None

    @invariant()
    def links_point_at_residents(self):
        for translated in self.resident.values():
            for slot in translated.links:
                if slot.is_linked:
                    assert slot.linked_entry in self.resident

    @invariant()
    def resident_exits_to_resident_targets_are_linked(self):
        """Eager linking: a linkable exit whose target is resident must be
        linked (insert patches both directions)."""
        for translated in self.resident.values():
            for slot in translated.links:
                if slot.is_linkable and slot.exit.target in self.resident:
                    assert slot.is_linked


TestCodeCacheStateful = CodeCacheMachine.TestCase
