"""Stateful property testing of the code cache (hypothesis RuleBasedStateMachine).

Random interleavings of insert / evict / evict_range / flush must preserve
the cache's structural invariants:

* occupancy equals the sum of resident trace sizes, never exceeds capacity;
* every linked exit points at a *resident* trace entry;
* the translation map answers exactly the resident entries;
* eviction unlinks every incoming pointer to the victim;
* superblock regions die as a unit with any member (evict, evict_range
  or flush), the reverse member index never outlives them, and a dead
  region's head loses its fused closure;
* an unlinked slot has no residual hop profile (stale hotness from a
  dead link must never feed the fusion threshold).
"""

import hypothesis.strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.vm.codecache import CacheFull, CodeCache

from tests.test_vm_codecache import translated_at

_ENTRIES = [0x1000 + i * 0x100 for i in range(24)]


class CodeCacheMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.cache = CodeCache(code_capacity=4096, data_capacity=16384)
        self.resident = {}
        #: Mirror of the cache's region table: head -> member tuple.
        self.regions = {}

    def _drop_regions_for(self, entry):
        for head, members in list(self.regions.items()):
            if entry in members:
                del self.regions[head]

    @rule(
        entry=st.sampled_from(_ENTRIES),
        link_target=st.one_of(st.none(), st.sampled_from(_ENTRIES)),
        n=st.integers(2, 8),
    )
    def insert(self, entry, link_target, n):
        if entry in self.resident:
            return
        translated = translated_at(entry, target=link_target, n=n)
        try:
            self.cache.insert(translated)
        except CacheFull:
            return
        self.resident[entry] = translated

    @precondition(lambda self: self.resident)
    @rule(data=st.data())
    def evict(self, data):
        entry = data.draw(st.sampled_from(sorted(self.resident)))
        self.cache.evict(entry)
        del self.resident[entry]
        self._drop_regions_for(entry)

    @rule(
        start=st.sampled_from(_ENTRIES),
        span=st.integers(0x80, 0x600),
    )
    def evict_range(self, start, span):
        evicted = self.cache.evict_range(start, start + span)
        for translated in evicted:
            del self.resident[translated.entry]
            self._drop_regions_for(translated.entry)

    @rule()
    def flush(self):
        self.cache.flush()
        self.resident.clear()
        self.regions.clear()

    @precondition(lambda self: len(self.resident) >= 2)
    @rule(data=st.data(), size=st.integers(2, 4))
    def fuse_region(self, data, size):
        """Register a region over region-free residents, installing a
        marker fused body on the head (as the fusion driver does)."""
        free = sorted(
            entry for entry in self.resident
            if self.cache.region_of(entry) is None
        )
        if len(free) < 2:
            return
        members = tuple(data.draw(st.permutations(free))[: min(size, len(free))])
        head = members[0]
        self.resident[head].compiled_body = ("region", members)
        self.cache.register_region(list(members))
        self.regions[head] = members

    @precondition(lambda self: self.resident)
    @rule(data=st.data(), hops=st.integers(1, 40))
    def take_hops(self, data, hops):
        """Profile a patched slot, as the chain trampoline would."""
        entry = data.draw(st.sampled_from(sorted(self.resident)))
        for slot in self.resident[entry].links:
            if slot.is_linked:
                slot.hop_count += hops

    # -- invariants -----------------------------------------------------------

    @invariant()
    def occupancy_matches_contents(self):
        code = sum(t.code_size for t in self.resident.values())
        data = sum(t.data_size for t in self.resident.values())
        assert self.cache.occupancy() == (code, data)
        assert code <= self.cache.code_capacity
        assert data <= self.cache.data_capacity

    @invariant()
    def map_answers_exactly_residents(self):
        assert len(self.cache) == len(self.resident)
        for entry, translated in self.resident.items():
            assert self.cache.lookup(entry) is translated
        for entry in _ENTRIES:
            if entry not in self.resident:
                assert self.cache.lookup(entry) is None

    @invariant()
    def links_point_at_residents(self):
        for translated in self.resident.values():
            for slot in translated.links:
                if slot.is_linked:
                    assert slot.linked_entry in self.resident

    @invariant()
    def resident_exits_to_resident_targets_are_linked(self):
        """Eager linking: a linkable exit whose target is resident must be
        linked (insert patches both directions)."""
        for translated in self.resident.values():
            for slot in translated.links:
                if slot.is_linkable and slot.exit.target in self.resident:
                    assert slot.is_linked

    @invariant()
    def unlinked_slots_carry_no_hop_profile(self):
        """Unlink resets the hotness profile: a re-formed link must
        re-prove chain stability before it can fuse."""
        for translated in self.resident.values():
            for slot in translated.links:
                if not slot.is_linked:
                    assert slot.hop_count == 0

    @invariant()
    def regions_die_with_any_member(self):
        """The cache's region table matches the mirror (which drops a
        region the moment any member is evicted or flushed), members of
        live regions are resident, and the reverse index is exact."""
        assert self.cache.regions() == self.regions
        for head, members in self.regions.items():
            assert head == members[0]
            for member in members:
                assert member in self.resident
                assert self.cache.region_of(member) == head
        for entry in self.resident:
            head = self.cache.region_of(entry)
            if head is not None:
                assert entry in self.regions[head]

    @invariant()
    def dead_region_heads_lose_their_fused_body(self):
        """A region's fused closure never outlives the region: once any
        member leaves the cache, a still-resident head must have had
        ``invalidate_compiled`` called on it."""
        for entry, translated in self.resident.items():
            body = translated.compiled_body
            if isinstance(body, tuple) and body and body[0] == "region":
                assert entry in self.regions, entry
                assert body[1] == self.regions[entry]


TestCodeCacheStateful = CodeCacheMachine.TestCase
