"""Translation-request timelines (Figure 2(a)).

The paper visualizes VM behavior as vertical lines marking translation
requests over the run; dense lines at startup, sparse ones in the steady
state — except 176.gcc, which keeps translating throughout.  These
helpers turn a run's translation events into that picture and into
summary statistics the benchmarks assert on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.vm.stats import VMStats


@dataclass
class TimelineSummary:
    """Distribution of translation requests over a run."""

    total_events: int
    total_cycles: float
    #: Fraction of translation events in the first decile of run time.
    early_fraction: float
    #: Fraction of translation events in the last half of run time.
    late_fraction: float
    #: Per-decile event counts (10 bins over the run).
    decile_counts: List[int]


def summarize_timeline(stats: VMStats) -> TimelineSummary:
    """Bin translation events over the run's cycle span."""
    events = stats.translation_events
    total_cycles = stats.total_cycles
    bins = [0] * 10
    if total_cycles > 0:
        for timestamp, _entry in events:
            index = min(9, int(10 * timestamp / total_cycles))
            bins[index] += 1
    total = len(events)
    early = bins[0] / total if total else 0.0
    late = sum(bins[5:]) / total if total else 0.0
    return TimelineSummary(
        total_events=total,
        total_cycles=total_cycles,
        early_fraction=early,
        late_fraction=late,
        decile_counts=bins,
    )


def render_timeline(stats: VMStats, width: int = 80) -> str:
    """ASCII rendering of Figure 2(a): one row, '|' per busy column.

    Columns with at least one translation request print '|'; quiet
    columns (pure code-cache execution) print spaces.
    """
    total = stats.total_cycles
    columns = [" "] * width
    if total > 0:
        for timestamp, _entry in stats.translation_events:
            index = min(width - 1, int(width * timestamp / total))
            columns[index] = "|"
    return "".join(columns)


def startup_dominated(stats: VMStats, threshold: float = 0.5) -> bool:
    """True when most translation happens in the first decile of the run.

    The Figure 2(a) profile of every SPEC benchmark except gcc.
    """
    return summarize_timeline(stats).early_fraction >= threshold
