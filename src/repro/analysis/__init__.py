"""Measurement and reporting helpers for the evaluation."""

from repro.analysis.coverage import (
    average_cross_coverage,
    coverage_fraction,
    coverage_matrix,
    footprint_bytes,
    library_coverage_fraction,
    library_fraction,
)
from repro.analysis.overhead import (
    OverheadBreakdown,
    breakdown,
    improvement_percent,
    slowdown_vs_native,
    speedup,
)
from repro.analysis.report import format_bar_chart, format_matrix, format_table
from repro.analysis.timeline import (
    TimelineSummary,
    render_timeline,
    startup_dominated,
    summarize_timeline,
)

__all__ = [
    "OverheadBreakdown",
    "TimelineSummary",
    "average_cross_coverage",
    "breakdown",
    "coverage_fraction",
    "coverage_matrix",
    "footprint_bytes",
    "format_bar_chart",
    "format_matrix",
    "format_table",
    "improvement_percent",
    "library_coverage_fraction",
    "library_fraction",
    "render_timeline",
    "slowdown_vs_native",
    "speedup",
    "startup_dominated",
    "summarize_timeline",
]
