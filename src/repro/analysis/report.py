"""Plain-text rendering of the experiment tables and figures.

Benchmarks print their results through these helpers so the regenerated
rows/series read like the paper's tables.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence


def format_matrix(
    matrix: Mapping[str, Mapping[str, float]],
    order: Sequence[str] = (),
    title: str = "",
    as_percent: bool = True,
) -> str:
    """Render a coverage-style matrix (rows = covered, cols = covering)."""
    names = list(order) if order else list(matrix)
    width = max(len(name) for name in names) + 2
    lines = []
    if title:
        lines.append(title)
    header = " " * width + "".join("%*s" % (width, name) for name in names)
    lines.append(header)
    for name_a in names:
        cells = []
        for name_b in names:
            value = matrix[name_a][name_b]
            if as_percent:
                cells.append("%*.0f%%" % (width - 1, 100 * value))
            else:
                cells.append("%*.2f" % (width, value))
        lines.append("%-*s%s" % (width, name_a, "".join(cells)))
    return "\n".join(lines)


def format_table(
    rows: List[Dict[str, object]],
    columns: Sequence[str],
    title: str = "",
) -> str:
    """Render a list of row dicts as an aligned text table."""
    widths = {
        column: max(len(column), *(len(_cell(row.get(column))) for row in rows))
        for column in columns
    }
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join("%-*s" % (widths[c], c) for c in columns))
    lines.append("  ".join("-" * widths[c] for c in columns))
    for row in rows:
        lines.append(
            "  ".join("%-*s" % (widths[c], _cell(row.get(c))) for c in columns)
        )
    return "\n".join(lines)


def _cell(value: object) -> str:
    if value is None:
        return ""
    if isinstance(value, float):
        return "%.1f" % value
    return str(value)


def format_bar_chart(
    values: Mapping[str, float],
    title: str = "",
    width: int = 50,
    unit: str = "",
) -> str:
    """Horizontal ASCII bars, largest value scaled to ``width``."""
    if not values:
        return title
    peak = max(values.values()) or 1.0
    label_width = max(len(name) for name in values) + 1
    lines = [title] if title else []
    for name, value in values.items():
        bar = "#" * max(0, int(width * value / peak))
        lines.append(
            "%-*s %s %.1f%s" % (label_width, name, bar, value, unit)
        )
    return "\n".join(lines)
