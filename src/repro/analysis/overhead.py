"""Overhead decomposition and improvement metrics.

The helper vocabulary for every results section: execution-time
improvement percentages (Figures 5-8), slowdown factors (Figure 2(b)),
and the three-way native / translated-code / VM-overhead breakdown of
Figure 5(b).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.machine.cpu import RunResult
from repro.vm.engine import VMRunResult


def improvement_percent(baseline_cycles: float, improved_cycles: float) -> float:
    """Execution-time improvement of ``improved`` over ``baseline``, in %.

    The paper's headline metric: 90% means the run takes a tenth of the
    baseline's time.  Negative values mean a slowdown.
    """
    if baseline_cycles <= 0:
        raise ValueError("baseline must be positive")
    return 100.0 * (1.0 - improved_cycles / baseline_cycles)


def speedup(baseline_cycles: float, improved_cycles: float) -> float:
    """Baseline/improved ratio (the paper's '400% speedup' is 4.0x)."""
    if improved_cycles <= 0:
        raise ValueError("improved must be positive")
    return baseline_cycles / improved_cycles


def slowdown_vs_native(native: RunResult, under_vm: VMRunResult) -> float:
    """How many times slower the VM run is than the native run."""
    return under_vm.stats.total_cycles / native.cycles


@dataclass
class OverheadBreakdown:
    """One cluster of Figure 5(b): native vs. VM execution decomposition."""

    name: str
    native_cycles: float
    translated_code_cycles: float
    vm_overhead_cycles: float

    @property
    def total_vm_cycles(self) -> float:
        return self.translated_code_cycles + self.vm_overhead_cycles

    @property
    def vm_overhead_fraction(self) -> float:
        total = self.total_vm_cycles
        return self.vm_overhead_cycles / total if total else 0.0

    def to_dict(self) -> Dict[str, float]:
        return {
            "native": self.native_cycles,
            "translated_code": self.translated_code_cycles,
            "vm_overhead": self.vm_overhead_cycles,
            "total_vm": self.total_vm_cycles,
        }


def breakdown(name: str, native: RunResult, under_vm: VMRunResult) -> OverheadBreakdown:
    """Build a Figure 5(b)-style cluster from a native/VM run pair."""
    return OverheadBreakdown(
        name=name,
        native_cycles=native.cycles,
        translated_code_cycles=under_vm.stats.translated_code_cycles,
        vm_overhead_cycles=under_vm.stats.vm_overhead_cycles,
    )
