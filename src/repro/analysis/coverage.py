"""Code-coverage computation across runs.

Coverage here is the paper's §4.3 definition: "Code coverage is the
amount of static code corresponding to an input also executed by other
inputs" — measured over trace identities (image path, offset, size), the
static-code units the VM actually translates.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Sequence, Set, Tuple

TraceIdentity = Tuple[str, int, int]  # (image_path, image_offset, size)


def footprint_bytes(identities: Iterable[TraceIdentity]) -> int:
    """Total static code bytes in a set of trace identities."""
    return sum(size for _path, _offset, size in identities)


def coverage_fraction(
    covered: Set[TraceIdentity], by: Set[TraceIdentity]
) -> float:
    """Fraction of ``covered``'s static code also present in ``by``.

    Weighted by trace size; 1.0 when ``by`` executes everything
    ``covered`` does (same-input persistence).
    """
    total = footprint_bytes(covered)
    if total == 0:
        return 1.0
    shared = footprint_bytes(covered & by)
    return shared / total


def coverage_matrix(
    footprints: Mapping[str, Set[TraceIdentity]],
    order: Sequence[str] = (),
) -> Dict[str, Dict[str, float]]:
    """Pairwise coverage, Table 3 layout.

    ``matrix[a][b]`` = fraction of ``a``'s code also executed by ``b``
    (rows are the covered input, columns the covering input; the diagonal
    is 1.0).
    """
    names = list(order) if order else list(footprints)
    matrix: Dict[str, Dict[str, float]] = {}
    for name_a in names:
        matrix[name_a] = {}
        for name_b in names:
            matrix[name_a][name_b] = coverage_fraction(
                footprints[name_a], footprints[name_b]
            )
    return matrix


def average_cross_coverage(
    footprints: Mapping[str, Set[TraceIdentity]]
) -> float:
    """Mean off-diagonal coverage — Figure 4's 'code invariance' scale."""
    names = list(footprints)
    if len(names) < 2:
        return 1.0
    total = 0.0
    count = 0
    for name_a in names:
        for name_b in names:
            if name_a == name_b:
                continue
            total += coverage_fraction(footprints[name_a], footprints[name_b])
            count += 1
    return total / count


def library_coverage_fraction(
    covered: Set[TraceIdentity],
    by: Set[TraceIdentity],
    library_prefix: str = "lib",
) -> float:
    """Table 4's metric: coverage restricted to shared-library code."""
    covered_lib = {
        identity for identity in covered if identity[0].startswith(library_prefix)
    }
    by_lib = {
        identity for identity in by if identity[0].startswith(library_prefix)
    }
    return coverage_fraction(covered_lib, by_lib)


def library_fraction(identities: Set[TraceIdentity], library_prefix: str = "lib") -> float:
    """Fraction of a footprint's bytes that live in shared libraries
    (Table 1's "% Lib code")."""
    total = footprint_bytes(identities)
    if total == 0:
        return 0.0
    lib = footprint_bytes(
        identity for identity in identities if identity[0].startswith(library_prefix)
    )
    return lib / total
