"""Persistent code caching for a dynamic binary instrumentation engine.

A full-system reproduction of *"Persistent Code Caching: Exploiting Code
Reuse Across Executions and Applications"* (CGO 2007): a Pin-like run-time
compilation system for a synthetic machine, extended with persistent code
caches that are stored on disk, validated with mapping keys, accumulated
across runs, and shared across applications.

Quick tour
----------
>>> from repro.workloads import build_gui_suite, run_vm
>>> from repro.persist import CacheDatabase, PersistenceConfig
>>> apps, _store = build_gui_suite()
>>> db = CacheDatabase("/tmp/pcc-demo")
>>> cold = run_vm(apps["gftp"], "startup",
...               persistence=PersistenceConfig(database=db))
>>> warm = run_vm(apps["gftp"], "startup",
...               persistence=PersistenceConfig(database=db))
>>> warm.stats.traces_translated
0

Subpackages
-----------
- :mod:`repro.isa` — the synthetic instruction set.
- :mod:`repro.binfmt` — executable/shared-library images.
- :mod:`repro.loader` — address spaces and dynamic linking.
- :mod:`repro.machine` — the simulated CPU and cost model.
- :mod:`repro.vm` — the DBI engine (traces, code cache, dispatcher, tools).
- :mod:`repro.persist` — persistent code caches (the paper's contribution).
- :mod:`repro.workloads` — SPEC2K/GUI/Oracle workload analogs.
- :mod:`repro.tools` — example instrumentation clients.
- :mod:`repro.analysis` — coverage/overhead/timeline measurement helpers.
"""

from repro.machine.costs import CostModel, DEFAULT_COST_MODEL
from repro.persist.database import CacheDatabase
from repro.persist.manager import PersistenceConfig, PersistentCacheSession
from repro.vm.engine import Engine, VMConfig, VMRunResult, VM_VERSION
from repro.workloads.harness import Workload, run_native, run_vm

__version__ = "1.0.0"

__all__ = [
    "CacheDatabase",
    "CostModel",
    "DEFAULT_COST_MODEL",
    "Engine",
    "PersistenceConfig",
    "PersistentCacheSession",
    "VMConfig",
    "VMRunResult",
    "VM_VERSION",
    "Workload",
    "__version__",
    "run_native",
    "run_vm",
]
