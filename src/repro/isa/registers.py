"""Register file definition for the synthetic ISA.

The ISA exposes 32 general-purpose registers.  A handful have conventional
roles mirroring common RISC ABIs; the conventions matter to the workload
builder (which emits ABI-respecting code) and to the translator's register
liveness analysis (which must know which registers carry values across
calls).

Conventions
-----------
``r0`` (``zero``)
    Hardwired zero: reads return 0, writes are discarded.
``r1`` (``rv``)
    Return value / syscall number and syscall result.
``r2``-``r9`` (``a0``-``a7``)
    Argument registers, caller-saved.
``r10``-``r25`` (``t0``-``t15``)
    Temporaries, caller-saved.
``r26``, ``r27`` (``s0``, ``s1``)
    Callee-saved.
``r28`` (``sp``)
    Stack pointer.
``r29`` (``fp``)
    Frame pointer.
``r30`` (``lr``)
    Link register, written by ``call``/``callr``.
``r31`` (``at``)
    Assembler/VM temporary.  The run-time compiler is allowed to clobber it
    in translated code, which is how the dispatcher threads control between
    traces without spilling application state.
"""

from __future__ import annotations

NUM_REGISTERS = 32

ZERO = 0
RV = 1
A0 = 2
A1 = 3
A2 = 4
A3 = 5
A4 = 6
A5 = 7
A6 = 8
A7 = 9
T0 = 10
T15 = 25
S0 = 26
S1 = 27
SP = 28
FP = 29
LR = 30
AT = 31

_SPECIAL_NAMES = {
    ZERO: "zero",
    RV: "rv",
    SP: "sp",
    FP: "fp",
    LR: "lr",
    AT: "at",
}

_ALIASES = dict(_SPECIAL_NAMES)
_ALIASES.update({A0 + i: "a%d" % i for i in range(8)})
_ALIASES.update({T0 + i: "t%d" % i for i in range(16)})
_ALIASES.update({S0: "s0", S1: "s1"})

# Name -> register number, accepting both "rN" and ABI aliases.
_NAME_TO_REG = {"r%d" % n: n for n in range(NUM_REGISTERS)}
for _reg, _name in _ALIASES.items():
    _NAME_TO_REG[_name] = _reg

CALLER_SAVED = tuple(range(RV, T15 + 1))
CALLEE_SAVED = (S0, S1, SP, FP)


def register_name(reg: int) -> str:
    """Return the canonical display name for register number ``reg``."""
    if not 0 <= reg < NUM_REGISTERS:
        raise ValueError("register out of range: %r" % (reg,))
    return _ALIASES.get(reg, "r%d" % reg)


def parse_register(name: str) -> int:
    """Parse a register name (``r7``, ``sp``, ``a0``, ...) to its number."""
    reg = _NAME_TO_REG.get(name.strip().lower())
    if reg is None:
        raise ValueError("unknown register name: %r" % (name,))
    return reg


def is_valid_register(reg: int) -> bool:
    """Return True if ``reg`` is a legal register number."""
    return 0 <= reg < NUM_REGISTERS
