"""Instruction representation and constructor helpers.

An :class:`Instruction` is an immutable 4-tuple-like record of
``(opcode, rd, rs1, rs2, imm)``.  All instructions occupy
:data:`INSTRUCTION_SIZE` bytes in memory; code addresses are always
instruction-aligned.

The module-level constructor helpers (``add``, ``movi``, ``beq``, ...) are
the idiomatic way to build code programmatically; the workload builder and
the tests use them heavily.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa import registers
from repro.isa.opcodes import (
    Opcode,
    is_call,
    is_conditional_branch,
    is_control_flow,
    is_indirect,
    is_memory,
    is_unconditional,
)

#: Size of every encoded instruction, in bytes.
INSTRUCTION_SIZE = 8

#: Immediate field range (signed 32-bit).
IMM_MIN = -(2**31)
IMM_MAX = 2**31 - 1


@dataclass(frozen=True)
class Instruction:
    """A single decoded instruction.

    Attributes:
        opcode: The operation.
        rd: Destination register (0 when unused).
        rs1: First source register (0 when unused).
        rs2: Second source register (0 when unused).
        imm: Signed 32-bit immediate; for ``jmp``/``call`` it is an absolute
            byte address, for conditional branches a PC-relative byte offset
            (relative to the *next* instruction), for ALU/memory ops a plain
            operand.
    """

    opcode: Opcode
    rd: int = 0
    rs1: int = 0
    rs2: int = 0
    imm: int = 0

    def __post_init__(self) -> None:
        for reg in (self.rd, self.rs1, self.rs2):
            if not registers.is_valid_register(reg):
                raise ValueError("register out of range: %r" % (reg,))
        if not IMM_MIN <= self.imm <= IMM_MAX:
            raise ValueError("immediate out of range: %r" % (self.imm,))

    def as_tuple(self):
        """Flatten to ``(opcode_int, rd, rs1, rs2, imm)``.

        The execution core runs on these plain tuples ("micro-ops"):
        indexing a tuple is several times faster than dataclass attribute
        access, which dominates interpreter throughput.
        """
        return (int(self.opcode), self.rd, self.rs1, self.rs2, self.imm)

    # -- control-flow taxonomy, delegated to the opcode tables ------------

    @property
    def is_control_flow(self) -> bool:
        """True for any instruction that can redirect the PC."""
        return is_control_flow(self.opcode)

    @property
    def is_conditional_branch(self) -> bool:
        """True for two-way PC-relative branches."""
        return is_conditional_branch(self.opcode)

    @property
    def is_unconditional(self) -> bool:
        """True if control always transfers away (trace end)."""
        return is_unconditional(self.opcode)

    @property
    def is_indirect(self) -> bool:
        """True if the transfer target comes from a register."""
        return is_indirect(self.opcode)

    @property
    def is_call(self) -> bool:
        """True for instructions that write the link register."""
        return is_call(self.opcode)

    @property
    def is_memory(self) -> bool:
        """True for loads and stores."""
        return is_memory(self.opcode)

    def branch_target(self, pc: int) -> int:
        """Resolve the static target of a direct transfer at address ``pc``.

        For conditional branches the immediate is relative to the fall
        through address; for ``jmp``/``call`` it is absolute.  Raises
        ``ValueError`` for indirect or non-control-flow instructions whose
        target is not statically known.
        """
        if self.is_conditional_branch:
            return pc + INSTRUCTION_SIZE + self.imm
        if self.opcode in (Opcode.JMP, Opcode.CALL):
            return self.imm
        raise ValueError(
            "no static target for %s" % (self.opcode.name.lower(),)
        )

    def registers_read(self) -> frozenset:
        """Registers whose values this instruction consumes."""
        read = set()
        op = self.opcode
        if op in (
            Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.DIV, Opcode.AND,
            Opcode.OR, Opcode.XOR, Opcode.SHL, Opcode.SHR, Opcode.SLT,
        ):
            read.update((self.rs1, self.rs2))
        elif op in (
            Opcode.ADDI, Opcode.ANDI, Opcode.ORI, Opcode.XORI,
            Opcode.SHLI, Opcode.SHRI, Opcode.LD,
        ):
            read.add(self.rs1)
        elif op == Opcode.ST:
            read.update((self.rs1, self.rs2))
        elif op in (Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE):
            read.update((self.rs1, self.rs2))
        elif op in (Opcode.JR, Opcode.CALLR):
            read.add(self.rs1)
        elif op == Opcode.RET:
            read.add(registers.LR)
        elif op == Opcode.SYSCALL:
            # Syscall number plus the argument registers.
            read.update((registers.RV, registers.A0, registers.A1,
                         registers.A2, registers.A3))
        read.discard(registers.ZERO)
        return frozenset(read)

    def registers_written(self) -> frozenset:
        """Registers this instruction defines."""
        op = self.opcode
        written = set()
        if op in (
            Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.DIV, Opcode.AND,
            Opcode.OR, Opcode.XOR, Opcode.SHL, Opcode.SHR, Opcode.SLT,
            Opcode.ADDI, Opcode.ANDI, Opcode.ORI, Opcode.XORI,
            Opcode.SHLI, Opcode.SHRI, Opcode.LUI, Opcode.MOVI, Opcode.LD,
        ):
            written.add(self.rd)
        elif op in (Opcode.CALL, Opcode.CALLR):
            written.add(registers.LR)
        elif op == Opcode.SYSCALL:
            written.add(registers.RV)
        written.discard(registers.ZERO)
        return frozenset(written)


# ---------------------------------------------------------------------------
# Constructor helpers.
# ---------------------------------------------------------------------------

def nop() -> Instruction:
    """No operation."""
    return Instruction(Opcode.NOP)


def add(rd: int, rs1: int, rs2: int) -> Instruction:
    """rd = rs1 + rs2."""
    return Instruction(Opcode.ADD, rd=rd, rs1=rs1, rs2=rs2)


def sub(rd: int, rs1: int, rs2: int) -> Instruction:
    """rd = rs1 - rs2."""
    return Instruction(Opcode.SUB, rd=rd, rs1=rs1, rs2=rs2)


def mul(rd: int, rs1: int, rs2: int) -> Instruction:
    """rd = rs1 * rs2."""
    return Instruction(Opcode.MUL, rd=rd, rs1=rs1, rs2=rs2)


def div(rd: int, rs1: int, rs2: int) -> Instruction:
    """rd = rs1 / rs2, truncated toward zero."""
    return Instruction(Opcode.DIV, rd=rd, rs1=rs1, rs2=rs2)


def and_(rd: int, rs1: int, rs2: int) -> Instruction:
    """rd = rs1 & rs2."""
    return Instruction(Opcode.AND, rd=rd, rs1=rs1, rs2=rs2)


def or_(rd: int, rs1: int, rs2: int) -> Instruction:
    """rd = rs1 | rs2."""
    return Instruction(Opcode.OR, rd=rd, rs1=rs1, rs2=rs2)


def xor(rd: int, rs1: int, rs2: int) -> Instruction:
    """rd = rs1 ^ rs2."""
    return Instruction(Opcode.XOR, rd=rd, rs1=rs1, rs2=rs2)


def shl(rd: int, rs1: int, rs2: int) -> Instruction:
    """rd = rs1 << (rs2 & 63)."""
    return Instruction(Opcode.SHL, rd=rd, rs1=rs1, rs2=rs2)


def shr(rd: int, rs1: int, rs2: int) -> Instruction:
    """rd = rs1 >> (rs2 & 63), logical."""
    return Instruction(Opcode.SHR, rd=rd, rs1=rs1, rs2=rs2)


def slt(rd: int, rs1: int, rs2: int) -> Instruction:
    """rd = 1 if rs1 < rs2 else 0 (signed)."""
    return Instruction(Opcode.SLT, rd=rd, rs1=rs1, rs2=rs2)


def addi(rd: int, rs1: int, imm: int) -> Instruction:
    """rd = rs1 + imm."""
    return Instruction(Opcode.ADDI, rd=rd, rs1=rs1, imm=imm)


def andi(rd: int, rs1: int, imm: int) -> Instruction:
    """rd = rs1 & imm."""
    return Instruction(Opcode.ANDI, rd=rd, rs1=rs1, imm=imm)


def ori(rd: int, rs1: int, imm: int) -> Instruction:
    """rd = rs1 | imm."""
    return Instruction(Opcode.ORI, rd=rd, rs1=rs1, imm=imm)


def xori(rd: int, rs1: int, imm: int) -> Instruction:
    """rd = rs1 ^ imm."""
    return Instruction(Opcode.XORI, rd=rd, rs1=rs1, imm=imm)


def shli(rd: int, rs1: int, imm: int) -> Instruction:
    """rd = rs1 << (imm & 63)."""
    return Instruction(Opcode.SHLI, rd=rd, rs1=rs1, imm=imm)


def shri(rd: int, rs1: int, imm: int) -> Instruction:
    """rd = rs1 >> (imm & 63), logical."""
    return Instruction(Opcode.SHRI, rd=rd, rs1=rs1, imm=imm)


def lui(rd: int, imm: int) -> Instruction:
    """rd = imm << 16."""
    return Instruction(Opcode.LUI, rd=rd, imm=imm)


def movi(rd: int, imm: int) -> Instruction:
    """rd = imm (signed 32-bit)."""
    return Instruction(Opcode.MOVI, rd=rd, imm=imm)


def ld(rd: int, rs1: int, imm: int = 0) -> Instruction:
    """rd = mem[rs1 + imm]."""
    return Instruction(Opcode.LD, rd=rd, rs1=rs1, imm=imm)


def st(rs1: int, rs2: int, imm: int = 0) -> Instruction:
    """Store ``rs2`` to ``mem[rs1 + imm]``."""
    return Instruction(Opcode.ST, rs1=rs1, rs2=rs2, imm=imm)


def beq(rs1: int, rs2: int, offset: int) -> Instruction:
    """Branch to pc+8+offset if rs1 == rs2."""
    return Instruction(Opcode.BEQ, rs1=rs1, rs2=rs2, imm=offset)


def bne(rs1: int, rs2: int, offset: int) -> Instruction:
    """Branch to pc+8+offset if rs1 != rs2."""
    return Instruction(Opcode.BNE, rs1=rs1, rs2=rs2, imm=offset)


def blt(rs1: int, rs2: int, offset: int) -> Instruction:
    """Branch to pc+8+offset if rs1 < rs2 (signed)."""
    return Instruction(Opcode.BLT, rs1=rs1, rs2=rs2, imm=offset)


def bge(rs1: int, rs2: int, offset: int) -> Instruction:
    """Branch to pc+8+offset if rs1 >= rs2 (signed)."""
    return Instruction(Opcode.BGE, rs1=rs1, rs2=rs2, imm=offset)


def jmp(target: int) -> Instruction:
    """Unconditional jump to the absolute address ``target``."""
    return Instruction(Opcode.JMP, imm=target)


def call(target: int) -> Instruction:
    """lr = pc+8; jump to the absolute address ``target``."""
    return Instruction(Opcode.CALL, imm=target)


def jr(rs1: int) -> Instruction:
    """Unconditional jump to the address in ``rs1``."""
    return Instruction(Opcode.JR, rs1=rs1)


def callr(rs1: int) -> Instruction:
    """lr = pc+8; jump to the address in ``rs1``."""
    return Instruction(Opcode.CALLR, rs1=rs1)


def ret() -> Instruction:
    """Jump to the address in ``lr``."""
    return Instruction(Opcode.RET)


def syscall() -> Instruction:
    """Trap into the OS (number in ``rv``, args in ``a0``-``a3``)."""
    return Instruction(Opcode.SYSCALL)


def halt() -> Instruction:
    """Stop the machine with exit status 0."""
    return Instruction(Opcode.HALT)
