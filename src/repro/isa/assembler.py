"""A small two-pass assembler for the synthetic ISA.

The assembler exists for tests, examples, and hand-written fixtures; the
workload generators build :class:`~repro.isa.instructions.Instruction`
objects directly.  Supported syntax::

    ; comment, or # comment
    label:
        movi a0, 10
        addi a0, a0, -1
        bne  a0, zero, loop      ; label or numeric offset
        jmp  done                ; label or absolute address
        call helper              ; emits a relocation if label is external
    done:
        movi rv, 0               ; SYS_EXIT
        syscall

Labels used by ``jmp``/``call`` that are not defined in the unit are
recorded as external references; the returned :class:`AssemblyUnit` carries
relocation records for the image builder to resolve at static-link time.
Local ``jmp``/``call`` targets also get relocation records (absolute
addresses must be rebased when the image is mapped), matching how
:mod:`repro.binfmt.relocations` works.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.isa import instructions as ins
from repro.isa.instructions import INSTRUCTION_SIZE, Instruction
from repro.isa.opcodes import Opcode
from repro.isa.registers import parse_register


class AssemblyError(Exception):
    """Raised on malformed assembly input."""

    def __init__(self, message: str, line_number: Optional[int] = None):
        if line_number is not None:
            message = "line %d: %s" % (line_number, message)
        super().__init__(message)
        self.line_number = line_number


@dataclass
class AssemblyUnit:
    """The result of assembling one source text.

    Attributes:
        code: The assembled instructions, in order.
        labels: Label name -> byte offset within the unit.
        relocations: ``(instruction_index, symbol)`` pairs for every
            ``jmp``/``call`` whose immediate holds a unit-relative offset
            that must be rebased (local labels) or resolved (external
            symbols) when the unit is placed in an image.
    """

    code: List[Instruction] = field(default_factory=list)
    labels: Dict[str, int] = field(default_factory=dict)
    relocations: List[Tuple[int, str]] = field(default_factory=list)

    @property
    def size(self) -> int:
        return len(self.code) * INSTRUCTION_SIZE


_LABEL_RE = re.compile(r"^([A-Za-z_.][\w.$]*):\s*(.*)$")
_MEM_OPERAND_RE = re.compile(r"^(-?\d+)\((\w+)\)$")

_THREE_REG = {
    "add": Opcode.ADD, "sub": Opcode.SUB, "mul": Opcode.MUL,
    "div": Opcode.DIV, "and": Opcode.AND, "or": Opcode.OR,
    "xor": Opcode.XOR, "shl": Opcode.SHL, "shr": Opcode.SHR,
    "slt": Opcode.SLT,
}
_TWO_REG_IMM = {
    "addi": Opcode.ADDI, "andi": Opcode.ANDI, "ori": Opcode.ORI,
    "xori": Opcode.XORI, "shli": Opcode.SHLI, "shri": Opcode.SHRI,
}
_BRANCHES = {
    "beq": Opcode.BEQ, "bne": Opcode.BNE,
    "blt": Opcode.BLT, "bge": Opcode.BGE,
}
_NO_OPERAND = {
    "ret": Opcode.RET, "syscall": Opcode.SYSCALL,
    "halt": Opcode.HALT, "nop": Opcode.NOP,
}


def _parse_int(text: str, line_number: int) -> int:
    try:
        return int(text, 0)
    except ValueError as exc:
        raise AssemblyError("bad integer %r" % text, line_number) from exc


def _split_operands(rest: str) -> List[str]:
    rest = rest.strip()
    if not rest:
        return []
    return [part.strip() for part in rest.split(",")]


def assemble(source: str) -> AssemblyUnit:
    """Assemble ``source`` text into an :class:`AssemblyUnit`."""
    # Pass 1: strip comments, collect labels and raw statements.
    statements: List[Tuple[int, str]] = []  # (line_number, text)
    labels: Dict[str, int] = {}
    for line_number, raw in enumerate(source.splitlines(), start=1):
        text = re.split(r"[;#]", raw, maxsplit=1)[0].strip()
        while text:
            match = _LABEL_RE.match(text)
            if match:
                label, text = match.group(1), match.group(2).strip()
                if label in labels:
                    raise AssemblyError("duplicate label %r" % label, line_number)
                labels[label] = len(statements) * INSTRUCTION_SIZE
            else:
                statements.append((line_number, text))
                text = ""

    # Pass 2: encode statements.
    unit = AssemblyUnit(labels=labels)
    for index, (line_number, text) in enumerate(statements):
        parts = text.split(None, 1)
        mnemonic = parts[0].lower()
        operands = _split_operands(parts[1]) if len(parts) > 1 else []
        inst = _encode_statement(
            mnemonic, operands, index, labels, unit, line_number
        )
        unit.code.append(inst)
    return unit


def _encode_statement(
    mnemonic: str,
    operands: List[str],
    index: int,
    labels: Dict[str, int],
    unit: AssemblyUnit,
    line_number: int,
) -> Instruction:
    def need(count: int) -> None:
        if len(operands) != count:
            raise AssemblyError(
                "%s expects %d operand(s), got %d"
                % (mnemonic, count, len(operands)),
                line_number,
            )

    def reg(text: str) -> int:
        try:
            return parse_register(text)
        except ValueError as exc:
            raise AssemblyError(str(exc), line_number) from exc

    if mnemonic in _THREE_REG:
        need(3)
        return Instruction(
            _THREE_REG[mnemonic],
            rd=reg(operands[0]), rs1=reg(operands[1]), rs2=reg(operands[2]),
        )
    if mnemonic in _TWO_REG_IMM:
        need(3)
        return Instruction(
            _TWO_REG_IMM[mnemonic],
            rd=reg(operands[0]), rs1=reg(operands[1]),
            imm=_parse_int(operands[2], line_number),
        )
    if mnemonic in ("lui", "movi"):
        need(2)
        opcode = Opcode.LUI if mnemonic == "lui" else Opcode.MOVI
        operand = operands[1]
        if mnemonic == "movi" and not re.match(r"^-?(0x)?[0-9a-fA-F]+$", operand):
            # Address materialization: movi rd, <label> takes the label's
            # address (relocated at load, like jmp/call targets).
            unit.relocations.append((index, operand))
            return Instruction(
                opcode, rd=reg(operands[0]), imm=labels.get(operand, 0)
            )
        return Instruction(
            opcode, rd=reg(operands[0]), imm=_parse_int(operand, line_number)
        )
    if mnemonic in ("ld", "st"):
        need(2)
        match = _MEM_OPERAND_RE.match(operands[1].replace(" ", ""))
        if not match:
            raise AssemblyError(
                "bad memory operand %r (want imm(reg))" % operands[1], line_number
            )
        offset, base_reg = int(match.group(1)), reg(match.group(2))
        if mnemonic == "ld":
            return ins.ld(reg(operands[0]), base_reg, offset)
        return ins.st(base_reg, reg(operands[0]), offset)
    if mnemonic in _BRANCHES:
        need(3)
        target = operands[2]
        if target in labels:
            here = (index + 1) * INSTRUCTION_SIZE
            offset = labels[target] - here
        else:
            offset = _parse_int(target, line_number)
        return Instruction(
            _BRANCHES[mnemonic],
            rs1=reg(operands[0]), rs2=reg(operands[1]), imm=offset,
        )
    if mnemonic in ("jmp", "call"):
        need(1)
        opcode = Opcode.JMP if mnemonic == "jmp" else Opcode.CALL
        target = operands[0]
        if re.match(r"^-?(0x)?[0-9a-fA-F]+$", target) and not target in labels:
            return Instruction(opcode, imm=_parse_int(target, line_number))
        # Symbolic target: immediate holds the unit-relative offset if the
        # label is local (0 if external); a relocation record marks it.
        unit.relocations.append((index, target))
        return Instruction(opcode, imm=labels.get(target, 0))
    if mnemonic in ("jr", "callr"):
        need(1)
        opcode = Opcode.JR if mnemonic == "jr" else Opcode.CALLR
        return Instruction(opcode, rs1=reg(operands[0]))
    if mnemonic in _NO_OPERAND:
        need(0)
        return Instruction(_NO_OPERAND[mnemonic])
    raise AssemblyError("unknown mnemonic %r" % mnemonic, line_number)
