"""Textual disassembly of instructions and code regions.

The output format round-trips through :mod:`repro.isa.assembler`, which the
property tests rely on.
"""

from __future__ import annotations

from typing import List

from repro.isa.encoding import decode_all
from repro.isa.instructions import INSTRUCTION_SIZE, Instruction
from repro.isa.opcodes import Opcode
from repro.isa.registers import register_name

_THREE_REG = {
    Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.DIV, Opcode.AND,
    Opcode.OR, Opcode.XOR, Opcode.SHL, Opcode.SHR, Opcode.SLT,
}
_TWO_REG_IMM = {
    Opcode.ADDI, Opcode.ANDI, Opcode.ORI, Opcode.XORI,
    Opcode.SHLI, Opcode.SHRI,
}
_BRANCHES = {Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE}


def format_instruction(inst: Instruction) -> str:
    """Render one instruction as assembly text."""
    op = inst.opcode
    mnemonic = op.name.lower().rstrip("_")
    if op in _THREE_REG:
        return "%s %s, %s, %s" % (
            mnemonic,
            register_name(inst.rd),
            register_name(inst.rs1),
            register_name(inst.rs2),
        )
    if op in _TWO_REG_IMM:
        return "%s %s, %s, %d" % (
            mnemonic,
            register_name(inst.rd),
            register_name(inst.rs1),
            inst.imm,
        )
    if op in (Opcode.LUI, Opcode.MOVI):
        return "%s %s, %d" % (mnemonic, register_name(inst.rd), inst.imm)
    if op == Opcode.LD:
        return "ld %s, %d(%s)" % (
            register_name(inst.rd), inst.imm, register_name(inst.rs1)
        )
    if op == Opcode.ST:
        return "st %s, %d(%s)" % (
            register_name(inst.rs2), inst.imm, register_name(inst.rs1)
        )
    if op in _BRANCHES:
        return "%s %s, %s, %d" % (
            mnemonic,
            register_name(inst.rs1),
            register_name(inst.rs2),
            inst.imm,
        )
    if op in (Opcode.JMP, Opcode.CALL):
        return "%s 0x%x" % (mnemonic, inst.imm)
    if op in (Opcode.JR, Opcode.CALLR):
        return "%s %s" % (mnemonic, register_name(inst.rs1))
    if op in (Opcode.RET, Opcode.SYSCALL, Opcode.HALT, Opcode.NOP):
        return mnemonic
    raise AssertionError("unhandled opcode %r" % (op,))


def disassemble(code: bytes, base: int = 0) -> List[str]:
    """Disassemble a code region, one ``addr: text`` line per instruction."""
    lines = []
    for index, inst in enumerate(decode_all(code)):
        addr = base + index * INSTRUCTION_SIZE
        lines.append("0x%08x: %s" % (addr, format_instruction(inst)))
    return lines
