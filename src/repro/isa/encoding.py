"""Binary encoding and decoding of instructions.

Every instruction encodes to :data:`~repro.isa.instructions.INSTRUCTION_SIZE`
(8) bytes, little-endian::

    byte 0      opcode
    byte 1      rd
    byte 2      rs1
    byte 3      rs2
    bytes 4-7   imm (signed 32-bit, little-endian)

The fixed width keeps the trace fetcher, the code cache, and the persistent
cache file format simple while remaining byte-exact: persistent caches store
the *encoded* translated code, exactly as Pin's persistent caches stored
machine code.
"""

from __future__ import annotations

import struct
from typing import Iterable, List

from repro.isa.instructions import INSTRUCTION_SIZE, Instruction
from repro.isa.opcodes import Opcode

_STRUCT = struct.Struct("<BBBBi")

assert _STRUCT.size == INSTRUCTION_SIZE

#: Content-keyed decode memo: encoded word -> shared Instruction.  Keying
#: on the *bytes* (not the address) makes the memo immune to
#: self-modifying code and module reloads, so it can be global and live
#: across Machine instances — decoding the same images run after run is
#: a dominant translation-pipeline cost otherwise.  Instruction is a
#: frozen dataclass, so sharing decoded objects is safe.
_DECODE_MEMO: dict = {}
_DECODE_MEMO_CAP = 1 << 16


class DecodeError(Exception):
    """Raised when bytes do not decode to a valid instruction."""


def encode(inst: Instruction) -> bytes:
    """Encode a single instruction to its 8-byte form."""
    return _STRUCT.pack(inst.opcode, inst.rd, inst.rs1, inst.rs2, inst.imm)


def decode(data: bytes, offset: int = 0) -> Instruction:
    """Decode a single instruction from ``data`` at byte ``offset``."""
    word = bytes(data[offset : offset + INSTRUCTION_SIZE])
    inst = _DECODE_MEMO.get(word)
    if inst is not None:
        return inst
    try:
        opcode, rd, rs1, rs2, imm = _STRUCT.unpack_from(word, 0)
    except struct.error as exc:
        raise DecodeError("truncated instruction at offset %d" % offset) from exc
    try:
        op = Opcode(opcode)
    except ValueError as exc:
        raise DecodeError("illegal opcode 0x%02x at offset %d" % (opcode, offset)) from exc
    try:
        inst = Instruction(op, rd=rd, rs1=rs1, rs2=rs2, imm=imm)
    except ValueError as exc:
        raise DecodeError(str(exc)) from exc
    if len(_DECODE_MEMO) >= _DECODE_MEMO_CAP:
        _DECODE_MEMO.clear()
    _DECODE_MEMO[word] = inst
    return inst


def encode_all(insts: Iterable[Instruction]) -> bytes:
    """Encode a sequence of instructions to a contiguous byte string."""
    pack = _STRUCT.pack
    return b"".join(
        [pack(i.opcode, i.rd, i.rs1, i.rs2, i.imm) for i in insts]
    )


#: Whole-body decode memo (same content-keyed reasoning as above): trace
#: revive decodes the identical persisted bodies on every warm run, so
#: one probe replaces a per-instruction loop.  Values are tuples — the
#: caller gets a fresh list it may mutate (position-independent revive
#: rewrites relocated entries).
_BODY_MEMO: dict = {}
_BODY_MEMO_CAP = 1 << 13


def decode_all(data: bytes) -> List[Instruction]:
    """Decode a byte string that is an exact multiple of the instruction size."""
    body = bytes(data)
    cached = _BODY_MEMO.get(body)
    if cached is not None:
        return list(cached)
    if len(body) % INSTRUCTION_SIZE != 0:
        raise DecodeError(
            "code length %d is not a multiple of %d" % (len(body), INSTRUCTION_SIZE)
        )
    insts = [decode(body, off) for off in range(0, len(body), INSTRUCTION_SIZE)]
    if len(_BODY_MEMO) >= _BODY_MEMO_CAP:
        _BODY_MEMO.clear()
    _BODY_MEMO[body] = tuple(insts)
    return insts
