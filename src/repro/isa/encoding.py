"""Binary encoding and decoding of instructions.

Every instruction encodes to :data:`~repro.isa.instructions.INSTRUCTION_SIZE`
(8) bytes, little-endian::

    byte 0      opcode
    byte 1      rd
    byte 2      rs1
    byte 3      rs2
    bytes 4-7   imm (signed 32-bit, little-endian)

The fixed width keeps the trace fetcher, the code cache, and the persistent
cache file format simple while remaining byte-exact: persistent caches store
the *encoded* translated code, exactly as Pin's persistent caches stored
machine code.
"""

from __future__ import annotations

import struct
from typing import Iterable, List

from repro.isa.instructions import INSTRUCTION_SIZE, Instruction
from repro.isa.opcodes import Opcode

_STRUCT = struct.Struct("<BBBBi")

assert _STRUCT.size == INSTRUCTION_SIZE


class DecodeError(Exception):
    """Raised when bytes do not decode to a valid instruction."""


def encode(inst: Instruction) -> bytes:
    """Encode a single instruction to its 8-byte form."""
    return _STRUCT.pack(inst.opcode, inst.rd, inst.rs1, inst.rs2, inst.imm)


def decode(data: bytes, offset: int = 0) -> Instruction:
    """Decode a single instruction from ``data`` at byte ``offset``."""
    try:
        opcode, rd, rs1, rs2, imm = _STRUCT.unpack_from(data, offset)
    except struct.error as exc:
        raise DecodeError("truncated instruction at offset %d" % offset) from exc
    try:
        op = Opcode(opcode)
    except ValueError as exc:
        raise DecodeError("illegal opcode 0x%02x at offset %d" % (opcode, offset)) from exc
    try:
        return Instruction(op, rd=rd, rs1=rs1, rs2=rs2, imm=imm)
    except ValueError as exc:
        raise DecodeError(str(exc)) from exc


def encode_all(insts: Iterable[Instruction]) -> bytes:
    """Encode a sequence of instructions to a contiguous byte string."""
    return b"".join(encode(inst) for inst in insts)


def decode_all(data: bytes) -> List[Instruction]:
    """Decode a byte string that is an exact multiple of the instruction size."""
    if len(data) % INSTRUCTION_SIZE != 0:
        raise DecodeError(
            "code length %d is not a multiple of %d" % (len(data), INSTRUCTION_SIZE)
        )
    return [decode(data, off) for off in range(0, len(data), INSTRUCTION_SIZE)]
