"""Opcode definitions and static properties for the synthetic ISA.

The instruction set is deliberately small but covers everything a dynamic
binary translator has to care about:

* straight-line ALU and memory operations,
* conditional PC-relative branches (two-way control flow),
* direct *absolute* unconditional jumps and calls — absolute so that
  translations embed literal addresses exactly as the paper describes
  (``CALL 0x...`` becoming a ``PUSH literal / JMP literal`` pair), which is
  what makes persisted translations sensitive to library relocation,
* indirect jumps/calls through a register (translation-map lookups at run
  time),
* ``ret`` (an indirect jump through the link register),
* ``syscall`` (control leaves the code cache for the emulation unit),
* ``halt`` (machine stop; normal programs exit via the exit syscall).

Trace selection (``repro.vm.trace``) depends on the control-flow taxonomy
encoded here: a trace ends at the first *unconditional* transfer or at the
instruction-count limit.
"""

from __future__ import annotations

import enum


class Opcode(enum.IntEnum):
    """All opcodes, with stable numeric values used by the binary encoding."""

    NOP = 0x00
    # ALU, register-register.
    ADD = 0x01
    SUB = 0x02
    MUL = 0x03
    DIV = 0x04
    AND = 0x05
    OR = 0x06
    XOR = 0x07
    SHL = 0x08
    SHR = 0x09
    SLT = 0x0A  # set-less-than: rd = 1 if rs1 < rs2 else 0
    # ALU, register-immediate.
    ADDI = 0x10
    ANDI = 0x11
    ORI = 0x12
    XORI = 0x13
    SHLI = 0x14
    SHRI = 0x15
    LUI = 0x16  # rd = imm << 16
    MOVI = 0x17  # rd = imm (sign-extended 32-bit immediate)
    # Memory.
    LD = 0x20  # rd = mem[rs1 + imm]
    ST = 0x21  # mem[rs1 + imm] = rs2
    # Control flow: conditional (PC-relative immediates, in bytes).
    BEQ = 0x30
    BNE = 0x31
    BLT = 0x32
    BGE = 0x33
    # Control flow: unconditional direct (absolute target in imm).
    JMP = 0x38
    CALL = 0x39  # lr = return address; jump to imm
    # Control flow: unconditional indirect (target in rs1).
    JR = 0x3A
    CALLR = 0x3B  # lr = return address; jump to rs1
    RET = 0x3C  # jump to lr
    # System.
    SYSCALL = 0x40
    HALT = 0x41


CONDITIONAL_BRANCHES = frozenset(
    {Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE}
)
DIRECT_UNCONDITIONAL = frozenset({Opcode.JMP, Opcode.CALL})
INDIRECT_UNCONDITIONAL = frozenset({Opcode.JR, Opcode.CALLR, Opcode.RET})
CALLS = frozenset({Opcode.CALL, Opcode.CALLR})
SYSTEM = frozenset({Opcode.SYSCALL, Opcode.HALT})

CONTROL_FLOW = (
    CONDITIONAL_BRANCHES | DIRECT_UNCONDITIONAL | INDIRECT_UNCONDITIONAL | SYSTEM
)

MEMORY_OPS = frozenset({Opcode.LD, Opcode.ST})

# Opcodes whose imm field holds an absolute code address and therefore needs
# a relocation record when the target lives in another image (or any image,
# under load-address perturbation).
ABSOLUTE_TARGET = frozenset({Opcode.JMP, Opcode.CALL})


def is_control_flow(op: Opcode) -> bool:
    """Return True for any instruction that can redirect the PC."""
    return op in CONTROL_FLOW


def is_conditional_branch(op: Opcode) -> bool:
    """Return True for two-way PC-relative branches."""
    return op in CONDITIONAL_BRANCHES


def is_unconditional(op: Opcode) -> bool:
    """Return True if the instruction *always* transfers control away.

    This is the trace-terminating predicate: Pin-style traces are linear
    fetch sequences that stop at the first unconditional transfer.
    ``syscall`` and ``halt`` also terminate traces because control must
    leave the code cache for the emulation unit.
    """
    return (
        op in DIRECT_UNCONDITIONAL
        or op in INDIRECT_UNCONDITIONAL
        or op in SYSTEM
    )


def is_indirect(op: Opcode) -> bool:
    """Return True if the transfer target comes from a register."""
    return op in INDIRECT_UNCONDITIONAL


def is_call(op: Opcode) -> bool:
    """Return True for call instructions (they write the link register)."""
    return op in CALLS


def is_memory(op: Opcode) -> bool:
    """Return True for loads and stores."""
    return op in MEMORY_OPS
