"""Synthetic ISA: instructions, encoding, assembler, disassembler.

This is the instruction set that every other layer of the reproduction
speaks: workload binaries are built from it, the simulated CPU executes it,
and the DBI engine translates it into code-cache traces.
"""

from repro.isa.assembler import AssemblyError, AssemblyUnit, assemble
from repro.isa.disassembler import disassemble, format_instruction
from repro.isa.encoding import (
    DecodeError,
    decode,
    decode_all,
    encode,
    encode_all,
)
from repro.isa.instructions import INSTRUCTION_SIZE, Instruction
from repro.isa.opcodes import Opcode

__all__ = [
    "AssemblyError",
    "AssemblyUnit",
    "DecodeError",
    "INSTRUCTION_SIZE",
    "Instruction",
    "Opcode",
    "assemble",
    "decode",
    "decode_all",
    "disassemble",
    "encode",
    "encode_all",
    "format_instruction",
]
