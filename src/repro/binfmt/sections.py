"""Sections of an SBF image.

A section is a named, contiguous byte region with placement and permission
metadata.  Executable sections hold encoded instructions; data sections hold
raw bytes.  Section virtual addresses are *image-relative*: the loader adds
the image base when mapping.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Section alignment within an image, in bytes.
SECTION_ALIGN = 64


class SectionFlags:
    """Bit flags describing section permissions."""

    EXEC = 1
    WRITE = 2
    READ = 4


@dataclass
class Section:
    """One named region of an image.

    Attributes:
        name: Section name (".text", ".data", ...).
        data: The section payload.  Mutable bytearray so relocations can be
            applied in place by the loader on a *copy* of the image.
        vaddr: Image-relative virtual address, assigned at build time.
        flags: OR of :class:`SectionFlags` bits.
    """

    name: str
    data: bytearray = field(default_factory=bytearray)
    vaddr: int = 0
    flags: int = SectionFlags.READ

    @property
    def size(self) -> int:
        return len(self.data)

    @property
    def end(self) -> int:
        return self.vaddr + self.size

    @property
    def is_executable(self) -> bool:
        return bool(self.flags & SectionFlags.EXEC)

    @property
    def is_writable(self) -> bool:
        return bool(self.flags & SectionFlags.WRITE)

    def contains(self, vaddr: int) -> bool:
        """True if the image-relative address falls inside this section."""
        return self.vaddr <= vaddr < self.end


def align_up(value: int, alignment: int = SECTION_ALIGN) -> int:
    """Round ``value`` up to the next multiple of ``alignment``."""
    if alignment <= 0:
        raise ValueError("alignment must be positive")
    return (value + alignment - 1) // alignment * alignment
