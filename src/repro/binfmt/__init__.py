"""SBF binary image format: sections, symbols, relocations, containers."""

from repro.binfmt.image import (
    Image,
    ImageBuilder,
    ImageFormatError,
    ImageKind,
)
from repro.binfmt.relocations import (
    Relocation,
    RelocationError,
    RelocationKind,
    apply_relocation,
    read_imm,
    write_imm,
)
from repro.binfmt.sections import Section, SectionFlags, align_up
from repro.binfmt.symbols import Symbol, SymbolBinding, SymbolKind

__all__ = [
    "Image",
    "ImageBuilder",
    "ImageFormatError",
    "ImageKind",
    "Relocation",
    "RelocationError",
    "RelocationKind",
    "Section",
    "SectionFlags",
    "Symbol",
    "SymbolBinding",
    "SymbolKind",
    "align_up",
    "apply_relocation",
    "read_imm",
    "write_imm",
]
