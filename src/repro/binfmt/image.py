"""SBF ("Simple Binary Format") image container, builder and (de)serializer.

An :class:`Image` is the unit of loading: an executable or shared library
with sections, a symbol table, relocation records, a needed-library list,
and a program header.  The on-disk encoding is::

    magic "SBF1" | u32 header_len | header JSON (utf-8) | section payloads
    | u32 crc32 of everything before it

The *program header* — the JSON metadata minus the payloads — is what the
persistent cache keys hash, alongside the image path, load base, mapping
size and modification timestamp (paper §3.2.1).
"""

from __future__ import annotations

import enum
import hashlib
import json
import struct
import zlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.isa.encoding import encode_all
from repro.isa.instructions import INSTRUCTION_SIZE, Instruction
from repro.binfmt.relocations import Relocation, RelocationKind
from repro.binfmt.sections import Section, SectionFlags, align_up
from repro.binfmt.symbols import Symbol, SymbolBinding, SymbolKind

MAGIC = b"SBF1"


class ImageKind(enum.IntEnum):
    EXECUTABLE = 0
    SHARED_LIBRARY = 1


class ImageFormatError(Exception):
    """Raised when bytes do not parse as a valid SBF image."""


@dataclass
class Image:
    """A complete executable or shared library.

    Attributes:
        path: Identity of the image (acts as its file path; keys hash it).
        kind: EXECUTABLE or SHARED_LIBRARY.
        sections: Placed sections with image-relative addresses.
        symbols: Symbol table.
        relocations: Sites needing fix-up at load time.
        needed: Paths of shared libraries this image depends on.
        entry: Image-relative entry address (executables).
        mtime: Modification timestamp; part of the persistent-cache key so
            that rebuilding a binary invalidates stale translations.
    """

    path: str
    kind: ImageKind = ImageKind.EXECUTABLE
    sections: List[Section] = field(default_factory=list)
    symbols: List[Symbol] = field(default_factory=list)
    relocations: List[Relocation] = field(default_factory=list)
    needed: List[str] = field(default_factory=list)
    entry: int = 0
    mtime: int = 0

    # -- lookups -----------------------------------------------------------

    def section(self, name: str) -> Section:
        for sec in self.sections:
            if sec.name == name:
                return sec
        raise KeyError("no section %r in %s" % (name, self.path))

    def has_section(self, name: str) -> bool:
        return any(sec.name == name for sec in self.sections)

    def find_symbol(self, name: str) -> Optional[Symbol]:
        for sym in self.symbols:
            if sym.name == name:
                return sym
        return None

    def global_symbols(self) -> Dict[str, Symbol]:
        # Memoized per symbol-table length: symbol resolution hits this
        # once per undefined reference per load, and the table only ever
        # grows while an image is being *built* (never once loaded).
        cached = getattr(self, "_global_cache", None)
        if cached is not None and cached[0] == len(self.symbols):
            return cached[1]
        table = {sym.name: sym for sym in self.symbols if sym.is_global}
        self._global_cache = (len(self.symbols), table)
        return table

    @property
    def size(self) -> int:
        """Total mapped size of the image (max section end, aligned)."""
        if not self.sections:
            return 0
        return align_up(max(sec.end for sec in self.sections))

    def text_range(self) -> Tuple[int, int]:
        """(start, end) image-relative range of the executable section."""
        sec = self.section(".text")
        return sec.vaddr, sec.end

    # -- hashing -----------------------------------------------------------

    def program_header(self) -> dict:
        """Structural metadata hashed into persistent-cache keys."""
        return {
            "path": self.path,
            "kind": int(self.kind),
            "entry": self.entry,
            "needed": list(self.needed),
            "sections": [
                {
                    "name": sec.name,
                    "vaddr": sec.vaddr,
                    "size": sec.size,
                    "flags": sec.flags,
                }
                for sec in self.sections
            ],
            "nsymbols": len(self.symbols),
            "nrelocations": len(self.relocations),
        }

    def header_digest(self) -> str:
        """Stable hex digest of the program header."""
        blob = json.dumps(self.program_header(), sort_keys=True).encode()
        return hashlib.sha256(blob).hexdigest()

    def content_digest(self) -> str:
        """Hex digest of the full image contents (header + payloads)."""
        hasher = hashlib.sha256()
        hasher.update(json.dumps(self.program_header(), sort_keys=True).encode())
        for sec in self.sections:
            hasher.update(bytes(sec.data))
        return hasher.hexdigest()

    # -- serialization -----------------------------------------------------

    def to_bytes(self) -> bytes:
        header = {
            "path": self.path,
            "kind": int(self.kind),
            "entry": self.entry,
            "mtime": self.mtime,
            "needed": list(self.needed),
            "sections": [
                {
                    "name": sec.name,
                    "vaddr": sec.vaddr,
                    "size": sec.size,
                    "flags": sec.flags,
                }
                for sec in self.sections
            ],
            "symbols": [
                [sym.name, sym.vaddr, int(sym.binding), int(sym.kind)]
                for sym in self.symbols
            ],
            "relocations": [
                [rel.section, rel.offset, int(rel.kind), rel.symbol, rel.addend]
                for rel in self.relocations
            ],
        }
        header_blob = json.dumps(header, sort_keys=True).encode()
        parts = [MAGIC, struct.pack("<I", len(header_blob)), header_blob]
        for sec in self.sections:
            parts.append(bytes(sec.data))
        body = b"".join(parts)
        return body + struct.pack("<I", zlib.crc32(body) & 0xFFFFFFFF)

    @classmethod
    def from_bytes(cls, blob: bytes) -> "Image":
        if len(blob) < len(MAGIC) + 8 or blob[: len(MAGIC)] != MAGIC:
            raise ImageFormatError("bad magic")
        body, (crc,) = blob[:-4], struct.unpack("<I", blob[-4:])
        if zlib.crc32(body) & 0xFFFFFFFF != crc:
            raise ImageFormatError("checksum mismatch")
        (header_len,) = struct.unpack_from("<I", blob, len(MAGIC))
        header_start = len(MAGIC) + 4
        try:
            header = json.loads(blob[header_start : header_start + header_len])
        except ValueError as exc:
            raise ImageFormatError("bad header JSON") from exc
        image = cls(
            path=header["path"],
            kind=ImageKind(header["kind"]),
            entry=header["entry"],
            mtime=header["mtime"],
            needed=list(header["needed"]),
        )
        cursor = header_start + header_len
        for meta in header["sections"]:
            if meta["size"] < 0 or meta["vaddr"] < 0:
                raise ImageFormatError(
                    "section %r has negative placement" % meta["name"]
                )
            data = bytearray(blob[cursor : cursor + meta["size"]])
            if len(data) != meta["size"]:
                raise ImageFormatError("truncated section %r" % meta["name"])
            cursor += meta["size"]
            image.sections.append(
                Section(meta["name"], data, vaddr=meta["vaddr"], flags=meta["flags"])
            )
        image.symbols = [
            Symbol(name, vaddr, SymbolBinding(binding), SymbolKind(kind))
            for name, vaddr, binding, kind in header["symbols"]
        ]
        image.relocations = [
            Relocation(section, offset, RelocationKind(kind), symbol, addend)
            for section, offset, kind, symbol, addend in header["relocations"]
        ]
        return image

    def save(self, filesystem_path: str) -> None:
        with open(filesystem_path, "wb") as handle:
            handle.write(self.to_bytes())

    @classmethod
    def load(cls, filesystem_path: str) -> "Image":
        with open(filesystem_path, "rb") as handle:
            return cls.from_bytes(handle.read())


class ImageBuilder:
    """Incremental construction of an :class:`Image`.

    Code is appended function-by-function to ``.text``; data objects go to
    ``.data``.  Each function's symbolic call/jump sites become SYMBOL
    relocations; the builder automatically records a RELATIVE relocation
    for direct transfers whose immediate was emitted image-relative.
    """

    def __init__(
        self,
        path: str,
        kind: ImageKind = ImageKind.EXECUTABLE,
        needed: Optional[Sequence[str]] = None,
        mtime: int = 0,
    ):
        self._image = Image(
            path=path, kind=kind, needed=list(needed or ()), mtime=mtime
        )
        self._text = bytearray()
        self._data = bytearray()
        self._symbols: List[Symbol] = []
        self._relocations: List[Relocation] = []
        self._entry_symbol: Optional[str] = None
        self._built = False

    @property
    def text_size(self) -> int:
        return len(self._text)

    def add_function(
        self,
        name: str,
        code: Sequence[Instruction],
        symbol_refs: Optional[Iterable[Tuple[int, str]]] = None,
        relative_sites: Optional[Iterable[int]] = None,
        binding: SymbolBinding = SymbolBinding.GLOBAL,
    ) -> int:
        """Append a function to ``.text``; return its image-relative vaddr.

        Args:
            name: Symbol name for the function's entry.
            code: The instructions.
            symbol_refs: ``(instruction_index, symbol_name)`` pairs marking
                direct transfers that target named symbols (possibly in
                other images).
            relative_sites: Instruction indices whose immediates are
                image-relative addresses needing rebasing at load.
            binding: Symbol visibility.
        """
        if self._built:
            raise RuntimeError("builder already finished")
        vaddr = len(self._text)
        self._text.extend(encode_all(code))
        self._symbols.append(Symbol(name, vaddr, binding, SymbolKind.FUNC))
        for index, symbol in symbol_refs or ():
            self._relocations.append(
                Relocation(
                    ".text",
                    vaddr + index * INSTRUCTION_SIZE,
                    RelocationKind.SYMBOL,
                    symbol=symbol,
                )
            )
        for index in relative_sites or ():
            self._relocations.append(
                Relocation(
                    ".text",
                    vaddr + index * INSTRUCTION_SIZE,
                    RelocationKind.RELATIVE,
                )
            )
        return vaddr

    def add_unit(
        self,
        unit,
        exports: Optional[Iterable[str]] = None,
    ) -> int:
        """Append an :class:`~repro.isa.assembler.AssemblyUnit` to ``.text``.

        Labels listed in ``exports`` (default: all labels) become GLOBAL
        symbols; the rest become LOCAL.  Call/jump sites that target labels
        defined in the unit are re-encoded as image-relative addresses with
        RELATIVE relocations; sites targeting undefined labels become
        SYMBOL relocations for the dynamic linker.  Returns the unit's
        image-relative base address.
        """
        if self._built:
            raise RuntimeError("builder already finished")
        from repro.isa.encoding import encode  # local import: avoid cycle at module load

        vaddr = len(self._text)
        exported = set(unit.labels) if exports is None else set(exports)
        code = list(unit.code)
        for index, symbol in unit.relocations:
            inst = code[index]
            if symbol in unit.labels:
                # Local target: immediate becomes image-relative; rebased
                # with the load base via a RELATIVE relocation.
                code[index] = Instruction(
                    inst.opcode,
                    rd=inst.rd, rs1=inst.rs1, rs2=inst.rs2,
                    imm=vaddr + unit.labels[symbol],
                )
                self._relocations.append(
                    Relocation(
                        ".text",
                        vaddr + index * INSTRUCTION_SIZE,
                        RelocationKind.RELATIVE,
                    )
                )
            else:
                self._relocations.append(
                    Relocation(
                        ".text",
                        vaddr + index * INSTRUCTION_SIZE,
                        RelocationKind.SYMBOL,
                        symbol=symbol,
                    )
                )
        for inst in code:
            self._text.extend(encode(inst))
        for label, offset in unit.labels.items():
            binding = (
                SymbolBinding.GLOBAL if label in exported else SymbolBinding.LOCAL
            )
            self._symbols.append(
                Symbol(label, vaddr + offset, binding, SymbolKind.FUNC)
            )
        return vaddr

    def add_data(
        self,
        name: str,
        payload: bytes,
        binding: SymbolBinding = SymbolBinding.GLOBAL,
    ) -> int:
        """Append a data object to ``.data``; return its section offset.

        The returned offset is section-relative; the final image-relative
        address is assigned when :meth:`build` places ``.data`` after
        ``.text``.  Symbols added here are patched at build time.
        """
        if self._built:
            raise RuntimeError("builder already finished")
        offset = len(self._data)
        self._data.extend(payload)
        # vaddr is provisional; patched in build() once .data is placed.
        self._symbols.append(Symbol(name, offset, binding, SymbolKind.OBJECT))
        return offset

    def set_entry(self, symbol_name: str) -> None:
        self._entry_symbol = symbol_name

    def build(self) -> Image:
        """Place sections, fix data-symbol addresses, and return the image."""
        if self._built:
            raise RuntimeError("builder already finished")
        self._built = True
        image = self._image
        text = Section(
            ".text",
            self._text,
            vaddr=0,
            flags=SectionFlags.READ | SectionFlags.EXEC,
        )
        image.sections.append(text)
        # Data starts on its own 512-byte page so stores to data never
        # alias an executed code page (the machine's self-modification
        # detector works at that granularity, like real W^X paging).
        data_vaddr = align_up(text.end, 512)
        if self._data:
            image.sections.append(
                Section(
                    ".data",
                    self._data,
                    vaddr=data_vaddr,
                    flags=SectionFlags.READ | SectionFlags.WRITE,
                )
            )
        for sym in self._symbols:
            if sym.kind == SymbolKind.OBJECT:
                sym = Symbol(sym.name, data_vaddr + sym.vaddr, sym.binding, sym.kind)
            image.symbols.append(sym)
        image.relocations.extend(self._relocations)
        if self._entry_symbol is not None:
            entry_sym = image.find_symbol(self._entry_symbol)
            if entry_sym is None:
                raise ImageFormatError(
                    "entry symbol %r is undefined" % self._entry_symbol
                )
            image.entry = entry_sym.vaddr
        return image
