"""Symbol table entries for SBF images.

Symbols name image-relative addresses.  Global symbols are visible to the
dynamic linker (other images may import them); local symbols are only used
for intra-image relocation and diagnostics.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class SymbolBinding(enum.IntEnum):
    LOCAL = 0
    GLOBAL = 1


class SymbolKind(enum.IntEnum):
    FUNC = 0
    OBJECT = 1


@dataclass(frozen=True)
class Symbol:
    """A named image-relative address.

    Attributes:
        name: Symbol name.  Global names must be unique within an image and
            are matched by name across images at dynamic-link time.
        vaddr: Image-relative address of the symbol.
        binding: LOCAL or GLOBAL visibility.
        kind: FUNC for code entry points, OBJECT for data.
    """

    name: str
    vaddr: int
    binding: SymbolBinding = SymbolBinding.GLOBAL
    kind: SymbolKind = SymbolKind.FUNC

    @property
    def is_global(self) -> bool:
        return self.binding == SymbolBinding.GLOBAL
