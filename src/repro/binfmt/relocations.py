"""Relocation records and application.

The synthetic ISA embeds *absolute* code addresses in the ``imm`` field of
``jmp``/``call`` (and optionally ``movi``, for address materialization).
Because images can be mapped at varying bases, every such site carries a
relocation record.  Two kinds exist:

``RELATIVE``
    The site's immediate holds an image-relative offset; the loader adds the
    image's load base.  Used for intra-image jumps and calls.

``SYMBOL``
    The site refers to a named global symbol, possibly defined in another
    image.  The dynamic linker resolves the symbol through the loaded-image
    set and writes the absolute address.

This is precisely the mechanism that makes *translated* code non-relocatable
in the paper: once the VM has translated a ``call``, the translation embeds
the already-relocated absolute literal, so a persisted translation is only
valid if the defining library is mapped at the same base in the next run.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass
from typing import Callable

from repro.isa.instructions import INSTRUCTION_SIZE

#: Byte offset of the imm field within an encoded instruction.
IMM_OFFSET = 4
_IMM_STRUCT = struct.Struct("<i")


class RelocationKind(enum.IntEnum):
    RELATIVE = 0  # imm += image base
    SYMBOL = 1  # imm = absolute address of named symbol


@dataclass(frozen=True)
class Relocation:
    """One relocation site.

    Attributes:
        section: Name of the section containing the site.
        offset: Byte offset of the *instruction* within the section.
        kind: How to compute the final value.
        symbol: Target symbol name (SYMBOL kind only).
        addend: Constant added to the resolved value.
    """

    section: str
    offset: int
    kind: RelocationKind
    symbol: str = ""
    addend: int = 0

    def __post_init__(self) -> None:
        if self.offset % INSTRUCTION_SIZE != 0:
            raise ValueError(
                "relocation offset %d is not instruction-aligned" % self.offset
            )
        if self.kind == RelocationKind.SYMBOL and not self.symbol:
            raise ValueError("SYMBOL relocation requires a symbol name")


class RelocationError(Exception):
    """Raised when a relocation cannot be applied."""


def read_imm(data: bytearray, inst_offset: int) -> int:
    """Read the imm field of the instruction at ``inst_offset``."""
    return _IMM_STRUCT.unpack_from(data, inst_offset + IMM_OFFSET)[0]


def write_imm(data: bytearray, inst_offset: int, value: int) -> None:
    """Overwrite the imm field of the instruction at ``inst_offset``."""
    _IMM_STRUCT.pack_into(data, inst_offset + IMM_OFFSET, value)


def apply_relocation(
    reloc: Relocation,
    section_data: bytearray,
    image_base: int,
    resolve_symbol: Callable[[str], int],
) -> None:
    """Apply one relocation to (already image-relative) ``section_data``.

    Args:
        reloc: The relocation record.
        section_data: Bytes of the section named by the record.
        image_base: Absolute base the image is mapped at.
        resolve_symbol: Callback mapping a global symbol name to its
            absolute address; consulted for SYMBOL relocations.

    Raises:
        RelocationError: If the site is out of bounds or the symbol is
            undefined.
    """
    if reloc.offset + INSTRUCTION_SIZE > len(section_data):
        raise RelocationError(
            "relocation at %s+%d is outside the section"
            % (reloc.section, reloc.offset)
        )
    if reloc.kind == RelocationKind.RELATIVE:
        value = read_imm(section_data, reloc.offset) + image_base + reloc.addend
    elif reloc.kind == RelocationKind.SYMBOL:
        try:
            value = resolve_symbol(reloc.symbol) + reloc.addend
        except KeyError as exc:
            raise RelocationError(
                "undefined symbol %r referenced from %s+%d"
                % (reloc.symbol, reloc.section, reloc.offset)
            ) from exc
    else:  # pragma: no cover - enum is closed
        raise RelocationError("unknown relocation kind %r" % (reloc.kind,))
    write_imm(section_data, reloc.offset, value)
