"""Process loading: address spaces, load layouts, dynamic linking."""

from repro.loader.layout import (
    EXECUTABLE_BASE,
    FixedLayout,
    LIBRARY_ALIGN,
    LIBRARY_REGION_START,
    LoadLayout,
    PerturbedLayout,
)
from repro.loader.linker import (
    ImageStore,
    LinkError,
    LoadEvent,
    LoadedProcess,
    load_process,
)
from repro.loader.mapper import (
    AddressSpace,
    Mapping,
    MemoryError_,
    WORD_SIZE,
    to_signed_word,
)

__all__ = [
    "AddressSpace",
    "EXECUTABLE_BASE",
    "FixedLayout",
    "ImageStore",
    "LIBRARY_ALIGN",
    "LIBRARY_REGION_START",
    "LinkError",
    "LoadEvent",
    "LoadLayout",
    "LoadedProcess",
    "Mapping",
    "MemoryError_",
    "PerturbedLayout",
    "WORD_SIZE",
    "load_process",
    "to_signed_word",
]
