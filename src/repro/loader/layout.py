"""Load-address layout policies.

Library load addresses "may vary across executions, as a result of changes
in program behavior or host environment" (paper §3.2.3, citing PaX ASLR).
That variability is what forces the persistent-cache manager to validate
library bases and invalidate non-relocatable translations, so the layout
policy is an explicit, controllable part of the reproduction:

* :class:`FixedLayout` — deterministic bases; every run maps every image at
  the same address (the common case that lets persisted translations be
  reused).
* :class:`PerturbedLayout` — deterministic *per-seed* bases; different seeds
  model different runs/host environments relocating libraries, exercising
  the conflict/invalidation paths.
"""

from __future__ import annotations

import hashlib

from repro.binfmt.image import Image
from repro.binfmt.sections import align_up

#: Default base address of the main executable.
EXECUTABLE_BASE = 0x0040_0000

#: First library base; libraries are placed upward from here.
LIBRARY_REGION_START = 0x1000_0000

#: Minimum gap between consecutive library mappings.
LIBRARY_ALIGN = 0x1_0000


class LoadLayout:
    """Base class: assigns absolute bases to images in load order."""

    def executable_base(self, image: Image) -> int:
        return EXECUTABLE_BASE

    def library_base(self, image: Image, cursor: int) -> int:
        """Return the base for ``image`` given the current placement cursor.

        ``cursor`` is the lowest address at or above which the library may
        be placed; implementations return a base >= cursor and the caller
        advances the cursor past the mapping.
        """
        raise NotImplementedError

    def initial_cursor(self) -> int:
        return LIBRARY_REGION_START


class FixedLayout(LoadLayout):
    """Identical bases on every run (same load order => same addresses)."""

    def library_base(self, image: Image, cursor: int) -> int:
        return align_up(cursor, LIBRARY_ALIGN)


class PerturbedLayout(LoadLayout):
    """Per-seed deterministic slide applied to each library's base.

    Two runs with the same seed see identical layouts; different seeds
    relocate libraries relative to one another — the cross-run relocation
    the persistent system must detect.  The slide is a function of the
    (seed, image path) pair so that a *subset* of libraries can move while
    others stay put, which is exactly the partial-invalidation scenario of
    inter-application persistence.
    """

    def __init__(self, seed: int, max_slide_pages: int = 64):
        self.seed = seed
        self.max_slide_pages = max_slide_pages

    def _slide(self, path: str) -> int:
        digest = hashlib.sha256(
            ("%d:%s" % (self.seed, path)).encode()
        ).digest()
        pages = int.from_bytes(digest[:4], "little") % (self.max_slide_pages + 1)
        return pages * LIBRARY_ALIGN

    def library_base(self, image: Image, cursor: int) -> int:
        return align_up(cursor, LIBRARY_ALIGN) + self._slide(image.path)
