"""Dynamic linker: builds a runnable process image from SBF images.

Loading follows the classic ``ld.so`` shape the paper depends on:

1. the executable is mapped at its base,
2. its ``needed`` list is walked breadth-first and each shared library is
   mapped once, in discovery order, at a base chosen by the
   :class:`~repro.loader.layout.LoadLayout` policy,
3. global symbols are resolved in load order (first definition wins, with
   the defining image preferred for its own references),
4. relocations are applied in place in each mapping's private copy.

The resulting :class:`LoadedProcess` also records the ordered *load events*
(image, base, size) that the VM's persistent-cache manager intercepts to
compute and check cache keys (paper §3.2.3: "all library loads are
intercepted and keys are computed on the loaded binary").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.binfmt.image import Image, ImageKind
from repro.binfmt.relocations import RelocationError, apply_relocation
from repro.binfmt.sections import align_up
from repro.loader.layout import FixedLayout, LoadLayout, LIBRARY_ALIGN
from repro.loader.mapper import AddressSpace, Mapping


class LinkError(Exception):
    """Raised when a process image cannot be constructed."""


@dataclass(frozen=True)
class LoadEvent:
    """One image becoming resident: what the VM's load hook observes."""

    image: Image
    base: int
    size: int
    order: int


#: First base address handed to dynamically loaded modules.
DYNAMIC_REGION_START = 0x3000_0000


@dataclass
class LoadedProcess:
    """A fully linked, runnable address space.

    Besides the statically linked images, a process may carry *optional
    modules*: images registered at link time but mapped/unmapped at run
    time through the ``dlopen``/``dlclose`` system calls.  A module keeps
    the same base across reload cycles within a process (and, because base
    assignment is deterministic in dlopen order, across runs that open
    modules in the same order).
    """

    space: AddressSpace
    executable: Image
    mappings: List[Mapping] = field(default_factory=list)
    load_events: List[LoadEvent] = field(default_factory=list)
    entry_address: int = 0
    #: Module index -> image, for dynamic loading.
    optional_modules: Dict[int, Image] = field(default_factory=dict)
    #: Module index -> currently live mapping.
    loaded_modules: Dict[int, Mapping] = field(default_factory=dict)
    #: Module index -> assigned base (stable across reloads).
    _module_bases: Dict[int, int] = field(default_factory=dict)
    _dynamic_cursor: int = DYNAMIC_REGION_START

    # -- dynamic modules ----------------------------------------------------

    def load_module(self, index: int) -> Mapping:
        """Map and relocate optional module ``index`` (idempotent)."""
        live = self.loaded_modules.get(index)
        if live is not None:
            return live
        try:
            image = self.optional_modules[index]
        except KeyError as exc:
            raise LinkError("no optional module %d" % index) from exc
        base = self._module_bases.get(index)
        if base is None:
            base = align_up(self._dynamic_cursor, LIBRARY_ALIGN)
            self._module_bases[index] = base
            self._dynamic_cursor = align_up(base + image.size, LIBRARY_ALIGN)
        mapping = self.space.map_image(image, base)
        self.loaded_modules[index] = mapping

        def resolve(name: str) -> int:
            own = image.find_symbol(name)
            if own is not None:
                return base + own.vaddr
            return self.resolve_symbol(name)

        for reloc in image.relocations:
            section = image.section(reloc.section)
            try:
                _apply_on_mapping(reloc, mapping, section.vaddr, resolve)
            except RelocationError as exc:
                self.space.remove_mapping(mapping)
                del self.loaded_modules[index]
                raise LinkError(
                    "relocating module %s: %s" % (image.path, exc)
                ) from exc
        return mapping

    def unload_module(self, index: int) -> Mapping:
        """Unmap optional module ``index``; returns the dead mapping."""
        mapping = self.loaded_modules.pop(index, None)
        if mapping is None:
            raise LinkError("module %d is not loaded" % index)
        self.space.remove_mapping(mapping)
        return mapping

    def mapping_of(self, path: str) -> Mapping:
        for mapping in self.mappings:
            if mapping.image is not None and mapping.image.path == path:
                return mapping
        raise KeyError("image %r is not loaded" % path)

    def image_at(self, addr: int) -> Optional[Mapping]:
        """Return the image mapping containing ``addr``, or None."""
        try:
            mapping = self.space.find_mapping(addr)
        except Exception:
            return None
        return mapping if mapping.image is not None else None

    def resolve_symbol(self, name: str) -> int:
        """Absolute address of a global symbol, searched in load order."""
        for mapping in self.mappings:
            sym = mapping.image.global_symbols().get(name)
            if sym is not None:
                return mapping.base + sym.vaddr
        raise KeyError("undefined symbol %r" % name)

    def symbolize(self, addr: int) -> str:
        """Human-readable ``image!symbol+offset`` form of an address."""
        mapping = self.image_at(addr)
        if mapping is None:
            return "0x%x" % addr
        rel = addr - mapping.base
        best_name, best_vaddr = None, -1
        for sym in mapping.image.symbols:
            if best_vaddr < sym.vaddr <= rel:
                best_name, best_vaddr = sym.name, sym.vaddr
        if best_name is None:
            return "%s+0x%x" % (mapping.image.path, rel)
        offset = rel - best_vaddr
        suffix = "+0x%x" % offset if offset else ""
        return "%s!%s%s" % (mapping.image.path, best_name, suffix)


ImageResolver = Callable[[str], Image]


class ImageStore:
    """A simple path -> Image resolver backed by a dict."""

    def __init__(self, images: Optional[Dict[str, Image]] = None):
        self._images: Dict[str, Image] = dict(images or {})

    def add(self, image: Image) -> None:
        self._images[image.path] = image

    def __call__(self, path: str) -> Image:
        try:
            return self._images[path]
        except KeyError as exc:
            raise LinkError("cannot resolve library %r" % path) from exc

    def __contains__(self, path: str) -> bool:
        return path in self._images


def _collect_images(executable: Image, resolver: ImageResolver) -> List[Image]:
    """Executable plus transitively needed libraries, load order."""
    ordered = [executable]
    seen = {executable.path}
    queue = list(executable.needed)
    while queue:
        path = queue.pop(0)
        if path in seen:
            continue
        seen.add(path)
        library = resolver(path)
        if library.kind != ImageKind.SHARED_LIBRARY:
            raise LinkError("needed image %r is not a shared library" % path)
        ordered.append(library)
        queue.extend(library.needed)
    return ordered


def load_process(
    executable: Image,
    resolver: Optional[ImageResolver] = None,
    layout: Optional[LoadLayout] = None,
    space: Optional[AddressSpace] = None,
    optional_modules: Optional[List[Image]] = None,
) -> LoadedProcess:
    """Map and link ``executable`` and its libraries into a process.

    Args:
        executable: The main image.
        resolver: Maps library paths to images; may be omitted when the
            executable has no dependencies.
        layout: Base-address policy; defaults to :class:`FixedLayout`.
        space: Existing address space to populate (a fresh one by default).
        optional_modules: Images loadable at run time through ``dlopen``
            (module index = position in this list).

    Raises:
        LinkError: Unresolvable libraries or relocation failures.
    """
    if executable.kind != ImageKind.EXECUTABLE:
        raise LinkError("%r is not an executable image" % executable.path)
    layout = layout or FixedLayout()
    space = space or AddressSpace()
    if resolver is None:
        if executable.needed:
            raise LinkError("executable needs libraries but no resolver given")
        resolver = ImageStore()

    images = _collect_images(executable, resolver)
    process = LoadedProcess(space=space, executable=executable)
    for module_index, module in enumerate(optional_modules or ()):
        process.optional_modules[module_index] = module

    cursor = layout.initial_cursor()
    for order, image in enumerate(images):
        if image.kind == ImageKind.EXECUTABLE:
            base = layout.executable_base(image)
        else:
            base = layout.library_base(image, cursor)
            cursor = align_up(base + image.size, LIBRARY_ALIGN)
        mapping = space.map_image(image, base)
        process.mappings.append(mapping)
        process.load_events.append(
            LoadEvent(image=image, base=base, size=mapping.size, order=order)
        )

    # Relocate every mapping.  Symbol search prefers the defining image,
    # then falls back to load order.
    for mapping in process.mappings:
        image = mapping.image

        def resolve(name: str, _image: Image = image, _base: int = mapping.base) -> int:
            own = _image.find_symbol(name)
            if own is not None:
                return _base + own.vaddr
            return process.resolve_symbol(name)

        for reloc in image.relocations:
            section = image.section(reloc.section)
            try:
                _apply_on_mapping(reloc, mapping, section.vaddr, resolve)
            except RelocationError as exc:
                raise LinkError(
                    "relocating %s: %s" % (image.path, exc)
                ) from exc

    process.entry_address = process.mappings[0].base + executable.entry
    return process


def _apply_on_mapping(reloc, mapping, section_vaddr, resolve):
    """Apply a relocation against the mapping's contiguous image copy.

    Relocation offsets are section-relative; the mapping stores the whole
    image contiguously, so shift the offset by the section's vaddr.
    """
    from repro.binfmt.relocations import Relocation

    shifted = Relocation(
        section=reloc.section,
        offset=section_vaddr + reloc.offset,
        kind=reloc.kind,
        symbol=reloc.symbol,
        addend=reloc.addend,
    )
    apply_relocation(shifted, mapping.data, mapping.base, resolve)
