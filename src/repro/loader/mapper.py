"""Process address space and memory mappings.

The address space is a set of non-overlapping :class:`Mapping` regions.
Image mappings hold a private, relocated copy of the image's sections (the
moral equivalent of ``mmap``-ing the file and letting the dynamic linker
patch it); anonymous mappings back the stack and heap.

Words are 8 bytes, little-endian, signed — the same width as an encoded
instruction, which keeps addresses, loads/stores and code fetch consistent.
"""

from __future__ import annotations

import bisect
import struct
from dataclasses import dataclass, field
from typing import List, Optional

from repro.binfmt.image import Image

#: Machine word size in bytes (load/store granularity).
WORD_SIZE = 8

_WORD = struct.Struct("<q")
_UWORD_MASK = (1 << 64) - 1


def to_signed_word(value: int) -> int:
    """Wrap an arbitrary int to the signed 64-bit range."""
    value &= _UWORD_MASK
    if value >= 1 << 63:
        value -= 1 << 64
    return value


class MemoryError_(Exception):
    """Raised on access to unmapped memory or mapping conflicts."""


@dataclass
class Mapping:
    """One contiguous region of the address space.

    Attributes:
        base: Absolute start address.
        data: Backing bytes (length = mapping size).
        image: The image mapped here, or None for anonymous regions.
        name: Diagnostic label.
    """

    base: int
    data: bytearray
    image: Optional[Image] = None
    name: str = ""

    @property
    def size(self) -> int:
        return len(self.data)

    @property
    def end(self) -> int:
        return self.base + self.size

    def contains(self, addr: int) -> bool:
        return self.base <= addr < self.end

    def overlaps(self, base: int, size: int) -> bool:
        return base < self.end and self.base < base + size


@dataclass
class AddressSpace:
    """A sorted collection of mappings with word/byte access helpers.

    Word accesses cache the last mapping hit (``_hot``): loads and stores
    cluster heavily on the stack/heap, so the common case skips the
    bisect.  The cache is invalidated on unmap; insertion cannot make it
    stale (mappings never overlap).
    """

    mappings: List[Mapping] = field(default_factory=list)
    _bases: List[int] = field(default_factory=list)
    _hot: Optional[Mapping] = field(default=None, repr=False, compare=False)

    def add_mapping(self, mapping: Mapping) -> Mapping:
        """Insert a mapping; reject overlaps."""
        for existing in self.mappings:
            if existing.overlaps(mapping.base, mapping.size):
                raise MemoryError_(
                    "mapping %r at 0x%x overlaps %r"
                    % (mapping.name, mapping.base, existing.name)
                )
        index = bisect.bisect_left(self._bases, mapping.base)
        self.mappings.insert(index, mapping)
        self._bases.insert(index, mapping.base)
        return mapping

    def map_image(self, image: Image, base: int) -> Mapping:
        """Map a private copy of ``image`` at ``base`` (unrelocated)."""
        data = bytearray(image.size)
        for sec in image.sections:
            data[sec.vaddr : sec.vaddr + sec.size] = sec.data
        return self.add_mapping(
            Mapping(base=base, data=data, image=image, name=image.path)
        )

    def map_anonymous(self, base: int, size: int, name: str = "") -> Mapping:
        """Map a zero-filled anonymous region."""
        return self.add_mapping(Mapping(base=base, data=bytearray(size), name=name))

    def remove_mapping(self, mapping: Mapping) -> None:
        """Unmap a region (dynamic module unload)."""
        try:
            index = self.mappings.index(mapping)
        except ValueError as exc:
            raise MemoryError_(
                "mapping %r is not in this address space" % mapping.name
            ) from exc
        del self.mappings[index]
        del self._bases[index]
        self._hot = None

    def find_mapping(self, addr: int) -> Mapping:
        """Return the mapping containing ``addr``."""
        index = bisect.bisect_right(self._bases, addr) - 1
        if index >= 0:
            mapping = self.mappings[index]
            if mapping.contains(addr):
                self._hot = mapping
                return mapping
        raise MemoryError_("unmapped address 0x%x" % addr)

    def mapping_for_image(self, path: str) -> Optional[Mapping]:
        """Return the mapping of the image with the given path, if loaded."""
        for mapping in self.mappings:
            if mapping.image is not None and mapping.image.path == path:
                return mapping
        return None

    # -- data access -------------------------------------------------------

    def read_bytes(self, addr: int, length: int) -> bytes:
        """Read raw bytes; the range must stay within one mapping."""
        mapping = self._hot
        if mapping is None or not (
            mapping.base <= addr < mapping.base + len(mapping.data)
        ):
            mapping = self.find_mapping(addr)
        if addr + length > mapping.end:
            raise MemoryError_(
                "read of %d bytes at 0x%x crosses mapping end" % (length, addr)
            )
        offset = addr - mapping.base
        return bytes(mapping.data[offset : offset + length])

    def write_bytes(self, addr: int, payload: bytes) -> None:
        """Write raw bytes; the range must stay within one mapping."""
        mapping = self.find_mapping(addr)
        if addr + len(payload) > mapping.end:
            raise MemoryError_(
                "write of %d bytes at 0x%x crosses mapping end"
                % (len(payload), addr)
            )
        offset = addr - mapping.base
        mapping.data[offset : offset + len(payload)] = payload

    def read_word(self, addr: int) -> int:
        """Read one signed 64-bit little-endian word."""
        mapping = self._hot
        if mapping is None or not (
            mapping.base <= addr < mapping.base + len(mapping.data)
        ):
            mapping = self.find_mapping(addr)
        offset = addr - mapping.base
        if offset + WORD_SIZE > len(mapping.data):
            raise MemoryError_("word read at 0x%x crosses mapping end" % addr)
        return _WORD.unpack_from(mapping.data, offset)[0]

    def write_word(self, addr: int, value: int) -> None:
        """Write one word, wrapping to the signed 64-bit range."""
        mapping = self._hot
        if mapping is None or not (
            mapping.base <= addr < mapping.base + len(mapping.data)
        ):
            mapping = self.find_mapping(addr)
        offset = addr - mapping.base
        if offset + WORD_SIZE > len(mapping.data):
            raise MemoryError_("word write at 0x%x crosses mapping end" % addr)
        if -9223372036854775808 <= value <= 9223372036854775807:
            _WORD.pack_into(mapping.data, offset, value)
        else:
            _WORD.pack_into(mapping.data, offset, to_signed_word(value))
