"""The per-host shared compiled-body store.

The compiled-body sidecar (:mod:`repro.persist.sidecar`) removes host
``compile()`` cost across *executions of one database*: each
``CacheDatabase`` carries its own private ``compiled-bodies.pcs``.  But
bodies are keyed purely by trace-content digest + ``VM_VERSION`` + host
bytecode tag — nothing about them is database-specific — so two
databases on one host redundantly store and recompile identical
factories.  That is exactly the paper's Figure 9/10 observation
(persistent caches pay off most when code is shared *across
applications*), and ShareJIT's production design for Android's JIT: one
content-keyed pool per host, served to every consumer under a real
concurrency protocol.

This module provides that pool.  A :class:`SharedBodyStore` is a
directory any number of databases (and processes) attach to:

* **content addressing** — a body's name is its factory digest
  (:func:`repro.vm.compile._body_digest`); equal digests imply
  byte-identical factory code, so publish order between processes is
  irrelevant and "merge" is set union;
* **wholesale keying** — bodies live under a *keytag* subdirectory
  derived from ``vm_version`` + the host bytecode tag.  A VM or
  interpreter upgrade simply addresses a different (initially empty)
  subdirectory; stale keytags are garbage by definition and ``gc``
  removes them;
* **digest-prefix sharding** — within a keytag, bodies are grouped into
  shard files by the first :data:`SHARD_PREFIX_LEN` hex characters of
  their digest, so concurrent publishers of unrelated digests rarely
  contend and damage is contained to one shard;
* **append-then-publish writes** — every shard write goes through the
  storage seam's atomic write-replace (build the full new shard in
  ``<shard>.tmp``, fsync, rename): readers never observe a torn record,
  and a crash at any point leaves the previous complete shard;
* **per-shard advisory locks** — publishers and the sweeper serialize
  per shard (``<shard>.lock``, ``flock``); readers take no lock at all;
* **reader-side revalidation** — a reader CRC-verifies the shard it
  loads and copies the blob into memory before use, so a concurrent
  ``gc`` rewriting (or removing) the shard cannot yank a body out from
  under a revive: the revive either already holds valid bytes or reads
  the body as cleanly absent and recompiles.

On-disk layout::

    <store>/
      registry.json            # databases attached to this store
      registry.lock
      bodies/<keytag>/<pp>.pcs      # shard: bodies with digest[:2] == pp
      bodies/<keytag>/<pp>.pcs.lock
      quarantine/              # damaged shards, moved aside (never deleted)

Shard file framing (PCSS1) mirrors the sidecar's PCS1 discipline — a
fixed preamble, CRC-checked header JSON, per-section CRCs and a
whole-file trailer CRC — with one extension: each directory record
carries a last-use stamp and the measured host-compile cost
(``[digest, offset, size, stamp, cost_us]``; pre-cost four-element
records still parse, as cost 0) so the LRU/size cap can evict cold
bodies first and cost-aware admission can reason about recompute cost.

Garbage collection (:meth:`SharedBodyStore.gc`) is mark-and-sweep:

* **mark** — the union of digests referenced by every registered
  database's private sidecar (a database's sidecar records every body
  it revived or compiled, so it *is* the database's reference index);
* **sweep** — per shard, under the shard lock, drop unmarked entries;
* **cap** — optionally evict least-recently-stamped entries until the
  pool fits ``max_bytes`` (eviction is always safe: an evicted body
  reads as cleanly absent and is recompiled, never corrupted).

Like the sidecar, the store is a pure host-side accelerator: every
failure mode (damage, contention, ENOSPC, a gc racing a revive) must
degrade to the private sidecar and then to a host ``compile()`` — never
to a corrupt database or an observable change in the simulated run.
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
import time
import zlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.persist.sidecar import (
    CompiledBodyStore,
    SIDECAR_NAME,
    SidecarError,
    host_code_tag,
)
from repro.persist.storage import FileStorage, TMP_SUFFIX

MAGIC = b"PCSS"
FORMAT_VERSION = 1

#: Same preamble shape as PCS1/PCC2: magic, version, reserved, header
#: length, header CRC.
PREAMBLE = struct.Struct("<4sHHII")

#: Hex characters of the digest that name a shard.  Two characters give
#: up to 256 lazily created shards per keytag — enough that concurrent
#: publishers of unrelated digests rarely touch the same lock.
SHARD_PREFIX_LEN = 2

BODIES_DIR = "bodies"
REGISTRY_NAME = "registry.json"
REGISTRY_LOCK = "registry.lock"
QUARANTINE_DIR = "quarantine"
SHARD_SUFFIX = ".pcs"
LOCK_SUFFIX = ".lock"

#: Section names used in error attribution and fsck reports.
SECTIONS = ("header", "directory", "body_pool")


class SharedStoreError(Exception):
    """Raised when a shard (or registry) file is malformed.

    ``section`` names where the damage was detected: one of
    :data:`SECTIONS`, ``"preamble"`` or ``"trailer"``.
    """

    def __init__(self, message: str, section: str = ""):
        super().__init__(message)
        self.section = section


def _crc(blob: bytes) -> int:
    return zlib.crc32(blob) & 0xFFFFFFFF


def store_keytag(vm_version: str, host_tag: Optional[str] = None) -> str:
    """The wholesale-invalidation key: one pool per (VM, host) pair.

    Deriving the directory name from the same stamps the sidecar header
    records means a VM or interpreter upgrade *addresses* a different
    pool instead of validating entries one by one — the old pool becomes
    unreachable garbage that ``gc`` removes.
    """
    tag = host_tag if host_tag is not None else host_code_tag()
    return hashlib.sha256(
        ("%s|%s" % (vm_version, tag)).encode()
    ).hexdigest()[:16]


def shard_prefix(digest: str) -> str:
    """Which shard a digest lives in: its first hex characters."""
    return digest[:SHARD_PREFIX_LEN]


def is_shared_store(directory: str) -> bool:
    """Heuristic for CLI dispatch: does ``directory`` hold a shared
    store (vs. a cache database)?  A store always has a ``bodies/``
    subdirectory or a registry; a database has ``index.json``."""
    return os.path.isdir(os.path.join(directory, BODIES_DIR)) or (
        os.path.exists(os.path.join(directory, REGISTRY_NAME))
        and not os.path.exists(os.path.join(directory, "index.json"))
    )


# -- shard serialization ------------------------------------------------------


def pack_shard(
    vm_version: str,
    host_tag: str,
    entries: Dict[str, tuple],
) -> bytes:
    """Serialize one shard: ``{digest: (blob, stamp[, cost_us])}`` →
    framed bytes.  Two-tuple values (pre-cost callers/tests) pack with
    cost 0 — an unmeasured body is treated as free to recompute."""
    pool = bytearray()
    directory = []
    for digest in sorted(entries):
        record = entries[digest]
        blob, stamp = record[0], record[1]
        cost_us = int(record[2]) if len(record) > 2 else 0
        directory.append(
            [digest, len(pool), len(blob), int(stamp), cost_us]
        )
        pool.extend(blob)
    directory_blob = json.dumps(directory, sort_keys=True).encode()
    pool_blob = bytes(pool)
    header = {
        "format_version": FORMAT_VERSION,
        "vm_version": vm_version,
        "host_tag": host_tag,
        "sections": {
            "directory": [len(directory_blob), _crc(directory_blob)],
            "body_pool": [len(pool_blob), _crc(pool_blob)],
        },
    }
    header_blob = json.dumps(header, sort_keys=True).encode()
    body = b"".join(
        [
            PREAMBLE.pack(
                MAGIC, FORMAT_VERSION, 0, len(header_blob), _crc(header_blob)
            ),
            header_blob,
            directory_blob,
            pool_blob,
        ]
    )
    return body + struct.pack("<I", _crc(body))


def parse_shard(blob: bytes):
    """Verify and split a shard into ``(vm_version, host_tag, entries)``.

    ``entries`` maps digest → ``(blob, stamp, cost_us)``; four-element
    directory records (written before compile costs were tracked) parse
    with cost 0.  Raises
    :class:`SharedStoreError` naming the damaged section on any CRC,
    framing or type mismatch — exactly one detectable section per flipped
    byte, mirroring the PCS1 parser.
    """
    if len(blob) < PREAMBLE.size + 4:
        raise SharedStoreError("file too short for preamble", section="preamble")
    magic, version, _reserved, header_len, header_crc = PREAMBLE.unpack_from(
        blob, 0
    )
    if magic != MAGIC:
        raise SharedStoreError("bad magic", section="preamble")
    if version != FORMAT_VERSION:
        raise SharedStoreError(
            "unsupported format version %r" % version, section="header"
        )
    header_start = PREAMBLE.size
    header_end = header_start + header_len
    if header_end + 4 > len(blob):
        raise SharedStoreError("truncated header", section="header")
    header_blob = blob[header_start:header_end]
    if _crc(header_blob) != header_crc:
        raise SharedStoreError("header checksum mismatch", section="header")
    try:
        header = json.loads(header_blob)
    except ValueError as exc:
        raise SharedStoreError("bad header JSON", section="header") from exc
    if not isinstance(header, dict):
        raise SharedStoreError("bad header JSON", section="header")
    sections = header.get("sections")
    if not isinstance(sections, dict):
        raise SharedStoreError("missing section table", section="header")

    offset = header_end
    payloads: Dict[str, bytes] = {}
    for name in ("directory", "body_pool"):
        try:
            size, crc = sections[name]
            size = int(size)
        except (KeyError, TypeError, ValueError) as exc:
            raise SharedStoreError(
                "bad section table entry for %s" % name, section="header"
            ) from exc
        if size < 0 or offset + size + 4 > len(blob):
            raise SharedStoreError("truncated %s section" % name, section=name)
        payload = blob[offset : offset + size]
        if _crc(payload) != crc:
            raise SharedStoreError("%s checksum mismatch" % name, section=name)
        payloads[name] = payload
        offset += size
    if offset != len(blob) - 4:
        raise SharedStoreError(
            "trailing garbage after body pool", section="trailer"
        )
    (file_crc,) = struct.unpack_from("<I", blob, len(blob) - 4)
    if _crc(blob[:-4]) != file_crc:
        raise SharedStoreError("whole-file checksum mismatch", section="trailer")

    try:
        vm_version = header["vm_version"]
        host_tag = header["host_tag"]
        if not isinstance(vm_version, str) or not isinstance(host_tag, str):
            raise TypeError("key stamps must be strings")
    except (KeyError, TypeError) as exc:
        raise SharedStoreError(
            "malformed header fields: %s" % exc, section="header"
        ) from exc
    try:
        directory = json.loads(payloads["directory"])
    except ValueError as exc:
        raise SharedStoreError("bad directory JSON", section="directory") from exc
    if not isinstance(directory, list):
        raise SharedStoreError("bad directory JSON", section="directory")
    pool = payloads["body_pool"]
    entries: Dict[str, Tuple[bytes, int, int]] = {}
    try:
        for record in directory:
            if len(record) == 4:
                digest, rec_offset, size, stamp = record
                cost_us = 0
            else:
                digest, rec_offset, size, stamp, cost_us = record
            if (
                not isinstance(digest, str)
                or rec_offset < 0
                or size < 0
                or rec_offset + size > len(pool)
            ):
                raise SharedStoreError(
                    "directory record out of bounds", section="directory"
                )
            entries[digest] = (
                pool[rec_offset : rec_offset + size],
                int(stamp),
                int(cost_us),
            )
    except SharedStoreError:
        raise
    except (TypeError, ValueError) as exc:
        raise SharedStoreError(
            "malformed directory: %s" % exc, section="directory"
        ) from exc
    return vm_version, host_tag, entries


def verify_shard(blob: bytes) -> Dict[str, str]:
    """Best-effort per-section damage map of a raw shard blob (fsck).

    Empty when healthy; otherwise ``{section: reason}``.
    """
    status: Dict[str, str] = {}
    try:
        parse_shard(blob)
    except SharedStoreError as exc:
        status[exc.section or "preamble"] = str(exc)
    return status


# -- reports ------------------------------------------------------------------


@dataclass
class PublishResult:
    """What one :meth:`SharedBodyStore.publish` call did."""

    #: Bodies that were not in the store before this publish.
    published: int = 0
    #: Already-present bodies whose last-use stamp was refreshed.
    refreshed: int = 0
    #: Bodies evicted by cap enforcement after the publish.
    evicted: int = 0
    #: Shard files rewritten.
    shards_written: int = 0
    #: Offered bodies skipped by cost-aware admission: their measured
    #: compile cost fell below the store's storage-cost floor.
    admission_skipped: int = 0


@dataclass
class SharedFsckItem:
    """Health of one store file, for ``cache fsck``."""

    filename: str
    #: "ok" | "corrupt" | "stale-keytag" | "stale-tmp" | "key-mismatch"
    status: str
    section: str = ""
    detail: str = ""


@dataclass
class SharedFsckReport:
    """Result of a shared-store consistency check."""

    items: List[SharedFsckItem] = field(default_factory=list)
    #: Informational findings (stale keytag pools, leftover tmp files):
    #: expected states, not damage — they never make the store unhealthy.
    notes: List[SharedFsckItem] = field(default_factory=list)
    quarantined: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return all(item.status == "ok" for item in self.items)


@dataclass
class GcReport:
    """Machine-readable result of one mark-and-sweep run."""

    registered_databases: List[str] = field(default_factory=list)
    #: Digests referenced by at least one registered database index.
    referenced: int = 0
    #: Registered databases whose reference index could not be read
    #: (missing directory, damaged sidecar): they contribute an empty
    #: mark set — safe, because eviction only ever costs a recompile.
    unreadable_indexes: List[str] = field(default_factory=list)
    scanned_entries: int = 0
    scanned_bytes: int = 0
    #: Unreferenced bodies removed by the sweep.
    swept_entries: int = 0
    swept_bytes: int = 0
    #: Bodies evicted by the LRU/size cap (oldest stamp first).
    lru_evicted_entries: int = 0
    lru_evicted_bytes: int = 0
    #: Whole stale-keytag pools removed (other VM version / host tag).
    stale_pools_removed: List[str] = field(default_factory=list)
    #: Shards found damaged during the sweep (moved to quarantine).
    quarantined_shards: List[str] = field(default_factory=list)
    remaining_entries: int = 0
    remaining_bytes: int = 0

    def to_dict(self) -> Dict[str, object]:
        return dict(self.__dict__)


# -- the store ----------------------------------------------------------------


class SharedBodyStore:
    """One per-host pool of compiled bodies, shared by many databases.

    Thread/process safety: every mutation (publish, sweep, cap
    enforcement, registration) happens under an advisory lock scoped to
    the file it rewrites, with a fresh re-read inside the lock; every
    write is an atomic write-replace.  Reads are lock-free and verify
    CRCs, quarantining a damaged shard and reading it as empty.
    """

    def __init__(
        self,
        directory: str,
        vm_version: str,
        storage: Optional[FileStorage] = None,
        max_bytes: Optional[int] = None,
        clock=time.time,
        publish_min_cost_us: Optional[int] = None,
    ):
        self.directory = directory
        self.vm_version = vm_version
        self.host_tag = host_code_tag()
        self.storage = storage or FileStorage()
        #: Soft size cap (sum of body bytes in the current pool); when
        #: set, every publish enforces it by LRU eviction.
        self.max_bytes = max_bytes
        #: Cost-aware admission floor (µs of measured host-compile wall
        #: clock): a publish skips bodies cheaper to recompute than to
        #: store — "store only if recompute cost exceeds storage cost".
        #: Defaults to ``REPRO_PUBLISH_MIN_COST_US`` (env), then 0,
        #: which admits everything (the pre-cost behavior).  Unmeasured
        #: bodies (sidecar revives, pool healing) offer cost 0 and are
        #: skipped by any non-zero floor.
        if publish_min_cost_us is None:
            try:
                publish_min_cost_us = int(
                    os.environ.get("REPRO_PUBLISH_MIN_COST_US", "0") or 0
                )
            except ValueError:
                publish_min_cost_us = 0
        self.publish_min_cost_us = publish_min_cost_us
        #: Injectable time source so tests can pin LRU ordering.
        self.clock = clock
        #: (kind, filename, reason) records of quarantine/io events.
        self.events: List[tuple] = []
        #: prefix → (stat signature, parsed entries) revalidated cache.
        self._shard_cache: Dict[str, tuple] = {}
        self.storage.makedirs(directory)
        self.storage.makedirs(self._pool_dir())

    # -- paths ---------------------------------------------------------------

    def _pool_dir(self) -> str:
        return os.path.join(
            self.directory,
            BODIES_DIR,
            store_keytag(self.vm_version, self.host_tag),
        )

    def shard_path(self, prefix: str) -> str:
        return os.path.join(self._pool_dir(), prefix + SHARD_SUFFIX)

    def _shard_lock_path(self, prefix: str) -> str:
        return self.shard_path(prefix) + LOCK_SUFFIX

    def _registry_path(self) -> str:
        return os.path.join(self.directory, REGISTRY_NAME)

    def _shard_prefixes(self) -> List[str]:
        pool = self._pool_dir()
        if not os.path.isdir(pool):
            return []
        return sorted(
            name[: -len(SHARD_SUFFIX)]
            for name in self.storage.listdir(pool)
            if name.endswith(SHARD_SUFFIX)
        )

    # -- registry ------------------------------------------------------------

    def register_database(self, db_directory: str) -> None:
        """Record ``db_directory`` as a consumer of this store.

        The registry is gc's mark root list: a database must be
        registered before its private sidecar protects bodies from the
        sweep.  Registration is idempotent and serialized under its own
        lock (never held together with a shard lock).
        """
        path = os.path.abspath(db_directory)
        lock_path = os.path.join(self.directory, REGISTRY_LOCK)
        with self.storage.lock(lock_path):
            current = self._read_registry()
            if path in current:
                return
            current.append(path)
            blob = json.dumps(
                {"version": 1, "databases": sorted(current)}, indent=1
            ).encode()
            self.storage.write_atomic(self._registry_path(), blob)

    def registered_databases(self) -> List[str]:
        return self._read_registry()

    def _read_registry(self) -> List[str]:
        path = self._registry_path()
        if not self.storage.exists(path):
            return []
        try:
            raw = json.loads(self.storage.read_bytes(path))
            databases = raw["databases"]
            if not isinstance(databases, list) or not all(
                isinstance(entry, str) for entry in databases
            ):
                raise ValueError("malformed registry")
        except (ValueError, TypeError, KeyError) as exc:
            # A torn or garbage registry must not take the store down:
            # quarantine it and start empty (databases re-register on
            # their next attach).
            self._quarantine(path, "corrupt registry: %s" % exc)
            return []
        except OSError as exc:
            self.events.append(("io-error", REGISTRY_NAME, str(exc)))
            return []
        return list(databases)

    # -- quarantine ----------------------------------------------------------

    def _quarantine(self, path: str, reason: str) -> None:
        """Move a damaged file aside — never delete possible evidence."""
        quarantine_dir = os.path.join(self.directory, QUARANTINE_DIR)
        name = os.path.relpath(path, self.directory).replace(os.sep, "-")
        try:
            self.storage.makedirs(quarantine_dir)
            destination = os.path.join(quarantine_dir, name)
            serial = 0
            while self.storage.exists(destination):
                serial += 1
                destination = os.path.join(
                    quarantine_dir, "%s.%d" % (name, serial)
                )
            if self.storage.exists(path):
                self.storage.rename(path, destination)
        except OSError as exc:
            reason = "%s (quarantine move failed: %s)" % (reason, exc)
        self.events.append(("quarantine", name, reason))

    @property
    def quarantined_count(self) -> int:
        return sum(1 for kind, _, _ in self.events if kind == "quarantine")

    # -- read path -----------------------------------------------------------

    def lookup(self, digest: str) -> Optional[bytes]:
        """The marshal blob for ``digest``, or None (miss).

        Lock-free: the shard is CRC-verified as a whole and the blob is
        an in-memory copy, so a concurrent publish or gc rewriting the
        shard cannot tear this read — the atomic rename means we parsed
        either the old complete shard or the new complete shard.
        """
        record = self._load_shard(shard_prefix(digest)).get(digest)
        return record[0] if record is not None else None

    def __contains__(self, digest: str) -> bool:
        return self.lookup(digest) is not None

    def iter_entries(self) -> Iterator[Tuple[str, Tuple[bytes, int, int]]]:
        """Yield ``(digest, (blob, stamp, cost_us))`` for every body in
        the current keytag's pool.

        This is the cache-server daemon's bulk-load path: it walks every
        shard once through the same CRC-verified, damage-quarantining
        reader as :meth:`lookup`, so a daemon never seeds its hot index
        from a torn or corrupted shard.
        """
        for prefix in self._shard_prefixes():
            for digest, record in sorted(self._load_shard(prefix).items()):
                yield digest, record

    def _load_shard(self, prefix: str) -> Dict[str, Tuple[bytes, int, int]]:
        """Parsed entries of one shard; `{}` when absent or damaged.

        Results are cached per stat signature: a shard rewritten by any
        process (atomic rename changes mtime/size) is transparently
        re-read, while repeated lookups against an unchanged shard cost
        one ``stat``.  Damage quarantines the shard and reads as empty —
        the bodies it held are recompiled, never trusted.
        """
        path = self.shard_path(prefix)
        signature = self.storage.stat_signature(path)
        if signature is None:
            self._shard_cache.pop(prefix, None)
            return {}
        cached = self._shard_cache.get(prefix)
        if cached is not None and cached[0] == signature:
            return cached[1]
        try:
            blob = self.storage.read_bytes(path)
        except FileNotFoundError:
            # Removed between stat and read (a concurrent gc): clean miss.
            self._shard_cache.pop(prefix, None)
            return {}
        except OSError as exc:
            self.events.append(("io-error", os.path.basename(path), str(exc)))
            return {}
        try:
            vm_version, host_tag, entries = parse_shard(blob)
        except SharedStoreError as exc:
            self._quarantine(
                path, "damaged %s: %s" % (exc.section or "unknown", exc)
            )
            self._shard_cache.pop(prefix, None)
            return {}
        if vm_version != self.vm_version or host_tag != self.host_tag:
            # Foreign stamps inside our keytag directory can only mean
            # misplaced or hand-moved content; contain it like damage.
            self._quarantine(
                path,
                "key mismatch: shard stamped (%s, %s)" % (vm_version, host_tag),
            )
            self._shard_cache.pop(prefix, None)
            return {}
        self._shard_cache[prefix] = (signature, entries)
        return entries

    # -- write path ----------------------------------------------------------

    def publish(
        self,
        blobs: Dict[str, bytes],
        touch: Iterable[str] = (),
        costs: Optional[Dict[str, int]] = None,
    ) -> PublishResult:
        """Make ``blobs`` visible to every database on this host.

        ``touch`` names already-present digests whose last-use stamp
        should be refreshed (the LRU signal from a session that revived
        them).  ``costs`` carries the measured host-compile wall clock
        (µs) per offered digest; when the store has a non-zero
        ``publish_min_cost_us`` floor, bodies cheaper than the floor are
        skipped (``admission_skipped``) — recompiling them costs less
        than storing them.  Per shard, the protocol is lock → fresh
        re-read → merge → atomic write-replace → unlock, so concurrent
        publishers never lose each other's bodies and readers never
        observe a torn shard.  Content addressing makes the merge
        trivial: an already-present digest keeps its existing bytes
        (equal by construction).
        """
        result = PublishResult()
        now = int(self.clock())
        costs = costs or {}
        floor = self.publish_min_cost_us
        groups: Dict[str, Dict[str, Optional[bytes]]] = {}
        for digest, blob in blobs.items():
            if floor > 0 and int(costs.get(digest, 0)) < floor:
                result.admission_skipped += 1
                continue
            groups.setdefault(shard_prefix(digest), {})[digest] = blob
        for digest in touch:
            groups.setdefault(shard_prefix(digest), {}).setdefault(digest, None)
        if groups:
            # The pool directory may have been wiped (or never created —
            # another process could have gc'd the store down to nothing)
            # since __init__: recreate it before taking shard locks, so a
            # publish always heals an emptied pool instead of erroring.
            self.storage.makedirs(self._pool_dir())
        for prefix in sorted(groups):
            group = groups[prefix]
            with self.storage.lock(self._shard_lock_path(prefix)):
                entries = dict(self._load_shard(prefix))
                changed = False
                for digest, blob in sorted(group.items()):
                    existing = entries.get(digest)
                    if existing is None:
                        if blob is None:
                            continue  # touch of an absent digest: no-op
                        entries[digest] = (
                            blob, now, int(costs.get(digest, 0))
                        )
                        result.published += 1
                        changed = True
                    elif existing[1] != now:
                        # Keep the recorded compile cost across stamp
                        # refreshes (the body was not recompiled).
                        entries[digest] = (existing[0], now, existing[2])
                        result.refreshed += 1
                        changed = True
                if changed:
                    self._write_shard(prefix, entries)
                    result.shards_written += 1
        if self.max_bytes is not None:
            evicted, _bytes = self._enforce_cap(self.max_bytes)
            result.evicted = evicted
        return result

    def _write_shard(
        self, prefix: str, entries: Dict[str, tuple]
    ) -> None:
        """Replace one shard (caller holds its lock); empty → removed."""
        path = self.shard_path(prefix)
        if not entries:
            if self.storage.exists(path):
                self.storage.remove(path)
            self._shard_cache.pop(prefix, None)
            return
        self.storage.write_atomic(
            path, pack_shard(self.vm_version, self.host_tag, entries)
        )
        signature = self.storage.stat_signature(path)
        if signature is not None:
            self._shard_cache[prefix] = (signature, dict(entries))

    # -- accounting ----------------------------------------------------------

    def total_bytes(self) -> int:
        """Sum of body bytes in the current pool (the cap's measure)."""
        return sum(
            len(record[0])
            for prefix in self._shard_prefixes()
            for record in self._load_shard(prefix).values()
        )

    def total_entries(self) -> int:
        return sum(
            len(self._load_shard(prefix)) for prefix in self._shard_prefixes()
        )

    # -- garbage collection --------------------------------------------------

    def collect_referenced(self) -> Tuple[set, List[str]]:
        """The gc mark set: digests any registered database references.

        A database's reference index is its private sidecar — it records
        every body the database revived or compiled, under the same
        (vm_version, host_tag) stamps this pool is keyed by.  Sidecars
        stamped for another VM or host reference nothing in *this* pool.
        Unreadable indexes are reported and contribute an empty set:
        gc can then only cost that database recompiles, never damage.
        """
        referenced: set = set()
        unreadable: List[str] = []
        for db_dir in self.registered_databases():
            path = os.path.join(db_dir, SIDECAR_NAME)
            if not self.storage.exists(path):
                continue  # attached but nothing persisted yet
            try:
                sidecar = CompiledBodyStore.from_bytes(
                    self.storage.read_bytes(path)
                )
            except (SidecarError, OSError):
                unreadable.append(db_dir)
                continue
            if (
                sidecar.vm_version == self.vm_version
                and sidecar.host_tag == self.host_tag
            ):
                referenced.update(sidecar.entries)
        return referenced, unreadable

    def gc(self, max_bytes: Optional[int] = None) -> GcReport:
        """Mark-and-sweep plus optional LRU cap; returns the report.

        Safe to run concurrently with publishers and readers: each shard
        is rewritten under its lock with a fresh re-read, and readers
        revalidate, so a body is only ever *present with valid bytes* or
        *cleanly absent* — a racing revive either got its bytes first or
        recompiles.
        """
        report = GcReport(registered_databases=self.registered_databases())
        referenced, unreadable = self.collect_referenced()
        report.referenced = len(referenced)
        report.unreadable_indexes = unreadable

        self._remove_stale_pools(report)

        quarantined_before = self.quarantined_count
        for prefix in self._shard_prefixes():
            with self.storage.lock(self._shard_lock_path(prefix)):
                entries = self._load_shard(prefix)
                if not entries:
                    continue
                report.scanned_entries += len(entries)
                report.scanned_bytes += sum(
                    len(record[0]) for record in entries.values()
                )
                kept = {
                    digest: record
                    for digest, record in entries.items()
                    if digest in referenced
                }
                if len(kept) != len(entries):
                    report.swept_entries += len(entries) - len(kept)
                    report.swept_bytes += sum(
                        len(record[0])
                        for digest, record in entries.items()
                        if digest not in kept
                    )
                    self._write_shard(prefix, kept)
        report.quarantined_shards = [
            filename
            for kind, filename, _ in self.events[quarantined_before:]
            if kind == "quarantine"
        ]

        cap = max_bytes if max_bytes is not None else self.max_bytes
        if cap is not None:
            evicted, evicted_bytes = self._enforce_cap(cap)
            report.lru_evicted_entries = evicted
            report.lru_evicted_bytes = evicted_bytes

        report.remaining_entries = self.total_entries()
        report.remaining_bytes = self.total_bytes()
        return report

    def _remove_stale_pools(self, report: GcReport) -> None:
        """Drop whole pools keyed for another VM version or host tag.

        Wholesale invalidation means a stale pool can never be read
        again under current keys; removing it (not quarantining — it is
        garbage, not evidence) is what keeps long-lived hosts bounded
        across upgrades.
        """
        bodies = os.path.join(self.directory, BODIES_DIR)
        if not os.path.isdir(bodies):
            return
        current = store_keytag(self.vm_version, self.host_tag)
        for name in self.storage.listdir(bodies):
            pool = os.path.join(bodies, name)
            if name == current or not os.path.isdir(pool):
                continue
            try:
                for filename in self.storage.listdir(pool):
                    self.storage.remove(os.path.join(pool, filename))
                os.rmdir(pool)
            except OSError as exc:
                self.events.append(("io-error", name, str(exc)))
                continue
            report.stale_pools_removed.append(name)

    def _enforce_cap(self, max_bytes: int) -> Tuple[int, int]:
        """Evict least-recently-stamped bodies until the pool fits.

        Eviction order is (stamp, digest): oldest last use first, digest
        as a deterministic tie-break.  Evicting a referenced body is
        safe — it reads as cleanly absent and is recompiled (and likely
        republished) by the next session that wants it.
        """
        records = []  # (stamp, digest, size, prefix)
        total = 0
        for prefix in self._shard_prefixes():
            for digest, record in self._load_shard(prefix).items():
                blob, stamp = record[0], record[1]
                records.append((stamp, digest, len(blob), prefix))
                total += len(blob)
        if total <= max_bytes:
            return 0, 0
        records.sort()
        doomed: Dict[str, set] = {}
        for stamp, digest, size, prefix in records:
            if total <= max_bytes:
                break
            doomed.setdefault(prefix, set()).add(digest)
            total -= size
        evicted_entries = 0
        evicted_bytes = 0
        for prefix in sorted(doomed):
            with self.storage.lock(self._shard_lock_path(prefix)):
                entries = self._load_shard(prefix)
                kept = {
                    digest: record
                    for digest, record in entries.items()
                    if digest not in doomed[prefix]
                }
                if len(kept) == len(entries):
                    continue
                evicted_entries += len(entries) - len(kept)
                evicted_bytes += sum(
                    len(record[0])
                    for digest, record in entries.items()
                    if digest not in kept
                )
                self._write_shard(prefix, kept)
        return evicted_entries, evicted_bytes

    # -- consistency check ---------------------------------------------------

    def fsck(self, quarantine: bool = False) -> SharedFsckReport:
        """Validate every shard of every pool, section by section.

        Shards of the current pool are checked for framing damage and
        key mismatches (``items``); pools keyed for other VM versions or
        host tags are *notes* (``stale-keytag`` — expected after an
        upgrade, removed by ``gc``), as are leftover ``.tmp`` files from
        interrupted atomic writes.  With ``quarantine=True`` damaged
        shards are moved aside.
        """
        report = SharedFsckReport()
        bodies = os.path.join(self.directory, BODIES_DIR)
        self._read_registry()  # surfaces a corrupt registry via events
        for kind, filename, reason in self.events:
            if kind == "quarantine" and REGISTRY_NAME in filename:
                report.items.append(
                    SharedFsckItem(REGISTRY_NAME, "corrupt", detail=reason)
                )
        if not os.path.isdir(bodies):
            return report
        current = store_keytag(self.vm_version, self.host_tag)
        for name in self.storage.listdir(bodies):
            pool = os.path.join(bodies, name)
            if not os.path.isdir(pool):
                continue
            if name != current:
                report.notes.append(
                    SharedFsckItem(
                        os.path.join(BODIES_DIR, name),
                        "stale-keytag",
                        detail="pool for another VM version or host tag; "
                               "`cache gc` removes it",
                    )
                )
                continue
            for filename in self.storage.listdir(pool):
                rel = os.path.join(BODIES_DIR, name, filename)
                path = os.path.join(pool, filename)
                if filename.endswith(LOCK_SUFFIX):
                    continue
                if filename.endswith(TMP_SUFFIX):
                    report.notes.append(
                        SharedFsckItem(
                            rel,
                            "stale-tmp",
                            detail="leftover from an interrupted atomic write",
                        )
                    )
                    continue
                if not filename.endswith(SHARD_SUFFIX):
                    continue
                try:
                    blob = self.storage.read_bytes(path)
                except OSError as exc:
                    report.items.append(
                        SharedFsckItem(rel, "corrupt", detail=str(exc))
                    )
                    continue
                damage = verify_shard(blob)
                if damage:
                    for section, reason in sorted(damage.items()):
                        report.items.append(
                            SharedFsckItem(rel, "corrupt", section, reason)
                        )
                    if quarantine:
                        self._quarantine(path, "fsck: %s" % damage)
                        report.quarantined.append(rel)
                    continue
                vm_version, host_tag, _entries = parse_shard(blob)
                if vm_version != self.vm_version or host_tag != self.host_tag:
                    report.items.append(
                        SharedFsckItem(
                            rel,
                            "key-mismatch",
                            detail="stamped (%s, %s)" % (vm_version, host_tag),
                        )
                    )
                    continue
                report.items.append(SharedFsckItem(rel, "ok"))
        return report
