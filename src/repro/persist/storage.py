"""Filesystem seam for the persistence layer.

Every byte the persistent-cache subsystem reads from or writes to disk
goes through a :class:`FileStorage` object.  Production code uses the
default instance; the fault-injection harness
(:mod:`repro.testing.faultfs`) substitutes a shim that can flip bytes,
truncate reads, fail the Nth write with ``ENOSPC``/``EIO``, or simulate a
process kill between the tmp-file write and the rename.

Crash consistency contract (what the rest of the system relies on):

* :meth:`FileStorage.write_atomic` never exposes a partially written
  file at the destination path.  Data is written to ``<path>.tmp`` in
  fixed-size chunks, flushed and fsync'd, and then renamed over the
  destination.  A crash or IO error at any point leaves the destination
  either absent or holding its previous complete contents.
* :meth:`FileStorage.lock` provides an advisory exclusive lock (via
  ``flock``) so concurrent sessions accumulating into one database
  serialize their read-modify-write of the index.

All primitive operations (``_open_write``, ``_write``, ``_fsync``,
``_rename``) are separate methods precisely so the fault shim can
override them one at a time.
"""

from __future__ import annotations

import contextlib
import os

try:  # POSIX advisory locking; degraded to a no-op where unavailable.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platform
    fcntl = None

#: Atomic writes are chunked so mid-write faults (``ENOSPC`` on the Nth
#: write, power loss) leave a *partial* tmp file, as on real hardware.
WRITE_CHUNK_BYTES = 1024

#: Suffix of the not-yet-renamed half of an atomic write.  A leftover
#: ``.tmp`` file is the signature of an interrupted write-back; ``fsck``
#: reports them and recovery ignores them.
TMP_SUFFIX = ".tmp"


class StorageError(OSError):
    """A storage operation failed (base for injected IO faults too)."""


class FileStorage:
    """Direct filesystem access with atomic write-replace semantics."""

    # -- reads ---------------------------------------------------------------

    def read_bytes(self, path: str) -> bytes:
        with open(path, "rb") as handle:
            return handle.read()

    # -- atomic writes -------------------------------------------------------

    def write_atomic(self, path: str, data: bytes) -> None:
        """Write ``data`` to ``path`` so it appears all-or-nothing.

        The destination is replaced only by the final rename; any failure
        before that leaves the previous file intact (and possibly a
        partial ``<path>.tmp`` for post-mortem inspection — never cleaned
        up here, exactly like a real crash).
        """
        tmp_path = path + TMP_SUFFIX
        handle = self._open_write(tmp_path)
        try:
            for start in range(0, len(data), WRITE_CHUNK_BYTES):
                self._write(handle, data[start : start + WRITE_CHUNK_BYTES])
            if not data:
                self._write(handle, b"")
            handle.flush()
            self._fsync(handle)
        finally:
            handle.close()
        self._rename(tmp_path, path)

    # Primitive operations, individually overridable by the fault shim.

    def _open_write(self, path: str):
        return open(path, "wb")

    def _write(self, handle, chunk: bytes) -> None:
        handle.write(chunk)

    def _fsync(self, handle) -> None:
        try:
            os.fsync(handle.fileno())
        except (OSError, ValueError):  # pragma: no cover - exotic fs
            pass

    def _rename(self, src: str, dst: str) -> None:
        os.replace(src, dst)

    # -- namespace operations ------------------------------------------------

    def exists(self, path: str) -> bool:
        return os.path.exists(path)

    def remove(self, path: str) -> None:
        os.remove(path)

    def rename(self, src: str, dst: str) -> None:
        os.replace(src, dst)

    def listdir(self, path: str):
        return sorted(os.listdir(path))

    def makedirs(self, path: str) -> None:
        os.makedirs(path, exist_ok=True)

    def file_size(self, path: str) -> int:
        return os.path.getsize(path)

    def stat_signature(self, path):
        """A cheap change-detection token for ``path``, or None if absent.

        Two calls returning the same token mean the file was not replaced
        in between (atomic write-replace always changes it); the shared
        body store uses this to revalidate its in-memory shard cache
        without re-reading and re-CRCing the file on every lookup.
        """
        try:
            status = os.stat(path)
        except OSError:
            return None
        return (status.st_mtime_ns, status.st_size)

    # -- locking -------------------------------------------------------------

    @contextlib.contextmanager
    def lock(self, path: str):
        """Hold an exclusive advisory lock on ``path`` (created empty)."""
        handle = open(path, "a+b")
        try:
            if fcntl is not None:
                fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
            yield
        finally:
            if fcntl is not None:
                fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
            handle.close()


#: Shared default used when callers do not inject their own storage.
DEFAULT_STORAGE = FileStorage()
