"""The persistent cache database.

A directory of cache files plus a JSON index keyed by the (application,
VM, tool) key triple.  The manager stores caches here at exit and looks
them up at startup (paper Figure 1: "Persistent Cache Manager" +
"Persistent Cache Database").

Two lookup modes exist:

* **exact** — all three key components must match (inter-execution
  persistence, the default);
* **inter-application** — the application component is ignored; any cache
  produced under the same VM and tool is eligible (paper §3.2.3).  When
  several candidates exist the caller can pick (the evaluation primes with
  a specific donor application); the default picks the largest cache,
  which maximizes the library code available for reuse.

Crash consistency and damage containment (``docs/cache-format.md``):

* every write (cache files and the index) is an atomic write-replace
  through the storage seam — readers never observe a torn file;
* ``store`` holds an advisory lock and re-reads the index inside it, so
  concurrent sessions accumulating into one database serialize their
  read-modify-write and never lose each other's entries;
* a cache file that fails validation is **quarantined** — moved into the
  ``quarantine/`` subdirectory (never deleted), dropped from the index,
  and recorded in :attr:`CacheDatabase.events` so the session can report
  it — and the lookup behaves as a clean miss;
* a corrupt index resets to empty after quarantining the damaged file;
  orphaned cache files are re-discoverable via :meth:`fsck`.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.persist.cachefile import (
    CacheFileError,
    PersistentCache,
    verify_sections,
)
from repro.persist.keys import MappingKey, tool_key, vm_key
from repro.persist.sidecar import (
    CompiledBodyStore,
    SIDECAR_NAME,
    SidecarError,
    sidecar_staleness,
    verify_sidecar,
)
from repro.persist.storage import FileStorage, TMP_SUFFIX

INDEX_NAME = "index.json"
LOCK_NAME = "index.lock"
QUARANTINE_DIR = "quarantine"
#: Subdirectory holding recorded replay-session logs (PCRL1 files).
REPLAY_DIR = "replay"


def _sanitize_log_name(name: str) -> str:
    """Filesystem-safe stem for a replay-log filename."""
    cleaned = "".join(
        ch if ch.isalnum() or ch in "-_." else "-" for ch in name
    )
    return cleaned[:48] or "session"


@dataclass(frozen=True)
class CacheEntry:
    """One row of the database index."""

    app_digest: str
    vm_digest: str
    tool_digest: str
    app_path: str
    filename: str
    trace_count: int
    file_size: int


@dataclass
class FsckItem:
    """Health of one database file, as reported by :meth:`fsck`."""

    filename: str
    #: "ok" | "missing" | "corrupt" | "orphan" | "stale-tmp" | "stale-vm"
    status: str
    section: str = ""
    detail: str = ""


@dataclass
class FsckReport:
    """Result of a database consistency check."""

    items: List[FsckItem] = field(default_factory=list)
    quarantined: List[str] = field(default_factory=list)
    #: Informational findings that do not make the database unhealthy:
    #: a compiled-body sidecar that is stale (other VM version / host
    #: bytecode format) or orphaned (no indexed caches to serve).  Both
    #: are expected states — the next warm run rewrites the sidecar
    #: under current keys — unlike ``items`` damage, which marks bytes
    #: that can never be used again.
    notes: List[FsckItem] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return all(item.status == "ok" for item in self.items)


class CacheDatabase:
    """Filesystem-backed store of persistent caches.

    The index is re-read at construction and, under an advisory lock,
    on every store; all writes are atomic write-replaces.  Damaged files
    are quarantined, never deleted, and every such event is appended to
    :attr:`events` as ``(kind, filename, reason)`` tuples.
    """

    def __init__(
        self,
        directory: str,
        storage: Optional[FileStorage] = None,
        shared_store=None,
    ):
        self.directory = directory
        self.storage = storage or FileStorage()
        self.storage.makedirs(directory)
        self._index_path = os.path.join(directory, INDEX_NAME)
        self._lock_path = os.path.join(directory, LOCK_NAME)
        self._entries: List[CacheEntry] = []
        #: (kind, filename, reason) records of quarantine/recovery events.
        self.events: List[tuple] = []
        #: The per-host shared compiled-body store this database attaches
        #: to (:class:`repro.persist.sharedstore.SharedBodyStore`), or
        #: None.  Sessions opened on this database revive bodies through
        #: it before the private sidecar; attaching registers the
        #: database as a gc mark root.  Registration failure is
        #: best-effort: an unreachable store must not block the database.
        self.shared_store = shared_store
        if shared_store is not None:
            try:
                shared_store.register_database(directory)
            except OSError as exc:
                self.events.append(
                    ("io-error", "shared-store", "registration failed: %s" % exc)
                )
        self._load_index()

    # -- index maintenance --------------------------------------------------

    def _load_index(self) -> None:
        if not self.storage.exists(self._index_path):
            self._entries = []
            return
        try:
            raw = json.loads(self.storage.read_bytes(self._index_path))
            entries = [CacheEntry(**row) for row in raw]
        except (ValueError, TypeError, KeyError, OSError) as exc:
            # A torn or garbage index must not take the database down:
            # quarantine it and start empty.  Cache files referenced by
            # the lost index stay on disk; ``fsck`` reports them as
            # orphans.
            self._quarantine(INDEX_NAME, "corrupt index: %s" % exc)
            self._entries = []
            return
        self._entries = entries

    def _save_index(self) -> None:
        blob = json.dumps(
            [entry.__dict__ for entry in self._entries], indent=1
        ).encode()
        self.storage.write_atomic(self._index_path, blob)

    def entries(self) -> List[CacheEntry]:
        return list(self._entries)

    # -- quarantine ---------------------------------------------------------

    def _quarantine(self, filename: str, reason: str) -> None:
        """Move a damaged file aside — never delete possible evidence."""
        source = os.path.join(self.directory, filename)
        quarantine_dir = os.path.join(self.directory, QUARANTINE_DIR)
        try:
            destination = os.path.join(quarantine_dir, filename)
            # ``filename`` may live in a subdirectory (replay logs):
            # mirror it under quarantine/ so the move always has a home.
            self.storage.makedirs(os.path.dirname(destination))
            serial = 0
            while self.storage.exists(destination):
                serial += 1
                destination = os.path.join(
                    quarantine_dir, "%s.%d" % (filename, serial)
                )
            if self.storage.exists(source):
                self.storage.rename(source, destination)
        except OSError as exc:
            # Quarantine is best-effort: a failing move must not turn a
            # contained corruption into a crash.
            reason = "%s (quarantine move failed: %s)" % (reason, exc)
        self.events.append(("quarantine", filename, reason))

    def _drop_entry(self, entry: CacheEntry) -> None:
        self._entries = [row for row in self._entries if row is not entry]
        try:
            self._save_index()
        except OSError:
            # The in-memory view is already consistent; a failed index
            # write only delays the cleanup to the next successful store.
            pass

    @property
    def quarantined_count(self) -> int:
        return sum(1 for kind, _, _ in self.events if kind == "quarantine")

    # -- store ----------------------------------------------------------------

    def store(
        self,
        cache: PersistentCache,
        app_key: MappingKey,
    ) -> CacheEntry:
        """Write ``cache`` to disk and (re-)index it.

        A cache with the same key triple replaces the previous file (this
        is how accumulation persists: the manager loads, accumulates, and
        stores back under the same keys).  The file lands via atomic
        write-replace; the index merge happens under the database lock
        with a fresh re-read, so two concurrent sessions storing different
        entries both survive.
        """
        app_digest = app_key.digest
        vm_digest = vm_key(cache.vm_version)
        tool_digest = tool_key(cache.tool_identity)
        filename = "pcc-%s-%s-%s.cache" % (
            app_digest[:12],
            vm_digest[:8],
            tool_digest[:8],
        )
        blob = cache.to_bytes()
        entry = CacheEntry(
            app_digest=app_digest,
            vm_digest=vm_digest,
            tool_digest=tool_digest,
            app_path=cache.app_path,
            filename=filename,
            trace_count=len(cache.traces),
            file_size=len(blob),
        )
        with self.storage.lock(self._lock_path):
            self.storage.write_atomic(
                os.path.join(self.directory, filename), blob
            )
            # Merge with entries other sessions stored since we last read.
            self._load_index()
            self._entries = [
                existing
                for existing in self._entries
                if (existing.app_digest, existing.vm_digest, existing.tool_digest)
                != (app_digest, vm_digest, tool_digest)
            ]
            self._entries.append(entry)
            self._save_index()
        return entry

    # -- lookup -----------------------------------------------------------------

    def lookup(
        self,
        app_key: MappingKey,
        vm_version: str,
        tool_identity: str,
    ) -> Optional[PersistentCache]:
        """Exact (app, VM, tool) lookup; a damaged file reads as a miss."""
        app_digest = app_key.digest
        vm_digest = vm_key(vm_version)
        tool_digest = tool_key(tool_identity)
        for entry in self._entries:
            if (
                entry.app_digest == app_digest
                and entry.vm_digest == vm_digest
                and entry.tool_digest == tool_digest
            ):
                return self._read(entry)
        return None

    def lookup_inter_application(
        self,
        vm_version: str,
        tool_identity: str,
        exclude_app_path: Optional[str] = None,
        select: Optional[Callable[[List[CacheEntry]], Optional[CacheEntry]]] = None,
    ) -> Optional[PersistentCache]:
        """Lookup ignoring the application key (paper §3.2.3).

        Args:
            vm_version: Current VM version.
            tool_identity: Current tool identity.
            exclude_app_path: Skip caches created by this application (to
                force *inter*-application reuse in experiments).
            select: Optional policy choosing among candidates; default
                picks the largest cache.

        A damaged candidate is quarantined and the next-best one is
        tried, so one bad donor never hides the healthy ones.
        """
        vm_digest = vm_key(vm_version)
        tool_digest = tool_key(tool_identity)
        candidates = [
            entry
            for entry in self._entries
            if entry.vm_digest == vm_digest
            and entry.tool_digest == tool_digest
            and (exclude_app_path is None or entry.app_path != exclude_app_path)
        ]
        while candidates:
            if select is not None:
                chosen = select(candidates)
                if chosen is None:
                    return None
            else:
                chosen = max(candidates, key=lambda entry: entry.file_size)
            cache = self._read(chosen)
            if cache is not None:
                return cache
            candidates = [entry for entry in candidates if entry is not chosen]
        return None

    def _read(self, entry: CacheEntry) -> Optional[PersistentCache]:
        """Load one indexed cache file; quarantine it if damaged."""
        path = os.path.join(self.directory, entry.filename)
        try:
            return PersistentCache.load(path, storage=self.storage)
        except CacheFileError as exc:
            section = exc.section or "unknown"
            self._quarantine(
                entry.filename, "damaged %s: %s" % (section, exc)
            )
            self._drop_entry(entry)
            return None
        except FileNotFoundError:
            self.events.append(
                ("missing", entry.filename, "indexed file does not exist")
            )
            self._drop_entry(entry)
            return None
        except OSError as exc:
            # Read-level IO error (EIO and friends): surface as a miss;
            # the file stays put — it may be readable next time.
            self.events.append(("io-error", entry.filename, str(exc)))
            return None

    # -- compiled-body sidecar ----------------------------------------------

    def _sidecar_path(self) -> str:
        return os.path.join(self.directory, SIDECAR_NAME)

    def open_sidecar(self, vm_version: str):
        """Load the compiled-body sidecar; returns ``(store, state)``.

        Failure policy mirrors the trace cache's, but without degrading
        anything — the sidecar is a pure host-side accelerator:

        * missing file → a fresh empty store (state ``"fresh"``);
        * structurally damaged → quarantined (moved aside, never
          deleted) and a fresh store (state ``"quarantined"``);
        * valid but keyed to another VM version or host bytecode format
          → ignored *wholesale* and a fresh store under the current keys
          (state ``"stale-vm"``) — the next write-back replaces it;
        * unreadable (IO error) → ``(None, "io-error")``; the caller
          runs without a sidecar this session.
        """
        path = self._sidecar_path()
        if not self.storage.exists(path):
            return CompiledBodyStore.fresh(vm_version), "fresh"
        try:
            blob = self.storage.read_bytes(path)
        except OSError as exc:
            self.events.append(("io-error", SIDECAR_NAME, str(exc)))
            return None, "io-error"
        try:
            store = CompiledBodyStore.from_bytes(blob)
        except SidecarError as exc:
            self._quarantine(
                SIDECAR_NAME,
                "damaged %s: %s" % (exc.section or "unknown", exc),
            )
            return CompiledBodyStore.fresh(vm_version), "quarantined"
        if not store.matches_host(vm_version):
            return CompiledBodyStore.fresh(vm_version), "stale-vm"
        return store, "loaded"

    def store_sidecar(self, store: CompiledBodyStore) -> int:
        """Write the sidecar back; returns the entry count written.

        Runs under the database lock with a merge re-read, like
        :meth:`store`: entries another session persisted since we opened
        are folded in (when compatibly keyed), so concurrent sessions
        never lose each other's bodies.  The write itself is the same
        atomic write-replace every database file uses.
        """
        path = self._sidecar_path()
        with self.storage.lock(self._lock_path):
            if self.storage.exists(path):
                try:
                    existing = CompiledBodyStore.from_bytes(
                        self.storage.read_bytes(path)
                    )
                except (SidecarError, OSError):
                    existing = None  # damaged/unreadable: overwrite
                if existing is not None and existing.compatible_with(store):
                    for digest, blob in existing.entries.items():
                        store.entries.setdefault(digest, blob)
            self.storage.write_atomic(path, store.to_bytes())
        return len(store.entries)

    # -- replay-session logs -------------------------------------------------

    def replay_directory(self) -> str:
        return os.path.join(self.directory, REPLAY_DIR)

    def store_replay_log(self, log, name: Optional[str] = None) -> str:
        """Atomically write one ``PCRL1`` session log; returns its name.

        ``name`` defaults to a sanitized, serial-suffixed identity drawn
        from the log's meta, so repeated recordings of one workload
        never clobber each other.  The write is the same atomic
        write-replace every database file uses.
        """
        from repro.replay.log import REPLAY_LOG_SUFFIX

        directory = self.replay_directory()
        self.storage.makedirs(directory)
        if name is None:
            base = _sanitize_log_name(
                str(
                    log.meta.get("name")
                    or log.meta.get("workload")
                    or "session"
                )
            )
            existing = set(self.storage.listdir(directory))
            serial = 0
            while True:
                name = "%s-%04d%s" % (base, serial, REPLAY_LOG_SUFFIX)
                if name not in existing:
                    break
                serial += 1
        elif not name.endswith(REPLAY_LOG_SUFFIX):
            name += REPLAY_LOG_SUFFIX
        self.storage.write_atomic(
            os.path.join(directory, name), log.to_bytes()
        )
        return name

    def load_replay_log(self, name: str):
        """Read one stored session log back.

        A structurally damaged log is quarantined (moved into
        ``quarantine/replay/``, never deleted) and the
        :class:`~repro.replay.log.ReplayLogError` re-raised — replay
        against damaged evidence must fail loudly, not silently run
        live.  IO errors propagate as-is.
        """
        from repro.replay.log import ReplayLog, ReplayLogError

        path = os.path.join(self.replay_directory(), name)
        blob = self.storage.read_bytes(path)
        try:
            return ReplayLog.from_bytes(blob)
        except ReplayLogError as exc:
            self._quarantine(
                "%s/%s" % (REPLAY_DIR, name),
                "damaged %s: %s" % (exc.section or "unknown", exc),
            )
            raise

    def list_replay_logs(self) -> List[str]:
        """Names of every stored session log, sorted."""
        from repro.replay.log import REPLAY_LOG_SUFFIX

        directory = self.replay_directory()
        if not self.storage.exists(directory):
            return []
        return sorted(
            name
            for name in self.storage.listdir(directory)
            if name.endswith(REPLAY_LOG_SUFFIX)
        )

    def clear(self) -> None:
        """Remove every cache file and reset the index."""
        for entry in self._entries:
            path = os.path.join(self.directory, entry.filename)
            if self.storage.exists(path):
                self.storage.remove(path)
        self._entries = []
        self._save_index()

    # -- consistency check --------------------------------------------------

    def fsck(
        self, quarantine: bool = False, vm_version: Optional[str] = None
    ) -> FsckReport:
        """Validate every indexed file section by section.

        Also reports files the index does not know about (orphans, e.g.
        after an index reset), leftover ``.tmp`` files from interrupted
        atomic writes, and the compiled-body sidecar (CRC verification
        plus wholesale staleness against ``vm_version`` — defaulting to
        the running VM's — and the host bytecode tag).  With
        ``quarantine=True`` damaged indexed files and a damaged sidecar
        are moved aside (and indexed files dropped from the index).
        """
        report = FsckReport()
        self._fsck_sidecar(report, quarantine, vm_version)
        self._fsck_replay_logs(report, quarantine)
        indexed = set()
        for entry in list(self._entries):
            indexed.add(entry.filename)
            path = os.path.join(self.directory, entry.filename)
            if not self.storage.exists(path):
                report.items.append(FsckItem(entry.filename, "missing"))
                continue
            try:
                blob = self.storage.read_bytes(path)
            except OSError as exc:
                report.items.append(
                    FsckItem(entry.filename, "corrupt", detail=str(exc))
                )
                continue
            damage = verify_sections(blob)
            if not damage:
                report.items.append(FsckItem(entry.filename, "ok"))
                continue
            for section, reason in sorted(damage.items()):
                report.items.append(
                    FsckItem(entry.filename, "corrupt", section, reason)
                )
            if quarantine:
                self._quarantine(entry.filename, "fsck: %s" % damage)
                self._drop_entry(entry)
                report.quarantined.append(entry.filename)
        for filename in self.storage.listdir(self.directory):
            path = os.path.join(self.directory, filename)
            if filename in indexed or os.path.isdir(path):
                continue
            if filename in (INDEX_NAME, LOCK_NAME, SIDECAR_NAME):
                continue
            if filename.endswith(TMP_SUFFIX):
                report.items.append(
                    FsckItem(
                        filename,
                        "stale-tmp",
                        detail="leftover from an interrupted atomic write",
                    )
                )
            elif filename.endswith(".cache"):
                report.items.append(
                    FsckItem(filename, "orphan", detail="not in the index")
                )
        return report

    def _fsck_replay_logs(self, report: FsckReport, quarantine: bool) -> None:
        """Health-check every recorded replay log for :meth:`fsck`."""
        from repro.replay.log import REPLAY_LOG_SUFFIX, verify_replay_log

        directory = self.replay_directory()
        if not self.storage.exists(directory):
            return
        for name in self.storage.listdir(directory):
            label = "%s/%s" % (REPLAY_DIR, name)
            path = os.path.join(directory, name)
            if name.endswith(TMP_SUFFIX):
                report.items.append(
                    FsckItem(
                        label,
                        "stale-tmp",
                        detail="leftover from an interrupted atomic write",
                    )
                )
                continue
            if not name.endswith(REPLAY_LOG_SUFFIX):
                continue
            try:
                blob = self.storage.read_bytes(path)
            except OSError as exc:
                report.items.append(
                    FsckItem(label, "corrupt", detail=str(exc))
                )
                continue
            damage = verify_replay_log(blob)
            if not damage:
                report.items.append(FsckItem(label, "ok"))
                continue
            for section, reason in sorted(damage.items()):
                report.items.append(
                    FsckItem(label, "corrupt", section, reason)
                )
            if quarantine:
                self._quarantine(label, "fsck: %s" % damage)
                report.quarantined.append(label)

    def _fsck_sidecar(
        self,
        report: FsckReport,
        quarantine: bool,
        vm_version: Optional[str],
    ) -> None:
        """Health-check the compiled-body sidecar for :meth:`fsck`."""
        path = self._sidecar_path()
        if not self.storage.exists(path):
            return
        try:
            blob = self.storage.read_bytes(path)
        except OSError as exc:
            report.items.append(
                FsckItem(SIDECAR_NAME, "corrupt", detail=str(exc))
            )
            return
        damage = verify_sidecar(blob)
        if damage:
            for section, reason in sorted(damage.items()):
                report.items.append(
                    FsckItem(SIDECAR_NAME, "corrupt", section, reason)
                )
            if quarantine:
                self._quarantine(SIDECAR_NAME, "fsck: %s" % damage)
                report.quarantined.append(SIDECAR_NAME)
            return
        if vm_version is None:
            # Layering note: persist/ never imports vm/ at module scope;
            # the default current-VM stamp is resolved lazily here.
            from repro.vm.engine import VM_VERSION

            vm_version = VM_VERSION
        stale = sidecar_staleness(blob, vm_version)
        if stale is not None:
            # Stale entries are unreachable as a whole (wholesale
            # invalidation), not damaged: note, never quarantine — the
            # next warm run simply rewrites the file under current keys.
            report.notes.append(
                FsckItem(SIDECAR_NAME, "stale-vm", detail=stale)
            )
            return
        if not self._entries:
            store = CompiledBodyStore.from_bytes(blob)
            if len(store):
                report.notes.append(
                    FsckItem(
                        SIDECAR_NAME,
                        "orphan",
                        detail=(
                            "%d compiled bodies but no indexed caches to"
                            " revive them for" % len(store)
                        ),
                    )
                )
                return
        report.items.append(FsckItem(SIDECAR_NAME, "ok"))
