"""The persistent cache database.

A directory of cache files plus a JSON index keyed by the (application,
VM, tool) key triple.  The manager stores caches here at exit and looks
them up at startup (paper Figure 1: "Persistent Cache Manager" +
"Persistent Cache Database").

Two lookup modes exist:

* **exact** — all three key components must match (inter-execution
  persistence, the default);
* **inter-application** — the application component is ignored; any cache
  produced under the same VM and tool is eligible (paper §3.2.3).  When
  several candidates exist the caller can pick (the evaluation primes with
  a specific donor application); the default picks the largest cache,
  which maximizes the library code available for reuse.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.persist.cachefile import PersistentCache
from repro.persist.keys import MappingKey, tool_key, vm_key

INDEX_NAME = "index.json"


@dataclass(frozen=True)
class CacheEntry:
    """One row of the database index."""

    app_digest: str
    vm_digest: str
    tool_digest: str
    app_path: str
    filename: str
    trace_count: int
    file_size: int


class CacheDatabase:
    """Filesystem-backed store of persistent caches.

    The index is re-read at construction and written on every store; the
    database is safe for the evaluation's sequential use (one VM process
    at a time, as in the paper's experiments).  Concurrent writers from
    multiple simultaneous VM processes would need external locking.
    """

    def __init__(self, directory: str):
        self.directory = directory
        os.makedirs(directory, exist_ok=True)
        self._index_path = os.path.join(directory, INDEX_NAME)
        self._entries: List[CacheEntry] = []
        self._load_index()

    # -- index maintenance --------------------------------------------------

    def _load_index(self) -> None:
        if not os.path.exists(self._index_path):
            self._entries = []
            return
        with open(self._index_path) as handle:
            raw = json.load(handle)
        self._entries = [CacheEntry(**row) for row in raw]

    def _save_index(self) -> None:
        with open(self._index_path, "w") as handle:
            json.dump(
                [entry.__dict__ for entry in self._entries], handle, indent=1
            )

    def entries(self) -> List[CacheEntry]:
        return list(self._entries)

    # -- store ----------------------------------------------------------------

    def store(
        self,
        cache: PersistentCache,
        app_key: MappingKey,
    ) -> CacheEntry:
        """Write ``cache`` to disk and (re-)index it.

        A cache with the same key triple replaces the previous file (this
        is how accumulation persists: the manager loads, accumulates, and
        stores back under the same keys).
        """
        app_digest = app_key.digest
        vm_digest = vm_key(cache.vm_version)
        tool_digest = tool_key(cache.tool_identity)
        filename = "pcc-%s-%s-%s.cache" % (
            app_digest[:12],
            vm_digest[:8],
            tool_digest[:8],
        )
        blob = cache.to_bytes()
        with open(os.path.join(self.directory, filename), "wb") as handle:
            handle.write(blob)
        entry = CacheEntry(
            app_digest=app_digest,
            vm_digest=vm_digest,
            tool_digest=tool_digest,
            app_path=cache.app_path,
            filename=filename,
            trace_count=len(cache.traces),
            file_size=len(blob),
        )
        self._entries = [
            existing
            for existing in self._entries
            if (existing.app_digest, existing.vm_digest, existing.tool_digest)
            != (app_digest, vm_digest, tool_digest)
        ]
        self._entries.append(entry)
        self._save_index()
        return entry

    # -- lookup -----------------------------------------------------------------

    def lookup(
        self,
        app_key: MappingKey,
        vm_version: str,
        tool_identity: str,
    ) -> Optional[PersistentCache]:
        """Exact (app, VM, tool) lookup."""
        app_digest = app_key.digest
        vm_digest = vm_key(vm_version)
        tool_digest = tool_key(tool_identity)
        for entry in self._entries:
            if (
                entry.app_digest == app_digest
                and entry.vm_digest == vm_digest
                and entry.tool_digest == tool_digest
            ):
                return self._read(entry)
        return None

    def lookup_inter_application(
        self,
        vm_version: str,
        tool_identity: str,
        exclude_app_path: Optional[str] = None,
        select: Optional[Callable[[List[CacheEntry]], Optional[CacheEntry]]] = None,
    ) -> Optional[PersistentCache]:
        """Lookup ignoring the application key (paper §3.2.3).

        Args:
            vm_version: Current VM version.
            tool_identity: Current tool identity.
            exclude_app_path: Skip caches created by this application (to
                force *inter*-application reuse in experiments).
            select: Optional policy choosing among candidates; default
                picks the largest cache.
        """
        vm_digest = vm_key(vm_version)
        tool_digest = tool_key(tool_identity)
        candidates = [
            entry
            for entry in self._entries
            if entry.vm_digest == vm_digest
            and entry.tool_digest == tool_digest
            and (exclude_app_path is None or entry.app_path != exclude_app_path)
        ]
        if not candidates:
            return None
        if select is not None:
            chosen = select(candidates)
            if chosen is None:
                return None
        else:
            chosen = max(candidates, key=lambda entry: entry.file_size)
        return self._read(chosen)

    def _read(self, entry: CacheEntry) -> PersistentCache:
        return PersistentCache.load(os.path.join(self.directory, entry.filename))

    def clear(self) -> None:
        """Remove every cache file and reset the index."""
        for entry in self._entries:
            path = os.path.join(self.directory, entry.filename)
            if os.path.exists(path):
                os.remove(path)
        self._entries = []
        self._save_index()
