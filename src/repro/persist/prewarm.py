"""Parallel cache prewarming: mass-compile a corpus ahead of first use.

``repro prewarm`` runs a workload corpus once, off the user's critical
path, across a pool of worker *processes* — each executes its share of
the corpus under a persisting session so every translated trace lands in
the cache database, every host-compiled body in the compiled-body
sidecar, and (when a shared store is given) in the per-host shared pool.
A later real run of any corpus app then starts warm: traces preload,
bodies revive, and the host compiles nothing (the ``--verify`` pass
checks exactly that invariant).

Process-level parallelism is the right grain here: CPython threads
serialize on the GIL, while the sidecar write-back path is already
multi-process safe (lock-merged, PR3) and the shared store publishes
under its own lock — so jobs can share one database directory and one
store directory with no coordination beyond round-robin partitioning of
the app list.  Workers receive *names*, not images: corpora are
deterministic per seed, so each worker rebuilds its apps locally and
only strings cross the fork boundary.
"""

from __future__ import annotations

import gc
import multiprocessing
import time
from dataclasses import asdict, dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.persist.database import CacheDatabase
from repro.persist.daemon import resolve_shared_store
from repro.persist.manager import PersistenceConfig
from repro.vm.compile import clear_code_object_cache
from repro.vm.engine import VM_VERSION


class PrewarmError(Exception):
    pass


#: Known corpus names for the CLI (``--corpus``).
CORPUS_CHOICES = ("tiny", "warmup", "gui")


def corpus_app_names(corpus: str) -> Tuple[str, ...]:
    """Resolve a corpus name to the app names it contains."""
    if corpus == "tiny":
        from repro.workloads.warmup import TINY_APPS

        return TINY_APPS
    if corpus == "warmup":
        from repro.workloads.warmup import WARMUP_APPS

        return tuple(sorted(WARMUP_APPS))
    if corpus == "gui":
        from repro.workloads.gui import GUI_APPS

        return tuple(sorted(GUI_APPS))
    raise PrewarmError(
        "unknown corpus %r (have: %s)" % (corpus, ", ".join(CORPUS_CHOICES))
    )


def _build_app(corpus: str, name: str):
    if corpus in ("tiny", "warmup"):
        from repro.workloads.warmup import build_warmup_workload

        return build_warmup_workload(name)
    if corpus == "gui":
        from repro.workloads.gui import build_gui_suite

        apps, _store = build_gui_suite()
        try:
            return apps[name]
        except KeyError as exc:
            raise PrewarmError("unknown gui app %r" % name) from exc
    raise PrewarmError("unknown corpus %r" % corpus)


@dataclass
class PrewarmJobReport:
    """What one worker process did with its slice of the corpus."""

    job: int
    apps: List[str] = field(default_factory=list)
    traces_persisted: int = 0
    host_compiles: int = 0
    sidecar_hits: int = 0
    shared_hits: int = 0
    shared_publishes: int = 0
    admission_skipped: int = 0
    wall_s: float = 0.0


@dataclass
class PrewarmReport:
    """Machine-readable summary of a prewarm invocation."""

    db_dir: str
    shared_store_dir: Optional[str]
    corpus: str
    jobs: int
    apps: int = 0
    traces_persisted: int = 0
    #: Bodies the host actually ``compile()``\\ d this invocation.
    compiled: int = 0
    #: Bodies skipped because a store already held them (revive hits).
    skipped: int = 0
    #: Bodies admitted into the shared pool.
    admitted: int = 0
    #: Bodies the shared pool's cost floor rejected at publish.
    admission_skipped: int = 0
    wall_s: float = 0.0
    job_reports: List[PrewarmJobReport] = field(default_factory=list)
    #: Filled by the ``--verify`` warm pass: host compiles observed when
    #: re-running the corpus against the freshly warmed stores (must be
    #: zero for the prewarm to have done its job).
    verify_host_compiles: Optional[int] = None

    def to_dict(self) -> dict:
        return asdict(self)


def _session_config(
    db_dir: str, shared_store_dir: Optional[str], readonly: bool = False
) -> PersistenceConfig:
    # The spec string crosses the fork boundary verbatim; each worker
    # resolves it itself, so ``daemon://DIR`` specs (and the
    # REPRO_CACHE_DAEMON env knob) give every job its own client
    # connection to the per-host cache server — or its own flock-store
    # fallback when no daemon is listening.
    shared = (
        resolve_shared_store(shared_store_dir, VM_VERSION)
        if shared_store_dir
        else None
    )
    return PersistenceConfig(
        database=CacheDatabase(db_dir, shared_store=shared),
        readonly=readonly,
    )


def _run_corpus_apps(
    corpus: str,
    names: Sequence[str],
    db_dir: str,
    shared_store_dir: Optional[str],
    readonly: bool = False,
) -> Dict[str, int]:
    """Run each named app once under a persisting session; sum counters."""
    from repro.workloads.harness import run_vm

    totals = {
        "traces_persisted": 0,
        "host_compiles": 0,
        "sidecar_hits": 0,
        "shared_hits": 0,
        "shared_publishes": 0,
        "admission_skipped": 0,
    }
    for name in names:
        workload = _build_app(corpus, name)
        for input_name in sorted(workload.inputs):
            result = run_vm(
                workload,
                input_name,
                persistence=_session_config(
                    db_dir, shared_store_dir, readonly=readonly
                ),
            )
            report = result.persistence_report
            totals["traces_persisted"] += report.get(
                "new_traces_persisted", 0
            )
            totals["host_compiles"] += report.get("sidecar_host_compiles", 0)
            totals["sidecar_hits"] += report.get("sidecar_hits", 0)
            totals["shared_hits"] += report.get("shared_hits", 0)
            totals["shared_publishes"] += report.get("shared_publishes", 0)
            totals["admission_skipped"] += report.get(
                "shared_admission_skipped", 0
            )
    return totals


def _prewarm_worker(task: tuple) -> dict:
    """Pool entry point: run one job's slice of the corpus.

    Runs in a forked child; the inherited in-memory code-object memo is
    cleared so the job's compile counters describe real work against the
    on-disk stores, not the parent's warm memo.
    """
    job, corpus, names, db_dir, shared_store_dir = task
    # The child is short-lived and exits right after its slice: leave
    # the cycle collector off for its whole life.  A collection would
    # traverse the entire heap inherited from the fork, touching (and
    # so copy-on-write-duplicating) every parent page — a measurable
    # tax precisely when the parent is large and jobs oversubscribe the
    # machine's cores.
    gc.disable()
    clear_code_object_cache()
    start = time.perf_counter()
    totals = _run_corpus_apps(corpus, names, db_dir, shared_store_dir)
    totals["job"] = job
    totals["apps"] = list(names)
    totals["wall_s"] = time.perf_counter() - start
    return totals


def _run_jobs(
    work: Sequence[tuple],
    jobs: int,
    pool_factory: Optional[Callable[[int], object]] = None,
) -> List[dict]:
    """Run worker tasks across a process pool.

    ``pool_factory`` exists for tests: anything with the
    ``map``/``close``/``terminate``/``join`` protocol works.  On
    KeyboardInterrupt the pool is terminated (not drained) and joined
    before the interrupt propagates — a ^C during a long prewarm must
    not leave worker processes running.
    """
    if not work:
        return []
    if pool_factory is None:
        context = multiprocessing.get_context("fork")
        pool_factory = lambda n: context.Pool(processes=n)
    pool = pool_factory(min(jobs, len(work)))
    try:
        results = pool.map(_prewarm_worker, work)
    except KeyboardInterrupt:
        pool.terminate()
        pool.join()
        raise
    pool.close()
    pool.join()
    return results


def run_prewarm(
    db_dir: str,
    jobs: int = 1,
    corpus: str = "warmup",
    shared_store_dir: Optional[str] = None,
    verify: bool = False,
    app_names: Optional[Sequence[str]] = None,
    pool_factory: Optional[Callable[[int], object]] = None,
) -> PrewarmReport:
    """Prewarm ``db_dir`` (and optionally a shared store) from a corpus.

    Partitions the corpus round-robin over ``jobs`` worker processes;
    every job persists into the *same* database and store directories
    (both are multi-process safe).  With ``verify`` the corpus is re-run
    in-process against the warmed stores afterwards, asserting the host
    compiles nothing.
    """
    if jobs < 1:
        raise PrewarmError("jobs must be >= 1 (got %d)" % jobs)
    names = tuple(app_names) if app_names else corpus_app_names(corpus)
    report = PrewarmReport(
        db_dir=db_dir,
        shared_store_dir=shared_store_dir,
        corpus=corpus,
        jobs=jobs,
        apps=len(names),
    )
    slices: List[List[str]] = [[] for _ in range(min(jobs, len(names)))]
    for index, name in enumerate(names):
        slices[index % len(slices)].append(name)
    work = [
        (job, corpus, tuple(slice_names), db_dir, shared_store_dir)
        for job, slice_names in enumerate(slices)
    ]
    start = time.perf_counter()
    for totals in _run_jobs(work, jobs, pool_factory=pool_factory):
        job_report = PrewarmJobReport(
            job=totals["job"],
            apps=list(totals["apps"]),
            traces_persisted=totals["traces_persisted"],
            host_compiles=totals["host_compiles"],
            sidecar_hits=totals["sidecar_hits"],
            shared_hits=totals["shared_hits"],
            shared_publishes=totals["shared_publishes"],
            admission_skipped=totals["admission_skipped"],
            wall_s=totals["wall_s"],
        )
        report.job_reports.append(job_report)
        report.traces_persisted += job_report.traces_persisted
        report.compiled += job_report.host_compiles
        report.skipped += job_report.sidecar_hits + job_report.shared_hits
        report.admitted += job_report.shared_publishes
        report.admission_skipped += job_report.admission_skipped
    report.wall_s = time.perf_counter() - start
    if verify:
        report.verify_host_compiles = verify_warm(
            db_dir, corpus, shared_store_dir, app_names=names
        )
    return report


def verify_warm(
    db_dir: str,
    corpus: str,
    shared_store_dir: Optional[str] = None,
    app_names: Optional[Sequence[str]] = None,
) -> int:
    """Re-run the corpus warm (read-only); return host compiles seen.

    Zero means the prewarm was complete: every trace preloaded and
    every body revived from a store.  The in-memory memo is cleared
    first so revives must come from disk, not from this process's own
    history.
    """
    names = tuple(app_names) if app_names else corpus_app_names(corpus)
    clear_code_object_cache()
    totals = _run_corpus_apps(
        corpus, names, db_dir, shared_store_dir, readonly=True
    )
    return totals["host_compiles"]
