"""Persistent code caching — the paper's contribution."""

from repro.persist.cachefile import (
    CacheFileError,
    PersistedExit,
    PersistedReloc,
    PersistedTrace,
    PersistentCache,
    verify_sections,
)
from repro.persist.storage import FileStorage, StorageError
from repro.persist.convert import (
    ConversionError,
    persist_trace,
    revive_trace,
)
from repro.persist.database import (
    CacheDatabase,
    CacheEntry,
    FsckItem,
    FsckReport,
)
from repro.persist.keys import (
    MappingKey,
    cache_lookup_digest,
    mapping_key,
    tool_key,
    vm_key,
)
from repro.persist.manager import (
    PersistenceConfig,
    PersistenceReport,
    PersistentCacheSession,
)
from repro.persist.pretranslate import (
    PretranslationResult,
    pretranslate_image,
    pretranslate_process,
)

__all__ = [
    "CacheDatabase",
    "CacheEntry",
    "CacheFileError",
    "ConversionError",
    "FileStorage",
    "FsckItem",
    "FsckReport",
    "MappingKey",
    "PersistedExit",
    "PersistedReloc",
    "PersistedTrace",
    "PersistenceConfig",
    "PersistenceReport",
    "PersistentCache",
    "PersistentCacheSession",
    "PretranslationResult",
    "StorageError",
    "cache_lookup_digest",
    "mapping_key",
    "persist_trace",
    "pretranslate_image",
    "pretranslate_process",
    "revive_trace",
    "tool_key",
    "verify_sections",
    "vm_key",
]
