"""Persistent code caching — the paper's contribution."""

from repro.persist.cachefile import (
    CacheFileError,
    PersistedExit,
    PersistedReloc,
    PersistedTrace,
    PersistentCache,
)
from repro.persist.convert import (
    ConversionError,
    persist_trace,
    revive_trace,
)
from repro.persist.database import CacheDatabase, CacheEntry
from repro.persist.keys import (
    MappingKey,
    cache_lookup_digest,
    mapping_key,
    tool_key,
    vm_key,
)
from repro.persist.manager import (
    PersistenceConfig,
    PersistenceReport,
    PersistentCacheSession,
)
from repro.persist.pretranslate import (
    PretranslationResult,
    pretranslate_image,
    pretranslate_process,
)

__all__ = [
    "CacheDatabase",
    "CacheEntry",
    "CacheFileError",
    "ConversionError",
    "MappingKey",
    "PersistedExit",
    "PersistedReloc",
    "PersistedTrace",
    "PersistenceConfig",
    "PersistenceReport",
    "PersistentCache",
    "PersistentCacheSession",
    "PretranslationResult",
    "cache_lookup_digest",
    "mapping_key",
    "persist_trace",
    "pretranslate_image",
    "pretranslate_process",
    "revive_trace",
    "tool_key",
    "vm_key",
]
