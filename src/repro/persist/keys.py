"""Persistent-cache keys.

"To prevent the use of invalid/inconsistent translations, persistent caches
contain information pertaining to executable mappings present in memory at
the time of their creation.  The information is contained in keys.  Keys
are a hash of the base address, mapping size, binary path, program header,
and modification timestamps." (paper §3.2.1)

Three kinds of keys exist:

* a :class:`MappingKey` per executable mapping (the application and every
  shared library),
* the VM key (version of the run-time system itself — translations are
  never reused across versions),
* the tool key (instrumentation semantics — see
  :meth:`repro.vm.client.Tool.identity`).

The database file name is derived from the (app, VM, tool) triple; the
inter-application lookup simply drops the app component (paper §3.2.3:
"the application key used in the persistent cache lookup function is
ignored").
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional

from repro.binfmt.image import Image


@dataclass(frozen=True)
class MappingKey:
    """Key of one executable mapping."""

    path: str
    base: int
    size: int
    header_digest: str
    mtime: int

    @property
    def digest(self) -> str:
        """The key value actually compared: a hash of all components."""
        blob = "%s|%d|%d|%s|%d" % (
            self.path,
            self.base,
            self.size,
            self.header_digest,
            self.mtime,
        )
        return hashlib.sha256(blob.encode()).hexdigest()

    def matches(self, other: "MappingKey") -> bool:
        """Full match: identical binary at an identical base."""
        return self.digest == other.digest

    def matches_content(self, other: "MappingKey") -> bool:
        """Same binary contents, possibly at a different base.

        Used by the position-independent-translation extension, which can
        survive relocation but never a changed binary.
        """
        return (
            self.path == other.path
            and self.size == other.size
            and self.header_digest == other.header_digest
            and self.mtime == other.mtime
        )

    def to_json(self) -> dict:
        return {
            "path": self.path,
            "base": self.base,
            "size": self.size,
            "header_digest": self.header_digest,
            "mtime": self.mtime,
        }

    @classmethod
    def from_json(cls, data: dict) -> "MappingKey":
        """Deserialize with shape validation.

        Raises ``ValueError`` (never ``KeyError``/``TypeError``) on a
        malformed record, so the cache-file loader can present one typed
        error for any damaged key, and a corrupt key can never produce a
        key object that spuriously ``matches()`` a real mapping.
        """
        try:
            path = data["path"]
            base = data["base"]
            size = data["size"]
            header_digest = data["header_digest"]
            mtime = data["mtime"]
        except (KeyError, TypeError) as exc:
            raise ValueError("malformed mapping key: %r" % (exc,)) from exc
        if not isinstance(path, str) or not isinstance(header_digest, str):
            raise ValueError("malformed mapping key: non-string identity")
        for value in (base, size, mtime):
            if not isinstance(value, int) or isinstance(value, bool):
                raise ValueError("malformed mapping key: non-integer field")
        return cls(
            path=path,
            base=base,
            size=size,
            header_digest=header_digest,
            mtime=mtime,
        )


def mapping_key(image: Image, base: int, size: Optional[int] = None) -> MappingKey:
    """Compute the key for ``image`` mapped at ``base``."""
    return MappingKey(
        path=image.path,
        base=base,
        size=image.size if size is None else size,
        header_digest=image.header_digest(),
        mtime=image.mtime,
    )


def vm_key(vm_version: str) -> str:
    """Key of the run-time system itself."""
    return hashlib.sha256(("vm:%s" % vm_version).encode()).hexdigest()


def tool_key(tool_identity: str) -> str:
    """Key of the instrumentation client."""
    return hashlib.sha256(("tool:%s" % tool_identity).encode()).hexdigest()


def host_code_key(vm_version: str, host_tag: str) -> str:
    """Key of the compiled-body sidecar (host code objects).

    Marshaled code objects are one level more fragile than translations:
    they depend on the VM's closure codegen (``vm_version``) *and* on
    the host Python's bytecode/marshal formats (``host_tag``, see
    :func:`repro.persist.sidecar.host_code_tag`).  Any component
    changing invalidates the sidecar wholesale.
    """
    blob = "host:%s|%s" % (vm_key(vm_version), host_tag)
    return hashlib.sha256(blob.encode()).hexdigest()


def cache_lookup_digest(
    app_key: Optional[MappingKey], vm_version: str, tool_identity: str
) -> str:
    """Name under which a cache is filed in the database.

    ``app_key=None`` yields the inter-application lookup name (VM + tool
    only); note inter-application lookups search the database by that
    prefix rather than an exact name.
    """
    app_part = app_key.digest if app_key is not None else "*"
    blob = "%s|%s|%s" % (app_part, vm_key(vm_version), tool_key(tool_identity))
    return hashlib.sha256(blob.encode()).hexdigest()
