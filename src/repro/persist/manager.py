"""The persistent cache manager.

"The manager performs the fundamental tasks of generating persistent
caches, verifying possible reuse, and storing them in the database."
(paper §3.2)

A :class:`PersistentCacheSession` is attached to one engine run and
implements the engine's persistence hooks:

``on_process_start``
    Cache lookup (exact or inter-application), key validation against
    every intercepted library load, invalidation of conflicting or
    relocated translations, and preloading of the valid ones into the
    intra-execution code cache (as demand-paged residents).

``on_module_load`` / ``on_module_unload``
    Run-time load interception for dlopen'd modules: key check + revive on
    load; conversion of the dying module's translations on unload so they
    persist even when the module is gone at process exit.

``on_cache_flush``
    Write-back before the intra-execution cache is discarded ("information
    is written to a persistent code cache whenever the intra-execution
    code cache becomes full...").

``on_exit``
    Write-back at program exit ("...or the last thread of execution
    performs the exit system call"), including accumulation of newly
    discovered translations into the loaded cache.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.persist.cachefile import CacheFileError, PersistentCache, PersistedTrace
from repro.persist.convert import persist_trace, revive_trace
from repro.persist.database import CacheDatabase
from repro.persist.keys import MappingKey, mapping_key

#: Failures the session downgrades on instead of raising through the
#: engine: malformed cache files and any storage-level IO error
#: (including the fault-injection shim's, which subclass OSError).
STORAGE_FAILURES = (CacheFileError, OSError)


@dataclass
class PersistenceConfig:
    """How a session looks up, reuses and writes persistent caches."""

    database: Optional[CacheDatabase] = None
    #: Ignore the application key at lookup; reuse any identically
    #: instrumented cache (paper §3.2.3 / §4.5).
    inter_application: bool = False
    #: Position-independent translations (the paper's proposed extension):
    #: revive traces across library relocation by re-materializing
    #: absolute addresses.
    relocatable: bool = False
    #: Add this run's new translations to the cache at write-back (§4.4).
    accumulate: bool = True
    #: Never write back (measurement runs that must not mutate the DB).
    readonly: bool = False
    #: Prime directly with this cache instead of a database lookup
    #: (cross-input and inter-application experiments pick their donor).
    prime_with: Optional[PersistentCache] = None
    #: For inter-application database lookups: skip the running app's own
    #: caches so reuse is genuinely cross-application.
    exclude_own_app: bool = True
    #: Use the compiled-body sidecar (repro.persist.sidecar): revive host
    #: code objects for the compiled dispatch tier and record new ones at
    #: write-back.  Purely host-side — disabling it changes nothing
    #: observable (cold-compile benchmarking, diagnosis).  Disabling it
    #: also disables the shared store below (the sidecar machinery is
    #: the chain both ride on).
    sidecar: bool = True
    #: Per-host shared compiled-body store
    #: (repro.persist.sharedstore.SharedBodyStore) to revive bodies from
    #: before the private sidecar and publish new ones to at write-back.
    #: Defaults to the database's attached store
    #: (CacheDatabase(shared_store=...)) when None.  Host-side only,
    #: like the sidecar.
    shared_store: Optional[object] = None
    #: Record this run's nondeterminism into a ``PCRL1`` session log
    #: (repro.replay), stored in the database's ``replay/`` directory at
    #: exit (kept on the session as ``recorded_log`` when there is no
    #: database).  Recording sessions run a *persistence-neutral*
    #: profile: no cache lookup, preload or trace write-back — the
    #: recorded ``VMStats`` baseline must be a pure function of the
    #: program and its logged nondeterminism, so replay can reproduce
    #: it bit-identically regardless of how warm any database is.
    record: bool = False
    #: Replay this :class:`repro.replay.log.ReplayLog` instead of
    #: running live: logged syscall values and scheduling decisions are
    #: substituted at every nondeterminism point, and any structural
    #: divergence raises :class:`repro.replay.session.ReplayDivergence`.
    #: Same persistence-neutral profile as recording.
    replay_log: Optional[object] = None
    #: Extra identity keys merged into a recording's log meta (workload
    #: name, input, suite, layout seed, ...) so a differential harness
    #: can rebuild the session later.
    record_meta: Dict[str, object] = field(default_factory=dict)


@dataclass
class PersistenceReport:
    """What the session did, for results and experiments."""

    cache_found: bool = False
    source_app: str = ""
    preloaded: int = 0
    invalidated: int = 0
    rebased: int = 0
    retained_unloaded: int = 0
    version_conflict: bool = False
    new_traces_persisted: int = 0
    written: bool = False
    total_traces_after_write: int = 0
    key_checks: int = 0
    #: Traces skipped at write-back: unbacked or self-modified code.
    unbacked_skipped: int = 0
    #: Damaged cache files moved aside (never deleted) this session.
    cache_quarantined: int = 0
    #: True when a storage failure downgraded this session to plain JIT
    #: execution (no reuse and/or no write-back).
    fallback_jit_only: bool = False
    #: Human-readable reason for the downgrade ("" when none happened).
    degraded_reason: str = ""
    #: Count of storage-level failures absorbed by the session.
    storage_errors: int = 0
    #: Compiled-body sidecar lifecycle this session (host-side only; see
    #: repro.persist.sidecar): how the open went ("disabled", "fresh",
    #: "loaded", "stale-vm", "quarantined", "io-error", "write-error").
    sidecar_state: str = "disabled"
    #: Entries available after the open (revivable compiled bodies).
    sidecar_entries: int = 0
    #: Factory code objects revived from the sidecar (host compile()s
    #: skipped) and host compile()s actually paid, from the compiler.
    sidecar_hits: int = 0
    sidecar_host_compiles: int = 0
    #: Whether the write-back persisted the sidecar, and how many bodies
    #: this process contributed that were not on disk before.
    sidecar_written: bool = False
    sidecar_new_entries: int = 0
    #: Per-host shared compiled-body store lifecycle (host-side only;
    #: see repro.persist.sharedstore): "disabled", "attached",
    #: "stale-vm" (store keyed for another VM version), or
    #: "write-error: ..." when a publish failed.
    shared_store_state: str = "disabled"
    #: Bodies revived from the shared store and chained lookups the
    #: store could not serve (answered by the private sidecar or a host
    #: compile()).
    shared_hits: int = 0
    shared_misses: int = 0
    #: Bodies this session added to the shared store at write-back.
    shared_publishes: int = 0
    #: Bodies the store's LRU/size cap evicted during this session's
    #: publishes.
    shared_gc_evictions: int = 0
    #: Already-pooled bodies whose LRU stamp this session refreshed.
    #: Read-only sessions record *only* these at write-back time (no
    #: body publish, no trace write) so a consumer that never writes
    #: still keeps its hot working set off the gc cap's eviction list.
    shared_touch_refreshes: int = 0
    #: Offered bodies the shared store's cost-aware admission skipped:
    #: their measured compile cost fell below the storage-cost floor
    #: (REPRO_PUBLISH_MIN_COST_US; zero floor admits everything).
    shared_admission_skipped: int = 0
    #: How the shared store reached the pool: "" (no shared store),
    #: "file" (flock-merged shard files), or "daemon" (the per-host
    #: cache-server socket; repro.persist.daemon).  A session that
    #: degraded mid-run reports the transport it ended on.
    shared_transport: str = ""
    #: Round trips to the cache-server daemon, and silent degradations
    #: to the file path after a transport failure (0 or 1 per session).
    daemon_rpcs: int = 0
    daemon_fallbacks: int = 0
    #: Polymorphic indirect-branch inline-cache counters from the
    #: compiled tier (repro.vm.stats.ICStats; host-side only, zeros
    #: under interpreted dispatch).
    ic_hits: int = 0
    ic_misses: int = 0
    ic_resets: int = 0
    ic_depth_hits: List[int] = field(default_factory=list)
    #: Hits served by the megamorphic hash-table tier behind the MRU
    #: chain (zero until a call site overflows the chain depth).
    ic_overflow_hits: int = 0
    #: Cross-trace linking + superblock fusion counters from the
    #: compiled tier (repro.vm.stats.LinkStats; host-side only, zeros
    #: under interpreted dispatch or with trace_linking disabled).
    link_direct_hops: int = 0
    link_ic_hops: int = 0
    link_bounces: int = 0
    regions_fused: int = 0
    region_entries: int = 0
    region_hops: int = 0
    region_invalidations: int = 0
    fusion_aborts: int = 0
    #: Background compile-queue counters (repro.vm.stats.QueueStats;
    #: host-side only, zeros under compile_mode="sync" or interpreted
    #: dispatch).
    queue_enqueued: int = 0
    queue_compiled_offpath: int = 0
    queue_swap_ins: int = 0
    queue_generation_discards: int = 0
    queue_full_syncs: int = 0
    queue_backlog_high_water: int = 0
    queue_interpreted_runs: int = 0
    #: Record-and-replay lifecycle (repro.replay; the session is
    #: persistence-neutral in either mode, so these are report-only):
    #: recording: "" (off), "recording", "written", "unsaved" (no
    #: database to store into), or "write-error: ...".
    record_state: str = ""
    #: Nondeterminism events captured by a recording session.
    record_events: int = 0
    #: Filename of the stored log inside the database's replay/ dir.
    record_log: str = ""
    #: Replay: "" (off), "replaying", or "replayed" (log fully
    #: consumed; a divergence raises instead of reporting).
    replay_state: str = ""
    #: Recorded events consumed by a completed replay.
    replay_events: int = 0

    def to_dict(self) -> Dict[str, object]:
        return dict(self.__dict__)


class PersistentCacheSession:
    """Engine persistence hooks for a single run."""

    def __init__(self, config: PersistenceConfig):
        self.config = config
        self.report_data = PersistenceReport()
        if config.record and config.replay_log is not None:
            raise ValueError(
                "a session cannot record and replay at the same time"
            )
        #: Record/replay sessions run the persistence-neutral profile:
        #: every trace-cache hook below is a no-op for them.
        self._rr = config.record or config.replay_log is not None
        self._record_hook = None
        self._replay_hook = None
        self._record_meta: Dict[str, object] = {}
        self._recorded_log = None
        self._pending_log = None
        self._cache: Optional[PersistentCache] = None
        self._current_keys: Dict[str, MappingKey] = {}
        self._app_key: Optional[MappingKey] = None
        self._app_path: str = ""
        self._vm_version: str = ""
        self._tool_identity: str = ""
        #: Persisted traces whose images were not loaded this run: kept
        #: verbatim through write-back so accumulation never loses code.
        self._retained: List[PersistedTrace] = []
        self._retained_keys: Dict[str, MappingKey] = {}
        #: Identities of traces invalidated this run (stale content or
        #: unusable base): they must not survive an accumulation write-back
        #: under the refreshed image keys.
        self._invalid_identities: set = set()
        #: Records converted at module-unload time (the mapping is gone by
        #: write-back, so conversion must happen in the unload hook).
        self._module_records: Dict[tuple, PersistedTrace] = {}
        self._started = False
        #: Set after a storage failure: the session runs JIT-only from
        #: then on (no reuse, no further write-back attempts).
        self._degraded = False
        #: The compiled-body store attached to this run's compiler —
        #: a private CompiledBodyStore, a ChainedBodyStore (shared store
        #: in front), or None (interpreted mode, sidecar disabled, or no
        #: database).  Host-side only; see repro.persist.sidecar.
        self._body_store = None
        #: The shared per-host store behind the chain, when attached.
        self._shared_store = None

    # -- engine hooks ------------------------------------------------------------

    def on_process_start(self, engine, machine, cache, stats) -> None:
        if self._rr:
            # Persistence-neutral profile: no lookup/preload (and no
            # sidecar — nothing will be written back), just the
            # nondeterminism hook on the machine seam.
            self._attach_replay(engine, machine)
            return
        self._start(engine, machine, cache, stats)
        # The sidecar attaches last, after the quarantine-event sync, so
        # a damaged sidecar is never mistaken for a damaged trace cache:
        # it cannot degrade the session or touch VMStats.
        self._attach_sidecar(engine)

    def _start(self, engine, machine, cache, stats) -> None:
        process = machine.process
        self._started = True
        self._vm_version = engine.config.vm_version
        self._tool_identity = engine.tool.identity()
        self._current_keys = {
            event.image.path: mapping_key(event.image, event.base, event.size)
            for event in process.load_events
        }
        self._app_path = process.executable.path
        self._app_key = self._current_keys[self._app_path]

        database = self.config.database
        quarantined_before = (
            database.quarantined_count if database is not None else 0
        )
        try:
            loaded = self._lookup()
        except STORAGE_FAILURES as exc:
            # Paper §3.2: verification failure must degrade to plain JIT
            # execution, never take the VM down.
            self._sync_quarantine_events(quarantined_before)
            self._degrade(stats, "cache lookup failed: %s" % exc)
            return
        self._sync_quarantine_events(quarantined_before)
        if loaded is None:
            if self.report_data.cache_quarantined:
                # The indexed cache existed but was damaged: it has been
                # moved aside and this run proceeds without persistence.
                self._degrade(stats, "cache file quarantined at lookup")
            return
        cost = engine.cost_model
        stats.charge_persistence(cost.pcache_open)

        if (
            loaded.vm_version != self._vm_version
            or loaded.tool_identity != self._tool_identity
        ):
            # Stale system or different instrumentation semantics: the
            # whole cache is unusable (paper §3.2.1).
            self.report_data.version_conflict = True
            return
        self._cache = loaded
        self.report_data.cache_found = True
        self.report_data.source_app = loaded.app_path

        # Key validation per intercepted load event.
        validation: Dict[str, str] = {}
        for event in process.load_events:
            stats.charge_persistence(cost.pcache_key_check)
            self.report_data.key_checks += 1
            path = event.image.path
            persisted_key = loaded.image_keys.get(path)
            if persisted_key is None:
                continue  # nothing persisted for this image
            current = self._current_keys[path]
            if persisted_key.matches(current):
                validation[path] = "exact"
            elif self.config.relocatable and persisted_key.matches_content(current):
                validation[path] = "rebase"
            else:
                validation[path] = "invalid"

        preload: List = []
        for persisted in loaded.traces:
            mode = validation.get(persisted.image_path)
            if mode is None:
                # Image not loaded in this run: unusable now, retained for
                # write-back so accumulated caches keep their code.
                self._retained.append(persisted)
                key = loaded.image_keys.get(persisted.image_path)
                if key is not None:
                    self._retained_keys[persisted.image_path] = key
                self.report_data.retained_unloaded += 1
                continue
            if mode == "invalid":
                self._invalidate_one(stats, cost, persisted)
                continue
            # Position-independent mode re-materializes every absolute
            # address (a trace whose *own* image stayed put may still embed
            # literals into a relocated library); otherwise reuse is
            # verbatim and revive_trace validates every embedded literal.
            revived = revive_trace(
                persisted,
                engine.tool,
                self._base_of(process),
                rebase=self.config.relocatable,
            )
            if revived is None:
                self._invalidate_one(stats, cost, persisted)
                continue
            if mode == "rebase":
                self.report_data.rebased += 1
            preload.append(revived)

        # Install the valid translations.  cache.insert links them among
        # themselves, recreating the persisted link web; the open cost
        # already covers this (the file stores the links).  Preloaded
        # residents are demand-paged: the first execution charges the
        # trace+metadata load, and (under compiled dispatch) specializes
        # the trace into its closure at the same point.
        from repro.vm.codecache import CacheFull

        for revived in preload:
            if revived.entry in cache:
                continue
            try:
                cache.insert(revived)
            except CacheFull:
                break  # pools smaller than the cache; stop preloading
            self.report_data.preloaded += 1
            stats.traces_from_persistent += 1

    def on_module_load(self, engine, machine, cache, stats, mapping) -> None:
        """Load interception for a dynamically loaded (dlopen'd) module.

        The same §3.2.3 treatment as startup libraries, applied at run
        time: compute and check the module's key, invalidate its retained
        translations on mismatch, and preload them on a match.
        """
        if self._rr:
            return
        image = mapping.image
        key = mapping_key(image, mapping.base, mapping.size)
        self._current_keys[image.path] = key
        if self._cache is None:
            return
        cost = engine.cost_model
        stats.charge_persistence(cost.pcache_key_check)
        self.report_data.key_checks += 1
        persisted_key = self._cache.image_keys.get(image.path)
        if persisted_key is None:
            return
        if persisted_key.matches(key):
            rebase = self.config.relocatable
        elif self.config.relocatable and persisted_key.matches_content(key):
            rebase = True
        else:
            for persisted in [
                trace for trace in self._retained
                if trace.image_path == image.path
            ]:
                self._retained.remove(persisted)
                self._invalidate_one(stats, cost, persisted)
            return

        from repro.vm.codecache import CacheFull

        keep: List[PersistedTrace] = []
        for persisted in self._retained:
            if persisted.image_path != image.path:
                keep.append(persisted)
                continue
            revived = revive_trace(
                persisted, engine.tool, self._base_of(machine.process),
                rebase=rebase,
            )
            if revived is None:
                self._invalidate_one(stats, cost, persisted)
                continue
            if revived.entry in cache:
                continue
            try:
                cache.insert(revived)
            except CacheFull:
                keep.append(persisted)
                continue
            self.report_data.preloaded += 1
            stats.traces_from_persistent += 1
        self._retained = keep

    def on_module_unload(self, engine, machine, stats, mapping, evicted) -> None:
        """A module is being unloaded: convert its (about-to-be-unmapped)
        translations now so the write-back can persist them.

        This composes module-aware retention with persistence: a plugin
        that is never loaded at exit time still contributes its
        translations to the cache.
        """
        if self._rr:
            return
        for resident in evicted:
            if resident.from_persistent:
                continue  # already in the loaded cache file
            record = persist_trace(resident, machine.process)
            if record is None:
                self.report_data.unbacked_skipped += 1
                continue
            self._module_records[record.identity] = record

    def on_cache_flush(self, engine, machine, cache, stats) -> None:
        """Write-back triggered by intra-execution cache exhaustion."""
        if self._rr:
            return
        self._write_back(engine, machine, cache, stats)

    def on_exit(self, engine, machine, cache, stats) -> None:
        if self._rr:
            return
        self._collect_sidecar_counters(engine)
        self._write_back(engine, machine, cache, stats)

    def on_result(self, engine, result) -> None:
        """Post-run hook: the ``VMRunResult`` exists (record needs it for
        the baseline snapshot; replay verifies the log ran dry).

        A recording's log-write failure is contained *here* (report-only
        ``record_state``), never via the engine's degradation backstop —
        the live run is already complete and must stay untouched.  A
        replay divergence, by contrast, raises: ``ReplayDivergence`` is
        a plain ``Exception`` the backstop does not catch.
        """
        if self._record_hook is not None:
            from repro.replay.log import ReplayLog, result_snapshot

            events = list(self._record_hook.events)
            self.report_data.record_events = len(events)
            database = self.config.database
            if database is None:
                # Nowhere to store it: defer the baseline snapshot (the
                # only non-trivial recording cost) to the first
                # ``recorded_log`` access, so an unsaved recording pays
                # per-event cost only inside the run.
                self._pending_log = (self._record_meta, events, result)
                self.report_data.record_state = "unsaved"
                return
            log = ReplayLog(
                meta=self._record_meta,
                events=events,
                baseline=result_snapshot(result),
            )
            self._recorded_log = log
            try:
                name = database.store_replay_log(log)
            except STORAGE_FAILURES as exc:
                self.report_data.record_state = "write-error: %s" % exc
                return
            self.report_data.record_state = "written"
            self.report_data.record_log = name
        elif self._replay_hook is not None:
            self._replay_hook.verify_exhausted()
            self.report_data.replay_state = "replayed"
            self.report_data.replay_events = self._replay_hook.cursor

    def report(self) -> Dict[str, object]:
        return self.report_data.to_dict()

    @property
    def recorded_log(self):
        """The finished ReplayLog of a recording session.

        Stored logs are built eagerly (serialization needs the baseline
        anyway); an unsaved recording builds its log here on first
        access instead of inside the timed run.
        """
        if self._recorded_log is None and self._pending_log is not None:
            from repro.replay.log import ReplayLog, result_snapshot

            meta, events, result = self._pending_log
            self._pending_log = None
            self._recorded_log = ReplayLog(
                meta=meta, events=events, baseline=result_snapshot(result)
            )
        return self._recorded_log

    # -- record / replay ---------------------------------------------------------

    def _attach_replay(self, engine, machine) -> None:
        """Wire the recording or replaying hook onto the machine seam."""
        from repro.replay.session import RecordingHook, ReplayHook

        self._started = True
        os_state = machine.os_state
        log = self.config.replay_log
        if log is not None:
            # Re-seed the initial OSState from the recording.  Replay
            # substitutes every NONDET value anyway; this keeps direct
            # state (pid in diagnostics, rng evolution) faithful too.
            os_state.pid = int(log.meta.get("pid", os_state.pid))
            os_state.rng_state = int(
                log.meta.get("rng_state", os_state.rng_state)
            )
            hook = ReplayHook(log.events, os_state=os_state)
            self._replay_hook = hook
            self.report_data.replay_state = "replaying"
        else:
            meta = {
                "pid": os_state.pid,
                "rng_state": os_state.rng_state,
                "vm_version": engine.config.vm_version,
                "dispatch_mode": engine.config.dispatch_mode,
                "tool": engine.tool.identity(),
            }
            meta.update(self.config.record_meta)
            self._record_meta = meta
            hook = RecordingHook()
            self._record_hook = hook
            self.report_data.record_state = "recording"
        os_state.nondet_hook = hook

    # -- compiled-body sidecar ----------------------------------------------------

    def _attach_sidecar(self, engine) -> None:
        """Open the compiled-body chain and hand it to this run's compiler.

        Skipped (state stays ``"disabled"``) under interpreted dispatch
        (nothing compiles), without a database, when configured off, or
        after this session already degraded.  Every other outcome is
        report-only: neither the sidecar nor the shared store may ever
        influence the simulated run.

        When a shared per-host store is configured (on the session or on
        the database), the compiler sees a
        :class:`~repro.persist.sidecar.ChainedBodyStore` implementing
        the fallback order **shared store → private sidecar → host
        compile()**; a failed private open then still leaves the shared
        layer serving (and vice versa).
        """
        if (
            not self.config.sidecar
            or self.config.database is None
            or self._degraded
        ):
            return
        compiler = getattr(engine, "_compiler", None)
        if compiler is None:
            return
        shared = self.config.shared_store
        if shared is None:
            shared = getattr(self.config.database, "shared_store", None)
        if shared is not None and shared.vm_version != self._vm_version:
            # A store built for another VM version addresses a different
            # pool; attaching it would only record useless misses.
            self.report_data.shared_store_state = "stale-vm"
            shared = None
        try:
            store, state = self.config.database.open_sidecar(
                self._vm_version
            )
        except STORAGE_FAILURES as exc:
            state = "io-error: %s" % exc
            store = None
        self.report_data.sidecar_state = state
        if store is not None:
            self.report_data.sidecar_entries = len(store)
        if shared is None:
            if store is None:
                return
            self._body_store = store
            compiler.attach_body_store(store)
            return
        from repro.persist.sidecar import ChainedBodyStore

        chained = ChainedBodyStore(shared=shared, private=store)
        self._body_store = chained
        self._shared_store = shared
        self.report_data.shared_store_state = "attached"
        compiler.attach_body_store(chained)

    def _collect_sidecar_counters(self, engine) -> None:
        compiler = getattr(engine, "_compiler", None)
        if compiler is None:
            return
        self.report_data.sidecar_hits = compiler.sidecar_hits
        self.report_data.sidecar_host_compiles = compiler.host_compiles
        ics = getattr(compiler, "ic_stats", None)
        if ics is not None:
            self.report_data.ic_hits = ics.hits
            self.report_data.ic_misses = ics.misses
            self.report_data.ic_resets = ics.resets
            self.report_data.ic_depth_hits = list(ics.depth_hits)
            self.report_data.ic_overflow_hits = ics.overflow_hits
        links = getattr(compiler, "link_stats", None)
        if links is not None:
            self.report_data.link_direct_hops = links.link_direct_hops
            self.report_data.link_ic_hops = links.link_ic_hops
            self.report_data.link_bounces = links.link_bounces
            self.report_data.regions_fused = links.regions_fused
            self.report_data.region_entries = links.region_entries
            self.report_data.region_hops = links.region_hops
            self.report_data.region_invalidations = links.region_invalidations
            self.report_data.fusion_aborts = links.fusion_aborts
        store = self._body_store
        if store is not None and hasattr(store, "shared_hits"):
            self.report_data.shared_hits = store.shared_hits
            self.report_data.shared_misses = store.shared_misses
        shared = self._shared_store
        if shared is not None:
            self.report_data.shared_transport = getattr(
                shared, "transport", "file"
            )
            self.report_data.daemon_rpcs = getattr(shared, "daemon_rpcs", 0)
            self.report_data.daemon_fallbacks = getattr(
                shared, "daemon_fallbacks", 0
            )
        queue = getattr(engine, "_compile_queue", None)
        if queue is not None:
            qs = queue.stats
            self.report_data.queue_enqueued = qs.enqueued
            self.report_data.queue_compiled_offpath = qs.compiled_offpath
            self.report_data.queue_swap_ins = qs.swap_ins
            self.report_data.queue_generation_discards = (
                qs.generation_discards
            )
            self.report_data.queue_full_syncs = qs.queue_full_syncs
            self.report_data.queue_backlog_high_water = (
                qs.backlog_high_water
            )
            self.report_data.queue_interpreted_runs = qs.interpreted_runs

    def _save_sidecar(self) -> None:
        """Persist newly recorded compiled bodies (report-only failure).

        A sidecar or shared-store write error must not degrade the
        session — the trace cache's write-back is independent and may
        still succeed — and must not touch ``VMStats`` (the compiled-body
        chain exists only under compiled dispatch; charging anything
        would split the tiers).  The shared publish and the private
        store are independent too: either may succeed when the other's
        storage fails.
        """
        store = self._body_store
        if store is None or not store.dirty:
            return
        private = store
        if hasattr(store, "pending_publish"):
            self._publish_shared(store)
            private = store.private
        if private is None or not private.dirty:
            return
        new_entries = private.new_entries
        try:
            self.config.database.store_sidecar(private)
        except STORAGE_FAILURES as exc:
            self.report_data.sidecar_state = "write-error: %s" % exc
            return
        self.report_data.sidecar_written = True
        self.report_data.sidecar_new_entries += new_entries
        private.dirty = False
        private.new_entries = 0

    def _publish_shared(self, chained) -> None:
        """Publish this session's bodies to the per-host pool.

        Failure is report-only (``shared_store_state`` becomes
        ``"write-error: ..."``): the private sidecar write-back still
        runs, and the simulated run is untouched either way.
        """
        pending = chained.pending_publish()
        touched = chained.touched()
        if not pending and not touched:
            return
        costs = (
            chained.pending_costs()
            if hasattr(chained, "pending_costs")
            else {}
        )
        try:
            result = self._shared_store.publish(
                pending, touch=touched, costs=costs
            )
        except STORAGE_FAILURES as exc:
            self.report_data.shared_store_state = "write-error: %s" % exc
            return
        self.report_data.shared_publishes += result.published
        self.report_data.shared_gc_evictions += result.evicted
        self.report_data.shared_touch_refreshes += result.refreshed
        self.report_data.shared_admission_skipped += result.admission_skipped
        chained.clear_pending()

    def _touch_shared(self) -> None:
        """Refresh shared-store LRU stamps for a read-only session.

        A read-only session never writes traces, sidecar or bodies —
        but the bodies it revived from the per-host pool are its hot
        working set, and without a stamp refresh they age as if unused
        and become ``repro cache gc --max-bytes``'s *first* LRU
        victims.  This is the touch-only write-back: publish no blobs,
        refresh only the stamps of digests this session revived.
        Failure is report-only, like every shared-store operation.
        """
        store = self._body_store
        if self._shared_store is None or store is None or self._degraded:
            return
        touched = store.touched() if hasattr(store, "touched") else set()
        if not touched:
            return
        try:
            result = self._shared_store.publish({}, touch=touched)
        except STORAGE_FAILURES as exc:
            self.report_data.shared_store_state = "write-error: %s" % exc
            return
        self.report_data.shared_touch_refreshes += result.refreshed
        store.clear_touched()

    # -- internals -----------------------------------------------------------------

    def _lookup(self) -> Optional[PersistentCache]:
        if self.config.prime_with is not None:
            return self.config.prime_with
        database = self.config.database
        if database is None:
            return None
        if self.config.inter_application:
            return database.lookup_inter_application(
                self._vm_version,
                self._tool_identity,
                exclude_app_path=(
                    self._app_path if self.config.exclude_own_app else None
                ),
            )
        return database.lookup(self._app_key, self._vm_version, self._tool_identity)

    def _sync_quarantine_events(self, quarantined_before: int) -> None:
        """Fold the database's new quarantine events into the report."""
        database = self.config.database
        if database is None:
            return
        newly = database.quarantined_count - quarantined_before
        if newly > 0:
            self.report_data.cache_quarantined += newly

    def _degrade(self, stats, reason: str) -> None:
        """Downgrade the session to JIT-only execution, keeping the run
        alive: "a damaged database must degrade to plain JIT execution,
        not crash the VM"."""
        self._degraded = True
        self._cache = None
        self.report_data.fallback_jit_only = True
        self.report_data.storage_errors += 1
        if not self.report_data.degraded_reason:
            self.report_data.degraded_reason = reason
        if stats is not None:
            stats.persistence_storage_errors += 1
            stats.persistence_degraded = 1

    def _invalidate_one(self, stats, cost, persisted: PersistedTrace) -> None:
        self.report_data.invalidated += 1
        stats.persistent_traces_invalidated += 1
        stats.charge_persistence(cost.pcache_invalidate_trace)
        self._invalid_identities.add(persisted.identity)

    @staticmethod
    def _touches_modified_page(resident, modified_pages) -> bool:
        from repro.machine.cpu import CODE_PAGE_SHIFT

        first = resident.trace.entry >> CODE_PAGE_SHIFT
        last = (resident.trace.end - 1) >> CODE_PAGE_SHIFT
        return any(page in modified_pages for page in range(first, last + 1))

    @staticmethod
    def _base_of(process):
        def base_of(path: str) -> Optional[int]:
            mapping = process.space.mapping_for_image(path)
            return mapping.base if mapping is not None else None

        return base_of

    def _write_back(self, engine, machine, cache, stats) -> None:
        if self.config.readonly:
            # No trace write-back, no sidecar save, no body publish —
            # but the shared pool still gets its LRU signal for the
            # bodies this session revived (see _touch_shared).
            self._touch_shared()
            return
        if self.config.database is None:
            return
        if self._degraded:
            # A storage failure already downgraded this session; writing
            # back through the same failing storage would be unsafe noise.
            return
        # The sidecar saves first and independently: its write never
        # degrades the session, and the trace write-back below may take
        # the "nothing changed" early return while the sidecar still has
        # fresh bodies to persist (e.g. a warm run after a memo flush).
        self._save_sidecar()
        cost = engine.cost_model
        process = machine.process

        modified_pages = machine.modified_code_pages
        accumulating = self._cache is not None and self.config.accumulate
        new_records: List[PersistedTrace] = []
        reused_records: List[PersistedTrace] = []
        for resident in cache.traces():
            if modified_pages and self._touches_modified_page(
                resident, modified_pages
            ):
                # Self-modified code no longer matches the file on disk:
                # "persistent caches only contain traces backed by a file
                # on disk" (§3.2.1).
                self.report_data.unbacked_skipped += 1
                continue
            if accumulating and resident.from_persistent:
                # The loaded cache already holds this trace's record;
                # re-converting it would only be thrown away below.
                continue
            record = persist_trace(resident, process)
            if record is None:
                self.report_data.unbacked_skipped += 1
                continue  # unbacked code: never persisted
            if resident.from_persistent:
                reused_records.append(record)
            else:
                new_records.append(record)

        module_records = [
            record for identity, record in self._module_records.items()
            if identity not in self._invalid_identities
        ]
        if self._cache is not None and self.config.accumulate:
            target = self._cache
            # Invalid translations must not survive under refreshed keys.
            dropped = 0
            if self._invalid_identities:
                dropped = target.drop_traces(self._invalid_identities)
            if not new_records and not module_records and not dropped:
                # Nothing changed: skip the disk write entirely.
                self.report_data.total_traces_after_write = len(target.traces)
                return
            # Refresh/retain: the loaded cache already contains the reused
            # records and the retained-unloaded ones; accumulate the new.
            target.accumulate(new_records + module_records, self._current_keys)
        else:
            target = PersistentCache(
                vm_version=self._vm_version,
                tool_identity=self._tool_identity,
                app_path=self._app_path,
            )
            target.image_keys = dict(self._current_keys)
            target.image_keys.update(self._retained_keys)
            target.accumulate(
                reused_records + new_records + module_records + self._retained,
                {},
            )
        stats.charge_persistence(
            cost.pcache_write_fixed + cost.pcache_write_per_trace * len(target.traces)
        )
        try:
            self.config.database.store(target, self._app_key)
        except STORAGE_FAILURES as exc:
            # ENOSPC/EIO mid-write, a vanished directory, ...: the
            # atomic write-replace left the database consistent; record
            # the downgrade and keep the program's run intact.
            self._degrade(stats, "write-back failed: %s" % exc)
            return
        self.report_data.new_traces_persisted = len(new_records)
        self.report_data.written = True
        self.report_data.total_traces_after_write = len(target.traces)
        # Subsequent flush/exit write-backs accumulate onto this cache.
        self._cache = target
