"""The per-host cache-server daemon: one warm pool for a session fleet.

The shared body store (:mod:`repro.persist.sharedstore`) already gives
every database on a host one content-addressed pool — but through the
filesystem: every reader pays a ``stat`` (and, on change, a full
CRC-verified re-parse) per lookup, and every writer serializes on
per-shard ``flock``\\ s.  That is fine for a handful of sessions and
exactly the contention ShareJIT's centralized cache manager removes for
fleets.  This module promotes the store to a **long-lived per-host
daemon**: one process memory-maps the whole pool once and serves body
lookups and publishes to hundreds of concurrent sessions over a unix
socket (localhost TCP where unix sockets are unavailable).

Design:

* **hot-shard index** — the daemon loads every shard of the current
  keytag into memory at startup and keeps it current through its own
  publishes; warm readers are served straight from the dict, skipping
  stat+CRC revalidation entirely.
* **request batching** — one frame carries a whole publish batch or a
  whole shard's worth of lookup results, so a session's chatter with
  the daemon is O(shards touched), not O(bodies).
* **cost-aware eviction** — with a byte cap, the daemon ranks victims
  by ``(cost_us, stamp)``: the bodies cheapest to recompile and coldest
  go first (the ``cost_us`` admission field PCSS1 records per body).
* **write-back** — the flock store stays the source of truth.  A
  flusher thread periodically publishes dirty bodies to the shard files
  through :meth:`SharedBodyStore.publish` (lock → merge → atomic
  rename), so daemonless readers, ``cache gc`` and ``cache fsck`` keep
  working unchanged, and a daemon crash loses at most the unflushed
  tail — never a byte of an existing shard.
* **silent fallback** — the client (:mod:`repro.persist.daemon`) treats
  every transport failure as "no daemon": it degrades to the flock
  store mid-session without surfacing an error.

Wire protocol (PCSD1) — length-prefixed, CRC-framed, symmetric for
requests and responses::

    offset  size  field
    0       4     magic "PCSD"
    4       2     u16 protocol_version (1)
    6       2     u16 reserved (must be 0)
    8       4     u32 payload_len
    12      4     u32 CRC-32 of the payload
    16      n     payload

    payload:
    0       4     u32 header_len
    4       h     header JSON: {"op": str, "meta": {...},
                                "records": [[digest, offset, size,
                                             stamp, cost_us], ...]}
    4+h     p     body pool (concatenated blobs the records index)

Directory records reuse the PCSS1 record shape: four-element records
(written before compile costs were tracked) parse with cost 0, exactly
like :func:`repro.persist.sharedstore.parse_shard`.  A reader rejects a
frame on any magic/version/reserved/CRC/bounds mismatch — one
detectable failure per flipped byte — and the connection is torn down
rather than resynchronized (the client falls back to the flock store).

Requests carry the client's ``vm``/``host`` stamps in ``meta``; the
daemon serves exactly one ``(vm_version, host_tag)`` pool and answers a
mismatch with an ``error`` frame (``key-mismatch``), which the client
treats as "no daemon" — the file path then addresses its own keytag.

Ops: ``ping`` → ``pong`` (health + stats), ``lookup`` (by ``digests``
list or whole shard ``prefix``) → ``bodies``, ``publish`` (records +
``touch`` list) → ``published`` (PublishResult counts), ``flush`` →
``flushed``, ``stats`` → ``stats``, ``shutdown`` → ``bye``.  Unknown
ops answer ``error``/``unsupported-op`` so a newer client degrades
cleanly against an older daemon.
"""

from __future__ import annotations

import json
import os
import socket
import struct
import threading
import time
import zlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.persist.sharedstore import (
    SharedBodyStore,
    shard_prefix,
)
from repro.persist.storage import FileStorage

FRAME_MAGIC = b"PCSD"
PROTOCOL_VERSION = 1

#: Same preamble shape as PCSS1/PCS1/PCC2: magic, version, reserved,
#: then (payload length, payload CRC) instead of the file formats'
#: (header length, header CRC) — a frame is one self-contained payload.
FRAME_PREAMBLE = struct.Struct("<4sHHII")

#: Upper bound on one frame's payload: far above any real publish batch
#: (whole warm pools are a few MiB) but small enough that a garbage
#: length field cannot make the reader allocate gigabytes.
MAX_PAYLOAD_BYTES = 64 * 1024 * 1024

#: Default daemon socket filename, inside the store directory itself so
#: ``daemon://DIR`` needs only one path for both the socket and the
#: flock-store fallback.
SOCKET_NAME = "daemon.sock"

#: How often the flusher thread writes dirty bodies back to the shards.
DEFAULT_FLUSH_INTERVAL_S = 2.0


class DaemonProtocolError(Exception):
    """Raised when a PCSD frame is malformed.

    ``section`` names where the damage was detected: ``"preamble"``,
    ``"payload"``, ``"header"`` or ``"records"``.
    """

    def __init__(self, message: str, section: str = ""):
        super().__init__(message)
        self.section = section


def _crc(blob: bytes) -> int:
    return zlib.crc32(blob) & 0xFFFFFFFF


# -- frame serialization ------------------------------------------------------


def pack_frame(
    op: str,
    meta: Optional[Dict[str, object]] = None,
    entries: Optional[Dict[str, tuple]] = None,
) -> bytes:
    """Serialize one message: op + meta + ``{digest: (blob, stamp[,
    cost_us])}`` → framed bytes.  Two-tuple values pack with cost 0,
    mirroring :func:`repro.persist.sharedstore.pack_shard`."""
    pool = bytearray()
    records = []
    for digest in sorted(entries or {}):
        record = entries[digest]
        blob, stamp = record[0], record[1]
        cost_us = int(record[2]) if len(record) > 2 else 0
        records.append([digest, len(pool), len(blob), int(stamp), cost_us])
        pool.extend(blob)
    header = {"op": op, "meta": meta or {}, "records": records}
    header_blob = json.dumps(header, sort_keys=True).encode()
    payload = b"".join(
        [struct.pack("<I", len(header_blob)), header_blob, bytes(pool)]
    )
    return (
        FRAME_PREAMBLE.pack(
            FRAME_MAGIC, PROTOCOL_VERSION, 0, len(payload), _crc(payload)
        )
        + payload
    )


def parse_frame(blob: bytes):
    """Verify and split a frame into ``(op, meta, entries)``.

    ``entries`` maps digest → ``(blob, stamp, cost_us)``; four-element
    records (the pre-cost PCSS1 shape) parse with cost 0.  Raises
    :class:`DaemonProtocolError` naming the damaged section on any
    magic, version, CRC, framing or type mismatch.
    """
    if len(blob) < FRAME_PREAMBLE.size:
        raise DaemonProtocolError(
            "frame too short for preamble", section="preamble"
        )
    magic, version, reserved, payload_len, payload_crc = (
        FRAME_PREAMBLE.unpack_from(blob, 0)
    )
    if magic != FRAME_MAGIC:
        raise DaemonProtocolError("bad magic", section="preamble")
    if version != PROTOCOL_VERSION:
        raise DaemonProtocolError(
            "unsupported protocol version %r" % version, section="preamble"
        )
    if reserved != 0:
        raise DaemonProtocolError("bad reserved field", section="preamble")
    if payload_len > MAX_PAYLOAD_BYTES:
        raise DaemonProtocolError("oversized payload", section="preamble")
    if len(blob) != FRAME_PREAMBLE.size + payload_len:
        raise DaemonProtocolError("truncated frame", section="payload")
    payload = blob[FRAME_PREAMBLE.size:]
    if _crc(payload) != payload_crc:
        raise DaemonProtocolError("payload checksum mismatch",
                                  section="payload")
    if len(payload) < 4:
        raise DaemonProtocolError("payload too short", section="payload")
    (header_len,) = struct.unpack_from("<I", payload, 0)
    if 4 + header_len > len(payload):
        raise DaemonProtocolError("truncated header", section="header")
    try:
        header = json.loads(payload[4 : 4 + header_len])
    except ValueError as exc:
        raise DaemonProtocolError("bad header JSON",
                                  section="header") from exc
    if not isinstance(header, dict):
        raise DaemonProtocolError("bad header JSON", section="header")
    op = header.get("op")
    meta = header.get("meta", {})
    records = header.get("records", [])
    if not isinstance(op, str) or not isinstance(meta, dict) or not (
        isinstance(records, list)
    ):
        raise DaemonProtocolError("malformed header fields",
                                  section="header")
    pool = payload[4 + header_len:]
    entries: Dict[str, Tuple[bytes, int, int]] = {}
    try:
        for record in records:
            if len(record) == 4:
                digest, offset, size, stamp = record
                cost_us = 0
            else:
                digest, offset, size, stamp, cost_us = record
            if (
                not isinstance(digest, str)
                or offset < 0
                or size < 0
                or offset + size > len(pool)
            ):
                raise DaemonProtocolError(
                    "record out of bounds", section="records"
                )
            entries[digest] = (
                pool[offset : offset + size], int(stamp), int(cost_us)
            )
    except DaemonProtocolError:
        raise
    except (TypeError, ValueError) as exc:
        raise DaemonProtocolError(
            "malformed records: %s" % exc, section="records"
        ) from exc
    return op, meta, entries


def read_frame(sock: socket.socket) -> Optional[bytes]:
    """Read one complete frame off ``sock``; None on clean EOF.

    The preamble is validated *before* the payload length is trusted,
    so a garbage stream cannot make the reader wait on a fictitious
    multi-megabyte body.  A connection that dies mid-frame raises
    :class:`DaemonProtocolError` — the stream cannot be resynchronized.
    """
    preamble = _recv_exact(sock, FRAME_PREAMBLE.size, allow_eof=True)
    if preamble is None:
        return None
    magic, version, reserved, payload_len, _crc32 = (
        FRAME_PREAMBLE.unpack_from(preamble, 0)
    )
    if magic != FRAME_MAGIC:
        raise DaemonProtocolError("bad magic", section="preamble")
    if version != PROTOCOL_VERSION:
        raise DaemonProtocolError(
            "unsupported protocol version %r" % version, section="preamble"
        )
    if reserved != 0:
        raise DaemonProtocolError("bad reserved field", section="preamble")
    if payload_len > MAX_PAYLOAD_BYTES:
        raise DaemonProtocolError("oversized payload", section="preamble")
    payload = _recv_exact(sock, payload_len)
    return preamble + payload


def _recv_exact(sock, size, allow_eof=False):
    chunks = []
    remaining = size
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 16))
        if not chunk:
            if allow_eof and remaining == size:
                return None
            raise DaemonProtocolError("connection closed mid-frame",
                                      section="payload")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks) if chunks or not allow_eof else b""


def write_frame(sock: socket.socket, frame: bytes) -> None:
    sock.sendall(frame)


# -- addressing ---------------------------------------------------------------


def default_socket_path(store_dir: str) -> str:
    """Where a store's daemon listens by convention: inside the store."""
    return os.path.join(store_dir, SOCKET_NAME)


def resolve_address(spec: str):
    """Parse an address spec into ``("unix", path)`` or
    ``("tcp", (host, port))``.

    ``tcp://HOST:PORT`` selects TCP explicitly; any other spec is a
    unix-socket path.  On platforms without ``AF_UNIX`` a path spec
    raises — callers there must use the TCP form.
    """
    if spec.startswith("tcp://"):
        rest = spec[len("tcp://"):]
        host, _, port = rest.rpartition(":")
        try:
            return "tcp", (host or "127.0.0.1", int(port))
        except ValueError as exc:
            raise DaemonProtocolError(
                "bad tcp address %r" % spec, section="preamble"
            ) from exc
    if not hasattr(socket, "AF_UNIX"):  # pragma: no cover - non-unix host
        raise DaemonProtocolError(
            "unix sockets unavailable; use tcp://HOST:PORT",
            section="preamble",
        )
    return "unix", spec


def connect(spec: str, timeout_s: float) -> socket.socket:
    """Open a connected client socket to ``spec`` (caller closes)."""
    kind, address = resolve_address(spec)
    if kind == "tcp":
        return socket.create_connection(address, timeout=timeout_s)
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    sock.settimeout(timeout_s)
    try:
        sock.connect(address)
    except OSError:
        sock.close()
        raise
    return sock


# -- the daemon ---------------------------------------------------------------


@dataclass
class ServerStats:
    """Lifetime counters of one daemon, for ``ping``/``stats``."""

    connections: int = 0
    requests: int = 0
    lookups: int = 0
    hits: int = 0
    misses: int = 0
    publishes: int = 0
    published: int = 0
    refreshed: int = 0
    evicted: int = 0
    admission_skipped: int = 0
    flushes: int = 0
    flushed_bodies: int = 0
    flush_errors: int = 0
    bad_frames: int = 0

    def to_dict(self) -> Dict[str, int]:
        return dict(self.__dict__)


class CacheServer:
    """One per-host daemon serving a shared body store to a fleet.

    Thread model: an accept thread hands each connection to its own
    handler thread; every hot-index mutation happens under one lock
    (the index is a dict — contention is nanoseconds, not flocks).  A
    flusher thread writes dirty bodies back to the shard files every
    ``flush_interval_s``; the final flush happens at :meth:`stop`.

    The daemon process is itself just a client of the flock protocol:
    concurrent direct publishers, ``cache gc`` and ``cache fsck`` stay
    correct, and killing the daemon -9 at any instant can only lose the
    unflushed tail of recent publishes — never corrupt a shard.
    """

    def __init__(
        self,
        directory: str,
        vm_version: str,
        address: Optional[str] = None,
        max_bytes: Optional[int] = None,
        flush_interval_s: float = DEFAULT_FLUSH_INTERVAL_S,
        storage: Optional[FileStorage] = None,
        publish_min_cost_us: Optional[int] = None,
        clock=time.time,
    ):
        self.directory = directory
        self.store = SharedBodyStore(
            directory,
            vm_version=vm_version,
            storage=storage,
            publish_min_cost_us=publish_min_cost_us,
            clock=clock,
        )
        self.vm_version = vm_version
        self.host_tag = self.store.host_tag
        self.address = address or default_socket_path(directory)
        #: Memory cap on hot-index body bytes; eviction ranks by
        #: (cost_us, stamp): cheapest to recompile and coldest first.
        self.max_bytes = max_bytes
        self.flush_interval_s = flush_interval_s
        self.clock = clock
        self.stats = ServerStats()
        #: digest → (blob, stamp, cost_us): the hot-shard index.
        self._hot: Dict[str, Tuple[bytes, int, int]] = {}
        self._hot_bytes = 0
        #: Digests published over the socket but not yet written back.
        self._dirty: Dict[str, bytes] = {}
        self._dirty_costs: Dict[str, int] = {}
        #: Already-flushed digests whose stamps need a disk refresh.
        self._touched: set = set()
        self._lock = threading.RLock()
        self._shutdown = threading.Event()
        self._listener: Optional[socket.socket] = None
        self._threads: List[threading.Thread] = []
        self.load_hot_index()

    # -- hot index -----------------------------------------------------------

    def load_hot_index(self) -> int:
        """(Re)load every current-keytag shard into memory; entry count."""
        with self._lock:
            self._hot.clear()
            self._hot_bytes = 0
            for digest, record in self.store.iter_entries():
                self._hot[digest] = record
                self._hot_bytes += len(record[0])
            return len(self._hot)

    def hot_entries(self) -> Dict[str, Tuple[bytes, int, int]]:
        """Snapshot of the hot index (tests and introspection)."""
        with self._lock:
            return dict(self._hot)

    def dirty_count(self) -> int:
        with self._lock:
            return len(self._dirty)

    def _evict_for_cap(self) -> int:
        """Evict hot bodies until the cap fits (caller holds the lock).

        Ranking is ``(cost_us, stamp, digest)`` ascending: of two cold
        bodies the cheaper recompile goes first, and a cheap body goes
        before an expensive one even when more recently used — the
        CacheManager policy the ``cost_us`` field exists for.  An
        evicted body that was never flushed is dropped from the
        write-back set too: it reads as cleanly absent everywhere.
        """
        if self.max_bytes is None or self._hot_bytes <= self.max_bytes:
            return 0
        ranked = sorted(
            (record[2], record[1], digest)
            for digest, record in self._hot.items()
        )
        evicted = 0
        for _cost, _stamp, digest in ranked:
            if self._hot_bytes <= self.max_bytes:
                break
            record = self._hot.pop(digest)
            self._hot_bytes -= len(record[0])
            self._dirty.pop(digest, None)
            self._dirty_costs.pop(digest, None)
            self._touched.discard(digest)
            evicted += 1
        return evicted

    # -- request handling ----------------------------------------------------

    def handle_frame(self, raw: bytes) -> bytes:
        """One request frame in, one response frame out (socketless).

        This is the daemon's whole state machine; the socket layer only
        moves bytes.  Tests drive it directly.
        """
        try:
            op, meta, entries = parse_frame(raw)
        except DaemonProtocolError as exc:
            self.stats.bad_frames += 1
            return pack_frame("error", {"reason": "bad-frame: %s" % exc})
        self.stats.requests += 1
        if op == "ping" or op == "stats":
            reply_meta = {
                "pid": os.getpid(),
                "vm": self.vm_version,
                "host": self.host_tag,
                "directory": self.directory,
                "entries": len(self._hot),
                "hot_bytes": self._hot_bytes,
                "dirty": len(self._dirty),
                "stats": self.stats.to_dict(),
            }
            if not self._key_matches(meta):
                return pack_frame(
                    "error", {"reason": "key-mismatch", "vm": self.vm_version,
                              "host": self.host_tag}
                )
            return pack_frame("pong" if op == "ping" else "stats", reply_meta)
        if not self._key_matches(meta):
            return pack_frame(
                "error", {"reason": "key-mismatch", "vm": self.vm_version,
                          "host": self.host_tag}
            )
        if op == "lookup":
            return self._handle_lookup(meta)
        if op == "publish":
            return self._handle_publish(meta, entries)
        if op == "flush":
            result = self.flush()
            return pack_frame("flushed", {
                "ok": result is not None,
                "published": result.published if result else 0,
                "refreshed": result.refreshed if result else 0,
            })
        if op == "shutdown":
            self._shutdown.set()
            return pack_frame("bye", {"pid": os.getpid()})
        return pack_frame("error", {"reason": "unsupported-op: %s" % op})

    def _key_matches(self, meta: Dict[str, object]) -> bool:
        """One daemon serves one (vm_version, host_tag) pool; a client
        keyed differently must fall back to its own file pool."""
        return (
            meta.get("vm", self.vm_version) == self.vm_version
            and meta.get("host", self.host_tag) == self.host_tag
        )

    def _handle_lookup(self, meta: Dict[str, object]) -> bytes:
        prefix = meta.get("prefix")
        digests = meta.get("digests")
        found: Dict[str, Tuple[bytes, int, int]] = {}
        with self._lock:
            if isinstance(prefix, str):
                self.stats.lookups += 1
                for digest, record in self._hot.items():
                    if digest.startswith(prefix):
                        found[digest] = record
                if found:
                    self.stats.hits += 1
                else:
                    self.stats.misses += 1
            for digest in digests if isinstance(digests, list) else ():
                self.stats.lookups += 1
                record = self._hot.get(digest)
                if record is None:
                    # Heal from disk once: a body published directly to
                    # the files (mixed fleet) is adopted into the hot
                    # index on first miss instead of recompiling forever.
                    blob = self.store.lookup(digest)
                    if blob is not None:
                        record = (blob, int(self.clock()), 0)
                        self._hot[digest] = record
                        self._hot_bytes += len(blob)
                if record is not None:
                    found[digest] = record
                    self.stats.hits += 1
                else:
                    self.stats.misses += 1
        return pack_frame("bodies", {"count": len(found)}, found)

    def _handle_publish(self, meta, entries) -> bytes:
        touch = meta.get("touch")
        touch = touch if isinstance(touch, list) else []
        now = int(self.clock())
        floor = self.store.publish_min_cost_us
        published = refreshed = skipped = 0
        with self._lock:
            self.stats.publishes += 1
            for digest in sorted(entries):
                blob, _stamp, cost_us = entries[digest]
                # Same admission rule — and the same check order — as
                # the flock store: a body cheaper to recompute than to
                # store is skipped before presence is even considered,
                # so daemon and file publish counts match field for
                # field.
                if floor > 0 and cost_us < floor:
                    skipped += 1
                    continue
                existing = self._hot.get(digest)
                if existing is None:
                    self._hot[digest] = (blob, now, cost_us)
                    self._hot_bytes += len(blob)
                    self._dirty[digest] = blob
                    if cost_us:
                        self._dirty_costs[digest] = cost_us
                    published += 1
                elif existing[1] != now:
                    self._hot[digest] = (existing[0], now, existing[2])
                    self._touched.add(digest)
                    refreshed += 1
            for digest in touch:
                existing = self._hot.get(
                    digest if isinstance(digest, str) else ""
                )
                if existing is None:
                    continue  # touch of an absent digest: no-op
                if existing[1] != now:
                    self._hot[digest] = (existing[0], now, existing[2])
                    refreshed += 1
                self._touched.add(digest)
            evicted = self._evict_for_cap()
        self.stats.published += published
        self.stats.refreshed += refreshed
        self.stats.evicted += evicted
        self.stats.admission_skipped += skipped
        return pack_frame("published", {
            "published": published,
            "refreshed": refreshed,
            "evicted": evicted,
            "admission_skipped": skipped,
        })

    # -- write-back ----------------------------------------------------------

    def flush(self):
        """Write dirty bodies and stamp refreshes back to the shards.

        Returns the store's PublishResult, or None when a storage
        failure deferred the write-back (the dirty set is kept and the
        next flush retries — the daemon keeps serving from memory
        either way).
        """
        with self._lock:
            if not self._dirty and not self._touched:
                return _EMPTY_PUBLISH
            dirty = dict(self._dirty)
            costs = dict(self._dirty_costs)
            touched = set(self._touched)
        try:
            result = self.store.publish(dirty, touch=touched, costs=costs)
        except OSError:
            self.stats.flush_errors += 1
            return None
        with self._lock:
            for digest in dirty:
                if self._dirty.get(digest) is dirty[digest]:
                    self._dirty.pop(digest, None)
                    self._dirty_costs.pop(digest, None)
            self._touched -= touched
        self.stats.flushes += 1
        self.stats.flushed_bodies += result.published
        return result

    def _flusher(self) -> None:
        while not self._shutdown.wait(self.flush_interval_s):
            self.flush()

    # -- socket serving ------------------------------------------------------

    def start(self) -> str:
        """Bind, listen and serve on background threads; the address."""
        self._listener = self._bind()
        self._listener.listen(128)
        self._listener.settimeout(0.2)
        acceptor = threading.Thread(
            target=self._accept_loop, name="pcsd-accept", daemon=True
        )
        flusher = threading.Thread(
            target=self._flusher, name="pcsd-flush", daemon=True
        )
        self._threads = [acceptor, flusher]
        acceptor.start()
        flusher.start()
        return self.address

    def serve_forever(self) -> None:
        """Foreground entry point (the CLI): start, block, clean stop."""
        self.start()
        try:
            while not self._shutdown.wait(0.2):
                pass
        except KeyboardInterrupt:
            pass
        finally:
            self.stop()

    def stop(self) -> None:
        """Flush and tear the daemon down (idempotent)."""
        self._shutdown.set()
        for thread in self._threads:
            if thread is not threading.current_thread():
                thread.join(timeout=5)
        self._threads = []
        if self._listener is not None:
            try:
                self._listener.close()
            finally:
                self._listener = None
            kind, address = resolve_address(self.address)
            if kind == "unix":
                try:
                    os.unlink(address)
                except OSError:
                    pass
        self.flush()

    def _bind(self) -> socket.socket:
        kind, address = resolve_address(self.address)
        if kind == "tcp":
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            sock.bind(address)
            # Port 0 means "pick one": rewrite the address so clients
            # (and the CLI banner) see the real endpoint.
            host, port = sock.getsockname()[:2]
            self.address = "tcp://%s:%d" % (host, port)
            return sock
        self.store.storage.makedirs(os.path.dirname(address) or ".")
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            sock.bind(address)
        except OSError:
            # A leftover socket file from a dead daemon blocks bind.
            # Distinguish live from stale by connecting: refused means
            # stale (unlink and claim), accepted means already served.
            try:
                probe = connect(self.address, timeout_s=0.5)
            except OSError:
                os.unlink(address)
                sock.bind(address)
                return sock
            probe.close()
            sock.close()
            raise OSError(
                "a daemon is already serving %s" % self.address
            )
        return sock

    def _accept_loop(self) -> None:
        while not self._shutdown.is_set():
            try:
                conn, _peer = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            self.stats.connections += 1
            thread = threading.Thread(
                target=self._serve_connection, args=(conn,),
                name="pcsd-conn", daemon=True,
            )
            thread.start()

    def _serve_connection(self, conn: socket.socket) -> None:
        """Frames in, frames out, until EOF, damage or shutdown.

        A malformed stream gets a best-effort ``error`` frame and the
        connection is closed — resynchronizing a CRC-framed stream is
        not possible, and the client's fallback path is cheap.
        """
        conn.settimeout(30.0)
        try:
            while not self._shutdown.is_set():
                try:
                    raw = read_frame(conn)
                except DaemonProtocolError as exc:
                    self.stats.bad_frames += 1
                    try:
                        write_frame(conn, pack_frame(
                            "error", {"reason": "bad-frame: %s" % exc}
                        ))
                    except OSError:
                        pass
                    return
                except (socket.timeout, OSError):
                    return
                if raw is None:
                    return
                reply = self.handle_frame(raw)
                try:
                    write_frame(conn, reply)
                except OSError:
                    return
        finally:
            try:
                conn.close()
            except OSError:
                pass


#: ``flush()`` with nothing to do still reports success: distinguish
#: "no work" from "storage failed" without overloading None.
@dataclass
class _EmptyPublish:
    published: int = 0
    refreshed: int = 0
    evicted: int = 0
    shards_written: int = 0
    admission_skipped: int = 0


_EMPTY_PUBLISH = _EmptyPublish()
