"""Client transport for the per-host cache-server daemon.

:class:`DaemonBackedStore` speaks PCSD1 (see
:mod:`repro.persist.cacheserver`) to a running daemon and presents the
same surface as :class:`~repro.persist.sharedstore.SharedBodyStore` —
``lookup`` / ``publish`` / ``register_database`` / ``vm_version`` — so
it slots behind the existing ``ChainedBodyStore`` seam in
``sidecar.py`` untouched: the manager cannot tell a daemon-backed pool
from a file-backed one, which is exactly what the differential suite
asserts.

Fallback contract (the part every fault-injection test leans on):

* every store wraps a real file-backed :class:`SharedBodyStore` on the
  same directory;
* any transport failure — no socket, connect refused, timeout, torn or
  garbage frame, daemon answering ``error`` — raises
  :class:`DaemonError` internally, and the store **silently and
  permanently degrades** to the file path for the rest of the session
  (``transport`` flips ``"daemon"`` → ``"file"``,
  ``daemon_fallbacks`` counts the event);
* :class:`DaemonError` subclasses :class:`OSError`, so even an escape
  through an unexpected code path is absorbed by the same
  ``except OSError`` seams (``ChainedBodyStore.lookup_code``, the
  manager's ``STORAGE_FAILURES``) that already make file-store damage
  report-only.  A dead daemon can cost a session milliseconds, never
  correctness.

Reads are batched per shard prefix: the first lookup under a prefix
fetches the daemon's whole hot shard in one RPC and later lookups under
it are local dict hits — the daemon path's per-body cost is a hash
probe, while the flock store pays a ``stat`` per lookup.

``resolve_shared_store`` is the single attach point the CLI and
prewarm use: ``daemon://DIR`` specs and the ``REPRO_CACHE_DAEMON``
environment knob both land here.
"""

from __future__ import annotations

import os
import socket
import time
from typing import Dict, Iterable, Optional, Tuple

from repro.persist.cacheserver import (
    DaemonProtocolError,
    connect,
    default_socket_path,
    pack_frame,
    parse_frame,
    read_frame,
    write_frame,
)
from repro.persist.sharedstore import (
    PublishResult,
    SharedBodyStore,
    shard_prefix,
)

#: Spec scheme selecting the daemon transport explicitly.
DAEMON_SCHEME = "daemon://"

#: Environment knobs: ``REPRO_CACHE_DAEMON`` opts a plain ``--shared-store
#: DIR`` into the daemon transport ("1"/"auto" = conventional socket in
#: the store directory, anything else = explicit socket address);
#: ``REPRO_DAEMON_TIMEOUT_MS`` bounds every RPC.
DAEMON_ENV = "REPRO_CACHE_DAEMON"
TIMEOUT_ENV = "REPRO_DAEMON_TIMEOUT_MS"
DEFAULT_TIMEOUT_MS = 2000


class DaemonError(OSError):
    """Any failure of the daemon transport.

    An :class:`OSError` on purpose: the sidecar seam and the manager's
    ``STORAGE_FAILURES`` already treat ``OSError`` from the shared
    store as a report-only miss, so a ``DaemonError`` that escapes the
    store's own fallback still cannot touch the simulated run.
    """


def default_timeout_s() -> float:
    try:
        ms = int(os.environ.get(TIMEOUT_ENV, "") or DEFAULT_TIMEOUT_MS)
    except ValueError:
        ms = DEFAULT_TIMEOUT_MS
    return max(ms, 1) / 1000.0


class DaemonClient:
    """One connection to a cache-server daemon; request/response frames.

    The socket is opened lazily and kept for the client's lifetime
    (per-RPC reconnects would put connect latency on the lookup path).
    Every failure mode — connect, send, receive, frame damage, an
    ``error`` reply — raises :class:`DaemonError`; after a transport
    failure the connection is closed so the next request (if the owner
    retries at all) starts clean.
    """

    def __init__(
        self,
        address: str,
        vm_version: str = "",
        host_tag: str = "",
        timeout_s: Optional[float] = None,
    ):
        self.address = address
        self.vm_version = vm_version
        self.host_tag = host_tag
        self.timeout_s = (
            timeout_s if timeout_s is not None else default_timeout_s()
        )
        self.rpcs = 0
        self._sock: Optional[socket.socket] = None

    def request(
        self,
        op: str,
        meta: Optional[Dict[str, object]] = None,
        entries: Optional[Dict[str, tuple]] = None,
    ) -> Tuple[str, Dict[str, object], Dict[str, Tuple[bytes, int, int]]]:
        """One round trip; the reply's ``(op, meta, entries)``.

        An ``error`` reply raises like a transport failure — the caller
        has one failure path, and it always means "no usable daemon".
        """
        meta = dict(meta or {})
        # Empty stamps mean "not asserting a key" (the CLI's control
        # client): the daemon only rejects an *asserted* mismatch.
        if self.vm_version:
            meta.setdefault("vm", self.vm_version)
        if self.host_tag:
            meta.setdefault("host", self.host_tag)
        frame = pack_frame(op, meta, entries or {})
        try:
            if self._sock is None:
                self._sock = connect(self.address, self.timeout_s)
            self._sock.settimeout(self.timeout_s)
            write_frame(self._sock, frame)
            raw = read_frame(self._sock)
        except DaemonError:
            self.close()
            raise
        except (OSError, DaemonProtocolError, socket.timeout) as exc:
            self.close()
            raise DaemonError("daemon rpc %r failed: %s" % (op, exc)) from exc
        if raw is None:
            self.close()
            raise DaemonError("daemon closed the connection mid-request")
        try:
            reply_op, reply_meta, reply_entries = parse_frame(raw)
        except DaemonProtocolError as exc:
            self.close()
            raise DaemonError("daemon reply malformed: %s" % exc) from exc
        self.rpcs += 1
        if reply_op == "error":
            self.close()
            raise DaemonError(
                "daemon error: %s" % reply_meta.get("reason", "unknown")
            )
        return reply_op, reply_meta, reply_entries

    def ping(self) -> Dict[str, object]:
        _op, meta, _entries = self.request("ping")
        return meta

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None


class DaemonBackedStore:
    """A shared body store served by the per-host daemon.

    Drop-in for :class:`SharedBodyStore` behind the sidecar seam.  The
    wrapped file store on the same directory is both the fallback
    transport and the carrier of file-level concerns that never go over
    the socket (``register_database``, ``gc``, ``fsck``,
    ``total_bytes`` — gc marking and fsck verification are offline
    maintenance of the source of truth, not session traffic).

    Counters surfaced to session reports: ``transport``
    (``"daemon"``/``"file"``), ``daemon_rpcs``, ``daemon_fallbacks``.
    """

    def __init__(
        self,
        directory: str,
        vm_version: str,
        socket_spec: Optional[str] = None,
        timeout_s: Optional[float] = None,
        storage=None,
        max_bytes: Optional[int] = None,
        clock=time.time,
        publish_min_cost_us: Optional[int] = None,
    ):
        self.inner = SharedBodyStore(
            directory,
            vm_version=vm_version,
            storage=storage,
            max_bytes=max_bytes,
            clock=clock,
            publish_min_cost_us=publish_min_cost_us,
        )
        self.directory = directory
        self.vm_version = vm_version
        self.host_tag = self.inner.host_tag
        self.publish_min_cost_us = self.inner.publish_min_cost_us
        self.events = self.inner.events
        self.address = socket_spec or default_socket_path(directory)
        self._client = DaemonClient(
            self.address,
            vm_version=vm_version,
            host_tag=self.host_tag,
            timeout_s=timeout_s,
        )
        #: prefix → {digest: blob}: shard prefixes already fetched from
        #: the daemon; a hit here costs one dict probe, no syscall.
        self._prefix_cache: Dict[str, Dict[str, bytes]] = {}
        self.daemon_fallbacks = 0
        #: "daemon" while the socket serves us, "file" after degrading.
        self.transport = "file"
        try:
            self._client.ping()
            self.transport = "daemon"
        except DaemonError:
            self._degrade()

    @property
    def daemon_rpcs(self) -> int:
        return self._client.rpcs

    def _degrade(self) -> None:
        """Flip to the file transport for the rest of the session.

        Silent by design: a session must behave identically (minus
        latency) whether the daemon died before it started or halfway
        through — the flock store always has the published truth, plus
        at most an unflushed tail this session simply recompiles.
        """
        if self.transport == "daemon":
            self.daemon_fallbacks += 1
        self.transport = "file"
        self._prefix_cache.clear()
        self._client.close()

    # -- store surface -------------------------------------------------------

    def lookup(self, digest: str) -> Optional[bytes]:
        if self.transport != "daemon":
            return self.inner.lookup(digest)
        prefix = shard_prefix(digest)
        cached = self._prefix_cache.get(prefix)
        if cached is not None and digest in cached:
            return cached[digest]
        try:
            _op, _meta, entries = self._client.request(
                "lookup", {"prefix": prefix, "digests": [digest]}
            )
        except DaemonError:
            self._degrade()
            return self.inner.lookup(digest)
        shard = self._prefix_cache.setdefault(prefix, {})
        for found, record in entries.items():
            shard[found] = record[0]
        return shard.get(digest)

    def __contains__(self, digest: str) -> bool:
        return self.lookup(digest) is not None

    def publish(
        self,
        blobs: Dict[str, bytes],
        touch: Iterable[str] = (),
        costs: Optional[Dict[str, int]] = None,
    ) -> PublishResult:
        if self.transport != "daemon":
            return self.inner.publish(blobs, touch=touch, costs=costs)
        costs = costs or {}
        entries = {
            digest: (blob, 0, int(costs.get(digest, 0)))
            for digest, blob in blobs.items()
        }
        try:
            _op, meta, _entries = self._client.request(
                "publish", {"touch": sorted(touch)}, entries
            )
        except DaemonError:
            self._degrade()
            return self.inner.publish(blobs, touch=touch, costs=costs)
        result = PublishResult(
            published=int(meta.get("published", 0)),
            refreshed=int(meta.get("refreshed", 0)),
            evicted=int(meta.get("evicted", 0)),
            shards_written=0,
            admission_skipped=int(meta.get("admission_skipped", 0)),
        )
        # Keep already-fetched shards coherent with what we just
        # published; unfetched prefixes stay unfetched (they would be
        # filled by the daemon on first lookup anyway).
        for digest, blob in blobs.items():
            cached = self._prefix_cache.get(shard_prefix(digest))
            if cached is not None:
                cached[digest] = blob
        return result

    def register_database(self, db_directory: str) -> None:
        """Always file-level: the registry is gc's mark-root list and
        must survive the daemon (and be visible without one)."""
        self.inner.register_database(db_directory)

    def registered_databases(self):
        return self.inner.registered_databases()

    def gc(self, max_bytes: Optional[int] = None):
        return self.inner.gc(max_bytes)

    def fsck(self, quarantine: bool = False):
        return self.inner.fsck(quarantine=quarantine)

    def total_bytes(self) -> int:
        return self.inner.total_bytes()

    def total_entries(self) -> int:
        return self.inner.total_entries()

    # -- daemon control ------------------------------------------------------

    def ping(self) -> Optional[Dict[str, object]]:
        """Daemon health/stats meta, or None when unreachable (this
        does not degrade the store — it is a pure probe)."""
        try:
            return self._client.ping()
        except DaemonError:
            return None

    def flush_daemon(self) -> bool:
        """Ask the daemon to write its dirty tail back now."""
        try:
            self._client.request("flush")
            return True
        except DaemonError:
            return False

    def close(self) -> None:
        self._client.close()


# -- attach-point resolution --------------------------------------------------


def resolve_shared_store(
    spec: str,
    vm_version: str,
    timeout_s: Optional[float] = None,
    **store_kwargs,
):
    """Build the right store for a ``--shared-store`` spec.

    * ``daemon://DIR`` → :class:`DaemonBackedStore` on ``DIR``; the
      socket is ``$REPRO_CACHE_DAEMON`` when that names an address, else
      the conventional ``DIR/daemon.sock``.
    * plain ``DIR`` with ``REPRO_CACHE_DAEMON`` set (non-empty) → the
      same daemon transport, so a fleet can be switched over by
      environment alone, no per-session flag changes.
    * plain ``DIR`` otherwise → a plain :class:`SharedBodyStore`.

    Either way the store works with no daemon listening — the daemon
    transport degrades to the wrapped file store at construction.
    """
    env = os.environ.get(DAEMON_ENV, "")
    if spec.startswith(DAEMON_SCHEME):
        directory = spec[len(DAEMON_SCHEME):] or "."
        return DaemonBackedStore(
            directory,
            vm_version,
            socket_spec=_env_socket(env),
            timeout_s=timeout_s,
            **store_kwargs,
        )
    if env:
        return DaemonBackedStore(
            spec,
            vm_version,
            socket_spec=_env_socket(env),
            timeout_s=timeout_s,
            **store_kwargs,
        )
    return SharedBodyStore(spec, vm_version=vm_version, **store_kwargs)


def _env_socket(env: str) -> Optional[str]:
    """An explicit socket address from the env knob, or None for the
    conventional in-store path ("1"/"auto" mean "on, default socket")."""
    if env and env not in ("1", "auto"):
        return env
    return None
