"""Static (offline) pre-translation — the paper's §5 comparison point.

Static pre-translators translate *every* instruction of a binary offline
so no run-time compilation is needed.  The paper argues this is
infeasible for large applications: translation expands code severely
(field experiments saw ~10x with instrumentation), so a 100MB Oracle
becomes ~1GB pre-translated, while a persistent code cache holds only the
code that actually executed (256MB in their setup).

:func:`pretranslate_image` performs the offline translation of one image
by linear sweep: traces are selected back-to-back over the whole
executable section and translated exactly as the run-time compiler would,
yielding the code-pool and data-pool bytes a static scheme must store.
:func:`pretranslate_process` covers an executable plus all its libraries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.binfmt.image import Image
from repro.isa.encoding import decode
from repro.loader.linker import LoadedProcess
from repro.machine.costs import CostModel, DEFAULT_COST_MODEL
from repro.vm.client import Tool
from repro.vm.trace import DEFAULT_MAX_TRACE_INSTS, TraceSelector
from repro.vm.translator import Translator


@dataclass
class PretranslationResult:
    """Size/cost accounting of an offline translation."""

    original_code_bytes: int = 0
    translated_code_bytes: int = 0
    data_structure_bytes: int = 0
    traces: int = 0
    compile_cycles: float = 0.0

    @property
    def total_bytes(self) -> int:
        return self.translated_code_bytes + self.data_structure_bytes

    @property
    def expansion_factor(self) -> float:
        """Stored bytes per original code byte."""
        if self.original_code_bytes == 0:
            return 0.0
        return self.total_bytes / self.original_code_bytes

    def merge(self, other: "PretranslationResult") -> None:
        self.original_code_bytes += other.original_code_bytes
        self.translated_code_bytes += other.translated_code_bytes
        self.data_structure_bytes += other.data_structure_bytes
        self.traces += other.traces
        self.compile_cycles += other.compile_cycles


def pretranslate_image(
    image: Image,
    tool: Optional[Tool] = None,
    cost_model: CostModel = DEFAULT_COST_MODEL,
    max_trace_insts: int = DEFAULT_MAX_TRACE_INSTS,
) -> PretranslationResult:
    """Offline-translate the entire ``.text`` of one image."""
    text = image.section(".text")
    code = bytes(text.data)

    def fetch(pc: int):
        return decode(code, pc)

    selector = TraceSelector(fetch, max_trace_insts)
    translator = Translator(cost_model, tool)
    result = PretranslationResult(original_code_bytes=len(code))
    cursor = 0
    while cursor < len(code):
        trace = selector.select(cursor, image_path=image.path, image_base=0)
        translation = translator.translate(trace)
        result.translated_code_bytes += translation.translated.code_size
        result.data_structure_bytes += translation.translated.data_size
        result.traces += 1
        result.compile_cycles += translation.compile_cycles
        cursor += trace.size
    return result


def pretranslate_process(
    process: LoadedProcess,
    tool: Optional[Tool] = None,
    cost_model: CostModel = DEFAULT_COST_MODEL,
) -> PretranslationResult:
    """Offline-translate the executable and every loaded library."""
    total = PretranslationResult()
    for mapping in process.mappings:
        total.merge(pretranslate_image(mapping.image, tool, cost_model))
    return total
