"""On-disk persistent code cache.

"A persistent code cache is a file stored on disk containing traces and
their associated data structures.  The data structures contain information
such as trace links and translation maps." (paper §3.2.1)

The file holds two pools, mirroring the in-memory separation (§3.2.2):

* the **code pool** — concatenated translated-code bytes of every trace;
* the **data pool** — per-trace serialized metadata (trace object header,
  register bindings, liveness vectors, address table, link records), the
  same byte sizes the in-memory translator accounts, so Figure 9's
  code-vs-data comparison measures real file bytes.

Format version 2 frames the file as four independently checksummed
sections so damage is localized and reported precisely (see
``docs/cache-format.md``):

```
offset  size  field
0       4     magic "PCC2"
4       2     u16 format_version
6       2     u16 feature_flags
8       4     u32 header_len
12      4     u32 CRC-32 of the header JSON
16      n     header JSON (keys, metadata, section table)
16+n    d     trace-directory JSON
...           code pool
...           data pool
end-4   4     u32 CRC-32 of bytes [0, end-4)   (whole-file check)
```

The header's section table records ``[size, crc32]`` for the directory,
code pool and data pool; sections are laid out in that order immediately
after the header.  Any mismatch raises :class:`CacheFileError` whose
``section`` attribute names the damaged section — the database layer uses
it to quarantine the file and report where the damage was.

Trace identity for accumulation is ``(image_path, image_offset)`` — stable
across runs even if a library's base changes.
"""

from __future__ import annotations

import json
import struct
import zlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.persist.keys import MappingKey
from repro.persist.storage import DEFAULT_STORAGE, FileStorage

MAGIC = b"PCC2"
#: Magic of the retired version-1 framing; recognized only so its files
#: get the precise "unsupported format version" incompatibility path
#: (quarantine + JIT-only run) instead of a generic bad-magic error.
LEGACY_MAGIC = b"PCC1"
FORMAT_VERSION = 2

#: Fixed-size binary preamble: magic, version, feature flags, header
#: length, header CRC.
PREAMBLE = struct.Struct("<4sHHII")

#: Feature-flag bits.  A reader must reject a file carrying any flag bit
#: it does not understand: flags mark format extensions that change how
#: the payload must be interpreted.
FEATURE_RELOCATABLE = 0x0001
SUPPORTED_FEATURES = FEATURE_RELOCATABLE

#: Section names used in error attribution and fsck reports, in file
#: order.
SECTIONS = ("header", "directory", "code_pool", "data_pool")

# Fixed record sizes inside the data pool (bytes); these match the
# translator's accounting in repro.vm.translator.
TRACE_HEADER_BYTES = 112
BINDINGS_BYTES = 64
LIVENESS_BYTES = 8
ADDR_TABLE_BYTES = 8
LINK_RECORD_BYTES = 56


class CacheFileError(Exception):
    """Raised when a persistent cache file is malformed.

    ``section`` names where the damage was detected: one of
    :data:`SECTIONS`, ``"preamble"`` or ``"trailer"`` (framing damage),
    or ``""`` when no section can be attributed.
    """

    def __init__(self, message: str, section: str = ""):
        super().__init__(message)
        self.section = section


#: Successful-parse memo keyed on the exact file bytes (see
#: :meth:`PersistentCache.from_bytes`).  Values are private templates;
#: hits return detached copies.
_PARSE_MEMO: dict = {}
_PARSE_MEMO_CAP = 64


def _crc(blob: bytes) -> int:
    return zlib.crc32(blob) & 0xFFFFFFFF


@dataclass
class PersistedExit:
    """Directory record of one trace exit."""

    kind: int
    index: int
    target: Optional[int]  # absolute address at creation, None if dynamic
    target_path: str = ""  # owning image of the target, "" if unknown
    target_offset: int = 0  # image-relative target offset

    def to_json(self) -> list:
        return [self.kind, self.index, self.target, self.target_path, self.target_offset]

    @classmethod
    def from_json(cls, data: list) -> "PersistedExit":
        return cls(*data)


@dataclass
class PersistedReloc:
    """An absolute-immediate site inside a persisted trace body.

    ``index`` is the instruction index; the target is recorded both as the
    absolute address baked into the code bytes and as an image-relative
    (path, offset) pair so position-independent reuse can re-materialize
    it after relocation.
    """

    index: int
    target_path: str
    target_offset: int

    def to_json(self) -> list:
        return [self.index, self.target_path, self.target_offset]

    @classmethod
    def from_json(cls, data: list) -> "PersistedReloc":
        return cls(*data)


@dataclass
class PersistedTrace:
    """One trace in the cache file."""

    entry: int  # absolute entry address at creation time
    image_path: str
    image_offset: int  # entry - image base at creation time
    n_insts: int
    code: bytes
    exits: List[PersistedExit] = field(default_factory=list)
    relocs: List[PersistedReloc] = field(default_factory=list)
    data_size: int = 0
    liveness: List[int] = field(default_factory=list)

    @property
    def identity(self) -> Tuple[str, int]:
        return (self.image_path, self.image_offset)

    @property
    def code_size(self) -> int:
        return len(self.code)

    def build_data_blob(self) -> bytes:
        """Serialize this trace's 'data structures' at their modeled size."""
        parts = [
            struct.pack(
                "<qqii",
                self.entry,
                self.image_offset,
                self.n_insts,
                len(self.exits),
            ).ljust(TRACE_HEADER_BYTES, b"\0"),
            b"\0" * BINDINGS_BYTES,
        ]
        for mask in self.liveness:
            parts.append(struct.pack("<Q", mask & ((1 << 64) - 1)))
        if len(self.liveness) < self.n_insts:
            parts.append(b"\0" * (LIVENESS_BYTES * (self.n_insts - len(self.liveness))))
        parts.append(b"\0" * (ADDR_TABLE_BYTES * self.n_insts))
        for trace_exit in self.exits:
            parts.append(
                struct.pack(
                    "<iiq",
                    trace_exit.kind,
                    trace_exit.index,
                    trace_exit.target if trace_exit.target is not None else -1,
                ).ljust(LINK_RECORD_BYTES, b"\0")
            )
        blob = b"".join(parts)
        if self.data_size and len(blob) != self.data_size:
            # The translator's accounting is authoritative; pad or trim so
            # file sizes match the in-memory pools exactly.
            if len(blob) < self.data_size:
                blob += b"\0" * (self.data_size - len(blob))
            else:
                blob = blob[: self.data_size]
        return blob

    def to_json(self, code_offset: int, data_offset: int) -> dict:
        return {
            "entry": self.entry,
            "image_path": self.image_path,
            "image_offset": self.image_offset,
            "n_insts": self.n_insts,
            "code_offset": code_offset,
            "code_size": len(self.code),
            "data_offset": data_offset,
            "data_size": self.data_size,
            "exits": [e.to_json() for e in self.exits],
            "relocs": [r.to_json() for r in self.relocs],
            "liveness": self.liveness,
        }


@dataclass
class _Frame:
    """The parsed and checksum-verified sections of a cache file."""

    feature_flags: int
    header: dict
    directory: list
    code_pool: bytes
    data_pool: bytes


def _parse_frame(blob: bytes) -> _Frame:
    """Split ``blob`` into verified sections, attributing any damage."""
    if len(blob) < PREAMBLE.size + 4:
        raise CacheFileError("file too short for preamble", section="preamble")
    magic = blob[:4]
    if magic != MAGIC:
        if magic == LEGACY_MAGIC:
            raise CacheFileError(
                "unsupported format version 1 (legacy PCC1 file)",
                section="header",
            )
        raise CacheFileError("bad magic", section="preamble")
    _, version, flags, header_len, header_crc = PREAMBLE.unpack_from(blob, 0)
    if version != FORMAT_VERSION:
        raise CacheFileError(
            "unsupported format version %r" % version, section="header"
        )
    if flags & ~SUPPORTED_FEATURES:
        raise CacheFileError(
            "unsupported feature flags 0x%04x" % (flags & ~SUPPORTED_FEATURES),
            section="header",
        )

    # Whole-file trailer first for a quick integrity gate?  No: section
    # checks run first so a single flipped byte is attributed to the
    # section holding it, not to an anonymous whole-file mismatch.
    header_start = PREAMBLE.size
    header_end = header_start + header_len
    if header_end + 4 > len(blob):
        raise CacheFileError("truncated header", section="header")
    header_blob = blob[header_start:header_end]
    if _crc(header_blob) != header_crc:
        raise CacheFileError("header checksum mismatch", section="header")
    try:
        header = json.loads(header_blob)
    except ValueError as exc:
        raise CacheFileError("bad header JSON", section="header") from exc
    if not isinstance(header, dict):
        raise CacheFileError("bad header JSON", section="header")

    sections = header.get("sections")
    if not isinstance(sections, dict):
        raise CacheFileError("missing section table", section="header")
    offset = header_end
    payloads: Dict[str, bytes] = {}
    for name in ("directory", "code_pool", "data_pool"):
        try:
            size, crc = sections[name]
            size = int(size)
        except (KeyError, TypeError, ValueError) as exc:
            raise CacheFileError(
                "bad section table entry for %s" % name, section="header"
            ) from exc
        if size < 0 or offset + size + 4 > len(blob):
            raise CacheFileError("truncated %s section" % name, section=name)
        payload = blob[offset : offset + size]
        if _crc(payload) != crc:
            raise CacheFileError("%s checksum mismatch" % name, section=name)
        payloads[name] = payload
        offset += size
    if offset != len(blob) - 4:
        raise CacheFileError("trailing garbage after data pool", section="trailer")
    (file_crc,) = struct.unpack_from("<I", blob, len(blob) - 4)
    if _crc(blob[:-4]) != file_crc:
        raise CacheFileError("whole-file checksum mismatch", section="trailer")

    try:
        directory = json.loads(payloads["directory"])
    except ValueError as exc:
        raise CacheFileError("bad directory JSON", section="directory") from exc
    if not isinstance(directory, list):
        raise CacheFileError("bad directory JSON", section="directory")
    return _Frame(
        feature_flags=flags,
        header=header,
        directory=directory,
        code_pool=payloads["code_pool"],
        data_pool=payloads["data_pool"],
    )


def verify_sections(blob: bytes) -> Dict[str, str]:
    """Best-effort per-section status of a raw cache blob, for fsck.

    Returns ``{section: ""}`` for healthy sections and ``{section:
    reason}`` for damaged ones; framing damage appears under
    ``"preamble"``/``"trailer"``.
    """
    status: Dict[str, str] = {}
    try:
        _parse_frame(blob)
    except CacheFileError as exc:
        status[exc.section or "preamble"] = str(exc)
    else:
        try:
            PersistentCache.from_bytes(blob)
        except CacheFileError as exc:
            status[exc.section or "directory"] = str(exc)
    return status


@dataclass
class PersistentCache:
    """An in-memory view of a persistent cache file."""

    vm_version: str
    tool_identity: str
    app_path: str
    image_keys: Dict[str, MappingKey] = field(default_factory=dict)
    traces: List[PersistedTrace] = field(default_factory=list)
    #: Creation generation: bumped on every accumulation write-back.
    generation: int = 0
    #: Format feature bits this cache was written with (see
    #: :data:`SUPPORTED_FEATURES`).
    feature_flags: int = 0

    # -- inventory ---------------------------------------------------------

    def trace_identities(self) -> set:
        return {trace.identity for trace in self.traces}

    def traces_for_image(self, path: str) -> List[PersistedTrace]:
        return [t for t in self.traces if t.image_path == path]

    @property
    def total_code_bytes(self) -> int:
        return sum(t.code_size for t in self.traces)

    @property
    def total_data_bytes(self) -> int:
        return sum(t.data_size for t in self.traces)

    # -- accumulation ------------------------------------------------------

    def accumulate(
        self,
        new_traces: Iterable[PersistedTrace],
        new_keys: Dict[str, MappingKey],
    ) -> int:
        """Add newly discovered translations; return how many were new.

        "The run-time addition of new translations into a persistent code
        cache is persistent cache accumulation." (§4.4)  Existing traces
        keep priority; image keys are refreshed to the latest run's values
        (the bases the retained translations are valid for must stay
        consistent, so keys are only replaced when no retained trace
        depends on the old mapping — callers guarantee this by dropping
        invalid traces before accumulating).
        """
        known = self.trace_identities()
        added = 0
        for trace in new_traces:
            if trace.identity in known:
                continue
            self.traces.append(trace)
            known.add(trace.identity)
            added += 1
        for path, key in new_keys.items():
            self.image_keys[path] = key
        self.generation += 1
        return added

    def drop_traces(self, identities: set) -> int:
        """Remove traces by identity; returns how many were dropped."""
        before = len(self.traces)
        self.traces = [t for t in self.traces if t.identity not in identities]
        return before - len(self.traces)

    # -- serialization -----------------------------------------------------

    def to_bytes(self) -> bytes:
        code_pool = bytearray()
        data_pool = bytearray()
        directory = []
        for trace in self.traces:
            code_offset = len(code_pool)
            data_offset = len(data_pool)
            code_pool.extend(trace.code)
            data_pool.extend(trace.build_data_blob())
            directory.append(trace.to_json(code_offset, data_offset))
        directory_blob = json.dumps(directory, sort_keys=True).encode()
        code_blob = bytes(code_pool)
        data_blob = bytes(data_pool)
        header = {
            "format_version": FORMAT_VERSION,
            "vm_version": self.vm_version,
            "tool_identity": self.tool_identity,
            "app_path": self.app_path,
            "generation": self.generation,
            "image_keys": {
                path: key.to_json() for path, key in self.image_keys.items()
            },
            "sections": {
                "directory": [len(directory_blob), _crc(directory_blob)],
                "code_pool": [len(code_blob), _crc(code_blob)],
                "data_pool": [len(data_blob), _crc(data_blob)],
            },
        }
        header_blob = json.dumps(header, sort_keys=True).encode()
        body = b"".join(
            [
                PREAMBLE.pack(
                    MAGIC,
                    FORMAT_VERSION,
                    self.feature_flags & 0xFFFF,
                    len(header_blob),
                    _crc(header_blob),
                ),
                header_blob,
                directory_blob,
                code_blob,
                data_blob,
            ]
        )
        return body + struct.pack("<I", _crc(body))

    def _detached_copy(self) -> "PersistentCache":
        """A container copy sharing the (never-mutated-in-place) records.

        ``accumulate``/``drop_traces`` replace or extend the ``traces``
        list and rebind ``image_keys`` entries; the ``PersistedTrace``
        records themselves are immutable by convention, so two copies can
        share them while each owning its own container state.
        """
        dup = PersistentCache(
            vm_version=self.vm_version,
            tool_identity=self.tool_identity,
            app_path=self.app_path,
            generation=self.generation,
            feature_flags=self.feature_flags,
        )
        dup.traces = list(self.traces)
        dup.image_keys = dict(self.image_keys)
        return dup

    @classmethod
    def from_bytes(cls, blob: bytes) -> "PersistentCache":
        # Content-keyed parse memo: warm persistent runs re-read the same
        # file bytes every execution, and rebuilding thousands of
        # directory records dominates the (otherwise cheap) cache load.
        # Keying on the exact blob makes hits correct by construction;
        # only successful parses are memoized, and every caller gets a
        # detached container so mutations never leak between sessions.
        template = _PARSE_MEMO.get(blob)
        if template is not None:
            return template._detached_copy()
        frame = _parse_frame(blob)
        header = frame.header
        try:
            cache = cls(
                vm_version=header["vm_version"],
                tool_identity=header["tool_identity"],
                app_path=header["app_path"],
                generation=header.get("generation", 0),
                feature_flags=frame.feature_flags,
            )
            cache.image_keys = {
                path: MappingKey.from_json(data)
                for path, data in header["image_keys"].items()
            }
        except (KeyError, TypeError, ValueError, AttributeError) as exc:
            raise CacheFileError(
                "malformed header fields: %s" % exc, section="header"
            ) from exc

        code_pool = frame.code_pool
        data_pool = frame.data_pool
        try:
            for record in frame.directory:
                if (
                    record["code_offset"] < 0
                    or record["code_size"] < 0
                    or record["data_size"] < 0
                    or record["n_insts"] < 1
                    or record["code_offset"] + record["code_size"]
                    > len(code_pool)
                ):
                    raise CacheFileError(
                        "trace directory record out of bounds",
                        section="directory",
                    )
                code = code_pool[
                    record["code_offset"]
                    : record["code_offset"] + record["code_size"]
                ]
                if len(code) != record["code_size"]:
                    raise CacheFileError(
                        "truncated code pool", section="code_pool"
                    )
                cache.traces.append(
                    PersistedTrace(
                        entry=record["entry"],
                        image_path=record["image_path"],
                        image_offset=record["image_offset"],
                        n_insts=record["n_insts"],
                        code=code,
                        exits=[PersistedExit.from_json(e) for e in record["exits"]],
                        relocs=[PersistedReloc.from_json(r) for r in record["relocs"]],
                        data_size=record["data_size"],
                        liveness=list(record["liveness"]),
                    )
                )
        except CacheFileError:
            raise
        except (KeyError, TypeError, ValueError, IndexError, struct.error) as exc:
            # Shield callers from serialization internals: any shape error
            # in the directory is a typed cache-file error.
            raise CacheFileError(
                "malformed trace directory: %s" % exc, section="directory"
            ) from exc
        # Sanity: the data pool must be exactly the directory's total.
        expected_data = sum(t.data_size for t in cache.traces)
        if expected_data != len(data_pool):
            raise CacheFileError("data pool size mismatch", section="data_pool")
        if len(_PARSE_MEMO) >= _PARSE_MEMO_CAP:
            _PARSE_MEMO.clear()
        _PARSE_MEMO[bytes(blob)] = cache._detached_copy()
        return cache

    def save(self, path: str, storage: Optional[FileStorage] = None) -> None:
        """Atomically write-replace the file at ``path``."""
        (storage or DEFAULT_STORAGE).write_atomic(path, self.to_bytes())

    @classmethod
    def load(
        cls, path: str, storage: Optional[FileStorage] = None
    ) -> "PersistentCache":
        return cls.from_bytes((storage or DEFAULT_STORAGE).read_bytes(path))

    @property
    def file_size(self) -> int:
        return len(self.to_bytes())
