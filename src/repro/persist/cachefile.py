"""On-disk persistent code cache.

"A persistent code cache is a file stored on disk containing traces and
their associated data structures.  The data structures contain information
such as trace links and translation maps." (paper §3.2.1)

The file holds two pools, mirroring the in-memory separation (§3.2.2):

* the **code pool** — concatenated translated-code bytes of every trace;
* the **data pool** — per-trace serialized metadata (trace object header,
  register bindings, liveness vectors, address table, link records), the
  same byte sizes the in-memory translator accounts, so Figure 9's
  code-vs-data comparison measures real file bytes.

A JSON directory up front records the keys (per-mapping, VM, tool) and the
per-trace index: entry address, owning image + offset (so the
position-independent extension can rebase), exits, and pool offsets.

Trace identity for accumulation is ``(image_path, image_offset)`` — stable
across runs even if a library's base changes.
"""

from __future__ import annotations

import json
import struct
import zlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.persist.keys import MappingKey

MAGIC = b"PCC1"
FORMAT_VERSION = 1

# Fixed record sizes inside the data pool (bytes); these match the
# translator's accounting in repro.vm.translator.
TRACE_HEADER_BYTES = 112
BINDINGS_BYTES = 64
LIVENESS_BYTES = 8
ADDR_TABLE_BYTES = 8
LINK_RECORD_BYTES = 56


class CacheFileError(Exception):
    """Raised when a persistent cache file is malformed."""


@dataclass
class PersistedExit:
    """Directory record of one trace exit."""

    kind: int
    index: int
    target: Optional[int]  # absolute address at creation, None if dynamic
    target_path: str = ""  # owning image of the target, "" if unknown
    target_offset: int = 0  # image-relative target offset

    def to_json(self) -> list:
        return [self.kind, self.index, self.target, self.target_path, self.target_offset]

    @classmethod
    def from_json(cls, data: list) -> "PersistedExit":
        return cls(*data)


@dataclass
class PersistedReloc:
    """An absolute-immediate site inside a persisted trace body.

    ``index`` is the instruction index; the target is recorded both as the
    absolute address baked into the code bytes and as an image-relative
    (path, offset) pair so position-independent reuse can re-materialize
    it after relocation.
    """

    index: int
    target_path: str
    target_offset: int

    def to_json(self) -> list:
        return [self.index, self.target_path, self.target_offset]

    @classmethod
    def from_json(cls, data: list) -> "PersistedReloc":
        return cls(*data)


@dataclass
class PersistedTrace:
    """One trace in the cache file."""

    entry: int  # absolute entry address at creation time
    image_path: str
    image_offset: int  # entry - image base at creation time
    n_insts: int
    code: bytes
    exits: List[PersistedExit] = field(default_factory=list)
    relocs: List[PersistedReloc] = field(default_factory=list)
    data_size: int = 0
    liveness: List[int] = field(default_factory=list)

    @property
    def identity(self) -> Tuple[str, int]:
        return (self.image_path, self.image_offset)

    @property
    def code_size(self) -> int:
        return len(self.code)

    def build_data_blob(self) -> bytes:
        """Serialize this trace's 'data structures' at their modeled size."""
        parts = [
            struct.pack(
                "<qqii",
                self.entry,
                self.image_offset,
                self.n_insts,
                len(self.exits),
            ).ljust(TRACE_HEADER_BYTES, b"\0"),
            b"\0" * BINDINGS_BYTES,
        ]
        for mask in self.liveness:
            parts.append(struct.pack("<Q", mask & ((1 << 64) - 1)))
        if len(self.liveness) < self.n_insts:
            parts.append(b"\0" * (LIVENESS_BYTES * (self.n_insts - len(self.liveness))))
        parts.append(b"\0" * (ADDR_TABLE_BYTES * self.n_insts))
        for trace_exit in self.exits:
            parts.append(
                struct.pack(
                    "<iiq",
                    trace_exit.kind,
                    trace_exit.index,
                    trace_exit.target if trace_exit.target is not None else -1,
                ).ljust(LINK_RECORD_BYTES, b"\0")
            )
        blob = b"".join(parts)
        if self.data_size and len(blob) != self.data_size:
            # The translator's accounting is authoritative; pad or trim so
            # file sizes match the in-memory pools exactly.
            if len(blob) < self.data_size:
                blob += b"\0" * (self.data_size - len(blob))
            else:
                blob = blob[: self.data_size]
        return blob

    def to_json(self, code_offset: int, data_offset: int) -> dict:
        return {
            "entry": self.entry,
            "image_path": self.image_path,
            "image_offset": self.image_offset,
            "n_insts": self.n_insts,
            "code_offset": code_offset,
            "code_size": len(self.code),
            "data_offset": data_offset,
            "data_size": self.data_size,
            "exits": [e.to_json() for e in self.exits],
            "relocs": [r.to_json() for r in self.relocs],
            "liveness": self.liveness,
        }


@dataclass
class PersistentCache:
    """An in-memory view of a persistent cache file."""

    vm_version: str
    tool_identity: str
    app_path: str
    image_keys: Dict[str, MappingKey] = field(default_factory=dict)
    traces: List[PersistedTrace] = field(default_factory=list)
    #: Creation generation: bumped on every accumulation write-back.
    generation: int = 0

    # -- inventory ---------------------------------------------------------

    def trace_identities(self) -> set:
        return {trace.identity for trace in self.traces}

    def traces_for_image(self, path: str) -> List[PersistedTrace]:
        return [t for t in self.traces if t.image_path == path]

    @property
    def total_code_bytes(self) -> int:
        return sum(t.code_size for t in self.traces)

    @property
    def total_data_bytes(self) -> int:
        return sum(t.data_size for t in self.traces)

    # -- accumulation ------------------------------------------------------

    def accumulate(
        self,
        new_traces: Iterable[PersistedTrace],
        new_keys: Dict[str, MappingKey],
    ) -> int:
        """Add newly discovered translations; return how many were new.

        "The run-time addition of new translations into a persistent code
        cache is persistent cache accumulation." (§4.4)  Existing traces
        keep priority; image keys are refreshed to the latest run's values
        (the bases the retained translations are valid for must stay
        consistent, so keys are only replaced when no retained trace
        depends on the old mapping — callers guarantee this by dropping
        invalid traces before accumulating).
        """
        known = self.trace_identities()
        added = 0
        for trace in new_traces:
            if trace.identity in known:
                continue
            self.traces.append(trace)
            known.add(trace.identity)
            added += 1
        for path, key in new_keys.items():
            self.image_keys[path] = key
        self.generation += 1
        return added

    def drop_traces(self, identities: set) -> int:
        """Remove traces by identity; returns how many were dropped."""
        before = len(self.traces)
        self.traces = [t for t in self.traces if t.identity not in identities]
        return before - len(self.traces)

    # -- serialization -----------------------------------------------------

    def to_bytes(self) -> bytes:
        code_pool = bytearray()
        data_pool = bytearray()
        directory = []
        for trace in self.traces:
            code_offset = len(code_pool)
            data_offset = len(data_pool)
            code_pool.extend(trace.code)
            data_pool.extend(trace.build_data_blob())
            directory.append(trace.to_json(code_offset, data_offset))
        header = {
            "format_version": FORMAT_VERSION,
            "vm_version": self.vm_version,
            "tool_identity": self.tool_identity,
            "app_path": self.app_path,
            "generation": self.generation,
            "image_keys": {
                path: key.to_json() for path, key in self.image_keys.items()
            },
            "traces": directory,
            "code_pool_size": len(code_pool),
            "data_pool_size": len(data_pool),
        }
        header_blob = json.dumps(header, sort_keys=True).encode()
        body = b"".join(
            [
                MAGIC,
                struct.pack("<I", len(header_blob)),
                header_blob,
                bytes(code_pool),
                bytes(data_pool),
            ]
        )
        return body + struct.pack("<I", zlib.crc32(body) & 0xFFFFFFFF)

    @classmethod
    def from_bytes(cls, blob: bytes) -> "PersistentCache":
        if len(blob) < len(MAGIC) + 8 or blob[: len(MAGIC)] != MAGIC:
            raise CacheFileError("bad magic")
        body, (crc,) = blob[:-4], struct.unpack("<I", blob[-4:])
        if zlib.crc32(body) & 0xFFFFFFFF != crc:
            raise CacheFileError("checksum mismatch")
        (header_len,) = struct.unpack_from("<I", blob, len(MAGIC))
        header_start = len(MAGIC) + 4
        try:
            header = json.loads(blob[header_start : header_start + header_len])
        except ValueError as exc:
            raise CacheFileError("bad header JSON") from exc
        if header.get("format_version") != FORMAT_VERSION:
            raise CacheFileError(
                "unsupported format version %r" % header.get("format_version")
            )
        cache = cls(
            vm_version=header["vm_version"],
            tool_identity=header["tool_identity"],
            app_path=header["app_path"],
            generation=header.get("generation", 0),
        )
        cache.image_keys = {
            path: MappingKey.from_json(data)
            for path, data in header["image_keys"].items()
        }
        code_start = header_start + header_len
        data_start = code_start + header["code_pool_size"]
        for record in header["traces"]:
            if (
                record["code_offset"] < 0
                or record["code_size"] < 0
                or record["data_size"] < 0
                or record["n_insts"] < 1
                or record["code_offset"] + record["code_size"]
                > header["code_pool_size"]
            ):
                raise CacheFileError("trace directory record out of bounds")
            code_offset = code_start + record["code_offset"]
            code = blob[code_offset : code_offset + record["code_size"]]
            if len(code) != record["code_size"]:
                raise CacheFileError("truncated code pool")
            cache.traces.append(
                PersistedTrace(
                    entry=record["entry"],
                    image_path=record["image_path"],
                    image_offset=record["image_offset"],
                    n_insts=record["n_insts"],
                    code=code,
                    exits=[PersistedExit.from_json(e) for e in record["exits"]],
                    relocs=[PersistedReloc.from_json(r) for r in record["relocs"]],
                    data_size=record["data_size"],
                    liveness=list(record["liveness"]),
                )
            )
        # Sanity: the data pool must be exactly the directory's total.
        expected_data = sum(t.data_size for t in cache.traces)
        actual_data = len(blob) - 4 - data_start
        if actual_data != header["data_pool_size"] or expected_data != actual_data:
            raise CacheFileError("data pool size mismatch")
        return cache

    def save(self, path: str) -> None:
        with open(path, "wb") as handle:
            handle.write(self.to_bytes())

    @classmethod
    def load(cls, path: str) -> "PersistentCache":
        with open(path, "rb") as handle:
            return cls.from_bytes(handle.read())

    @property
    def file_size(self) -> int:
        return len(self.to_bytes())
