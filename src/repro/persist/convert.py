"""Conversion between in-memory translated traces and persisted records.

Persisting walks the live trace and records, besides its code bytes and
metadata sizes, where every *absolute address* inside it points in terms of
(image path, image-relative offset):

* the trace entry itself,
* static exit targets (branch-taken, fall-through, direct jumps/calls,
  syscall resume points),
* absolute immediates inside the body (``jmp``/``call`` literals — the
  ``PUSH literal / JMP literal`` problem of paper §3.2.3).

Reviving does the reverse.  In the default (non-relocatable) mode the
persisted absolute addresses are used as-is and the manager only revives
traces whose images validate at *identical* bases.  In the
position-independent mode (the paper's proposed extension) the revive step
re-materializes every absolute address from the (path, offset) pairs
against the current run's bases, so translations survive relocation.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.isa.encoding import decode_all
from repro.isa.instructions import INSTRUCTION_SIZE, Instruction
from repro.isa.opcodes import ABSOLUTE_TARGET
from repro.loader.linker import LoadedProcess
from repro.persist.cachefile import (
    PersistedExit,
    PersistedReloc,
    PersistedTrace,
)
from repro.vm.client import PointKind, Tool
from repro.vm.trace import ExitKind, Trace, TraceExit
from repro.vm.translator import (
    LinkSlot,
    TranslatedTrace,
    index_links,
)


class ConversionError(Exception):
    """Raised when a trace cannot be persisted or revived."""


def _locate(process: LoadedProcess, addr: int):
    """(path, offset) of an absolute address, or (None, 0) if unbacked."""
    mapping = process.image_at(addr)
    if mapping is None:
        return None, 0
    return mapping.image.path, addr - mapping.base


def persist_trace(
    translated: TranslatedTrace, process: LoadedProcess
) -> Optional[PersistedTrace]:
    """Convert a live trace for storage; None if it is not persistable.

    Traces not backed by an image on disk (dynamically generated code)
    cannot be keyed and are never persisted (paper §3.2.1).
    """
    trace = translated.trace
    if not trace.image_path:
        return None
    exits: List[PersistedExit] = []
    for trace_exit in trace.exits:
        target_path, target_offset = "", 0
        if trace_exit.target is not None:
            target_path, target_offset = _locate(process, trace_exit.target)
            if target_path is None:
                # Exit into unbacked memory: the trace itself is fine but
                # this exit cannot be made position independent.
                target_path, target_offset = "", 0
        exits.append(
            PersistedExit(
                kind=int(trace_exit.kind),
                index=trace_exit.index,
                target=trace_exit.target,
                target_path=target_path,
                target_offset=target_offset,
            )
        )
    relocs: List[PersistedReloc] = []
    for index, inst in enumerate(trace.instructions):
        if inst.opcode in ABSOLUTE_TARGET:
            target_path, target_offset = _locate(process, inst.imm)
            if target_path is None:
                return None  # absolute literal into unbacked memory
            relocs.append(
                PersistedReloc(
                    index=index,
                    target_path=target_path,
                    target_offset=target_offset,
                )
            )
    return PersistedTrace(
        entry=trace.entry,
        image_path=trace.image_path,
        image_offset=trace.entry - trace.image_base,
        n_insts=len(trace.instructions),
        code=translated.code_bytes,
        exits=exits,
        relocs=relocs,
        data_size=translated.data_size,
        liveness=list(translated.liveness),
    )


def revive_trace(
    persisted: PersistedTrace,
    tool: Optional[Tool],
    base_of: Callable[[str], Optional[int]],
    rebase: bool = False,
) -> Optional[TranslatedTrace]:
    """Reconstruct a code-cache resident from a persisted record.

    Args:
        persisted: The stored trace.
        tool: Current instrumentation client; its points are re-bound (the
            tool key guarantees identical semantics).
        base_of: Current load base of an image path, or None if unloaded.
        rebase: Apply position-independent re-materialization.  When False
            the persisted absolute addresses are trusted verbatim (callers
            must have validated identical bases).

    Returns:
        The revived trace, or None when required images are not loaded at
        usable addresses (the caller counts an invalidation).
    """
    image_base = base_of(persisted.image_path)
    if image_base is None:
        return None

    body = persisted.code[: persisted.n_insts * INSTRUCTION_SIZE]
    instructions = decode_all(body)

    if rebase:
        entry = image_base + persisted.image_offset
        for reloc in persisted.relocs:
            target_base = base_of(reloc.target_path)
            if target_base is None:
                return None
            inst = instructions[reloc.index]
            instructions[reloc.index] = Instruction(
                inst.opcode,
                rd=inst.rd, rs1=inst.rs1, rs2=inst.rs2,
                imm=target_base + reloc.target_offset,
            )
    else:
        entry = persisted.entry
        if image_base + persisted.image_offset != entry:
            return None  # base moved; verbatim reuse would misexecute
        # Absolute literals baked into the body must still point where
        # they pointed at creation time: a trace that calls into a since-
        # relocated library embeds a stale literal (the paper's PUSH/JMP
        # example) and must be invalidated, even though its own image
        # validated.
        for reloc in persisted.relocs:
            target_base = base_of(reloc.target_path)
            if target_base is None:
                return None
            if target_base + reloc.target_offset != instructions[reloc.index].imm:
                return None

    exits: List[TraceExit] = []
    for stored in persisted.exits:
        target = stored.target
        if rebase and target is not None:
            if stored.target_path:
                target_base = base_of(stored.target_path)
                if target_base is None:
                    return None
                target = target_base + stored.target_offset
            else:
                return None  # static exit into unbacked memory
        exits.append(
            TraceExit(kind=ExitKind(stored.kind), index=stored.index, target=target)
        )

    trace = Trace(
        entry=entry,
        instructions=instructions,
        exits=exits,
        image_path=persisted.image_path,
        image_base=image_base,
    )
    points = list(tool.instrument_trace(trace)) if tool else []
    points_by_index: Dict[int, list] = {}
    for point in points:
        index = 0 if point.kind == PointKind.TRACE_ENTRY else point.index
        points_by_index.setdefault(index, []).append(point)

    # A revived trace never carries a compiled-tier closure: closures
    # capture run-scoped objects (machine, stats, analysis context) and
    # are host-level artifacts, so they are not persisted.  The compiled
    # dispatcher specializes the trace lazily at its first execution —
    # the same event its demand-load is charged to — so persistence and
    # trace compilation compose with no extra simulated cost.
    translated = TranslatedTrace(
        trace=trace,
        code_bytes=persisted.code,
        code_size=len(persisted.code),
        data_size=persisted.data_size,
        points=points,
        points_by_index=points_by_index,
        liveness=list(persisted.liveness),
        links=[LinkSlot(exit=e) for e in exits],
        from_persistent=True,
        compiled_body=None,
    )
    index_links(translated)
    return translated
