"""The ``PCRL1`` session-log format and run-result snapshots.

One replay log captures everything nondeterministic about one engine
run, plus a canonical snapshot of the run's observable result so a later
replay can be diffed against it without rerunning the original build:

* ``meta`` — the session's fixed nondeterminism seeds and identity:
  initial ``OSState`` pid and rng state, the layout-perturbation seed,
  the workload/input/tool/dispatch-mode identity, and the recording
  VM's version stamp (informational: replay works across versions —
  that is the point of differential replay).
* ``events`` — the ordered nondeterminism trace, one compact JSON
  record per decision point (see :mod:`repro.replay.session` for the
  hooks that produce and consume them):

  ====  ======================  =====================================
  tag   shape                   meaning
  ====  ======================  =====================================
  "v"   ``["v", number, value]``  value-carrying nondeterministic
                                  syscall (the :data:`repro.machine.
                                  syscalls.NONDET_SYSCALLS` subset)
  "s"   ``["s", number]``         any other completed syscall
                                  (structural: order checking only)
  "t"   ``["t", kind, tid]``      scheduler decision after a yield or
                                  thread exit; ``tid`` -1 = no
                                  runnable thread remained
  "n"   ``["n", tid]``            thread id assigned by a spawn
  ====  ======================  =====================================

* ``baseline`` — the canonical :func:`result_snapshot` of the recorded
  run's ``VMRunResult`` (output, exit status, every ``VMStats`` field,
  tool accounting, cache occupancy).  Host-side accounting that is
  allowed to differ between builds and tiers (``persistence_report``,
  ``ic_stats``, ``link_stats``, ``queue_stats``) is deliberately
  excluded.

File framing follows the PCC2/PCS1 discipline exactly (same preamble
shape, per-section CRCs, whole-file trailer CRC, atomic write-replace
through the storage seam)::

    offset  size  field
    0       4     magic "PCRL"
    4       2     u16 format_version (1)
    6       2     u16 reserved (0)
    8       4     u32 header_len
    12      4     u32 CRC-32 of the header JSON
    16      n     header JSON (meta + section table)
    16+n    e     events JSON
    ...     b     baseline JSON
    end-4   4     u32 CRC-32 of bytes [0, end-4)
"""

from __future__ import annotations

import base64
import json
import struct
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional

MAGIC = b"PCRL"
FORMAT_VERSION = 1

#: Same preamble shape as PCC v2 / PCS1.
PREAMBLE = struct.Struct("<4sHHII")

#: Section names used in error attribution and fsck reports.
SECTIONS = ("header", "events", "baseline")

#: Filename suffix of replay logs inside a database's ``replay/`` dir.
REPLAY_LOG_SUFFIX = ".pcrl"


class ReplayLogError(Exception):
    """Raised when a replay-log file is malformed.

    ``section`` names where the damage was detected: one of
    :data:`SECTIONS`, ``"preamble"`` or ``"trailer"``.
    """

    def __init__(self, message: str, section: str = ""):
        super().__init__(message)
        self.section = section


def _crc(blob: bytes) -> int:
    return zlib.crc32(blob) & 0xFFFFFFFF


def _canonical(value):
    """The exact representation a loaded log carries.

    Equivalent to ``json.loads(json.dumps(value))`` but walks plain
    JSON-ready data (the entire snapshot in practice) without the
    serialize/parse round trip — this runs inside every recorded
    session, so it is on the recording-overhead budget.  Anything the
    fast path does not recognize (non-string dict keys, exotic types)
    falls back to the real round trip for bit-exact behaviour.
    """
    kind = type(value)
    if kind is int or kind is str or kind is float or kind is bool \
            or value is None:
        return value
    if kind is list or kind is tuple:
        return [_canonical(item) for item in value]
    if kind is dict and all(type(key) is str for key in value):
        return {key: _canonical(item) for key, item in value.items()}
    return json.loads(json.dumps(value, sort_keys=True))


# -- result snapshots ---------------------------------------------------------


def stats_snapshot(stats) -> Dict[str, object]:
    """JSON-ready snapshot of every :class:`~repro.vm.stats.VMStats`
    field, canonicalized so recorded and replayed sides compare with
    ``==`` (tuples become lists, sets become sorted lists)."""
    snap: Dict[str, object] = {}
    for key, value in vars(stats).items():
        if key == "trace_identities":
            value = sorted([list(identity) for identity in value])
        elif key == "translation_events":
            value = [list(event) for event in value]
        snap[key] = value
    return snap


def accounting_snapshot(accounting) -> Dict[str, object]:
    """JSON-ready snapshot of a :class:`~repro.vm.client.ToolAccounting`."""
    return {key: value for key, value in vars(accounting).items()}


def result_snapshot(result) -> Dict[str, object]:
    """The bit-identity contract of one ``VMRunResult``, as canonical JSON.

    Includes everything the replay acceptance criterion covers: output,
    exit status, instruction count, the full ``VMStats``, the tool
    accounting and the code-cache occupancy.  Excludes the host-side-only
    fields that legitimately vary across builds/tiers/compile modes:
    ``persistence_report``, ``ic_stats``, ``link_stats`` and
    ``queue_stats``.
    """
    return _canonical(
        {
            "exit_status": result.exit_status,
            "instructions": result.instructions,
            "output_b64": base64.b64encode(result.output).decode("ascii"),
            "stats": stats_snapshot(result.stats),
            "tool_accounting": accounting_snapshot(result.tool_accounting),
            "cache_traces": result.cache_traces,
            "cache_code_bytes": result.cache_code_bytes,
            "cache_data_bytes": result.cache_data_bytes,
        }
    )


def snapshot_diff(baseline, current, prefix: str = "") -> List[str]:
    """Human-readable field-level differences between two snapshots.

    Returns ``[]`` when bit-identical; otherwise one ``"path: recorded
    X, replayed Y"`` line per leaf that differs.
    """
    diffs: List[str] = []
    if isinstance(baseline, dict) and isinstance(current, dict):
        for key in sorted(set(baseline) | set(current)):
            path = "%s.%s" % (prefix, key) if prefix else str(key)
            if key not in baseline:
                diffs.append("%s: absent in recording" % path)
            elif key not in current:
                diffs.append("%s: absent in replay" % path)
            else:
                diffs.extend(snapshot_diff(baseline[key], current[key], path))
        return diffs
    if baseline != current:
        diffs.append(
            "%s: recorded %r, replayed %r" % (prefix or "value", baseline, current)
        )
    return diffs


# -- the log ------------------------------------------------------------------


@dataclass
class ReplayLog:
    """In-memory view of one recorded session."""

    meta: Dict[str, object] = field(default_factory=dict)
    events: List[list] = field(default_factory=list)
    baseline: Optional[Dict[str, object]] = None

    def to_bytes(self) -> bytes:
        events_blob = json.dumps(self.events, sort_keys=True).encode()
        baseline_blob = json.dumps(
            self.baseline if self.baseline is not None else None,
            sort_keys=True,
        ).encode()
        header = {
            "format_version": FORMAT_VERSION,
            "meta": _canonical(self.meta),
            "sections": {
                "events": [len(events_blob), _crc(events_blob)],
                "baseline": [len(baseline_blob), _crc(baseline_blob)],
            },
        }
        header_blob = json.dumps(header, sort_keys=True).encode()
        body = b"".join(
            [
                PREAMBLE.pack(
                    MAGIC, FORMAT_VERSION, 0, len(header_blob),
                    _crc(header_blob),
                ),
                header_blob,
                events_blob,
                baseline_blob,
            ]
        )
        return body + struct.pack("<I", _crc(body))

    @classmethod
    def from_bytes(cls, blob: bytes) -> "ReplayLog":
        header, events_blob, baseline_blob = _parse_frame(blob)
        try:
            events = json.loads(events_blob)
            if not isinstance(events, list) or not all(
                isinstance(event, list) and event for event in events
            ):
                raise ReplayLogError(
                    "events section is not a list of records",
                    section="events",
                )
        except ValueError as exc:
            raise ReplayLogError(
                "malformed events JSON: %s" % exc, section="events"
            ) from exc
        try:
            baseline = json.loads(baseline_blob)
        except ValueError as exc:
            raise ReplayLogError(
                "malformed baseline JSON: %s" % exc, section="baseline"
            ) from exc
        meta = header.get("meta")
        if not isinstance(meta, dict):
            raise ReplayLogError("header meta is not a dict", section="header")
        return cls(meta=meta, events=events, baseline=baseline)


def _parse_frame(blob: bytes):
    """Validate framing and CRCs; return (header, events, baseline) blobs."""
    if len(blob) < PREAMBLE.size + 4:
        raise ReplayLogError("file shorter than preamble", section="preamble")
    trailer = struct.unpack("<I", blob[-4:])[0]
    if _crc(blob[:-4]) != trailer:
        raise ReplayLogError("trailer CRC mismatch", section="trailer")
    magic, version, _reserved, header_len, header_crc = PREAMBLE.unpack(
        blob[: PREAMBLE.size]
    )
    if magic != MAGIC:
        raise ReplayLogError("bad magic %r" % magic, section="preamble")
    if version != FORMAT_VERSION:
        raise ReplayLogError(
            "unsupported format version %d" % version, section="preamble"
        )
    header_end = PREAMBLE.size + header_len
    if header_end + 4 > len(blob):
        raise ReplayLogError("truncated header", section="header")
    header_blob = blob[PREAMBLE.size : header_end]
    if _crc(header_blob) != header_crc:
        raise ReplayLogError("header CRC mismatch", section="header")
    try:
        header = json.loads(header_blob)
        sections = header["sections"]
        events_len, events_crc = sections["events"]
        baseline_len, baseline_crc = sections["baseline"]
    except (ValueError, KeyError, TypeError) as exc:
        raise ReplayLogError(
            "malformed header: %s" % exc, section="header"
        ) from exc
    events_end = header_end + events_len
    baseline_end = events_end + baseline_len
    if baseline_end + 4 != len(blob):
        raise ReplayLogError(
            "section table does not cover the file", section="header"
        )
    events_blob = blob[header_end:events_end]
    if _crc(events_blob) != events_crc:
        raise ReplayLogError("events CRC mismatch", section="events")
    baseline_blob = blob[events_end:baseline_end]
    if _crc(baseline_blob) != baseline_crc:
        raise ReplayLogError("baseline CRC mismatch", section="baseline")
    return header, events_blob, baseline_blob


def verify_replay_log(blob: bytes) -> Dict[str, str]:
    """Section-attributed damage map for fsck: empty when healthy."""
    try:
        ReplayLog.from_bytes(blob)
    except ReplayLogError as exc:
        return {exc.section or "unknown": str(exc)}
    return {}
