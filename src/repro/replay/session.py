"""Recording and replaying hooks for the machine's nondeterminism seam.

Both hooks implement the three-method protocol consulted by the machine
layer (:attr:`repro.machine.syscalls.OSState.nondet_hook`):

``on_syscall(number, name, result) -> result``
    Called after every *completed* syscall.  Recording logs the result
    (value-carrying for the :data:`~repro.machine.syscalls.
    NONDET_SYSCALLS` subset, structural otherwise); replay checks the
    number against the log and substitutes the logged value.

``on_schedule(kind, candidate_tids, default_tid) -> tid``
    Called at every cooperative scheduling decision (``kind`` is
    ``"yield"`` or ``"exit"``).  Recording logs the round-robin choice;
    replay forces the logged thread (which must be runnable).

``on_spawn(tid)``
    Called when ``SYS_THREAD_CREATE`` materializes a new thread.
    Recording logs the assigned tid; replay verifies it.

Replay is **strict**: any structural divergence — a syscall out of
order, a scheduling decision where the log has none, a logged thread
that is not runnable, a log that runs dry or ends with events left
over — raises :class:`ReplayDivergence` with a cycle-stamped location.
``ReplayDivergence`` is a plain ``Exception`` (never ``OSError``) so it
can never be mistaken for a storage failure and silently degraded by
the persistence backstop: a diverging replay always fails loudly.
"""

from __future__ import annotations

from typing import List, Optional

from repro.machine.syscalls import NONDET_SYSCALLS, SYSCALL_NAMES


class ReplayDivergence(Exception):
    """Strict replay found the live run deviating from the recording."""

    def __init__(self, message: str, cycle=None, index: Optional[int] = None):
        location = []
        if index is not None:
            location.append("event %d" % index)
        if cycle is not None:
            location.append("cycle %.0f" % cycle)
        if location:
            message = "%s (at %s)" % (message, ", ".join(location))
        super().__init__(message)
        self.cycle = cycle
        self.index = index


class RecordingHook:
    """Appends one event per nondeterminism point; never alters the run."""

    __slots__ = ("events",)

    def __init__(self):
        self.events: List[list] = []

    def on_syscall(self, number: int, name: str, result):
        if number in NONDET_SYSCALLS:
            self.events.append(["v", number, result.value])
        else:
            self.events.append(["s", number])
        return result

    def on_schedule(self, kind, candidate_tids, default_tid):
        self.events.append(
            ["t", kind, -1 if default_tid is None else default_tid]
        )
        return default_tid

    def on_spawn(self, tid: int) -> None:
        self.events.append(["n", tid])


class ReplayHook:
    """Walks a recorded event stream, substituting logged nondeterminism.

    ``os_state`` (when given) supplies the cycle stamp for divergence
    locations — its ``clock`` is wired to the engine's running total
    before the first instruction executes.
    """

    __slots__ = ("events", "cursor", "_os_state")

    def __init__(self, events: List[list], os_state=None):
        self.events = events
        self.cursor = 0
        self._os_state = os_state

    # -- location stamping --------------------------------------------------

    def _cycles(self):
        if self._os_state is None:
            return None
        try:
            return self._os_state.clock()
        except Exception:
            return None

    def _diverge(self, message: str) -> "ReplayDivergence":
        return ReplayDivergence(message, cycle=self._cycles(), index=self.cursor)

    def _next(self, performing: str) -> list:
        if self.cursor >= len(self.events):
            raise self._diverge(
                "log exhausted: live run performed %s past the recorded end"
                % performing
            )
        return self.events[self.cursor]

    # -- the hook protocol --------------------------------------------------

    def on_syscall(self, number: int, name: str, result):
        event = self._next("syscall %s(%d)" % (name, number))
        tag = event[0]
        if tag not in ("v", "s"):
            raise self._diverge(
                "recorded a %r event but the live run performed syscall %s"
                % (tag, name)
            )
        logged_number = event[1]
        if logged_number != number:
            raise self._diverge(
                "syscall order diverged: recorded %s(%d), live run performed"
                " %s(%d)"
                % (
                    SYSCALL_NAMES.get(logged_number, "?"),
                    logged_number,
                    name,
                    number,
                )
            )
        self.cursor += 1
        if tag == "v":
            result.value = event[2]
        return result

    def on_schedule(self, kind, candidate_tids, default_tid):
        event = self._next("a %s scheduling decision" % kind)
        if event[0] != "t":
            raise self._diverge(
                "recorded a %r event but the live run reached a scheduling"
                " decision" % (event[0],)
            )
        if event[1] != kind:
            raise self._diverge(
                "scheduler mismatch: recorded a %s decision, live run"
                " scheduling after a %s" % (event[1], kind)
            )
        self.cursor += 1
        logged_tid = event[2]
        if logged_tid == -1:
            if candidate_tids:
                raise self._diverge(
                    "recorded run had no runnable threads here; live run has"
                    " %r" % (candidate_tids,)
                )
            return None
        if logged_tid not in candidate_tids:
            raise self._diverge(
                "recorded thread %d is not runnable in the live run"
                " (candidates %r)" % (logged_tid, candidate_tids)
            )
        return logged_tid

    def on_spawn(self, tid: int) -> None:
        event = self._next("a thread spawn")
        if event[0] != "n":
            raise self._diverge(
                "recorded a %r event but the live run spawned a thread"
                % (event[0],)
            )
        if event[1] != tid:
            raise self._diverge(
                "spawn mismatch: recorded tid %d, live run created tid %d"
                % (event[1], tid)
            )
        self.cursor += 1

    # -- end-of-run verification -------------------------------------------

    def verify_exhausted(self) -> None:
        """Strictness at the far end: trailing events mean the live run
        ended early relative to the recording."""
        remaining = len(self.events) - self.cursor
        if remaining:
            raise self._diverge(
                "replay ended with %d recorded event(s) unconsumed"
                % remaining
            )
