"""Record-and-replay tier for the DBI engine.

The VM's nondeterminism surface is small and fully enumerable — the
results of ``SYS_GETPID``/``SYS_CLOCK``/``SYS_RAND``/``SYS_GETTID``,
the cooperative spawn/yield scheduling decisions, the layout
perturbation seed, and the initial :class:`~repro.machine.syscalls.
OSState` seeds.  Recording logs exactly that into a compact per-session
``PCRL1`` file (:mod:`repro.replay.log`); replay substitutes the logged
values at each nondeterminism point (:mod:`repro.replay.session`) and
reproduces the original run bit-identically under either dispatch
tier.  :mod:`repro.replay.harness` turns a directory of recorded
sessions into a differential regression suite (rr-style: every captured
session is a free test of the current build).

This package init stays dependency-light: the harness (which pulls in
the workload suites) is imported lazily by its users, never here.
"""

from repro.replay.log import (  # noqa: F401
    REPLAY_LOG_SUFFIX,
    ReplayLog,
    ReplayLogError,
    result_snapshot,
    snapshot_diff,
    verify_replay_log,
)
from repro.replay.session import (  # noqa: F401
    RecordingHook,
    ReplayDivergence,
    ReplayHook,
)
