"""Record/replay orchestration: one-call recording, strict replay, and
the differential-replay regression harness.

The rr line of work (PAPERS.md) turns every captured execution into a
free differential test: replay substitutes the recorded nondeterminism,
so any output/stats difference against the recorded baseline is a real
behavior change in the current build, not environmental noise.  The
pieces here:

* :func:`record_session` — run one workload input under the engine with
  a recording session attached; returns the result, the finished
  :class:`~repro.replay.log.ReplayLog` and (when a database was given)
  the stored log's name.
* :func:`replay_session` — re-run a recorded session against the
  current build under any dispatch mode, strict-checking structure and
  diffing the result against the recorded baseline.
* :class:`DifferentialReplayHarness` — replay every log stored in a
  database (``repro replay --diff``), under one or both dispatch
  modes, and report per-log verdicts: the regression-farm workflow.

Sessions are identified for later replay by their log ``meta`` —
``suite``/``workload``/``input``/``tool_name``/``layout_seed`` — which
:func:`resolve_standard` maps back onto the standard workload suites.
A custom resolver can be injected for synthetic corpora.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.loader.layout import FixedLayout, PerturbedLayout
from repro.machine.costs import CostModel, DEFAULT_COST_MODEL
from repro.persist.manager import PersistenceConfig, PersistentCacheSession
from repro.replay.log import ReplayLog, result_snapshot, snapshot_diff
from repro.replay.session import ReplayDivergence
from repro.vm.engine import Engine, VMConfig

#: Both dispatch tiers — the default differential-replay matrix.
REPLAY_MODES = ("interpreted", "compiled")


def _layout(seed):
    return FixedLayout() if seed is None else PerturbedLayout(int(seed))


def _tool_factory(name: Optional[str]) -> Callable[[], object]:
    """Map a friendly tool name (as stored in log meta) to a factory.

    Every replay needs a *fresh* tool instance — tools accumulate
    analysis state across a run.
    """
    if not name or name == "none":
        return lambda: None
    from repro.tools import (
        BBCountTool,
        CoverageTool,
        InsCountTool,
        MemTraceTool,
    )
    from repro.vm.client import NullTool

    table = {
        "null": NullTool,
        "bbcount": BBCountTool,
        "inscount": InsCountTool,
        "memtrace": MemTraceTool,
        "coverage": CoverageTool,
    }
    try:
        return table[name]
    except KeyError:
        raise KeyError(
            "unknown tool %r in replay log meta (have: %s)"
            % (name, ", ".join(sorted(table)))
        )


def _load_suite(suite: str) -> Dict[str, object]:
    if suite == "spec":
        from repro.workloads.spec2k import build_suite

        return build_suite()
    if suite == "gui":
        from repro.workloads.gui import build_gui_suite

        return build_gui_suite()[0]
    if suite == "oracle":
        from repro.workloads.oracle import build_oracle

        return {"oracle": build_oracle()}
    if suite == "shell":
        from repro.workloads.shell import build_shell_suite

        return build_shell_suite()[0]
    if suite == "nondet":
        from repro.workloads.nondet import build_nondet_suite

        return build_nondet_suite()
    raise KeyError(
        "unknown suite %r in replay log meta"
        " (choose: spec, gui, oracle, shell, nondet)" % (suite,)
    )


def resolve_standard(meta: Dict[str, object]):
    """Default session resolver over the standard workload suites.

    Returns ``(workload, input_name, tool_factory)`` for a log whose
    meta carries ``suite``/``workload``/``input``/``tool_name``.
    """
    suite = meta.get("suite")
    if not suite:
        raise KeyError("replay log meta has no 'suite' (custom resolver needed)")
    workloads = _load_suite(str(suite))
    name = str(meta.get("workload", ""))
    if name not in workloads:
        raise KeyError(
            "no workload %r in suite %r (have: %s)"
            % (name, suite, ", ".join(sorted(workloads)))
        )
    return workloads[name], str(meta.get("input", "")), _tool_factory(
        meta.get("tool_name")
    )


def _run(workload, input_name, config, tool, layout, cost_model, vm_config):
    process = workload.load(layout)
    session = PersistentCacheSession(config)
    engine = Engine(
        tool=tool, cost_model=cost_model, config=vm_config,
        persistence=session,
    )
    result = engine.run(process, args=workload.input(input_name).to_args())
    return result, session


@dataclass
class RecordOutcome:
    """One recorded session: its live result and the captured log."""

    result: object
    log: ReplayLog
    #: Stored filename inside the database's replay/ dir ("" when the
    #: recording had no database, or the log write failed — see
    #: ``result.persistence_report["record_state"]``).
    log_name: str = ""


def record_session(
    workload,
    input_name: str,
    database=None,
    tool=None,
    tool_name: str = "none",
    suite: Optional[str] = None,
    layout_seed: Optional[int] = None,
    dispatch_mode: str = "compiled",
    cost_model: CostModel = DEFAULT_COST_MODEL,
    name: Optional[str] = None,
    extra_meta: Optional[Dict[str, object]] = None,
) -> RecordOutcome:
    """Run one workload input with recording on; capture its session log."""
    meta: Dict[str, object] = {
        "name": name or "%s-%s" % (workload.name, input_name),
        "suite": suite,
        "workload": workload.name,
        "input": input_name,
        "tool_name": tool_name,
        "layout_seed": layout_seed,
    }
    if extra_meta:
        meta.update(extra_meta)
    config = PersistenceConfig(
        database=database, record=True, record_meta=meta
    )
    result, session = _run(
        workload,
        input_name,
        config,
        tool,
        _layout(layout_seed),
        cost_model,
        VMConfig(dispatch_mode=dispatch_mode),
    )
    return RecordOutcome(
        result=result,
        log=session.recorded_log,
        log_name=str(result.persistence_report.get("record_log", "")),
    )


@dataclass
class ReplaySessionOutcome:
    """One strict replay of one log under one dispatch mode."""

    result: object
    #: Field-level differences against the recorded baseline ([] when
    #: the replay reproduced the recording bit-identically).
    diff: List[str] = field(default_factory=list)

    @property
    def bit_identical(self) -> bool:
        return not self.diff


def replay_session(
    log: ReplayLog,
    workload,
    input_name: str,
    tool=None,
    dispatch_mode: Optional[str] = None,
    cost_model: CostModel = DEFAULT_COST_MODEL,
) -> ReplaySessionOutcome:
    """Strictly replay ``log`` against the current build.

    ``dispatch_mode`` defaults to the recorded one but may be any mode:
    the tiers are bit-identical, so a recording under one must replay
    bit-identically under the other.  Structural divergence raises
    :class:`~repro.replay.session.ReplayDivergence`; value drift shows
    up in the returned ``diff``.
    """
    if dispatch_mode is None:
        dispatch_mode = str(log.meta.get("dispatch_mode", "compiled"))
    config = PersistenceConfig(replay_log=log)
    result, _session = _run(
        workload,
        input_name,
        config,
        tool,
        _layout(log.meta.get("layout_seed")),
        cost_model,
        VMConfig(dispatch_mode=dispatch_mode),
    )
    diff: List[str] = []
    if log.baseline is not None:
        diff = snapshot_diff(log.baseline, result_snapshot(result))
    return ReplaySessionOutcome(result=result, diff=diff)


@dataclass
class DifferentialOutcome:
    """Verdict for one (log, dispatch mode) replay."""

    log_name: str
    mode: str
    #: "match" | "diff" | "divergence" | "error"
    status: str
    diff: List[str] = field(default_factory=list)
    detail: str = ""


@dataclass
class DifferentialReport:
    """All verdicts of one ``repro replay --diff`` sweep."""

    outcomes: List[DifferentialOutcome] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return bool(self.outcomes) and all(
            outcome.status == "match" for outcome in self.outcomes
        )

    def counts(self) -> Dict[str, int]:
        tally: Dict[str, int] = {}
        for outcome in self.outcomes:
            tally[outcome.status] = tally.get(outcome.status, 0) + 1
        return tally


class DifferentialReplayHarness:
    """Replays every log in a database against the current build.

    ``resolve(meta) -> (workload, input_name, tool_factory)`` rebuilds
    the session's workload from its log meta;
    :func:`resolve_standard` covers the standard suites.
    """

    def __init__(self, database, resolve=None,
                 cost_model: CostModel = DEFAULT_COST_MODEL):
        self.database = database
        self.resolve = resolve or resolve_standard
        self.cost_model = cost_model

    def replay_all(
        self, modes: Tuple[str, ...] = REPLAY_MODES
    ) -> DifferentialReport:
        report = DifferentialReport()
        for log_name in self.database.list_replay_logs():
            try:
                log = self.database.load_replay_log(log_name)
            except Exception as exc:
                # Damaged (now quarantined) or unreadable log: loud
                # per-log verdict, the sweep continues.
                report.outcomes.append(
                    DifferentialOutcome(log_name, "-", "error", detail=str(exc))
                )
                continue
            try:
                workload, input_name, tool_factory = self.resolve(log.meta)
            except Exception as exc:
                report.outcomes.append(
                    DifferentialOutcome(log_name, "-", "error", detail=str(exc))
                )
                continue
            for mode in modes:
                try:
                    outcome = replay_session(
                        log,
                        workload,
                        input_name,
                        tool=tool_factory(),
                        dispatch_mode=mode,
                        cost_model=self.cost_model,
                    )
                except ReplayDivergence as exc:
                    report.outcomes.append(
                        DifferentialOutcome(
                            log_name, mode, "divergence", detail=str(exc)
                        )
                    )
                    continue
                report.outcomes.append(
                    DifferentialOutcome(
                        log_name,
                        mode,
                        "match" if outcome.bit_identical else "diff",
                        diff=outcome.diff,
                    )
                )
        return report
