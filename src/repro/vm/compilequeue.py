"""Background compile queue: host ``compile()`` off the execution path.

Host compilation is ~93% of a cold trace-compile and — under the default
``compile_mode="sync"`` — sits squarely on the execution path: the first
entry into a cold trace blocks until its closure exists, so a cold
session's time-to-first-output is dominated by codegen the persistent
caches exist to amortize.  This module moves that work off-path:

* The engine hands a cold trace to :meth:`CompileQueue.poll` instead of
  compiling it inline.  If no finished body is ready, ``poll`` enqueues
  the trace (first sighting) and returns None — the engine executes the
  trace **interpreted** this time, which is safe because the interpreted
  oracle and the compiled tier are bit-identical per execution
  (docs/performance.md); a run may freely mix tiers per trace execution
  and ``VMStats`` stays a pure function of the program.
* Worker threads drain the queue running only the run-independent half
  of compilation, :meth:`TraceCompiler.prepare` — memo probe, sidecar
  revive, or source generation + host ``compile()`` — which is
  bit-identical by construction (the factory memo key bakes in
  everything the generated source depends on).
* At a later entry into the same trace, ``poll`` finds the finished
  factory, binds it to the run's captures **on the engine thread**
  (:meth:`TraceCompiler.bind` — closures reference the live machine) and
  swaps it in atomically by attaching ``translated.compiled_body``.

Swap-ins are guarded by ``CodeCache.generation``: the generation is
recorded at enqueue time, and if it advanced by swap-in time (SMC
eviction, module unload, ``cache_flush``) the finished body is discarded
and the trace re-enqueued — the factory memo makes the second resolution
nearly free.  This is conservative (a generation bump does not
necessarily invalidate *this* trace's factory, which is content-keyed)
but keeps the swap-in rule trivially alignable with the inline caches
and link slots, which use the same guard.

Backpressure never drops a trace: an enqueue attempt that finds the
queue full compiles synchronously instead (``queue_full_syncs``), so
every trace either swaps in, compiles inline, or keeps running
interpreted — three observably identical outcomes.

With ``workers=0`` no threads are started and queued tasks only run when
a test calls :meth:`CompileQueue.process_one` / :meth:`CompileQueue.drain`
— the deterministic harness for the enqueue → generation-bump → discard
race and the queue-full fallback.
"""

from __future__ import annotations

import queue as queue_module
import threading
from typing import Dict, List, Optional, Tuple

from repro.vm.compile import UNCOMPILABLE
from repro.vm.stats import QueueStats

#: Default bound on queued-but-unstarted compile tasks.  Generous: a
#: compile-heavy startup can enqueue a few hundred traces before the
#: first worker pass drains them, and every queue-full fallback puts a
#: host ``compile()`` back on the execution path.
DEFAULT_QUEUE_DEPTH = 128


class CompileQueue:
    """Bounded background compile queue for one engine run.

    Like the compiler it wraps, a queue never outlives its run: the
    engine creates it at ``run()`` entry (``compile_mode="background"``)
    and shuts it down in a ``finally`` so worker threads never leak
    across runs.
    """

    def __init__(self, compiler, cache, depth: int = DEFAULT_QUEUE_DEPTH,
                 workers: int = 1):
        self.compiler = compiler
        self.cache = cache
        self.stats = QueueStats()
        self._tasks: "queue_module.Queue" = queue_module.Queue(
            maxsize=max(1, depth)
        )
        #: id(translated) -> (enqueue_generation, prepared_or_None,
        #: translated).  The trace object rides along to keep it alive —
        #: results are keyed by object identity, and a strong reference
        #: guarantees the id is never recycled while a result is held.
        self._results: Dict[int, Tuple[int, object, object]] = {}
        #: id(translated) for tasks enqueued or being prepared; the task
        #: queue / worker holds the strong reference for these.
        self._inflight: set = set()
        self._lock = threading.Lock()
        self._threads: List[threading.Thread] = []
        for index in range(max(0, workers)):
            thread = threading.Thread(
                target=self._worker_loop,
                name="repro-compile-%d" % index,
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    # -- engine-thread API ----------------------------------------------------

    def poll(self, translated):
        """Advance ``translated`` through the background pipeline.

        Returns the compiled body after a swap-in (or a synchronous
        fallback compile), the :data:`UNCOMPILABLE` sentinel when the
        worker proved the trace uncompilable, or None — the body is
        still pending and the engine must execute the trace interpreted
        this time.
        """
        key = id(translated)
        stats = self.stats
        with self._lock:
            entry = self._results.pop(key, None)
            if entry is None and key in self._inflight:
                stats.interpreted_runs += 1
                return None
        if entry is not None:
            generation, prepared, _anchor = entry
            if prepared is None:
                # Uncompilable is a pure function of the trace content —
                # generation-independent, attach unconditionally.
                translated.compiled_body = UNCOMPILABLE
                return UNCOMPILABLE
            if generation == self.cache.generation:
                body = self.compiler.bind(translated, prepared)
                stats.swap_ins += 1
                return body
            # The cache churned (SMC evict, module unload, flush)
            # between enqueue and swap-in: discard the stale body and
            # fall through to re-enqueue under the current generation.
            stats.generation_discards += 1
        with self._lock:
            self._inflight.add(key)
            backlog = self._tasks.qsize() + 1
            if backlog > stats.backlog_high_water:
                stats.backlog_high_water = backlog
        try:
            self._tasks.put_nowait((key, translated, self.cache.generation))
        except queue_module.Full:
            with self._lock:
                self._inflight.discard(key)
            stats.queue_full_syncs += 1
            return self.compiler.compile(translated)
        stats.enqueued += 1
        stats.interpreted_runs += 1
        return None

    def shutdown(self, timeout: float = 5.0) -> None:
        """Stop the workers (idempotent).  Pending tasks are drained by
        the workers on their way to the sentinel; held results are
        dropped with the queue."""
        for _ in self._threads:
            self._tasks.put(None)
        for thread in self._threads:
            thread.join(timeout=timeout)
        self._threads = []

    # -- test/manual-drive API ------------------------------------------------

    def process_one(self) -> bool:
        """Run one queued task on the calling thread (``workers=0``
        deterministic mode).  Returns False when the queue is empty."""
        try:
            task = self._tasks.get_nowait()
        except queue_module.Empty:
            return False
        if task is not None:
            self._process(task)
        return True

    def drain(self) -> None:
        """Run every queued task on the calling thread."""
        while self.process_one():
            pass

    @property
    def backlog(self) -> int:
        """Queued-but-unstarted tasks (introspection/tests)."""
        return self._tasks.qsize()

    def pending(self, translated) -> bool:
        """True while ``translated`` is enqueued, being prepared, or has
        an unclaimed result (introspection/tests)."""
        key = id(translated)
        with self._lock:
            return key in self._inflight or key in self._results

    # -- worker side ----------------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            task = self._tasks.get()
            if task is None:
                return
            self._process(task)

    def _process(self, task) -> None:
        key, translated, generation = task
        try:
            prepared: Optional[object] = self.compiler.prepare(translated)
        except Exception:
            # A worker must never kill the run.  Treat any unexpected
            # failure as uncompilable: the trace simply stays on the
            # interpreted oracle, which is observably identical.
            prepared = None
        with self._lock:
            self._results[key] = (generation, prepared, translated)
            self._inflight.discard(key)
            if prepared is not None:
                self.stats.compiled_offpath += 1
