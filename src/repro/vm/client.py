"""Client (tool) API — the PinTool analog.

A :class:`Tool` observes translation and injects *instrumentation points*
into traces.  Each point names an instruction position, a Python analysis
callback, and a per-invocation work charge (analysis routines are not free;
the paper notes that "complex and time consuming analysis can diminish the
relative significance of VM overhead").

The tool's :meth:`Tool.identity` participates in the persistent-cache key:
translations instrumented by one tool (or one tool version) must never be
reused under another, because the injected analysis code differs.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field
from typing import Callable, List, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.machine.cpu import Machine
    from repro.vm.trace import Trace


class PointKind(enum.IntEnum):
    """Where an instrumentation point fires."""

    TRACE_ENTRY = 0  # once, when execution enters the trace
    BEFORE_INST = 1  # before the instruction at ``index`` executes


class AnalysisContext:
    """Run-time information handed to analysis callbacks.

    The dispatcher keeps **one** mutable context per run and updates its
    fields in place before every callback (``__slots__``-backed: analysis
    sites are the hottest allocation-free path in the engine).  Callbacks
    must therefore read what they need during the call and never retain
    the context object itself.
    """

    __slots__ = (
        "address", "trace_entry", "index", "machine", "effective_address"
    )

    def __init__(
        self,
        address: int,
        trace_entry: int,
        index: int,
        machine: "Machine",
        effective_address: Optional[int] = None,
    ):
        #: Original address of the instrumented instruction.
        self.address = address
        #: Original entry address of the containing trace.
        self.trace_entry = trace_entry
        #: Instruction index within the trace.
        self.index = index
        self.machine = machine
        #: Effective address, for memory ops whose point requested it.
        self.effective_address = effective_address

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            "AnalysisContext(address=0x%x, trace_entry=0x%x, index=%d, "
            "effective_address=%r)"
            % (self.address, self.trace_entry, self.index,
               self.effective_address)
        )


AnalysisCallback = Callable[[AnalysisContext], None]


@dataclass
class InstrumentationPoint:
    """One injected analysis site."""

    kind: PointKind
    index: int
    callback: AnalysisCallback
    work_cycles: float = 0.0
    #: Label for accounting/debugging ("bbcount", "memread", ...).
    label: str = ""
    #: True if the callback wants the effective address of a memory op.
    wants_effective_address: bool = False
    #: Multiplier on the per-point instrumentation compile cost; points
    #: that must materialize state (e.g. effective addresses) generate
    #: more bridging code.
    compile_weight: float = 1.0


class Tool:
    """Base class for instrumentation clients.

    Subclasses override :meth:`instrument_trace` to return the points to
    inject when the compilation unit translates a trace, and may override
    the lifecycle hooks.  A tool with no points (the default) reproduces
    the paper's "without instrumentation" configuration, where the VM still
    pays full translation costs but injects nothing.
    """

    #: Stable tool name; part of the persistent-cache tool key.
    name: str = "nulltool"
    #: Bump on any change to instrumentation semantics.
    version: str = "1.0"

    def identity(self) -> str:
        """Digest of the tool's instrumentation semantics for cache keys."""
        blob = ("%s:%s:%s" % (type(self).__name__, self.name, self.version))
        return hashlib.sha256(blob.encode()).hexdigest()

    def instrument_trace(self, trace: "Trace") -> List[InstrumentationPoint]:
        """Return the points to inject into ``trace`` (default: none)."""
        return []

    def on_start(self, machine: "Machine") -> None:
        """Called once before the application starts executing."""

    def on_exit(self, machine: "Machine", exit_status: int) -> None:
        """Called once after the application exits."""


class NullTool(Tool):
    """Explicit no-instrumentation client (native-to-native translation)."""

    name = "nulltool"
    version = "1.0"


@dataclass
class ToolAccounting:
    """Per-tool run accounting, filled in by the dispatcher."""

    analysis_calls: int = 0
    analysis_cycles: float = 0.0
    points_injected: int = 0
    calls_by_label: dict = field(default_factory=dict)

    def record_call(self, label: str, cycles: float) -> None:
        self.analysis_calls += 1
        self.analysis_cycles += cycles
        self.calls_by_label[label] = self.calls_by_label.get(label, 0) + 1
