"""Trace selection.

A *trace*, in this system as in Pin, is a linear sequence of instructions
fetched from a starting address until a fixed instruction count is reached
or an unconditional transfer is encountered (paper §2.1).  Conditional
branches do not end a trace: the fall-through side stays inside, the taken
side becomes a side *exit*.  Execution always enters a trace at its first
instruction; side entrances are not allowed.  The fetched layout is not
altered and no optimization is applied to application code.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.isa.instructions import INSTRUCTION_SIZE, Instruction
from repro.isa.opcodes import Opcode

#: Default maximum number of instructions fetched into one trace.
DEFAULT_MAX_TRACE_INSTS = 24


class ExitKind(enum.IntEnum):
    """How control can leave a trace."""

    BRANCH_TAKEN = 0  # conditional branch, taken side
    FALLTHROUGH = 1  # trace ended at the instruction-count limit
    DIRECT = 2  # jmp/call: statically known target
    INDIRECT = 3  # jr/callr/ret: target known only at run time
    SYSCALL = 4  # control leaves for the emulation unit
    HALT = 5  # machine stop


@dataclass
class TraceExit:
    """One potential exit from a trace.

    Attributes:
        kind: The exit's flavour.
        index: Index of the instruction the exit belongs to.
        target: Static target address (None for INDIRECT/SYSCALL/HALT;
            for SYSCALL it is the fall-through resume address).
    """

    kind: ExitKind
    index: int
    target: Optional[int] = None


@dataclass
class Trace:
    """A selected (not yet translated) trace of original code.

    Attributes:
        entry: Original absolute address of the first instruction.
        instructions: The fetched instructions, unaltered.
        exits: All potential exits, in instruction order.
        image_path: Path of the image the trace was fetched from.
        image_base: Load base of that image in this run.
    """

    entry: int
    instructions: List[Instruction] = field(default_factory=list)
    exits: List[TraceExit] = field(default_factory=list)
    image_path: str = ""
    image_base: int = 0
    _uops: Optional[List[tuple]] = field(default=None, repr=False, compare=False)

    @property
    def uops(self) -> List[tuple]:
        """Flattened micro-op tuples for the dispatcher's hot loop."""
        if self._uops is None or len(self._uops) != len(self.instructions):
            self._uops = [inst.as_tuple() for inst in self.instructions]
        return self._uops

    @property
    def size(self) -> int:
        """Original code footprint in bytes."""
        return len(self.instructions) * INSTRUCTION_SIZE

    @property
    def end(self) -> int:
        return self.entry + self.size

    def address_of(self, index: int) -> int:
        """Original address of instruction ``index``."""
        return self.entry + index * INSTRUCTION_SIZE

    def instruction_addresses(self) -> List[int]:
        return [self.address_of(i) for i in range(len(self.instructions))]


class TraceSelector:
    """Builds traces by linear fetch from original code."""

    def __init__(
        self,
        fetch: Callable[[int], Instruction],
        max_trace_insts: int = DEFAULT_MAX_TRACE_INSTS,
    ):
        if max_trace_insts < 1:
            raise ValueError("max_trace_insts must be >= 1")
        self._fetch = fetch
        self.max_trace_insts = max_trace_insts

    def select(
        self,
        entry: int,
        image_path: str = "",
        image_base: int = 0,
    ) -> Trace:
        """Fetch the trace starting at ``entry``."""
        trace = Trace(entry=entry, image_path=image_path, image_base=image_base)
        pc = entry
        for index in range(self.max_trace_insts):
            inst = self._fetch(pc)
            trace.instructions.append(inst)
            if inst.is_conditional_branch:
                trace.exits.append(
                    TraceExit(
                        ExitKind.BRANCH_TAKEN,
                        index,
                        target=inst.branch_target(pc),
                    )
                )
            elif inst.is_unconditional:
                trace.exits.append(_terminator_exit(inst, index, pc))
                return trace
            pc += INSTRUCTION_SIZE
        # Fell off the instruction-count limit: fall-through exit to the
        # next sequential address.
        trace.exits.append(
            TraceExit(ExitKind.FALLTHROUGH, len(trace.instructions) - 1, target=pc)
        )
        return trace


def _terminator_exit(inst: Instruction, index: int, pc: int) -> TraceExit:
    """Classify the trace-ending instruction at ``pc``."""
    if inst.opcode in (Opcode.JMP, Opcode.CALL):
        return TraceExit(ExitKind.DIRECT, index, target=inst.branch_target(pc))
    if inst.opcode in (Opcode.JR, Opcode.CALLR, Opcode.RET):
        return TraceExit(ExitKind.INDIRECT, index)
    if inst.opcode == Opcode.SYSCALL:
        return TraceExit(ExitKind.SYSCALL, index, target=pc + INSTRUCTION_SIZE)
    if inst.opcode == Opcode.HALT:
        return TraceExit(ExitKind.HALT, index)
    raise AssertionError("not a terminator: %r" % (inst.opcode,))
